#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <unordered_set>

#include "common/datetime.h"
#include "common/hash.h"
#include "common/ipv4.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"

namespace ftpc {
namespace {

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation with
  // seed 0: first three outputs.
  std::uint64_t state = 0;
  EXPECT_EQ(split_mix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(split_mix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(split_mix64(state), 0x06c45d188009454fULL);
}

TEST(Rng, DeriveSeedIsLabelSensitive) {
  EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
  EXPECT_EQ(derive_seed(7, "x"), derive_seed(7, "x"));
}

TEST(Rng, DeriveSeedNumericDiscriminator) {
  EXPECT_NE(derive_seed(1, std::uint64_t{0}), derive_seed(1, std::uint64_t{1}));
  EXPECT_EQ(derive_seed(3, std::uint64_t{9}), derive_seed(3, std::uint64_t{9}));
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDifferentSeedsDiffer) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Xoshiro256ss rng(9);
  std::uint64_t lo = 1000, hi = 1003;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_in(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256ss rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceRateApproximatelyCorrect) {
  Xoshiro256ss rng(2);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ParetoRespectsBounds) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.pareto(1.2, 10, 5000);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 5000u);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Xoshiro256ss rng(4);
  int small = 0, large = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.pareto(1.0, 10, 1000000);
    if (v < 100) ++small;
    if (v > 10000) ++large;
  }
  EXPECT_GT(small, 15000);  // most mass near xmin
  EXPECT_GT(large, 5);      // but a real tail exists
}

TEST(Rng, PickCumulative) {
  Xoshiro256ss rng(6);
  const double cumulative[] = {0.1, 0.1, 0.6, 1.0};  // weights .1 0 .5 .4
  int counts[4] = {};
  for (int i = 0; i < 40000; ++i) {
    ++counts[pick_cumulative(rng, cumulative, 4)];
  }
  EXPECT_NEAR(counts[0] / 40000.0, 0.1, 0.02);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 40000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[3] / 40000.0, 0.4, 0.02);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(Hash, Fnv1a64KnownValues) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, SipHashReferenceVector) {
  // The reference SipHash-2-4 test vector: key 000102...0f, input
  // 000102...3e produces a known table; spot-check a couple of entries.
  const std::uint64_t k0 = 0x0706050403020100ULL;
  const std::uint64_t k1 = 0x0f0e0d0c0b0a0908ULL;
  std::vector<std::uint8_t> input;
  // vectors[len] from the SipHash reference implementation.
  const std::uint64_t expected_len0 = 0x726fdb47dd0e0e31ULL;
  const std::uint64_t expected_len1 = 0x74f839c593dc67fdULL;
  const std::uint64_t expected_len8 = 0x93f5f5799a932462ULL;
  EXPECT_EQ(siphash24(k0, k1, input), expected_len0);
  input.push_back(0);
  EXPECT_EQ(siphash24(k0, k1, input), expected_len1);
  while (input.size() < 8) {
    input.push_back(static_cast<std::uint8_t>(input.size()));
  }
  EXPECT_EQ(siphash24(k0, k1, input), expected_len8);
}

TEST(Hash, SipHashU64MatchesByteForm) {
  const std::uint64_t value = 0x1122334455667788ULL;
  std::uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  EXPECT_EQ(siphash24_u64(1, 2, value), siphash24(1, 2, bytes));
}

TEST(Hash, Sha256EmptyString) {
  EXPECT_EQ(sha256("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Hash, Sha256Abc) {
  EXPECT_EQ(sha256("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Hash, Sha256TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Hash, Sha256MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Hash, Sha256IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.update("hello ");
  hasher.update("world");
  EXPECT_EQ(hasher.finish().hex(), sha256("hello world").hex());
}

TEST(Hash, Sha256FingerprintFormat) {
  const std::string fp = sha256("x").fingerprint();
  EXPECT_EQ(fp.size(), 95u);  // 32 bytes * 2 chars + 31 colons
  EXPECT_EQ(fp[2], ':');
  for (const char c : fp) {
    EXPECT_TRUE(c == ':' || (c >= '0' && c <= '9') || (c >= 'A' && c <= 'F'))
        << c;
  }
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

TEST(Ipv4Test, FormatAndParseRoundTrip) {
  const Ipv4 addr(141, 212, 120, 1);
  EXPECT_EQ(addr.str(), "141.212.120.1");
  EXPECT_EQ(Ipv4::parse("141.212.120.1"), addr);
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse(""));
  EXPECT_FALSE(Ipv4::parse("1.2.3"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.04"));  // leading zero
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4::parse("1..2.3"));
}

TEST(Ipv4Test, ParseBoundaryValues) {
  EXPECT_EQ(Ipv4::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4::parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4Test, Octets) {
  const Ipv4 addr(10, 20, 30, 40);
  EXPECT_EQ(addr.octet(0), 10);
  EXPECT_EQ(addr.octet(3), 40);
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_EQ(Ipv4(9, 9, 9, 9), Ipv4(9, 9, 9, 9));
}

TEST(CidrTest, ParseAndContains) {
  const auto cidr = Cidr::parse("192.168.0.0/16");
  ASSERT_TRUE(cidr);
  EXPECT_TRUE(cidr->contains(Ipv4(192, 168, 5, 5)));
  EXPECT_FALSE(cidr->contains(Ipv4(192, 169, 0, 0)));
  EXPECT_EQ(cidr->size(), 65536u);
}

TEST(CidrTest, Canonicalizes) {
  const auto cidr = Cidr::parse("10.1.2.3/8");
  ASSERT_TRUE(cidr);
  EXPECT_EQ(cidr->network, Ipv4(10, 0, 0, 0));
  EXPECT_EQ(cidr->str(), "10.0.0.0/8");
}

TEST(CidrTest, ParseRejectsBad) {
  EXPECT_FALSE(Cidr::parse("10.0.0.0"));
  EXPECT_FALSE(Cidr::parse("10.0.0.0/33"));
  EXPECT_FALSE(Cidr::parse("10.0.0.0/x"));
}

TEST(Ipv4Test, ReservedRanges) {
  EXPECT_TRUE(is_reserved(Ipv4(10, 1, 2, 3)));
  EXPECT_TRUE(is_reserved(Ipv4(127, 0, 0, 1)));
  EXPECT_TRUE(is_reserved(Ipv4(192, 168, 1, 1)));
  EXPECT_TRUE(is_reserved(Ipv4(224, 0, 0, 1)));
  EXPECT_TRUE(is_reserved(Ipv4(255, 255, 255, 255)));
  EXPECT_TRUE(is_reserved(Ipv4(100, 64, 0, 1)));
  EXPECT_FALSE(is_reserved(Ipv4(8, 8, 8, 8)));
  EXPECT_FALSE(is_reserved(Ipv4(141, 212, 120, 1)));
}

TEST(Ipv4Test, PrivateIsSubsetOfReserved) {
  EXPECT_TRUE(is_private(Ipv4(10, 0, 0, 1)));
  EXPECT_TRUE(is_private(Ipv4(172, 16, 0, 1)));
  EXPECT_TRUE(is_private(Ipv4(172, 31, 255, 255)));
  EXPECT_FALSE(is_private(Ipv4(172, 32, 0, 0)));
  EXPECT_TRUE(is_private(Ipv4(192, 168, 0, 1)));
  EXPECT_FALSE(is_private(Ipv4(8, 8, 8, 8)));
  EXPECT_FALSE(is_private(Ipv4(127, 0, 0, 1)));  // loopback != private
}

TEST(Ipv4Test, PublicCountNearPaperScanSize) {
  // The paper scanned 3,684,755,175 addresses; our reserved set should
  // land within 1%.
  const double paper = 3'684'755'175.0;
  EXPECT_NEAR(static_cast<double>(public_ipv4_count()) / paper, 1.0, 0.01);
}

TEST(Ipv4Test, ReservedRangesSortedDisjoint) {
  const auto ranges = reserved_ranges();
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first, ranges[i - 1].last);
  }
}

// ---------------------------------------------------------------------------
// Result / Status
// ---------------------------------------------------------------------------

TEST(ResultTest, OkStatus) {
  const Status status = Status::ok();
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.str(), "ok");
}

TEST(ResultTest, ErrorStatusFormatting) {
  const Status status(ErrorCode::kTimeout, "no banner");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.str(), "timeout: no banner");
}

TEST(ResultTest, ValueAccess) {
  Result<int> r(42);
  EXPECT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, ErrorAccess) {
  Result<int> r(ErrorCode::kNotFound, "gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, AllErrorCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(code)), "unknown");
  }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\nabc\t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_TRUE(iequals("FTP", "ftp"));
  EXPECT_FALSE(iequals("FTP", "ftps"));
  EXPECT_TRUE(istarts_with("220 ProFTPD", "220 pro"));
  EXPECT_TRUE(icontains("Welcome to Pure-FTPd", "pure-ftpd"));
  EXPECT_FALSE(icontains("abc", "abcd"));
  EXPECT_TRUE(icontains("anything", ""));
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitWhitespace) {
  const auto parts = split_whitespace("  -rw-r--r--   1 ftp  ftp ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "-rw-r--r--");
  EXPECT_EQ(parts[3], "ftp");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("-3"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(13789641), "13,789,641");
  EXPECT_EQ(with_commas(3684755175ULL), "3,684,755,175");
}

TEST(Strings, Percent) {
  EXPECT_EQ(percent(1, 8), "12.50%");
  EXPECT_EQ(percent(0, 0), "n/a");
}

TEST(Strings, FileExtension) {
  EXPECT_EQ(file_extension("a/B.Tar.GZ"), "gz");
  EXPECT_EQ(file_extension("a/Makefile"), "");
  EXPECT_EQ(file_extension(".htaccess"), "");  // leading-dot is not an ext
  EXPECT_EQ(file_extension("photo.JPG"), "jpg");
  EXPECT_EQ(file_extension("noext."), "");
}

TEST(Strings, Basename) {
  EXPECT_EQ(basename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(basename("c.txt"), "c.txt");
  EXPECT_EQ(basename("/a/b/"), "");
}

// ---------------------------------------------------------------------------
// Datetime
// ---------------------------------------------------------------------------

TEST(Datetime, EpochIsKnown) {
  const CivilDateTime c = civil_from_unix(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(Datetime, PaperScanDate) {
  // 2015-06-19 00:00:00 UTC = 1434672000.
  const CivilDateTime c = civil_from_unix(1434672000);
  EXPECT_EQ(c.year, 2015);
  EXPECT_EQ(c.month, 6);
  EXPECT_EQ(c.day, 19);
  EXPECT_EQ(c.hour, 0);
}

TEST(Datetime, RoundTripRandomTimes) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto t = static_cast<std::int64_t>(rng.next_below(4102444800ULL));
    EXPECT_EQ(unix_from_civil(civil_from_unix(t)), t);
  }
}

TEST(Datetime, LeapYearHandling) {
  const CivilDateTime c = civil_from_unix(1456704000);  // 2016-02-29
  EXPECT_EQ(c.year, 2016);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 29);
}

TEST(Datetime, LsDateRecentVsOld) {
  const std::int64_t t = unix_from_civil({2015, 6, 18, 9, 42, 0});
  EXPECT_EQ(ls_date(t, 2015), "Jun 18 09:42");
  EXPECT_EQ(ls_date(t, 2016), "Jun 18  2015");
}

TEST(Datetime, DirDateFormat) {
  const std::int64_t t = unix_from_civil({2015, 6, 18, 14, 5, 0});
  EXPECT_EQ(dir_date(t), "06-18-15  02:05PM");
  const std::int64_t midnight = unix_from_civil({2015, 1, 2, 0, 0, 0});
  EXPECT_EQ(dir_date(midnight), "01-02-15  12:00AM");
}

TEST(Datetime, MonthAbbrevBounds) {
  EXPECT_STREQ(month_abbrev(1), "Jan");
  EXPECT_STREQ(month_abbrev(12), "Dec");
  EXPECT_STREQ(month_abbrev(0), "???");
  EXPECT_STREQ(month_abbrev(13), "???");
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t("Title");
  t.set_header({"Name", "Count"});
  t.set_alignments({Align::kLeft, Align::kRight});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "1000"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Right-aligned: "1000" ends at the same column as "1".
  const auto line1_end = out.find("alpha");
  ASSERT_NE(line1_end, std::string::npos);
}

TEST(TextTableTest, FootnoteAndSeparator) {
  TextTable t;
  t.set_header({"A"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  t.set_footnote("note");
  const std::string out = t.render();
  EXPECT_NE(out.find("note"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);  // 2 rows + separator
}

TEST(TextTableTest, HandlesRaggedRows) {
  TextTable t;
  t.set_header({"A", "B", "C"});
  t.add_row({"only-one"});
  EXPECT_NE(t.render().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace ftpc
