// Profiling-plane suite (obs/prof.h + the ftpcprof inspector).
//
// Three contracts pinned here:
//   1. The data structures: ScopedProfile guards build a correct nested
//      tree, counters accumulate/high-water as documented, collectors
//      merge by name-path, and the ftpc.prof.v1 / collapsed / Chrome
//      exporters emit what they promise.
//   2. Split invariance: profiling is wall-clock telemetry and must be
//      invisible to the deterministic channels — all four artifacts
//      (records, metrics, trace, timeline) byte-identical with profiling
//      on vs off, across shard and thread splits.
//   3. The ftpcprof CI gate: diff of two identical profiles passes a
//      --fail-over threshold; a synthetic 2x hot-scope regression fails
//      with an exit code and names the regressed scope.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/census.h"
#include "core/dataset.h"
#include "core/records.h"
#include "core/sharded_census.h"
#include "net/internet.h"
#include "obs/build_info.h"
#include "obs/prof.h"
#include "popgen/population.h"
#include "shard_fixture.h"

namespace ftpc {
namespace {

using fixture::read_file;
using fixture::run_command;
using fixture::write_file;

// ---------------------------------------------------------------------------
// Data-structure contracts
// ---------------------------------------------------------------------------

TEST(ProfCollectorTest, ScopedGuardsBuildNestedTree) {
  obs::ProfCollector collector;
  {
    obs::ScopedProfile outer(&collector, "outer");
    { obs::ScopedProfile inner(&collector, "inner"); }
    { obs::ScopedProfile inner(&collector, "inner"); }
    { obs::ScopedProfile other(&collector, "other"); }
  }
  { obs::ScopedProfile outer(&collector, "outer"); }

  const obs::ProfTree& tree = collector.tree();
  // Root + outer + inner + other.
  ASSERT_EQ(tree.nodes().size(), 4u);
  const obs::ProfNode& root = tree.nodes()[0];
  ASSERT_EQ(root.children.size(), 1u);
  const obs::ProfNode& outer = tree.nodes()[root.children[0].second];
  EXPECT_EQ(tree.name(outer.name_id), "outer");
  EXPECT_EQ(outer.calls, 2u);
  ASSERT_EQ(outer.children.size(), 2u);
  std::uint64_t inner_calls = 0, other_calls = 0;
  for (const auto& [name_id, child] : outer.children) {
    if (tree.name(name_id) == "inner") {
      inner_calls = tree.nodes()[child].calls;
    } else if (tree.name(name_id) == "other") {
      other_calls = tree.nodes()[child].calls;
    }
  }
  EXPECT_EQ(inner_calls, 2u);
  EXPECT_EQ(other_calls, 1u);
}

TEST(ProfCollectorTest, NullCollectorIsANoOp) {
  // The deterministic hot path runs guards with a null collector; nothing
  // may be recorded, nothing may crash.
  obs::ScopedProfile guard(nullptr, "ignored");
  obs::ProfCollector collector;
  EXPECT_TRUE(collector.empty());
}

TEST(ProfCollectorTest, CountersAccumulateAndHighWater) {
  obs::ProfCollector collector;
  collector.counter_add("bytes", 100);
  collector.counter_add("bytes", 50);
  collector.counter_max("peak", 10);
  collector.counter_max("peak", 30);
  collector.counter_max("peak", 20);
  const auto counters = collector.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0], (std::pair<std::string, std::uint64_t>{"bytes", 150}));
  EXPECT_EQ(counters[1], (std::pair<std::string, std::uint64_t>{"peak", 30}));
}

TEST(ProfReportTest, CollectorsMergeByNamePath) {
  obs::ProfCollector a, b;
  {
    obs::ScopedProfile s(&a, "stage");
    obs::ScopedProfile t(&a, "step");
  }
  {
    obs::ScopedProfile s(&b, "stage");
    obs::ScopedProfile t(&b, "step");
    obs::ScopedProfile u(&b, "extra");
  }
  a.counter_add("bytes", 1);
  b.counter_add("bytes", 2);

  obs::ProfReport report;
  report.add_collector(a);
  report.add_collector(b);
  EXPECT_EQ(report.shards(), 2u);

  const obs::ProfTree& tree = report.tree();
  const obs::ProfNode& root = tree.nodes()[0];
  ASSERT_EQ(root.children.size(), 1u);  // both "stage" paths folded
  const obs::ProfNode& stage = tree.nodes()[root.children[0].second];
  EXPECT_EQ(stage.calls, 2u);
  ASSERT_EQ(stage.children.size(), 1u);
  const obs::ProfNode& step = tree.nodes()[stage.children[0].second];
  EXPECT_EQ(step.calls, 2u);
  EXPECT_EQ(step.children.size(), 1u);  // "extra" only under b's step
  ASSERT_EQ(report.counters().size(), 1u);
  EXPECT_EQ(report.counters()[0].second, 3u);
}

TEST(ProfReportTest, UncountedCollectorFoldsWithoutBumpingShards) {
  // The merge stage profiles as part of the run, not as a shard: its
  // collector folds with count_shard=false and shards() stays truthful.
  obs::ProfCollector shard, merge;
  { obs::ScopedProfile s(&shard, "scan.sweep"); }
  { obs::ScopedProfile s(&merge, "merge.reduce"); }
  obs::ProfReport report;
  report.add_collector(shard);
  report.add_collector(merge, /*count_shard=*/false);
  EXPECT_EQ(report.shards(), 1u);
  EXPECT_EQ(report.tree().nodes()[0].children.size(), 2u);
}

TEST(ProfReportTest, JsonExportIsCanonicalAndStamped) {
  obs::ProfCollector collector;
  {
    obs::ScopedProfile s(&collector, "beta");
  }
  {
    obs::ScopedProfile s(&collector, "alpha");
  }
  collector.counter_add("z.counter", 7);
  collector.counter_add("a.counter", 3);
  obs::ProfReport report;
  report.add_collector(collector);

  const std::string json = report.to_json();
  EXPECT_EQ(json.rfind("{\"schema\":\"ftpc.prof.v1\",\"build\":{", 0), 0u);
  EXPECT_EQ(json.back(), '\n');
  // Canonical ordering: counters and sibling scopes sorted by name.
  const std::string stripped = obs::strip_build_stamp(json);
  EXPECT_NE(stripped.find("\"counters\":{\"a.counter\":3,\"z.counter\":7}"),
            std::string::npos);
  EXPECT_LT(stripped.find("\"name\":\"alpha\""),
            stripped.find("\"name\":\"beta\""));
  EXPECT_NE(stripped.find("\"shards\":1"), std::string::npos);
  EXPECT_NE(stripped.find("\"calls\":1"), std::string::npos);
}

TEST(ProfReportTest, CollapsedStacksJoinPathsWithSemicolons) {
  obs::ProfCollector collector;
  {
    obs::ScopedProfile a(&collector, "a");
    obs::ScopedProfile b(&collector, "b");
  }
  obs::ProfReport report;
  report.add_collector(collector);
  const std::string collapsed = report.to_collapsed();
  EXPECT_NE(collapsed.find("a;b "), std::string::npos);
  // Every line is "path <integer-microseconds>\n".
  for (std::size_t at = 0; at < collapsed.size();) {
    const std::size_t eol = collapsed.find('\n', at);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = collapsed.substr(at, eol - at);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NE(line.substr(space + 1), "") << line;
    at = eol + 1;
  }
}

TEST(ProfReportTest, ChromeTraceNestsChildrenInsideParents) {
  obs::ProfCollector collector;
  {
    obs::ScopedProfile a(&collector, "parent");
    obs::ScopedProfile b(&collector, "child");
  }
  obs::ProfReport report;
  report.add_collector(collector);
  const std::string chrome = report.to_chrome_json();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"name\":\"parent\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"child\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Census integration + split invariance
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 12;  // small: invariance, not throughput

core::CensusConfig census_config(bool prof) {
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = kScaleShift;
  config.trace.enabled = true;
  config.timeline.enabled = true;
  config.prof_enabled = prof;
  return config;
}

struct Channels {
  std::string records;
  std::string metrics;
  std::string trace;
  std::string timeline;
};

Channels run_split(bool prof, std::uint32_t shards, std::uint32_t threads,
                   core::CensusStats* stats_out = nullptr) {
  core::CensusConfig config = census_config(prof);
  config.shards = shards;
  config.threads = threads;
  core::ShardedCensus census(
      [] { return std::make_unique<popgen::SyntheticPopulation>(kSeed); },
      config);
  core::VectorSink sink;
  core::CensusStats stats = census.run(sink);
  Channels out;
  for (const core::HostReport& report : sink.reports()) {
    out.records += core::encode_host_report(report);
  }
  out.metrics = stats.metrics.to_json();
  out.trace = stats.trace.to_jsonl();
  out.timeline = stats.timeline.to_jsonl();
  if (stats_out != nullptr) *stats_out = std::move(stats);
  return out;
}

class ProfSplitInvariance : public ::testing::Test {
 protected:
  // One profiling-off baseline for the whole matrix (the expensive run).
  static const Channels& baseline() {
    static const Channels channels = run_split(false, 1, 1);
    return channels;
  }
};

TEST_F(ProfSplitInvariance, DeterministicChannelsIdenticalWithProfilingOn) {
  ASSERT_FALSE(baseline().records.empty());
  ASSERT_FALSE(baseline().timeline.empty());
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 1}, {1, 4}, {4, 1}, {4, 4}}) {
    const Channels with_prof = run_split(true, shards, threads);
    const std::string label = "shards=" + std::to_string(shards) +
                              " threads=" + std::to_string(threads);
    EXPECT_EQ(with_prof.records, baseline().records) << label;
    EXPECT_EQ(with_prof.metrics, baseline().metrics) << label;
    EXPECT_EQ(with_prof.trace, baseline().trace) << label;
    EXPECT_EQ(with_prof.timeline, baseline().timeline) << label;
  }
}

TEST_F(ProfSplitInvariance, ProfilingOffLeavesReportEmpty) {
  core::CensusStats stats;
  run_split(false, 2, 2, &stats);
  EXPECT_TRUE(stats.prof.empty());
}

TEST(ProfCensusTest, ShardedRunCollectsScopesAndTelemetry) {
  core::CensusStats stats;
  run_split(true, 2, 2, &stats);
  ASSERT_FALSE(stats.prof.empty());
  EXPECT_EQ(stats.prof.shards(), 2u);

  const std::string json = stats.prof.to_json();
  // The pipeline's canonical scopes, nested under the stage structure.
  EXPECT_NE(json.find("\"name\":\"scan.sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"enumerate.window\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"session.begin\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"merge.replay\""), std::string::npos);
  // Subsystem telemetry folded into the same artifact.
  EXPECT_NE(json.find("\"wheel.arena_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"wheel.arena_nodes\":"), std::string::npos);
  EXPECT_NE(json.find("\"loop.events\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace.interner_bytes\":"), std::string::npos);

  // Wall time is real: the run took nonzero time and every session scope
  // fired once per enumerated host at least.
  const std::string collapsed = stats.prof.to_collapsed();
  EXPECT_NE(collapsed.find("scan.sweep"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ftpcprof inspector (the CI regression gate)
// ---------------------------------------------------------------------------

/// Synthetic ftpc.prof.v1 document with the given scan.sweep wall time:
/// the regression fixture pair differs only in that one hot scope.
std::string synthetic_profile(double sweep_wall_s) {
  char sweep[64];
  std::snprintf(sweep, sizeof sweep, "%.6f", sweep_wall_s);
  return std::string("{\"schema\":\"ftpc.prof.v1\",\"shards\":1,") +
         "\"counters\":{\"wheel.cascades\":100},\"tree\":[" +
         "{\"name\":\"enumerate.window\",\"calls\":1,\"wall_s\":2.000000," +
         "\"cpu_s\":2.000000,\"self_wall_s\":0.500000," +
         "\"self_cpu_s\":0.500000,\"children\":[" +
         "{\"name\":\"session.begin\",\"calls\":10,\"wall_s\":1.500000," +
         "\"cpu_s\":1.500000,\"self_wall_s\":1.500000," +
         "\"self_cpu_s\":1.500000,\"children\":[]}]}," +
         "{\"name\":\"scan.sweep\",\"calls\":1,\"wall_s\":" + sweep +
         ",\"cpu_s\":1.000000,\"self_wall_s\":" + sweep +
         ",\"self_cpu_s\":1.000000,\"children\":[]}]}\n";
}

class FtpcprofTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fixture::make_temp_root("ftpcprof");
    write_file(root_ + "/base.prof.json", synthetic_profile(1.0));
    write_file(root_ + "/same.prof.json", synthetic_profile(1.0));
    write_file(root_ + "/regressed.prof.json", synthetic_profile(2.0));
  }

  int prof(const std::string& args, const std::string& out_file) {
    return run_command(std::string(FTPC_FTPCPROF_BIN) + " " + args + " > " +
                       root_ + "/" + out_file + " 2>&1");
  }

  std::string root_;
};

TEST_F(FtpcprofTest, DiffOfIdenticalProfilesPassesTheGate) {
  ASSERT_EQ(prof("diff " + root_ + "/base.prof.json " + root_ +
                     "/same.prof.json --fail-over 25",
                 "same.txt"),
            0);
  const std::string out = read_file(root_ + "/same.txt");
  EXPECT_NE(out.find("no scope over +25.0%"), std::string::npos) << out;
}

TEST_F(FtpcprofTest, DiffNamesTheRegressedScopeAndFails) {
  // scan.sweep doubled (1.0s -> 2.0s = +100%): over a 25% gate this must
  // exit nonzero and the diagnostic must name the scope.
  EXPECT_EQ(prof("diff " + root_ + "/base.prof.json " + root_ +
                     "/regressed.prof.json --fail-over 25",
                 "regressed.txt"),
            1);
  const std::string out = read_file(root_ + "/regressed.txt");
  EXPECT_NE(out.find("regression: scan.sweep"), std::string::npos) << out;
  EXPECT_NE(out.find("100.0%"), std::string::npos) << out;
}

TEST_F(FtpcprofTest, DiffWithoutGateReportsButPasses) {
  EXPECT_EQ(prof("diff " + root_ + "/base.prof.json " + root_ +
                     "/regressed.prof.json",
                 "report.txt"),
            0);
  const std::string out = read_file(root_ + "/report.txt");
  EXPECT_NE(out.find("scan.sweep"), std::string::npos) << out;
}

TEST_F(FtpcprofTest, SummarizeAndFlameRenderTheFixture) {
  ASSERT_EQ(prof("summarize " + root_ + "/base.prof.json", "summary.txt"), 0);
  const std::string summary = read_file(root_ + "/summary.txt");
  EXPECT_NE(summary.find("scan.sweep"), std::string::npos);
  EXPECT_NE(summary.find("enumerate.window;session.begin"),
            std::string::npos);
  EXPECT_NE(summary.find("wheel.cascades"), std::string::npos);

  ASSERT_EQ(prof("flame " + root_ + "/base.prof.json", "flame.txt"), 0);
  const std::string flame = read_file(root_ + "/flame.txt");
  EXPECT_NE(flame.find("enumerate.window;session.begin 1500000"),
            std::string::npos)
      << flame;
  EXPECT_NE(flame.find("scan.sweep 1000000"), std::string::npos) << flame;
}

TEST_F(FtpcprofTest, RealProfileRoundTripsThroughTheInspector) {
  // End to end: a census-produced profile parses, summarizes, and diffs
  // clean against itself under any threshold.
  core::CensusStats stats;
  run_split(true, 2, 1, &stats);
  write_file(root_ + "/real.prof.json", stats.prof.to_json());
  ASSERT_EQ(prof("summarize " + root_ + "/real.prof.json", "real.txt"), 0);
  const std::string out = read_file(root_ + "/real.txt");
  EXPECT_NE(out.find("scan.sweep"), std::string::npos) << out;
  EXPECT_EQ(prof("diff " + root_ + "/real.prof.json " + root_ +
                     "/real.prof.json --fail-over 0",
                 "real_diff.txt"),
            0);
}

}  // namespace
}  // namespace ftpc
