// Conductor fault-injection battery: ftpcrun must supervise a fleet the
// way the DESIGN.md contract promises — a shard killed mid-run is
// restarted with --resume and the final merged artifacts are byte-for-byte
// the single-process bytes; a shard that keeps dying exhausts its retry
// budget, fails the run with exit 3, and is named in the ftpc.run.v1
// summary. Everything here drives the real binaries end to end (fork/exec,
// waitpid, heartbeat classification), so the suite is gated on the CLI
// target paths the build passes in.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "shard_fixture.h"

#if defined(FTPC_FTPCRUN_BIN) && defined(FTPC_FTPCENSUS_BIN)

namespace ftpc {
namespace {

using fixture::make_temp_root;
using fixture::read_file;
using fixture::run_command;

// Deterministic-channel flags shared by the conductor run and the
// single-process reference. The conductor additionally gets checkpoints
// dense enough that --crash-after-checkpoint 1 dies with real work left
// to resume, and fast heartbeats; neither touches the deterministic
// channels (health_test pins that), so the reference omits them. The
// supervision policy is slackened far past any execution speed
// (sanitizer builds run 10-20x slow, and a spurious stall-kill would
// break the exact attempt counts below): this battery pins the
// crash -> reap -> restart path, not the wall-clock stall classifier.
const char kDeterministicFlags[] =
    " --scale 13 --seed 42 --timeline-interval 0.01";
const char kConductorFlags[] =
    " --scale 13 --seed 42 --timeline-interval 0.01"
    " --checkpoint-interval 4096 --heartbeat-interval 0.1"
    " --stale 600 --stall 10000";

/// One shard_runs entry from run.json, located by its "shard":K key.
std::string shard_entry(const std::string& json, unsigned shard) {
  const std::string needle = "{\"shard\":" + std::to_string(shard) + ",";
  const auto at = json.find(needle);
  if (at == std::string::npos) return {};
  return json.substr(at, json.find('}', at) - at);
}

TEST(FtpcrunCli, CrashedShardIsRestartedAndMergedBytesMatchSingleProcess) {
  const std::string root = make_temp_root("ftpcrun_heal");
  const std::string quiet = " >/dev/null 2>&1";

  // 4 shards on 2 workers; shard 2 crashes (exit 3) after its first
  // checkpoint on its first attempt only. The conductor must reap it,
  // relaunch it with --resume, and still converge to a clean merge.
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCRUN_BIN) + " --out " + root +
                           "/fleet --shards 4 --workers 2 --poll 0.2" +
                           kConductorFlags +
                           " --crash-shard 2 --crash-after-checkpoint 1" +
                           quiet));

  const std::string run_json = read_file(root + "/fleet/run.json");
  ASSERT_FALSE(run_json.empty());
  EXPECT_NE(run_json.find("\"schema\":\"ftpc.run.v1\""), std::string::npos);
  EXPECT_NE(run_json.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(run_json.find("\"merged\":true"), std::string::npos);
  // The induced crash is visible as shard 2's restart — and only its.
  const std::string healed = shard_entry(run_json, 2);
  EXPECT_NE(healed.find("\"outcome\":\"done\""), std::string::npos) << healed;
  EXPECT_NE(healed.find("\"attempts\":2"), std::string::npos) << healed;
  for (unsigned shard : {0u, 1u, 3u}) {
    const std::string entry = shard_entry(run_json, shard);
    EXPECT_NE(entry.find("\"attempts\":1"), std::string::npos) << entry;
  }

  // Every poll snapshot in the fleet timeline is a ftpc.fleet.v1 line.
  const std::string fleet_log = read_file(root + "/fleet/fleet.jsonl");
  ASSERT_FALSE(fleet_log.empty());
  std::size_t offset = 0;
  while (offset < fleet_log.size()) {
    std::size_t eol = fleet_log.find('\n', offset);
    if (eol == std::string::npos) eol = fleet_log.size();
    const std::string line = fleet_log.substr(offset, eol - offset);
    offset = eol + 1;
    if (line.empty()) continue;
    EXPECT_EQ(line.find("{\"schema\":\"ftpc.fleet.v1\""), 0u) << line;
  }

  // The healed fleet's merge is byte-identical to one unorchestrated
  // single-process census with the same config.
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCENSUS_BIN) + " census" +
                           kDeterministicFlags + " --dataset " + root +
                           "/single.ftpd --metrics-out " + root +
                           "/metrics.json --trace-out " + root +
                           "/trace.jsonl --timeline-out " + root +
                           "/timeline.jsonl" + quiet));
  const std::string records = read_file(root + "/single.ftpd");
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records, read_file(root + "/fleet/merged/records.ftpd"));
  EXPECT_EQ(read_file(root + "/metrics.json"),
            read_file(root + "/fleet/merged/metrics.json"));
  EXPECT_EQ(read_file(root + "/trace.jsonl"),
            read_file(root + "/fleet/merged/trace.jsonl"));
  EXPECT_EQ(read_file(root + "/timeline.jsonl"),
            read_file(root + "/fleet/merged/timeline.jsonl"));
}

TEST(FtpcrunCli, ExhaustedRetryBudgetFailsWithTheShardNamed) {
  const std::string root = make_temp_root("ftpcrun_budget");
  const std::string quiet = " >/dev/null 2>&1";

  // Shard 1 crashes on every attempt: first launch + 2 restarts = 3
  // attempts, then the budget is spent and the run must fail with the
  // dedicated exit code instead of merging a partial fleet.
  ASSERT_EQ(3, run_command(std::string(FTPC_FTPCRUN_BIN) + " --out " + root +
                           "/fleet --shards 2 --retry-budget 2" +
                           kConductorFlags +
                           " --crash-shard 1 --crash-after-checkpoint 1"
                           " --crash-every-attempt" +
                           quiet));

  const std::string run_json = read_file(root + "/fleet/run.json");
  ASSERT_FALSE(run_json.empty());
  EXPECT_NE(run_json.find("\"outcome\":\"shard-failed\""), std::string::npos);
  EXPECT_NE(run_json.find("\"merged\":false"), std::string::npos);
  EXPECT_NE(run_json.find("shard 1 failed"), std::string::npos) << run_json;
  const std::string failed = shard_entry(run_json, 1);
  EXPECT_NE(failed.find("\"outcome\":\"failed\""), std::string::npos)
      << failed;
  EXPECT_NE(failed.find("\"attempts\":3"), std::string::npos) << failed;
  // The healthy shard still completed; no merged dir was produced.
  EXPECT_NE(shard_entry(run_json, 0).find("\"outcome\":\"done\""),
            std::string::npos);
  EXPECT_TRUE(read_file(root + "/fleet/merged/records.ftpd").empty());
}

TEST(FtpcrunCli, UsageAndBadInputAreExitTwo) {
  const std::string quiet = " >/dev/null 2>&1";
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCRUN_BIN) + quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCRUN_BIN) +
                           " --out /tmp/x --shards 0" + quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCRUN_BIN) +
                           " --out /tmp/x --shards 2 --bogus" + quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCRUN_BIN) +
                           " --out /tmp/x --shards 2 --census-bin "
                           "/nonexistent/ftpcensus" +
                           quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCRUN_BIN) +
                           " --out /tmp/x --shards 2 --crash-shard 1" +
                           quiet));
}

}  // namespace
}  // namespace ftpc

#endif  // FTPC_FTPCRUN_BIN && FTPC_FTPCENSUS_BIN
