#include <gtest/gtest.h>

#include <unordered_set>

#include "scan/permutation.h"
#include "scan/scanner.h"
#include "sim/network.h"

namespace ftpc::scan {
namespace {

// ---------------------------------------------------------------------------
// Modular arithmetic
// ---------------------------------------------------------------------------

TEST(Permutation, PrimeIsCorrect) {
  EXPECT_EQ(CyclicPermutation::kPrime, (1ULL << 32) + 15);
}

TEST(Permutation, MulModMatchesWideArithmetic) {
  const std::uint64_t a = 4294967290ULL, b = 4294967291ULL;
  const auto expected = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % CyclicPermutation::kPrime);
  EXPECT_EQ(CyclicPermutation::mul_mod(a, b), expected);
}

TEST(Permutation, PowModBasics) {
  EXPECT_EQ(CyclicPermutation::pow_mod(3, 0), 1u);
  EXPECT_EQ(CyclicPermutation::pow_mod(3, 1), 3u);
  EXPECT_EQ(CyclicPermutation::pow_mod(2, 10), 1024u);
  // Fermat: g^(p-1) == 1 mod p.
  EXPECT_EQ(CyclicPermutation::pow_mod(3, CyclicPermutation::kPrime - 1), 1u);
}

TEST(Permutation, ThreeIsPrimitiveRoot) {
  EXPECT_TRUE(CyclicPermutation::is_primitive_root(3));
}

TEST(Permutation, NonGeneratorsRejected) {
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(1));
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(0));
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(CyclicPermutation::kPrime));
  // A quadratic residue can't generate the full group: 3^2.
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(9));
}

TEST(Permutation, SeedSelectsValidGenerator) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const CyclicPermutation p(seed);
    EXPECT_TRUE(CyclicPermutation::is_primitive_root(p.generator()));
    EXPECT_GE(p.start_element(), 1u);
    EXPECT_LT(p.start_element(), CyclicPermutation::kPrime);
  }
}

TEST(Permutation, DifferentSeedsDifferentOrders) {
  CyclicPermutation a(1), b(2);
  auto wa = a.shard_walk(0, 1);
  auto wb = b.shard_walk(0, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    std::uint32_t x = 0, y = 0;
    ASSERT_TRUE(wa.next(x));
    ASSERT_TRUE(wb.next(y));
    if (x == y) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Permutation, WalkEmitsDistinctAddresses) {
  const CyclicPermutation p(7);
  auto walk = p.shard_walk(0, 1);
  std::unordered_set<std::uint32_t> seen;
  std::uint32_t address = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    ASSERT_TRUE(walk.next(address));
    ASSERT_TRUE(seen.insert(address).second) << "duplicate at " << i;
  }
}

TEST(Permutation, WalkIsDeterministic) {
  const CyclicPermutation p(11);
  auto w1 = p.shard_walk(0, 1);
  auto w2 = p.shard_walk(0, 1);
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t a = 0, b = 0;
    ASSERT_TRUE(w1.next(a));
    ASSERT_TRUE(w2.next(b));
    EXPECT_EQ(a, b);
  }
}

TEST(Permutation, ShardsAreDisjoint) {
  const CyclicPermutation p(3);
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    auto walk = p.shard_walk(shard, 4);
    std::uint32_t address = 0;
    for (int i = 0; i < 100'000; ++i) {
      ASSERT_TRUE(walk.next(address));
      ASSERT_TRUE(seen.insert(address).second)
          << "shard " << shard << " emitted a duplicate";
    }
  }
}

TEST(Permutation, AddressesSpreadAcrossSpace) {
  // A uniform permutation should hit every /8-sized bucket quickly.
  const CyclicPermutation p(5);
  auto walk = p.shard_walk(0, 1);
  std::unordered_set<std::uint32_t> buckets;
  std::uint32_t address = 0;
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(walk.next(address));
    buckets.insert(address >> 24);
  }
  EXPECT_EQ(buckets.size(), 256u);
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

TEST(Scanner, HitRateMatchesPopulationDensity) {
  sim::EventLoop loop;
  sim::Network network(loop);
  // One responsive host per 4096 addresses, everywhere.
  network.set_probe_fn([](Ipv4 ip, std::uint16_t port) {
    return port == 21 && ip.value() % 4096 == 0;
  });

  ScanConfig config;
  config.seed = 17;
  config.scale_shift = 8;  // 1/256 of the space: ~16.8M addresses
  Scanner scanner(network, config);
  std::unordered_set<std::uint32_t> hits;
  const ScanStats stats =
      scanner.run([&](Ipv4 ip) { hits.insert(ip.value()); });

  EXPECT_EQ(stats.addresses_walked, (std::uint64_t{1} << 24));
  EXPECT_EQ(stats.probed + stats.blocklisted, stats.addresses_walked);
  // ~13.8% of IPv4 is reserved.
  EXPECT_NEAR(static_cast<double>(stats.blocklisted) /
                  static_cast<double>(stats.addresses_walked),
              0.138, 0.01);
  EXPECT_EQ(stats.responsive, hits.size());
  EXPECT_NEAR(static_cast<double>(stats.responsive),
              static_cast<double>(stats.probed) / 4096.0,
              0.05 * static_cast<double>(stats.probed) / 4096.0 + 20);
  for (const std::uint32_t hit : hits) EXPECT_EQ(hit % 4096, 0u);
}

TEST(Scanner, SamplingBudget) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return false; });
  ScanConfig config;
  config.seed = 1;
  config.scale_shift = 16;  // 1/65536 of the space
  Scanner scanner(network, config);
  const ScanStats stats = scanner.run([](Ipv4) {});
  EXPECT_EQ(stats.addresses_walked, (std::uint64_t{1} << 16));
}

TEST(Scanner, NeverProbesReservedSpace) {
  sim::EventLoop loop;
  sim::Network network(loop);
  std::uint64_t reserved_probes = 0;
  network.set_probe_fn([&](Ipv4 ip, std::uint16_t) {
    if (is_reserved(ip)) ++reserved_probes;
    return false;
  });
  ScanConfig config;
  config.seed = 2;
  config.scale_shift = 12;
  Scanner scanner(network, config);
  scanner.run([](Ipv4) {});
  EXPECT_EQ(reserved_probes, 0u);
}

TEST(Scanner, ShardsPartitionTheSample) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return true; });

  std::unordered_set<std::uint32_t> all;
  std::uint64_t total_hits = 0;
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    ScanConfig config;
    config.seed = 9;
    config.scale_shift = 16;
    config.shard = shard;
    config.total_shards = 4;
    Scanner scanner(network, config);
    const ScanStats stats = scanner.run([&](Ipv4 ip) {
      EXPECT_TRUE(all.insert(ip.value()).second);
    });
    total_hits += stats.responsive;
  }
  EXPECT_EQ(all.size(), total_hits);
}

TEST(Scanner, AdvancesVirtualTimeByRate) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return false; });
  ScanConfig config;
  config.seed = 3;
  config.scale_shift = 16;
  config.probes_per_second = 1000;
  Scanner scanner(network, config);
  const ScanStats stats = scanner.run([](Ipv4) {});
  EXPECT_EQ(loop.now(), stats.probed * sim::kSecond / 1000);
}

TEST(Scanner, DeterministicAcrossRuns) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4 ip, std::uint16_t) {
    return ip.value() % 4096 == 0;
  });
  auto run_once = [&] {
    ScanConfig config;
    config.seed = 77;
    config.scale_shift = 14;
    Scanner scanner(network, config);
    std::vector<std::uint32_t> hits;
    scanner.run([&](Ipv4 ip) { hits.push_back(ip.value()); });
    return hits;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ftpc::scan
