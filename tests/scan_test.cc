#include <gtest/gtest.h>

#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "scan/permutation.h"
#include "scan/scanner.h"
#include "sim/chaos.h"
#include "sim/network.h"

namespace ftpc::scan {
namespace {

// ---------------------------------------------------------------------------
// Modular arithmetic
// ---------------------------------------------------------------------------

TEST(Permutation, PrimeIsCorrect) {
  EXPECT_EQ(CyclicPermutation::kPrime, (1ULL << 32) + 15);
}

TEST(Permutation, MulModMatchesWideArithmetic) {
  const std::uint64_t a = 4294967290ULL, b = 4294967291ULL;
  const auto expected = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % CyclicPermutation::kPrime);
  EXPECT_EQ(CyclicPermutation::mul_mod(a, b), expected);
}

TEST(Permutation, PowModBasics) {
  EXPECT_EQ(CyclicPermutation::pow_mod(3, 0), 1u);
  EXPECT_EQ(CyclicPermutation::pow_mod(3, 1), 3u);
  EXPECT_EQ(CyclicPermutation::pow_mod(2, 10), 1024u);
  // Fermat: g^(p-1) == 1 mod p.
  EXPECT_EQ(CyclicPermutation::pow_mod(3, CyclicPermutation::kPrime - 1), 1u);
}

TEST(Permutation, ThreeIsPrimitiveRoot) {
  EXPECT_TRUE(CyclicPermutation::is_primitive_root(3));
}

TEST(Permutation, NonGeneratorsRejected) {
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(1));
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(0));
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(CyclicPermutation::kPrime));
  // A quadratic residue can't generate the full group: 3^2.
  EXPECT_FALSE(CyclicPermutation::is_primitive_root(9));
}

TEST(Permutation, SeedSelectsValidGenerator) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const CyclicPermutation p(seed);
    EXPECT_TRUE(CyclicPermutation::is_primitive_root(p.generator()));
    EXPECT_GE(p.start_element(), 1u);
    EXPECT_LT(p.start_element(), CyclicPermutation::kPrime);
  }
}

TEST(Permutation, DifferentSeedsDifferentOrders) {
  CyclicPermutation a(1), b(2);
  auto wa = a.shard_walk(0, 1);
  auto wb = b.shard_walk(0, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    std::uint32_t x = 0, y = 0;
    ASSERT_TRUE(wa.next(x));
    ASSERT_TRUE(wb.next(y));
    if (x == y) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Permutation, WalkEmitsDistinctAddresses) {
  const CyclicPermutation p(7);
  auto walk = p.shard_walk(0, 1);
  std::unordered_set<std::uint32_t> seen;
  std::uint32_t address = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    ASSERT_TRUE(walk.next(address));
    ASSERT_TRUE(seen.insert(address).second) << "duplicate at " << i;
  }
}

TEST(Permutation, WalkIsDeterministic) {
  const CyclicPermutation p(11);
  auto w1 = p.shard_walk(0, 1);
  auto w2 = p.shard_walk(0, 1);
  for (int i = 0; i < 1000; ++i) {
    std::uint32_t a = 0, b = 0;
    ASSERT_TRUE(w1.next(a));
    ASSERT_TRUE(w2.next(b));
    EXPECT_EQ(a, b);
  }
}

TEST(Permutation, ShardsAreDisjoint) {
  const CyclicPermutation p(3);
  std::unordered_set<std::uint32_t> seen;
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    auto walk = p.shard_walk(shard, 4);
    std::uint32_t address = 0;
    for (int i = 0; i < 100'000; ++i) {
      ASSERT_TRUE(walk.next(address));
      ASSERT_TRUE(seen.insert(address).second)
          << "shard " << shard << " emitted a duplicate";
    }
  }
}

// ---------------------------------------------------------------------------
// Shard-partition properties (ZMap's sharding invariant): the K shard
// slices of an element-indexed prefix are pairwise disjoint, cover the
// prefix exactly once, and each equals the unsharded walk filtered to the
// element indices that shard owns.
// ---------------------------------------------------------------------------

// The first `elements` entries of the unsharded walk as (global element
// index, address) pairs; skipped group elements consume an index without
// producing a pair.
std::vector<std::pair<std::uint64_t, std::uint32_t>> unsharded_prefix(
    const CyclicPermutation& p, std::uint64_t elements) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  auto walk = p.shard_walk(0, 1, elements);
  std::uint32_t address = 0;
  while (walk.next(address)) {
    out.emplace_back(walk.consumed() - 1, address);
  }
  return out;
}

TEST(Permutation, ShardSlicesEqualFilteredUnshardedWalk) {
  const CyclicPermutation p(21);
  const std::uint64_t kElements = 1 << 16;
  const auto full = unsharded_prefix(p, kElements);
  for (const std::uint32_t total_shards : {1u, 2u, 3u, 4u, 5u, 8u}) {
    for (std::uint32_t shard = 0; shard < total_shards; ++shard) {
      const std::uint64_t budget = CyclicPermutation::shard_prefix_elements(
          kElements, shard, total_shards);
      auto walk = p.shard_walk(shard, total_shards, budget);
      std::vector<std::uint32_t> got;
      std::uint32_t address = 0;
      while (walk.next(address)) got.push_back(address);
      EXPECT_EQ(walk.consumed(), budget);

      std::vector<std::uint32_t> expected;
      for (const auto& [index, addr] : full) {
        if (index % total_shards == shard) expected.push_back(addr);
      }
      EXPECT_EQ(got, expected)
          << "shard " << shard << "/" << total_shards
          << " is not the index-filtered unsharded walk";
    }
  }
}

TEST(Permutation, ShardSlicesAreDisjointAndCoverThePrefix) {
  const CyclicPermutation p(33);
  const std::uint64_t kElements = 1 << 15;
  const auto full = unsharded_prefix(p, kElements);
  for (const std::uint32_t total_shards : {2u, 3u, 7u, 16u}) {
    std::unordered_set<std::uint32_t> seen;
    std::uint64_t total_elements = 0;
    for (std::uint32_t shard = 0; shard < total_shards; ++shard) {
      const std::uint64_t budget = CyclicPermutation::shard_prefix_elements(
          kElements, shard, total_shards);
      total_elements += budget;
      auto walk = p.shard_walk(shard, total_shards, budget);
      std::uint32_t address = 0;
      while (walk.next(address)) {
        EXPECT_TRUE(seen.insert(address).second)
            << "address emitted by two shards (K=" << total_shards << ")";
      }
    }
    // Element budgets tile the prefix exactly, even when K does not
    // divide it, ...
    EXPECT_EQ(total_elements, kElements);
    // ... and the union of shard outputs is exactly the unsharded prefix.
    EXPECT_EQ(seen.size(), full.size());
    for (const auto& [index, addr] : full) {
      EXPECT_TRUE(seen.count(addr)) << "address missing from every shard";
    }
  }
}

TEST(Permutation, ShardPrefixElementBudgets) {
  // 10 indices over 4 shards: 3, 3, 2, 2.
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 0, 4), 3u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 1, 4), 3u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 2, 4), 2u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 3, 4), 2u);
  // Degenerate cases.
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(0, 0, 4), 0u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(2, 3, 4), 0u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 5, 4), 0u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 0, 0), 0u);
  EXPECT_EQ(CyclicPermutation::shard_prefix_elements(10, 0, 1), 10u);
}

TEST(Permutation, WalkElementLimitStopsExactly) {
  const CyclicPermutation p(13);
  auto limited = p.shard_walk(0, 1, 100);
  std::uint32_t address = 0;
  std::uint64_t emitted = 0;
  while (limited.next(address)) ++emitted;
  EXPECT_EQ(limited.consumed(), 100u);
  EXPECT_EQ(limited.emitted(), emitted);
  EXPECT_LE(emitted, 100u);
  // A second call after exhaustion stays exhausted.
  EXPECT_FALSE(limited.next(address));
  EXPECT_EQ(limited.consumed(), 100u);
}

TEST(Permutation, AddressesSpreadAcrossSpace) {
  // A uniform permutation should hit every /8-sized bucket quickly.
  const CyclicPermutation p(5);
  auto walk = p.shard_walk(0, 1);
  std::unordered_set<std::uint32_t> buckets;
  std::uint32_t address = 0;
  for (int i = 0; i < 20'000; ++i) {
    ASSERT_TRUE(walk.next(address));
    buckets.insert(address >> 24);
  }
  EXPECT_EQ(buckets.size(), 256u);
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

TEST(Scanner, HitRateMatchesPopulationDensity) {
  sim::EventLoop loop;
  sim::Network network(loop);
  // One responsive host per 4096 addresses, everywhere.
  network.set_probe_fn([](Ipv4 ip, std::uint16_t port) {
    return port == 21 && ip.value() % 4096 == 0;
  });

  ScanConfig config;
  config.seed = 17;
  config.scale_shift = 8;  // 1/256 of the space: ~16.8M addresses
  Scanner scanner(network, config);
  std::unordered_set<std::uint32_t> hits;
  const ScanStats stats =
      scanner.run([&](Ipv4 ip) { hits.insert(ip.value()); });

  EXPECT_EQ(stats.addresses_walked, (std::uint64_t{1} << 24));
  EXPECT_EQ(stats.probed + stats.blocklisted, stats.addresses_walked);
  // ~13.8% of IPv4 is reserved.
  EXPECT_NEAR(static_cast<double>(stats.blocklisted) /
                  static_cast<double>(stats.addresses_walked),
              0.138, 0.01);
  EXPECT_EQ(stats.responsive, hits.size());
  EXPECT_NEAR(static_cast<double>(stats.responsive),
              static_cast<double>(stats.probed) / 4096.0,
              0.05 * static_cast<double>(stats.probed) / 4096.0 + 20);
  for (const std::uint32_t hit : hits) EXPECT_EQ(hit % 4096, 0u);
}

TEST(Scanner, SamplingBudget) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return false; });
  ScanConfig config;
  config.seed = 1;
  config.scale_shift = 16;  // 1/65536 of the space
  Scanner scanner(network, config);
  const ScanStats stats = scanner.run([](Ipv4) {});
  // The budget is 2^16 *elements*; every element of this seed's prefix
  // maps to an address, so the two counters agree here.
  EXPECT_EQ(stats.elements_walked, (std::uint64_t{1} << 16));
  EXPECT_EQ(stats.addresses_walked, (std::uint64_t{1} << 16));
}

TEST(Scanner, NeverProbesReservedSpace) {
  sim::EventLoop loop;
  sim::Network network(loop);
  std::uint64_t reserved_probes = 0;
  network.set_probe_fn([&](Ipv4 ip, std::uint16_t) {
    if (is_reserved(ip)) ++reserved_probes;
    return false;
  });
  ScanConfig config;
  config.seed = 2;
  config.scale_shift = 12;
  Scanner scanner(network, config);
  scanner.run([](Ipv4) {});
  EXPECT_EQ(reserved_probes, 0u);
}

TEST(Scanner, ShardsPartitionTheSample) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return true; });

  std::unordered_set<std::uint32_t> all;
  std::uint64_t total_hits = 0;
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    ScanConfig config;
    config.seed = 9;
    config.scale_shift = 16;
    config.shard = shard;
    config.total_shards = 4;
    Scanner scanner(network, config);
    const ScanStats stats = scanner.run([&](Ipv4 ip) {
      EXPECT_TRUE(all.insert(ip.value()).second);
    });
    total_hits += stats.responsive;
  }
  EXPECT_EQ(all.size(), total_hits);
}

TEST(Scanner, ShardedScanHitsEqualSequentialScanHits) {
  // Scanner-level statement of the partition invariant: the union of K
  // shards' hits is exactly the sequential scan's hit set, and every
  // counter partitions. Uses a sparse deterministic responder so hit sets
  // are small but non-trivial.
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4 ip, std::uint16_t) {
    return ip.value() % 1024 == 3;
  });

  auto run_scan = [&](std::uint32_t shard, std::uint32_t total) {
    ScanConfig config;
    config.seed = 123;
    config.scale_shift = 14;
    config.shard = shard;
    config.total_shards = total;
    Scanner scanner(network, config);
    std::vector<std::uint32_t> hits;
    const ScanStats stats =
        scanner.run([&](Ipv4 ip) { hits.push_back(ip.value()); });
    return std::pair(stats, hits);
  };

  const auto [seq_stats, seq_hits] = run_scan(0, 1);
  ASSERT_GT(seq_hits.size(), 50u);

  for (const std::uint32_t total_shards : {2u, 3u, 8u}) {
    ScanStats merged;
    std::unordered_set<std::uint32_t> merged_hits;
    for (std::uint32_t shard = 0; shard < total_shards; ++shard) {
      const auto [stats, hits] = run_scan(shard, total_shards);
      merged.merge_from(stats);
      for (const std::uint32_t hit : hits) {
        EXPECT_TRUE(merged_hits.insert(hit).second)
            << "hit discovered by two shards";
      }
    }
    EXPECT_EQ(merged.elements_walked, seq_stats.elements_walked);
    EXPECT_EQ(merged.addresses_walked, seq_stats.addresses_walked);
    EXPECT_EQ(merged.blocklisted, seq_stats.blocklisted);
    EXPECT_EQ(merged.probed, seq_stats.probed);
    EXPECT_EQ(merged.responsive, seq_stats.responsive);
    EXPECT_EQ(merged_hits.size(), seq_hits.size());
    for (const std::uint32_t hit : seq_hits) {
      EXPECT_TRUE(merged_hits.count(hit));
    }
  }
}

TEST(Scanner, AdvancesVirtualTimeByRate) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return false; });
  ScanConfig config;
  config.seed = 3;
  config.scale_shift = 16;
  config.probes_per_second = 1000;
  Scanner scanner(network, config);
  const ScanStats stats = scanner.run([](Ipv4) {});
  EXPECT_EQ(loop.now(), stats.probed * sim::kSecond / 1000);
}

TEST(Scanner, PacingCarriesSubSecondRemainderAtOddRates) {
  // 7000 pps does not divide kSecond (1e6/7000 = 142.857us per probe), so
  // truncating integer division dropped up to a second of wire time per
  // shard. The pacing must round the total wire time *up*: never below the
  // exact rational duration, and within 1us of it.
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return false; });
  ScanConfig config;
  config.seed = 3;
  config.scale_shift = 16;
  config.probes_per_second = 7000;
  Scanner scanner(network, config);
  const ScanStats stats = scanner.run([](Ipv4) {});
  ASSERT_GT(stats.probed, 0u);
  const std::uint64_t numerator = stats.probed * sim::kSecond;
  ASSERT_NE(numerator % 7000, 0u) << "pick a probe count that leaves a "
                                     "remainder or the test is vacuous";
  const sim::SimTime exact_floor = numerator / 7000;
  EXPECT_EQ(loop.now(), exact_floor + 1);  // ceil = floor + 1 here
}

// ---------------------------------------------------------------------------
// SYN retransmits under chaos (sim::chaos)
// ---------------------------------------------------------------------------

TEST(Scanner, TotalSynLossDrainsRetryBudgetWithoutHangOrDoubleReport) {
  // Every host loses exactly 2 SYNs. A retry budget below that drains
  // fully and lands every address in probe_timeouts — exactly once, with
  // no hit reported and no hang (the scan loop is synchronous; returning
  // at all is the no-hang proof).
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return true; });
  sim::ChaosEngine chaos =
      sim::ChaosEngine::fixed({.kind = sim::FaultKind::kSynLoss,
                               .syn_losses = 2});
  network.set_chaos(&chaos);
  obs::MetricsRegistry metrics;
  network.set_metrics(&metrics);

  ScanConfig config;
  config.seed = 5;
  config.scale_shift = 18;  // ~16K elements
  config.probe_retries = 1;
  Scanner scanner(network, config);
  std::uint64_t hits = 0;
  const ScanStats stats = scanner.run([&](Ipv4) { ++hits; });
  network.set_metrics(nullptr);
  network.set_chaos(nullptr);

  EXPECT_GT(stats.probed, 0u);
  EXPECT_EQ(hits, 0u);
  EXPECT_EQ(stats.responsive, 0u);
  // Budget of 1 retransmit per address, drained on every address.
  EXPECT_EQ(stats.probe_retransmits, stats.probed);
  EXPECT_EQ(stats.probe_timeouts, stats.probed);
  // Funnel: every probed address dropped exactly once, as a timeout.
  EXPECT_EQ(metrics.value("funnel.stage.probe"), stats.probed);
  EXPECT_EQ(metrics.value("funnel.drop.probe.timeout"), stats.probed);
  EXPECT_EQ(metrics.value("funnel.drop.probe.unresponsive"), 0u);
  EXPECT_EQ(metrics.value("retry.probe"), stats.probe_retransmits);
  EXPECT_EQ(metrics.value("chaos.injected.syn_loss"),
            stats.probed + stats.probe_retransmits);
}

TEST(Scanner, SufficientRetryBudgetRecoversEveryHost) {
  // Same plan (2 lost SYNs per address), budget of 2: the third SYN gets
  // through everywhere, timeouts vanish, and virtual time accounts for
  // the retransmitted probes too.
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4, std::uint16_t) { return true; });
  sim::ChaosEngine chaos =
      sim::ChaosEngine::fixed({.kind = sim::FaultKind::kSynLoss,
                               .syn_losses = 2});
  network.set_chaos(&chaos);

  ScanConfig config;
  config.seed = 5;
  config.scale_shift = 18;
  config.probe_retries = 2;
  Scanner scanner(network, config);
  std::unordered_set<std::uint32_t> hits;
  const ScanStats stats = scanner.run(
      [&](Ipv4 ip) { EXPECT_TRUE(hits.insert(ip.value()).second); });
  network.set_chaos(nullptr);

  EXPECT_EQ(stats.responsive, stats.probed);
  EXPECT_EQ(hits.size(), stats.probed);
  EXPECT_EQ(stats.probe_timeouts, 0u);
  EXPECT_EQ(stats.probe_retransmits, 2 * stats.probed);
  EXPECT_EQ(loop.now(), (stats.probed + stats.probe_retransmits) *
                            sim::kSecond / config.probes_per_second);
}

TEST(Scanner, DeterministicAcrossRuns) {
  sim::EventLoop loop;
  sim::Network network(loop);
  network.set_probe_fn([](Ipv4 ip, std::uint16_t) {
    return ip.value() % 4096 == 0;
  });
  auto run_once = [&] {
    ScanConfig config;
    config.seed = 77;
    config.scale_shift = 14;
    Scanner scanner(network, config);
    std::vector<std::uint32_t> hits;
    scanner.run([&](Ipv4 ip) { hits.push_back(ip.value()); });
    return hits;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ftpc::scan
