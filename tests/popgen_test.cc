#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "popgen/calibration.h"
#include "popgen/catalog.h"
#include "popgen/fsgen.h"
#include "popgen/population.h"

namespace ftpc::popgen {
namespace {

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(Catalog, KeysAreUnique) {
  std::map<std::string, int> seen;
  for (const auto& tmpl : device_catalog()) {
    EXPECT_EQ(seen[tmpl.key]++, 0) << "duplicate key " << tmpl.key;
  }
}

TEST(Catalog, TemplateIndexResolvesEveryKey) {
  for (std::size_t i = 0; i < device_catalog().size(); ++i) {
    EXPECT_EQ(template_index(device_catalog()[i].key), i);
  }
}

TEST(Catalog, ProbabilitiesAreValid) {
  for (const auto& t : device_catalog()) {
    EXPECT_GE(t.anon_probability, 0.0) << t.key;
    EXPECT_LE(t.anon_probability, 1.0) << t.key;
    EXPECT_GE(t.writable_given_anon, 0.0) << t.key;
    EXPECT_LE(t.writable_given_anon, 1.0) << t.key;
    EXPECT_GE(t.ftps_probability, 0.0) << t.key;
    EXPECT_LE(t.ftps_probability, 1.0) << t.key;
    EXPECT_GE(t.port_validation_failure, 0.0) << t.key;
    EXPECT_LE(t.port_validation_failure, 1.0) << t.key;
  }
}

TEST(Catalog, BannersNonEmptyAndPrefixed) {
  for (const auto& t : device_catalog()) {
    EXPECT_FALSE(t.banner.empty()) << t.key;
    EXPECT_EQ(t.banner.rfind("220", 0), 0u) << t.key;
  }
}

TEST(Catalog, SharedCertTemplatesDeclareCn) {
  for (const auto& t : device_catalog()) {
    if (t.cert_policy == CertPolicy::kSharedDevice) {
      EXPECT_FALSE(t.cert_cn.empty()) << t.key;
    }
  }
}

TEST(Catalog, VersionWeightsPositive) {
  for (const auto& t : device_catalog()) {
    for (const auto& v : t.versions) {
      EXPECT_GT(v.weight, 0.0) << t.key << " " << v.version;
    }
  }
}

TEST(Catalog, PickVersionHonorsWeights) {
  const auto& proftpd = device_catalog()[template_index("proftpd")];
  Xoshiro256ss rng(3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[pick_version(proftpd, rng.next_double()).version];
  }
  // 1.3.3g has weight .3595 — the most common.
  EXPECT_NEAR(counts["1.3.3g"] / 50000.0, 0.3595, 0.02);
  EXPECT_NEAR(counts["1.3.5"] / 50000.0, 0.1672, 0.02);
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

class CalibrationTest : public ::testing::Test {
 protected:
  static const Calibration& cal() {
    static const Calibration instance = build_calibration(42);
    return instance;
  }
};

TEST_F(CalibrationTest, GlobalFtpTargetMatchesPaper) {
  EXPECT_EQ(cal().total_ftp_target(), 13'789'641u);
}

TEST_F(CalibrationTest, AsCountMatchesPaper) {
  // §IV.A: 34.7K ASes contain FTP servers.
  EXPECT_EQ(cal().ases.size(), 34'700u);
}

TEST_F(CalibrationTest, AdvertisedSpaceFitsPublicIpv4) {
  EXPECT_LE(cal().total_advertised(), public_ipv4_count());
  // And covers nearly all of it (the paper scanned ~3.68B addresses).
  EXPECT_GT(cal().total_advertised(), public_ipv4_count() * 99 / 100);
}

TEST_F(CalibrationTest, ProfilesAreNormalized) {
  for (const Profile& profile : cal().profiles) {
    if (profile.mix.empty()) continue;
    double sum = 0;
    for (const auto& [key, w] : profile.mix) {
      EXPECT_GE(w, 0.0) << profile.name;
      (void)template_index(key);  // asserts key exists
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << profile.name;
  }
}

TEST_F(CalibrationTest, Top10AnonymousAsesArePinned) {
  // Table VI head entries exist with the paper's advertised counts.
  bool found_homepl = false, found_chinanet = false;
  for (const AsSpec& as_spec : cal().ases) {
    if (as_spec.name == "home.pl S.A.") {
      found_homepl = true;
      EXPECT_EQ(as_spec.advertised, 205'312u);
      EXPECT_EQ(as_spec.ftp_target, 136'765u);
      ASSERT_TRUE(as_spec.anon_override);
      EXPECT_NEAR(*as_spec.anon_override, 0.7544, 1e-6);
    }
    if (as_spec.name == "Chinanet") {
      found_chinanet = true;
      EXPECT_EQ(as_spec.advertised, 120'757'504u);
    }
  }
  EXPECT_TRUE(found_homepl);
  EXPECT_TRUE(found_chinanet);
}

TEST_F(CalibrationTest, ExpectedClassTotalsMatchTableII) {
  std::map<DeviceClass, double> per_class;
  for (const AsSpec& as_spec : cal().ases) {
    for (const auto& [key, w] : cal().profiles[as_spec.profile].mix) {
      const auto& tmpl = device_catalog()[template_index(key)];
      per_class[tmpl.device_class] +=
          w * static_cast<double>(as_spec.ftp_target);
    }
  }
  const double embedded = per_class[DeviceClass::kNas] +
                          per_class[DeviceClass::kHomeRouter] +
                          per_class[DeviceClass::kPrinter] +
                          per_class[DeviceClass::kProviderCpe] +
                          per_class[DeviceClass::kOtherEmbedded];
  EXPECT_NEAR(per_class[DeviceClass::kGenericServer], 5'957'969, 60'000);
  EXPECT_NEAR(per_class[DeviceClass::kHostedServer], 1'795'596, 20'000);
  EXPECT_NEAR(embedded, 1'786'656, 20'000);
  EXPECT_NEAR(per_class[DeviceClass::kUnknown], 4'249'417, 45'000);
}

TEST_F(CalibrationTest, DeterministicInSeed) {
  const Calibration a = build_calibration(7);
  const Calibration b = build_calibration(7);
  ASSERT_EQ(a.ases.size(), b.ases.size());
  for (std::size_t i = 0; i < a.ases.size(); ++i) {
    EXPECT_EQ(a.ases[i].ftp_target, b.ases[i].ftp_target);
    EXPECT_EQ(a.ases[i].advertised, b.ases[i].advertised);
  }
}

TEST_F(CalibrationTest, AsTableLookupConsistent) {
  const net::AsTable table = build_as_table(cal());
  EXPECT_EQ(table.as_count(), cal().ases.size());
  // Every allocation's endpoints resolve back to their AS.
  const auto& allocations = table.allocations();
  ASSERT_FALSE(allocations.empty());
  for (std::size_t i = 0; i < allocations.size(); i += 997) {
    const auto& alloc = allocations[i];
    EXPECT_EQ(table.as_index_of(Ipv4(alloc.first)), alloc.as_index);
    EXPECT_EQ(table.as_index_of(Ipv4(alloc.last)), alloc.as_index);
  }
}

TEST_F(CalibrationTest, ReservedSpaceIsUnallocated) {
  const net::AsTable table = build_as_table(cal());
  EXPECT_FALSE(table.as_index_of(Ipv4(10, 1, 2, 3)));
  EXPECT_FALSE(table.as_index_of(Ipv4(127, 0, 0, 1)));
  EXPECT_FALSE(table.as_index_of(Ipv4(239, 1, 2, 3)));
}

// ---------------------------------------------------------------------------
// Population
// ---------------------------------------------------------------------------

class PopulationTest : public ::testing::Test {
 protected:
  static SyntheticPopulation& pop() {
    static SyntheticPopulation instance(42);
    return instance;
  }
};

TEST_F(PopulationTest, MembershipIsDeterministic) {
  Xoshiro256ss rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    EXPECT_EQ(pop().has_ftp(ip), pop().has_ftp(ip));
    EXPECT_EQ(pop().port_open(ip, 21), pop().port_open(ip, 21));
  }
}

TEST_F(PopulationTest, OnlyPort21Answers) {
  Xoshiro256ss rng(2);
  for (int i = 0; i < 20000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    EXPECT_FALSE(pop().port_open(ip, 22));
    EXPECT_FALSE(pop().port_open(ip, 80));
  }
}

TEST_F(PopulationTest, GlobalDensityNearPaper) {
  // Expected: 13.79M FTP / 3.70B public ≈ 0.373%; junk adds ~0.22%.
  Xoshiro256ss rng(3);
  std::uint64_t sampled = 0, ftp = 0, open = 0;
  while (sampled < 3'000'000) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    if (is_reserved(ip)) continue;
    ++sampled;
    if (pop().has_ftp(ip)) ++ftp;
    if (pop().port_open(ip, 21)) ++open;
  }
  const double ftp_rate = static_cast<double>(ftp) / 3e6;
  const double open_rate = static_cast<double>(open) / 3e6;
  EXPECT_NEAR(ftp_rate, 13'789'641.0 / 3'702'000'000.0, 0.0005);
  EXPECT_NEAR(open_rate, 21'832'903.0 / 3'702'000'000.0, 0.0006);
}

TEST_F(PopulationTest, HostConfigOnlyForFtpHosts) {
  Xoshiro256ss rng(4);
  int checked = 0;
  for (int i = 0; checked < 300 && i < 5'000'000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    const bool has = pop().has_ftp(ip);
    const auto config = pop().host_config(ip);
    EXPECT_EQ(has, config.has_value());
    if (config) {
      ++checked;
      EXPECT_EQ(config->ip, ip);
      EXPECT_TRUE(config->personality != nullptr);
      EXPECT_FALSE(config->personality->banner.empty());
    }
  }
  EXPECT_EQ(checked, 300);
}

TEST_F(PopulationTest, HostConfigDeterministic) {
  // Find an FTP host, then rebuild its config and compare key fields.
  Xoshiro256ss rng(5);
  for (int i = 0; i < 5'000'000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    const auto a = pop().host_config(ip);
    if (!a) continue;
    const auto b = pop().host_config(ip);
    ASSERT_TRUE(b);
    EXPECT_EQ(a->template_id, b->template_id);
    EXPECT_EQ(a->personality->banner, b->personality->banner);
    EXPECT_EQ(a->personality->allow_anonymous,
              b->personality->allow_anonymous);
    EXPECT_EQ(a->fs_plan.seed, b->fs_plan.seed);
    return;
  }
  FAIL() << "no FTP host found";
}

TEST_F(PopulationTest, AnonymousRateNearPaper) {
  Xoshiro256ss rng(6);
  int ftp = 0, anon = 0;
  for (int i = 0; ftp < 4000 && i < 30'000'000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    const auto config = pop().host_config(ip);
    if (!config) continue;
    ++ftp;
    if (config->personality->allow_anonymous) ++anon;
  }
  ASSERT_EQ(ftp, 4000);
  // Paper: 8.15% of FTP servers allow anonymous access.
  EXPECT_NEAR(anon / 4000.0, 0.0815, 0.02);
}

TEST_F(PopulationTest, MaterializeRegistersFtpListener) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 5'000'000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    if (!pop().has_ftp(ip)) continue;
    auto host = pop().materialize(ip);
    ASSERT_TRUE(host);
    sim::EventLoop loop;
    sim::Network network(loop);
    host->attach(network);
    EXPECT_TRUE(network.is_listening(ip, 21));
    host->detach(network);
    EXPECT_FALSE(network.is_listening(ip, 21));
    return;
  }
  FAIL() << "no FTP host found";
}

TEST_F(PopulationTest, HttpProfileRatesSane) {
  Xoshiro256ss rng(8);
  int ftp = 0, http = 0, scripting = 0;
  for (int i = 0; ftp < 4000 && i < 30'000'000; ++i) {
    const Ipv4 ip(static_cast<std::uint32_t>(rng.next()));
    if (!pop().has_ftp(ip)) continue;
    ++ftp;
    const HttpProfile profile = pop().http_profile(ip);
    if (profile.has_http) ++http;
    if (profile.powered_by != HttpProfile::PoweredBy::kNone) ++scripting;
  }
  // Paper: 65.27% HTTP overlap, 15.01% scripting headers.
  EXPECT_NEAR(http / 4000.0, 0.6527, 0.05);
  EXPECT_NEAR(scripting / 4000.0, 0.1501, 0.04);
}

// ---------------------------------------------------------------------------
// Filesystem generation
// ---------------------------------------------------------------------------

FsPlan base_plan() {
  FsPlan plan;
  plan.seed = 99;
  plan.device_class = DeviceClass::kNas;
  plan.fs_template = FsTemplate::kNasPersonal;
  plan.exposes_data = true;
  return plan;
}

TEST(Fsgen, Deterministic) {
  const auto a = build_filesystem(base_plan());
  const auto b = build_filesystem(base_plan());
  EXPECT_EQ(a->node_count(), b->node_count());
}

TEST(Fsgen, EmptyPlanStaysSmall) {
  FsPlan plan;
  plan.seed = 1;
  plan.fs_template = FsTemplate::kEmptyShare;
  const auto fs = build_filesystem(plan);
  EXPECT_LE(fs->node_count(), 2u);
}

TEST(Fsgen, PhotosGeneratedWhenPlanned) {
  FsPlan plan = base_plan();
  plan.photos = true;
  const auto fs = build_filesystem(plan);
  int photos = 0;
  fs->walk([&](const std::string& path, const vfs::Node& node) {
    if (!node.is_dir() && path.find("/photos/") != std::string::npos &&
        (path.find(".jpg") != std::string::npos ||
         path.find(".JPG") != std::string::npos)) {
      ++photos;
    }
  });
  EXPECT_GE(photos, 100);
}

TEST(Fsgen, SensitiveFilesMatchMask) {
  FsPlan plan = base_plan();
  plan.sensitive_mask = bit(SensitiveKind::kShadow) |
                        bit(SensitiveKind::kSshHostKey);
  const auto fs = build_filesystem(plan);
  EXPECT_NE(fs->lookup("/backup/etc/shadow"), nullptr);
  bool ssh_key = false;
  fs->walk([&](const std::string& path, const vfs::Node&) {
    if (path.find("ssh_host_rsa_key") != std::string::npos) ssh_key = true;
  });
  EXPECT_TRUE(ssh_key);
  // Unplanned kinds absent.
  bool pst = false;
  fs->walk([&](const std::string& path, const vfs::Node&) {
    if (path.find(".pst") != std::string::npos) pst = true;
  });
  EXPECT_FALSE(pst);
}

TEST(Fsgen, WritableEvidencePlantsProbeFiles) {
  FsPlan plan = base_plan();
  plan.writable = true;
  plan.writable_evidence = true;
  plan.campaign_mask = bit(Campaign::kProbeW0t) | bit(Campaign::kFtpchk3) |
                       bit(Campaign::kDdosHistory);
  const auto fs = build_filesystem(plan);
  EXPECT_NE(fs->lookup("/incoming/w0000000t.txt"), nullptr);
  EXPECT_NE(fs->lookup("/incoming/ftpchk3.txt"), nullptr);
  EXPECT_NE(fs->lookup("/history.php"), nullptr);
  const vfs::Node* incoming = fs->lookup("/incoming");
  ASSERT_NE(incoming, nullptr);
  EXPECT_TRUE(incoming->mode.world_writable());
}

TEST(Fsgen, RamnitStyleCampaignFilesHaveContent) {
  FsPlan plan = base_plan();
  plan.writable = true;
  plan.writable_evidence = true;
  plan.campaign_mask = bit(Campaign::kRat);
  const auto fs = build_filesystem(plan);
  const vfs::Node* rat = fs->lookup("/x.php");
  ASSERT_NE(rat, nullptr);
  EXPECT_EQ(rat->content, "<?php eval($_POST[5]);?>");
}

TEST(Fsgen, WarezDirsUseDateStampNames) {
  FsPlan plan = base_plan();
  plan.writable = true;
  plan.writable_evidence = true;
  plan.campaign_mask = bit(Campaign::kWarez);
  const auto fs = build_filesystem(plan);
  int warez_dirs = 0;
  fs->walk([&](const std::string& path, const vfs::Node& node) {
    if (!node.is_dir()) return;
    const auto name = path.substr(path.rfind('/') + 1);
    if (name.size() == 13 && name.back() == 'p') ++warez_dirs;
  });
  EXPECT_GE(warez_dirs, 1);
}

TEST(Fsgen, RobotsFullExclusion) {
  FsPlan plan = base_plan();
  plan.has_robots = true;
  plan.robots_full_exclusion = true;
  const auto fs = build_filesystem(plan);
  const vfs::Node* robots = fs->lookup("/robots.txt");
  ASSERT_NE(robots, nullptr);
  EXPECT_NE(robots->content.find("Disallow: /"), std::string::npos);
}

TEST(Fsgen, OsRootLinux) {
  FsPlan plan = base_plan();
  plan.os_root = true;
  plan.os_root_kind = 0;
  const auto fs = build_filesystem(plan);
  EXPECT_NE(fs->lookup("/bin"), nullptr);
  EXPECT_NE(fs->lookup("/etc"), nullptr);
  EXPECT_NE(fs->lookup("/boot"), nullptr);
  EXPECT_NE(fs->lookup("/var"), nullptr);
}

TEST(Fsgen, OsRootWindows) {
  FsPlan plan = base_plan();
  plan.os_root = true;
  plan.os_root_kind = 1;
  const auto fs = build_filesystem(plan);
  EXPECT_NE(fs->lookup("/Windows"), nullptr);
  EXPECT_NE(fs->lookup("/Program Files"), nullptr);
  EXPECT_NE(fs->lookup("/Users"), nullptr);
}

TEST(Fsgen, ScriptingSourceWithHtaccess) {
  FsPlan plan = base_plan();
  plan.scripting = true;
  plan.htaccess = true;
  const auto fs = build_filesystem(plan);
  int php = 0, htaccess = 0;
  fs->walk([&](const std::string& path, const vfs::Node& node) {
    if (node.is_dir()) return;
    if (path.find(".php") != std::string::npos) ++php;
    if (path.find(".htaccess") != std::string::npos) ++htaccess;
  });
  EXPECT_GE(php, 30);
  EXPECT_GE(htaccess, 1);
}

TEST(Fsgen, HugeTreeIsActuallyHuge) {
  FsPlan plan;
  plan.seed = 5;
  plan.device_class = DeviceClass::kGenericServer;
  plan.fs_template = FsTemplate::kGenericMirror;
  plan.exposes_data = true;
  plan.huge_tree = true;
  const auto fs = build_filesystem(plan);
  std::size_t dirs = 0;
  fs->walk([&](const std::string&, const vfs::Node& node) {
    if (node.is_dir()) ++dirs;
  });
  EXPECT_GT(dirs, 500u);  // needs > 500 LIST requests to traverse
}

}  // namespace
}  // namespace ftpc::popgen
