#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/cve.h"
#include "analysis/fingerprints.h"
#include "analysis/summary.h"
#include "analysis/summary_io.h"
#include "analysis/tables.h"
#include "popgen/catalog.h"
#include "popgen/population.h"

namespace ftpc::analysis {
namespace {

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprints, RecognizesMajorSoftware) {
  const Fingerprint fp = fingerprint_banner(
      "ProFTPD 1.3.5 Server (ProFTPD Default Installation) [1.2.3.4]");
  EXPECT_EQ(fp.device, "ProFTPD");
  EXPECT_EQ(fp.device_class, FpClass::kGenericServer);
  EXPECT_EQ(fp.implementation, "ProFTPD");
  EXPECT_EQ(fp.version, "1.3.5");
}

TEST(Fingerprints, VsftpdVersionInParens) {
  const Fingerprint fp = fingerprint_banner("(vsFTPd 3.0.2)");
  EXPECT_EQ(fp.implementation, "vsFTPd");
  EXPECT_EQ(fp.version, "3.0.2");
}

TEST(Fingerprints, QnapBeatsProftpdSubstring) {
  // QNAP banners mention ProFTPD; the device pattern must win.
  const Fingerprint fp = fingerprint_banner(
      "NASFTPD Turbo station 1.3.2e Server (ProFTPD) [192.168.1.5]");
  EXPECT_EQ(fp.device, "QNAP Turbo NAS");
  EXPECT_EQ(fp.device_class, FpClass::kNas);
}

TEST(Fingerprints, PleskBeatsGenericProftpd) {
  const Fingerprint fp =
      fingerprint_banner("ProFTPD 1.3.4a Server (ProFTPD - Plesk) [1.2.3.4]");
  EXPECT_EQ(fp.device_class, FpClass::kHostedServer);
  EXPECT_EQ(fp.version, "1.3.4a");
}

TEST(Fingerprints, UnknownBannerIsUnknown) {
  const Fingerprint fp = fingerprint_banner("FTP server ready.");
  EXPECT_EQ(fp.device_class, FpClass::kUnknown);
  EXPECT_TRUE(fp.implementation.empty());
}

TEST(Fingerprints, RamnitBanner) {
  EXPECT_TRUE(is_ramnit_banner("220 RMNetwork FTP"));
  EXPECT_FALSE(is_ramnit_banner("ProFTPD ready"));
}

TEST(Fingerprints, VersionExtraction) {
  EXPECT_EQ(extract_version_after("Serv-U FTP Server v15.1.2 ready",
                                  "Serv-U FTP Server "),
            "15.1.2");
  EXPECT_EQ(extract_version_after("FTP server (Version wu-2.6.2(1)) ready.",
                                  "Version wu-"),
            "2.6.2");
  EXPECT_FALSE(extract_version_after("no version here", "Version "));
  EXPECT_FALSE(extract_version_after("Server ready", "Server"));
}

// The cross-check the DESIGN calls for: every catalog banner must be
// classified into its own class by the independently-written fingerprint
// table (the generator and the analyzer agree on reality).
class CatalogFingerprintTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogFingerprintTest, CatalogBannerRoundTrips) {
  const auto& tmpl = popgen::device_catalog()[GetParam()];
  // Render the banner as the wire shows it (strip "220 " prefixes, expand
  // placeholders).
  std::string banner = tmpl.banner;
  auto replace = [&banner](std::string_view what, std::string_view with) {
    const auto pos = banner.find(what);
    if (pos != std::string::npos) {
      banner.replace(pos, what.size(), with);
    }
  };
  replace("{version}",
          tmpl.versions.empty() ? "1.0" : tmpl.versions.front().version);
  replace("{ip}", "1.2.3.4");

  const Fingerprint fp = fingerprint_banner(banner);
  EXPECT_EQ(static_cast<int>(fp.device_class),
            static_cast<int>(tmpl.device_class))
      << tmpl.key << " banner: " << banner << " -> " << fp.device;
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, CatalogFingerprintTest,
    ::testing::Range<std::size_t>(0, popgen::device_catalog().size()));

// ---------------------------------------------------------------------------
// CVE matching
// ---------------------------------------------------------------------------

struct VersionCase {
  const char* a;
  const char* b;
  int expected;  // sign
};

class VersionCompareTest : public ::testing::TestWithParam<VersionCase> {};

TEST_P(VersionCompareTest, Compares) {
  const auto& c = GetParam();
  const int result = compare_versions(c.a, c.b);
  if (c.expected < 0) EXPECT_LT(result, 0) << c.a << " vs " << c.b;
  if (c.expected == 0) EXPECT_EQ(result, 0) << c.a << " vs " << c.b;
  if (c.expected > 0) EXPECT_GT(result, 0) << c.a << " vs " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VersionCompareTest,
    ::testing::Values(VersionCase{"1.3.4", "1.3.5", -1},
                      VersionCase{"1.3.5", "1.3.5", 0},
                      VersionCase{"1.3.5a", "1.3.5", 1},
                      VersionCase{"1.3.4a", "1.3.4d", -1},
                      VersionCase{"1.3.3g", "1.3.4a", -1},
                      VersionCase{"2.3.2", "3.0.2", -1},
                      VersionCase{"11.1.0.3", "11.1.0.5", -1},
                      VersionCase{"15.1.2", "11.1.0.5", 1},
                      VersionCase{"1.0.21", "1.0.29", -1},
                      VersionCase{"3.0.3", "3.0.2", 1}));

TEST(CveTest, Proftpd135VulnerableToModCopyOnly) {
  int matches = 0;
  for (const CveEntry& entry : cve_database()) {
    if (cve_matches(entry, "ProFTPD", "1.3.5")) {
      ++matches;
      EXPECT_EQ(entry.id, "CVE-2015-3306");
    }
  }
  EXPECT_EQ(matches, 1);
}

TEST(CveTest, Proftpd133gMatchesThreeCves) {
  std::set<std::string> ids;
  for (const CveEntry& entry : cve_database()) {
    if (cve_matches(entry, "ProFTPD", "1.3.3g")) ids.insert(entry.id);
  }
  EXPECT_EQ(ids, (std::set<std::string>{"CVE-2012-6095", "CVE-2011-4130",
                                        "CVE-2011-1137"}));
}

TEST(CveTest, SafeVersionsMatchNothing) {
  for (const CveEntry& entry : cve_database()) {
    EXPECT_FALSE(cve_matches(entry, "ProFTPD", "1.3.5a")) << entry.id;
    EXPECT_FALSE(cve_matches(entry, "vsFTPd", "3.0.3")) << entry.id;
    EXPECT_FALSE(cve_matches(entry, "Pure-FTPd", "1.0.36")) << entry.id;
  }
}

TEST(CveTest, EmptyVersionNeverMatches) {
  for (const CveEntry& entry : cve_database()) {
    EXPECT_FALSE(cve_matches(entry, "ProFTPD", ""));
  }
}

TEST(CveTest, ImplementationMustMatch) {
  const CveEntry& mod_copy = cve_database().front();
  EXPECT_FALSE(cve_matches(mod_copy, "vsFTPd", "1.3.5"));
}

// ---------------------------------------------------------------------------
// Content classification
// ---------------------------------------------------------------------------

TEST(Classify, SensitiveKinds) {
  using SC = SensitiveClass;
  EXPECT_EQ(classify_sensitive("/docs/TurboTax-export-3.txf"), SC::kTurboTax);
  EXPECT_EQ(classify_sensitive("/home/household-1.qdf"), SC::kQuicken);
  EXPECT_EQ(classify_sensitive("/passwords.kdbx"), SC::kKeePass);
  EXPECT_EQ(classify_sensitive("/1Password.agilekeychain"),
            SC::kOnePassword);
  EXPECT_EQ(classify_sensitive("/etc/ssh/ssh_host_rsa_key"), SC::kSshHostKey);
  EXPECT_FALSE(classify_sensitive("/etc/ssh/ssh_host_rsa_key.pub"));
  EXPECT_EQ(classify_sensitive("/keys/login.ppk"), SC::kPuttyKey);
  EXPECT_EQ(classify_sensitive("/certs/server-priv.pem"), SC::kPrivPem);
  EXPECT_FALSE(classify_sensitive("/certs/server-public.pem"));
  EXPECT_EQ(classify_sensitive("/backup/etc/shadow"), SC::kShadow);
  EXPECT_EQ(classify_sensitive("/mail/archive-2014.pst"), SC::kPst);
  EXPECT_FALSE(classify_sensitive("/pub/readme.txt"));
}

TEST(Classify, CameraPhotos) {
  EXPECT_TRUE(is_camera_photo("/photos/Wedding/IMG_1234.JPG"));
  EXPECT_TRUE(is_camera_photo("/DSC_0042.jpg"));
  EXPECT_TRUE(is_camera_photo("/DSCN9999.jpg"));
  EXPECT_TRUE(is_camera_photo("/P1050234.jpg"));
  EXPECT_FALSE(is_camera_photo("/IMG_1234.png"));     // wrong extension
  EXPECT_FALSE(is_camera_photo("/IMG_abcd.jpg"));     // non-digits
  EXPECT_FALSE(is_camera_photo("/holiday-photo.jpg"));  // free-form name
}

TEST(Classify, Scripts) {
  EXPECT_TRUE(is_script_source("/www/index.php"));
  EXPECT_TRUE(is_script_source("/app.aspx"));
  EXPECT_TRUE(is_script_source("/cgi-bin/form.cgi"));
  EXPECT_FALSE(is_script_source("/index.html"));
  EXPECT_TRUE(is_htaccess("/www/.htaccess"));
  EXPECT_FALSE(is_htaccess("/www/htaccess.txt"));
}

TEST(Classify, OsRootDetection) {
  EXPECT_EQ(detect_os_root({"bin", "var", "boot", "etc", "home"}),
            OsRootKind::kLinux);
  EXPECT_EQ(detect_os_root({"Windows", "Program Files", "Users"}),
            OsRootKind::kWindows);
  EXPECT_EQ(detect_os_root({"WINDOWS", "Program Files",
                            "Documents and Settings"}),
            OsRootKind::kWindows);
  EXPECT_EQ(detect_os_root({"Applications", "Library", "Users", "bin",
                            "var"}),
            OsRootKind::kMacOs);
  EXPECT_FALSE(detect_os_root({"pub", "incoming"}));
  EXPECT_FALSE(detect_os_root({"bin", "photos"}));  // too few markers
}

TEST(Classify, CampaignIndicators) {
  using CI = CampaignIndicator;
  EXPECT_EQ(classify_campaign("/incoming/w0000000t.txt", false),
            CI::kWriteProbe);
  EXPECT_EQ(classify_campaign("/incoming/w0000000t.txt.2", false),
            CI::kWriteProbe);  // rename-suffix trail
  EXPECT_EQ(classify_campaign("/sjutd.txt", false), CI::kWriteProbe);
  EXPECT_EQ(classify_campaign("/hello.world.txt", false), CI::kWriteProbe);
  EXPECT_EQ(classify_campaign("/ftpchk3.php", false), CI::kFtpchk3);
  EXPECT_EQ(classify_campaign("/Holy-Bible.html", false), CI::kHolyBible);
  EXPECT_EQ(classify_campaign("/history.php", false), CI::kDdosHistory);
  EXPECT_EQ(classify_campaign("/phzLtoxn.php", false), CI::kDdosPhz);
  EXPECT_EQ(classify_campaign("/dir03/x.php", false), CI::kRatShell);
  EXPECT_EQ(classify_campaign("/keygen-service.pdf", false),
            CI::kCrackFlier);
  EXPECT_EQ(classify_campaign("/incoming/150618123456p", true),
            CI::kWarezDir);
  EXPECT_FALSE(classify_campaign("/incoming/150618123456p", false));
  EXPECT_FALSE(classify_campaign("/regular.txt", false));
  EXPECT_FALSE(classify_campaign("/photos", true));
}

TEST(Classify, ReferenceSetExcludesHolyBible) {
  EXPECT_TRUE(indicates_world_writable(CampaignIndicator::kWriteProbe));
  EXPECT_TRUE(indicates_world_writable(CampaignIndicator::kWarezDir));
  EXPECT_FALSE(indicates_world_writable(CampaignIndicator::kHolyBible));
}

// ---------------------------------------------------------------------------
// SummaryBuilder
// ---------------------------------------------------------------------------

class SummaryTest : public ::testing::Test {
 protected:
  SummaryTest()
      : as_table_({net::AsInfo{.asn = 1, .name = "TestNet",
                               .type = net::AsType::kHosting,
                               .ips_advertised = 256}},
                  {net::AsTable::Allocation{
                      .first = Ipv4(5, 0, 0, 0).value(),
                      .last = Ipv4(5, 0, 0, 255).value(),
                      .as_index = 0}}) {}

  core::HostReport anon_report(std::uint32_t last_octet) {
    core::HostReport report;
    report.ip = Ipv4(5, 0, 0, static_cast<std::uint8_t>(last_octet));
    report.connected = true;
    report.ftp_compliant = true;
    report.banner = "Buffalo LinkStation FTP server ready.";
    report.login = core::LoginOutcome::kAccepted;
    return report;
  }

  core::FileRecord file(std::string path,
                        ftp::Readability readable =
                            ftp::Readability::kReadable) {
    core::FileRecord record;
    record.path = std::move(path);
    record.readable = readable;
    record.has_permissions = true;
    return record;
  }

  net::AsTable as_table_;
};

TEST_F(SummaryTest, FunnelAndClassCounting) {
  SummaryBuilder builder(as_table_, nullptr);
  builder.on_host(anon_report(1));
  core::HostReport rejected = anon_report(2);
  rejected.login = core::LoginOutcome::kRejected;
  builder.on_host(rejected);
  core::HostReport junk;
  junk.ip = Ipv4(5, 0, 0, 3);
  junk.ftp_compliant = false;
  builder.on_host(junk);

  const CensusSummary s = builder.take(1, 0, 1000, 3);
  EXPECT_EQ(s.ftp_servers, 2u);
  EXPECT_EQ(s.anonymous_servers, 1u);
  EXPECT_EQ(s.addresses_scanned, 1000u);
  EXPECT_EQ(s.port_open, 3u);
  EXPECT_EQ(s.class_counts[static_cast<int>(FpClass::kNas)].total, 2u);
  EXPECT_EQ(s.class_counts[static_cast<int>(FpClass::kNas)].anonymous, 1u);
  EXPECT_EQ(s.device_counts.at("Buffalo NAS storage").total, 2u);
  EXPECT_EQ(s.as_counts[0].ftp, 2u);
  EXPECT_EQ(s.as_counts[0].anonymous, 1u);
}

TEST_F(SummaryTest, SensitiveReadabilitySplit) {
  SummaryBuilder builder(as_table_, nullptr);
  core::HostReport report = anon_report(1);
  report.files.push_back(file("/backup/etc/shadow",
                              ftp::Readability::kNotReadable));
  report.files.push_back(file("/docs/taxes/TurboTax-export-1.txf"));
  report.files.push_back(file("/mail/box.pst", ftp::Readability::kUnknown));
  builder.on_host(report);
  const CensusSummary s = builder.take(1, 0, 0, 0);

  const auto& shadow =
      s.sensitive[static_cast<int>(SensitiveClass::kShadow)];
  EXPECT_EQ(shadow.servers, 1u);
  EXPECT_EQ(shadow.readability.non_readable, 1u);
  const auto& pst = s.sensitive[static_cast<int>(SensitiveClass::kPst)];
  EXPECT_EQ(pst.readability.unknown, 1u);
  const auto& turbotax =
      s.sensitive[static_cast<int>(SensitiveClass::kTurboTax)];
  EXPECT_EQ(turbotax.readability.readable, 1u);
}

TEST_F(SummaryTest, WritableDetectionViaReferenceSet) {
  SummaryBuilder builder(as_table_, nullptr);
  core::HostReport with_probe = anon_report(1);
  with_probe.files.push_back(file("/incoming/w0000000t.txt"));
  builder.on_host(with_probe);

  core::HostReport holy_only = anon_report(2);
  holy_only.files.push_back(file("/Holy-Bible.html"));
  builder.on_host(holy_only);

  core::HostReport both = anon_report(3);
  both.files.push_back(file("/Holy-Bible.html"));
  both.files.push_back(file("/incoming/hello.world.txt"));
  builder.on_host(both);

  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.writable_servers, 2u);  // Holy-Bible alone is not evidence
  const auto& holy =
      s.campaigns[static_cast<int>(CampaignIndicator::kHolyBible)];
  EXPECT_EQ(holy.servers, 2u);
  EXPECT_EQ(s.holy_bible_with_reference, 1u);
  EXPECT_EQ(s.as_counts[0].writable, 2u);
}

TEST_F(SummaryTest, PhotoLibraryThreshold) {
  SummaryBuilder builder(as_table_, nullptr);
  core::HostReport few = anon_report(1);
  for (int i = 0; i < 5; ++i) {
    few.files.push_back(file("/photos/IMG_000" + std::to_string(i) + ".jpg"));
  }
  builder.on_host(few);
  core::HostReport many = anon_report(2);
  for (int i = 0; i < 50; ++i) {
    many.files.push_back(file("/photos/IMG_00" + std::to_string(10 + i) +
                              ".jpg"));
  }
  builder.on_host(many);
  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.photo_servers, 1u);  // 5 strays don't count as a library
  EXPECT_EQ(s.photo_files, 50u);
}

TEST_F(SummaryTest, FtpsCertAccounting) {
  SummaryBuilder builder(as_table_, nullptr);
  for (int i = 1; i <= 3; ++i) {
    core::HostReport report = anon_report(static_cast<std::uint32_t>(i));
    report.ftps_supported = true;
    ftp::Certificate cert;
    cert.subject_cn = i < 3 ? "Buffalo NAS" : "localhost";
    cert.issuer_cn = cert.subject_cn;
    cert.serial = i < 3 ? 7 : static_cast<std::uint64_t>(i);
    cert.key_id = cert.serial;
    report.certificate = cert;
    builder.on_host(report);
  }
  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.ftps_supported, 3u);
  EXPECT_EQ(s.ftps_self_signed, 3u);
  EXPECT_EQ(s.cert_by_cn.at("Buffalo NAS").servers, 2u);
  EXPECT_EQ(s.unique_cert_count, 2u);  // shared cert counted once
}

TEST_F(SummaryTest, CveCountingFromBannerVersions) {
  SummaryBuilder builder(as_table_, nullptr);
  core::HostReport report = anon_report(1);
  report.banner = "ProFTPD 1.3.3g Server (ProFTPD Default Installation)";
  builder.on_host(report);
  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.cve_counts.at("CVE-2011-4130"), 1u);
  EXPECT_EQ(s.cve_counts.at("CVE-2012-6095"), 1u);
  EXPECT_EQ(s.cve_counts.count("CVE-2015-3306"), 0u);
}

TEST_F(SummaryTest, HttpJoin) {
  SummaryBuilder builder(as_table_, [](Ipv4 ip) {
    return HttpSignal{.has_http = ip.octet(3) % 2 == 0,
                      .server_side_scripting = ip.octet(3) % 4 == 0};
  });
  for (std::uint32_t i = 0; i < 8; ++i) builder.on_host(anon_report(i));
  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.ftp_with_http, 4u);
  EXPECT_EQ(s.ftp_with_scripting_http, 2u);
}

TEST_F(SummaryTest, NatCountsOnlyPrivatePasv) {
  SummaryBuilder builder(as_table_, nullptr);
  core::HostReport nat = anon_report(1);
  nat.pasv_ip = Ipv4(192, 168, 0, 9);
  builder.on_host(nat);
  core::HostReport multihomed = anon_report(2);
  multihomed.pasv_ip = Ipv4(8, 8, 8, 8);  // different but public
  builder.on_host(multihomed);
  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.nat_servers, 1u);
}

TEST_F(SummaryTest, OsRootFromTopLevelDirs) {
  SummaryBuilder builder(as_table_, nullptr);
  core::HostReport report = anon_report(1);
  for (const char* d : {"/bin", "/etc", "/boot", "/var"}) {
    core::FileRecord record;
    record.path = d;
    record.is_dir = true;
    report.files.push_back(record);
  }
  builder.on_host(report);
  const CensusSummary s = builder.take(1, 0, 0, 0);
  EXPECT_EQ(s.os_root_servers[0], 1u);  // Linux
}

// ---------------------------------------------------------------------------
// Serialization round trip
// ---------------------------------------------------------------------------

TEST(SummaryIo, RoundTrip) {
  CensusSummary s;
  s.seed = 42;
  s.scale_shift = 6;
  s.ftp_servers = 123456;
  s.anonymous_servers = 9999;
  s.device_counts["QNAP Turbo NAS"] = {900, 25};
  s.as_counts.push_back({10, 2, 1});
  s.soho_extensions["jpg"] = {100000, 250};
  s.sensitive[0] = {5, 80, {70, 4, 6}};
  s.campaigns[3] = {17, 40};
  s.cert_by_cn["*.home.pl"] = {1955, true, false};
  s.cve_counts["CVE-2015-3306"] = 4700;
  s.unique_cert_count = 321;
  s.exposure_matrix[1][2] = 55;

  const std::string blob = serialize_summary(s);
  const auto restored = deserialize_summary(blob);
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->seed, 42u);
  EXPECT_EQ(restored->scale_shift, 6u);
  EXPECT_EQ(restored->ftp_servers, 123456u);
  EXPECT_EQ(restored->device_counts.at("QNAP Turbo NAS").anonymous, 25u);
  EXPECT_EQ(restored->as_counts[0].writable, 1u);
  EXPECT_EQ(restored->soho_extensions.at("jpg").files, 100000u);
  EXPECT_EQ(restored->sensitive[0].readability.readable, 70u);
  EXPECT_EQ(restored->campaigns[3].files, 40u);
  EXPECT_TRUE(restored->cert_by_cn.at("*.home.pl").browser_trusted);
  EXPECT_EQ(restored->cve_counts.at("CVE-2015-3306"), 4700u);
  EXPECT_EQ(restored->unique_cert_count, 321u);
  EXPECT_EQ(restored->exposure_matrix[1][2], 55u);
}

TEST(SummaryIo, RejectsCorruption) {
  CensusSummary s;
  s.seed = 1;
  std::string blob = serialize_summary(s);
  EXPECT_TRUE(deserialize_summary(blob));
  EXPECT_FALSE(deserialize_summary(blob.substr(0, blob.size() - 3)));
  EXPECT_FALSE(deserialize_summary(blob + "x"));
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(deserialize_summary(bad_magic));
  EXPECT_FALSE(deserialize_summary(""));
}

TEST(SummaryIo, FileHelpers) {
  CensusSummary s;
  s.seed = 77;
  s.ftp_servers = 5;
  const std::string path = ::testing::TempDir() + "/summary_io_test.bin";
  ASSERT_TRUE(save_summary(s, path));
  const auto loaded = load_summary(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->seed, 77u);
  EXPECT_FALSE(load_summary(path + ".missing"));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Table rendering smoke checks
// ---------------------------------------------------------------------------

TEST(Tables, AllRenderersProduceOutput) {
  CensusSummary s;
  s.scale_shift = 6;
  s.addresses_scanned = 1000;
  s.port_open = 100;
  s.ftp_servers = 60;
  s.anonymous_servers = 5;
  s.as_counts.resize(3);
  s.as_counts[0] = {40, 3, 1};
  s.as_counts[1] = {15, 2, 0};
  s.as_counts[2] = {5, 0, 0};
  net::AsTable table(
      {net::AsInfo{.asn = 1, .name = "A", .type = net::AsType::kHosting},
       net::AsInfo{.asn = 2, .name = "B", .type = net::AsType::kIsp},
       net::AsInfo{.asn = 3, .name = "C", .type = net::AsType::kAcademic}},
      {});

  EXPECT_NE(render_table1_funnel(s).render().find("FTP servers"),
            std::string::npos);
  EXPECT_NE(render_table2_classification(s).render().find("Hosted"),
            std::string::npos);
  EXPECT_NE(render_table3_as_concentration(s, table).render().find("Hosting"),
            std::string::npos);
  EXPECT_NE(render_table4_embedded_classes(s).render().find("NAS"),
            std::string::npos);
  EXPECT_NE(render_table5_provider_devices(s).render().find("FRITZ!Box"),
            std::string::npos);
  EXPECT_NE(render_table6_top_ases(s, table).render().find("AS"),
            std::string::npos);
  EXPECT_NE(render_table7_soho_devices(s).render().find("QNAP"),
            std::string::npos);
  EXPECT_NE(render_table8_extensions(s).render().find(".jpg"),
            std::string::npos);
  EXPECT_NE(render_table9_sensitive(s).render().find("shadow"),
            std::string::npos);
  EXPECT_NE(render_table10_exposure_matrix(s).render().find("Photo"),
            std::string::npos);
  EXPECT_NE(render_table11_cves(s).render().find("CVE-2015-3306"),
            std::string::npos);
  EXPECT_NE(render_table12_ftps_certs(s).render().find("Certificate"),
            std::string::npos);
  EXPECT_NE(render_table13_shared_certs(s).render().find("QNAP"),
            std::string::npos);
  EXPECT_NE(render_fig1_as_cdf(s).render().find("50%"), std::string::npos);
  EXPECT_NE(render_sec5_exposure(s).render().find("robots"),
            std::string::npos);
  EXPECT_NE(render_sec6_malicious(s).render().find("ftpchk3"),
            std::string::npos);
  EXPECT_NE(render_sec9_ftps(s).render().find("FTPS"), std::string::npos);
}

TEST(Tables, AsCdfCountsConcentration) {
  CensusSummary s;
  s.as_counts.resize(100);
  // One dominant AS with half the servers, the rest spread thin.
  s.as_counts[0].ftp = 1000;
  for (int i = 1; i < 100; ++i) s.as_counts[i].ftp = 10;
  const std::string out = render_fig1_as_cdf(s).render();
  // 50% is reached by exactly 1 AS.
  EXPECT_NE(out.find(" 50%"), std::string::npos);
}

TEST(Tables, ScaledCellScalesByShift) {
  CensusSummary s;
  s.scale_shift = 3;  // x8
  EXPECT_EQ(scaled_cell(s, 10), "10 (~80)");
}

}  // namespace
}  // namespace ftpc::analysis
