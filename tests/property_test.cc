// Property-style sweeps over cross-module invariants.
#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/cve.h"
#include "common/rng.h"
#include "ftp/listing_parser.h"
#include "ftp/path.h"
#include "ftp/reply.h"
#include "popgen/catalog.h"
#include "popgen/fsgen.h"
#include "popgen/population.h"
#include "vfs/listing.h"

namespace ftpc {
namespace {

// ---------------------------------------------------------------------------
// Render -> parse round trips: whatever the server engine can emit, the
// enumerator must parse back faithfully. Swept across both dialects and a
// grid of permissions/sizes/names.
// ---------------------------------------------------------------------------

struct RoundTripCase {
  vfs::ListingFormat format;
  std::uint16_t mode;
  std::uint64_t size;
  const char* name;
  bool is_dir;
};

class ListingRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ListingRoundTrip, RenderedLineParsesBack) {
  const RoundTripCase& c = GetParam();
  vfs::Node node;
  node.name = c.name;
  node.type = c.is_dir ? vfs::NodeType::kDirectory : vfs::NodeType::kFile;
  node.mode = vfs::Mode{c.mode};
  node.size = c.size;
  node.mtime = 1426000000;  // 2015-03-10

  const std::string line =
      vfs::render_listing_line(node, c.format, 2015);
  const auto entry = ftp::parse_listing_line(line);
  ASSERT_TRUE(entry) << line;
  EXPECT_EQ(entry->name, c.name);
  EXPECT_EQ(entry->is_dir, c.is_dir);
  if (!c.is_dir) EXPECT_EQ(entry->size, c.size);
  if (c.format == vfs::ListingFormat::kUnix) {
    EXPECT_TRUE(entry->has_permissions);
    EXPECT_EQ(entry->readable == ftp::Readability::kReadable,
              (c.mode & 04) != 0);
    EXPECT_EQ(entry->world_writable, (c.mode & 02) != 0);
  } else {
    EXPECT_EQ(entry->readable, ftp::Readability::kUnknown);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ListingRoundTrip,
    ::testing::Values(
        RoundTripCase{vfs::ListingFormat::kUnix, 0644, 1024, "a.txt", false},
        RoundTripCase{vfs::ListingFormat::kUnix, 0600, 0, "shadow", false},
        RoundTripCase{vfs::ListingFormat::kUnix, 0666, 12345678901ULL,
                      "big file with spaces.iso", false},
        RoundTripCase{vfs::ListingFormat::kUnix, 0777, 4096, "incoming",
                      true},
        RoundTripCase{vfs::ListingFormat::kUnix, 0000, 1, "locked", false},
        RoundTripCase{vfs::ListingFormat::kWindows, 0644, 52224,
                      "report.doc", false},
        RoundTripCase{vfs::ListingFormat::kWindows, 0644, 0, "empty.txt",
                      false},
        RoundTripCase{vfs::ListingFormat::kWindows, 0755, 0,
                      "Program Files", true},
        RoundTripCase{vfs::ListingFormat::kWindows, 0644, 999999999,
                      "name.with.dots.zip", false}));

TEST(ListingRoundTrip, RandomizedSweep) {
  Xoshiro256ss rng(2024);
  for (int i = 0; i < 3000; ++i) {
    vfs::Node node;
    node.name = "f" + std::to_string(rng.next_below(1000000)) + ".bin";
    node.type = rng.chance(0.3) ? vfs::NodeType::kDirectory
                                : vfs::NodeType::kFile;
    node.mode = vfs::Mode{static_cast<std::uint16_t>(rng.next_below(01000))};
    node.size = rng.next();
    node.size >>= rng.next_below(40);  // heavy-tailed sizes
    node.mtime = static_cast<std::int64_t>(rng.next_below(1600000000));
    const auto format = rng.chance(0.5) ? vfs::ListingFormat::kUnix
                                        : vfs::ListingFormat::kWindows;
    const std::string line = vfs::render_listing_line(node, format, 2015);
    const auto entry = ftp::parse_listing_line(line);
    ASSERT_TRUE(entry) << line;
    EXPECT_EQ(entry->name, node.name) << line;
    EXPECT_EQ(entry->is_dir, node.is_dir()) << line;
  }
}

// ---------------------------------------------------------------------------
// Reply wire round trip for arbitrary code/line combinations.
// ---------------------------------------------------------------------------

TEST(ReplyRoundTrip, RandomizedMultilineSweep) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 2000; ++i) {
    ftp::Reply original;
    original.code = static_cast<int>(rng.next_in(100, 599));
    const std::uint64_t lines = rng.next_in(1, 6);
    for (std::uint64_t l = 0; l < lines; ++l) {
      std::string text;
      const std::uint64_t len = rng.next_below(60);
      for (std::uint64_t k = 0; k < len; ++k) {
        text.push_back(static_cast<char>('!' + rng.next_below(90)));
      }
      original.lines.push_back(std::move(text));
    }
    ftp::ReplyParser parser;
    parser.push(original.wire());
    const auto parsed = parser.pop_reply();
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->code, original.code);
    ASSERT_EQ(parsed->lines.size(), original.lines.size());
    for (std::size_t l = 0; l < original.lines.size(); ++l) {
      EXPECT_EQ(parsed->lines[l], original.lines[l]);
    }
    EXPECT_FALSE(parser.poisoned());
    EXPECT_EQ(parser.pending_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Path resolution invariants.
// ---------------------------------------------------------------------------

TEST(PathProperties, ResolvedPathsAreAlwaysNormalized) {
  Xoshiro256ss rng(11);
  static constexpr const char* kSegments[] = {"a",  "..",   ".",  "pub",
                                              "x y", "dir1", "..", "deep"};
  for (int i = 0; i < 5000; ++i) {
    std::string cwd = "/";
    std::string arg;
    const std::uint64_t cwd_parts = rng.next_below(4);
    for (std::uint64_t p = 0; p < cwd_parts; ++p) {
      cwd += std::string(kSegments[rng.next_below(4) * 2 % 8]) + "/";
    }
    if (cwd.size() > 1 && cwd.back() == '/') cwd.pop_back();
    const std::uint64_t arg_parts = rng.next_in(1, 5);
    if (rng.chance(0.3)) arg = "/";
    for (std::uint64_t p = 0; p < arg_parts; ++p) {
      arg += std::string(kSegments[rng.next_below(std::size(kSegments))]);
      if (p + 1 < arg_parts) arg += rng.chance(0.2) ? "//" : "/";
    }
    const std::string resolved = ftp::resolve_path(cwd, arg);
    EXPECT_TRUE(ftp::is_normalized(resolved)) << cwd << " + " << arg << " -> "
                                              << resolved;
  }
}

// ---------------------------------------------------------------------------
// CVE monotonicity: if version A <= B and B matches an at-most rule, then
// A matches too.
// ---------------------------------------------------------------------------

TEST(CveProperties, AtMostRulesAreDownwardClosed) {
  static constexpr const char* kVersions[] = {
      "1.0.21", "1.0.29", "1.3.3g", "1.3.4a", "1.3.4d", "1.3.5", "1.3.5a",
      "2.0.5",  "2.3.2",  "2.3.5",  "3.0.2",  "3.0.3",  "11.1.0.3",
      "11.1.0.5", "15.1.2"};
  for (const analysis::CveEntry& entry : analysis::cve_database()) {
    if (entry.kind != analysis::CveEntry::Match::kAtMost) continue;
    for (const char* a : kVersions) {
      for (const char* b : kVersions) {
        if (analysis::compare_versions(a, b) > 0) continue;
        if (analysis::cve_matches(entry, entry.implementation, b)) {
          EXPECT_TRUE(analysis::cve_matches(entry, entry.implementation, a))
              << entry.id << " matches " << b << " but not " << a;
        }
      }
    }
  }
}

TEST(CveProperties, CompareIsAntisymmetricAndTotalOnCatalogVersions) {
  std::vector<std::string> versions;
  for (const auto& tmpl : popgen::device_catalog()) {
    for (const auto& v : tmpl.versions) versions.push_back(v.version);
  }
  for (const auto& a : versions) {
    EXPECT_EQ(analysis::compare_versions(a, a), 0) << a;
    for (const auto& b : versions) {
      EXPECT_EQ(analysis::compare_versions(a, b),
                -analysis::compare_versions(b, a))
          << a << " vs " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Generated filesystems are classifiable: everything fsgen plants as a
// campaign artifact must trip the analysis detectors, and planted sensitive
// kinds must be recovered from paths alone.
// ---------------------------------------------------------------------------

class FsgenClassifyAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FsgenClassifyAgreement, CampaignsRoundTrip) {
  const int campaign_index = GetParam();
  popgen::FsPlan plan;
  plan.seed = 1000 + campaign_index;
  plan.device_class = popgen::DeviceClass::kGenericServer;
  plan.fs_template = popgen::FsTemplate::kGenericMirror;
  plan.exposes_data = true;
  plan.writable = true;
  plan.writable_evidence = true;
  plan.campaign_mask = 1u << campaign_index;
  const auto fs = popgen::build_filesystem(plan);

  bool detected = false;
  fs->walk([&](const std::string& path, const vfs::Node& node) {
    const auto c = analysis::classify_campaign(path, node.is_dir());
    if (c && static_cast<int>(*c) <= campaign_index) detected = true;
  });
  EXPECT_TRUE(detected) << "campaign bit " << campaign_index
                        << " left no detectable artifact";
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, FsgenClassifyAgreement,
    ::testing::Range(0, static_cast<int>(popgen::Campaign::kCount)));

class SensitiveRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SensitiveRoundTrip, PlantedKindIsRecovered) {
  const int kind = GetParam();
  popgen::FsPlan plan;
  plan.seed = 2000 + kind;
  plan.device_class = popgen::DeviceClass::kNas;
  plan.fs_template = popgen::FsTemplate::kNasPersonal;
  plan.exposes_data = true;
  plan.sensitive_mask = 1u << kind;
  const auto fs = popgen::build_filesystem(plan);

  bool found = false;
  fs->walk([&](const std::string& path, const vfs::Node& node) {
    if (node.is_dir()) return;
    const auto cls = analysis::classify_sensitive(path);
    if (cls && static_cast<int>(*cls) == kind) found = true;
  });
  EXPECT_TRUE(found) << "sensitive kind " << kind << " not recovered";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SensitiveRoundTrip,
    ::testing::Range(0, static_cast<int>(popgen::SensitiveKind::kCount)));

// ---------------------------------------------------------------------------
// Population invariants swept across seeds.
// ---------------------------------------------------------------------------

class PopulationSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PopulationSeedSweep, StructuralInvariantsHold) {
  const popgen::Calibration cal = popgen::build_calibration(GetParam());
  EXPECT_EQ(cal.total_ftp_target(), 13'789'641u);
  EXPECT_EQ(cal.ases.size(), 34'700u);
  EXPECT_LE(cal.total_advertised(), public_ipv4_count());
  for (const auto& as_spec : cal.ases) {
    EXPECT_GE(as_spec.advertised, as_spec.ftp_target)
        << as_spec.name << " advertises fewer IPs than it hosts";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PopulationSeedSweep,
                         ::testing::Values(1, 7, 42, 99, 123456789));

}  // namespace
}  // namespace ftpc
