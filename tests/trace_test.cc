// Tests for the deterministic tracing subsystem: ephemeral-port
// normalization, span/sequence mechanics, pure per-IP sampling, byte-exact
// wire transcripts against a scripted server, and the cross-shard
// byte-identity contract for both trace exporters.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ipv4.h"
#include "core/census.h"
#include "core/sharded_census.h"
#include "ftp/client.h"
#include "net/internet.h"
#include "obs/build_info.h"
#include "obs/trace.h"
#include "popgen/population.h"
#include "sim/network.h"

namespace ftpc {
namespace {

// ---------------------------------------------------------------------------
// normalize_ephemeral_ports
// ---------------------------------------------------------------------------

TEST(NormalizePortsTest, PasvReplyLosesPortKeepsAddress) {
  EXPECT_EQ(obs::normalize_ephemeral_ports(
                "227 Entering Passive Mode (198,51,100,7,217,44)."),
            "227 Entering Passive Mode (198,51,100,7,?,?).");
}

TEST(NormalizePortsTest, PortCommandNormalized) {
  EXPECT_EQ(obs::normalize_ephemeral_ports("PORT 141,212,120,9,200,21"),
            "PORT 141,212,120,9,?,?");
}

TEST(NormalizePortsTest, NonSixGroupRunsPassThrough) {
  // Fewer than six groups: untouched.
  EXPECT_EQ(obs::normalize_ephemeral_ports("250 sizes 1,2,3,4,5 ok"),
            "250 sizes 1,2,3,4,5 ok");
  // More than six groups: untouched (not a host-port tuple).
  EXPECT_EQ(obs::normalize_ephemeral_ports("x 1,2,3,4,5,6,7 y"),
            "x 1,2,3,4,5,6,7 y");
  // Plain text and lone numbers: untouched.
  EXPECT_EQ(obs::normalize_ephemeral_ports("220 FTP server ready"),
            "220 FTP server ready");
  EXPECT_EQ(obs::normalize_ephemeral_ports(""), "");
}

TEST(NormalizePortsTest, TupleAtEndOfLineAndMultipleRuns) {
  EXPECT_EQ(obs::normalize_ephemeral_ports("PORT 10,0,0,1,4,5"),
            "PORT 10,0,0,1,?,?");
  EXPECT_EQ(obs::normalize_ephemeral_ports("a 1,2,3,4,5,6 b 9,8,7,6,5,4"),
            "a 1,2,3,4,?,? b 9,8,7,6,?,?");
}

// ---------------------------------------------------------------------------
// TraceSession / TraceBuffer
// ---------------------------------------------------------------------------

TEST(TraceSessionTest, SpansAreSessionRelativeAndSequenced) {
  obs::TraceBuffer buffer;
  // Session starts at absolute virtual time 1000.
  obs::TraceSession session(&buffer, Ipv4(1, 2, 3, 4).value(), 1000, true);
  session.stage_begin("connect", 1000);
  session.stage_end("ok", 1500);
  session.stage_begin("banner", 1500);
  session.wire_recv("220 hello", 1700);
  session.stage_end("ok", 1700);

  ASSERT_EQ(buffer.size(), 3u);
  const auto& events = buffer.events();
  EXPECT_EQ(events[0].name, "connect");
  EXPECT_EQ(events[0].start, 0u);  // relative to the 1000 session start
  EXPECT_EQ(events[0].dur, 500u);
  EXPECT_EQ(events[0].seq, 1u);  // seq 0 is reserved for the probe span
  EXPECT_EQ(events[1].kind, obs::TraceEventKind::kRecv);
  EXPECT_EQ(events[1].start, 700u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].name, "banner");
  EXPECT_EQ(events[2].seq, 3u);  // span sequenced at close, after the line
}

TEST(TraceSessionTest, BeginOverOpenStageClosesItOk) {
  obs::TraceBuffer buffer;
  obs::TraceSession session(&buffer, 1, 0, true);
  session.stage_begin("login", 10);
  session.stage_begin("traverse", 20);  // implicitly ends login as "ok"
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.events()[0].name, "login");
  EXPECT_EQ(buffer.events()[0].status, "ok");
  EXPECT_TRUE(session.stage_open());
  EXPECT_EQ(session.open_stage(), "traverse");
}

TEST(TraceSessionTest, CaptureWireOffDropsLinesKeepsSpans) {
  obs::TraceBuffer buffer;
  obs::TraceSession session(&buffer, 1, 0, /*capture_wire=*/false);
  session.stage_begin("banner", 0);
  session.wire_recv("220 hello", 5);
  session.wire_send("USER anonymous", 6);
  session.stage_end("ok", 10);
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.events()[0].kind, obs::TraceEventKind::kSpan);
}

TEST(TraceBufferTest, ExportersEmitCanonicalOrderAndSchema) {
  obs::TraceBuffer a;
  obs::TraceBuffer b;
  obs::TraceSession host2(&a, 2, 0, true);
  obs::TraceSession host1(&b, 1, 0, true);
  host2.stage_begin("connect", 0);
  host2.stage_end("ok", 7);
  host1.stage_begin("connect", 0);
  host1.stage_end("timeout", 9);
  // Merge in "wrong" order; canonical sort must erase it.
  obs::TraceBuffer merged_ab;
  merged_ab.merge_from(a);
  merged_ab.merge_from(b);
  obs::TraceBuffer merged_ba;
  merged_ba.merge_from(b);
  merged_ba.merge_from(a);
  EXPECT_EQ(merged_ab.to_jsonl(), merged_ba.to_jsonl());
  EXPECT_EQ(merged_ab.to_chrome_json(), merged_ba.to_chrome_json());

  const std::string jsonl = merged_ab.to_jsonl();
  EXPECT_EQ(jsonl.find(obs::trace_header_line() + "\n"), 0u);
  EXPECT_EQ(obs::strip_build_stamp(jsonl).find("{\"schema\":\"ftpc.trace.v1\"}\n"),
            0u);
  // host 0.0.0.1 sorts before 0.0.0.2 at equal start times.
  EXPECT_LT(jsonl.find("0.0.0.1"), jsonl.find("0.0.0.2"));
  EXPECT_NE(jsonl.find("\"status\":\"timeout\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

TEST(TraceSamplingTest, RateEdgesAndForcedHosts) {
  obs::TraceOptions all;
  all.enabled = true;
  all.sample_rate = 1.0;
  obs::TraceCollector everything(all, 7);
  EXPECT_TRUE(everything.should_trace(123));

  obs::TraceOptions none;
  none.enabled = true;
  none.sample_rate = 0.0;
  none.force_hosts = {42};
  obs::TraceCollector forced_only(none, 7);
  EXPECT_FALSE(forced_only.should_trace(123));
  EXPECT_TRUE(forced_only.should_trace(42));
}

TEST(TraceSamplingTest, DecisionIsPureInSeedAndHost) {
  obs::TraceOptions options;
  options.enabled = true;
  options.sample_rate = 0.5;
  obs::TraceCollector a(options, 42);
  obs::TraceCollector b(options, 42);
  obs::TraceCollector c(options, 43);
  std::size_t sampled = 0;
  bool seed_changes_some_decision = false;
  for (std::uint32_t host = 1; host <= 2000; ++host) {
    EXPECT_EQ(a.should_trace(host), b.should_trace(host));
    if (a.should_trace(host) != c.should_trace(host)) {
      seed_changes_some_decision = true;
    }
    if (a.should_trace(host)) ++sampled;
  }
  // A fair coin over 2000 hosts: far inside [800, 1200].
  EXPECT_GT(sampled, 800u);
  EXPECT_LT(sampled, 1200u);
  EXPECT_TRUE(seed_changes_some_decision);
}

// ---------------------------------------------------------------------------
// Wire transcript against a scripted server
// ---------------------------------------------------------------------------

TEST(TraceTranscriptTest, CapturesBothDirectionsByteExactAndNormalized) {
  sim::EventLoop loop;
  sim::Network network(loop);
  const Ipv4 server(203, 0, 113, 9);
  const Ipv4 client_ip(198, 51, 100, 1);

  // Minimal scripted FTP endpoint: rejects the login, answers PASV with a
  // fixed bogus tuple (the port digits must come out normalized), quits.
  network.listen(server, 21, [](std::shared_ptr<sim::Connection> conn) {
    auto carry = std::make_shared<std::string>();
    sim::ConnCallbacks callbacks;
    callbacks.on_data = [conn, carry](std::string_view data) {
      carry->append(data);
      std::size_t eol;
      while ((eol = carry->find("\r\n")) != std::string::npos) {
        const std::string line = carry->substr(0, eol);
        carry->erase(0, eol + 2);
        if (line.rfind("USER", 0) == 0) {
          conn->send("530 Login incorrect.\r\n");
        } else if (line.rfind("PASV", 0) == 0) {
          conn->send("227 Entering Passive Mode (203,0,113,9,217,44).\r\n");
        } else if (line.rfind("QUIT", 0) == 0) {
          conn->send("221 Goodbye.\r\n");
          conn->close();
        } else {
          conn->send("502 Not implemented.\r\n");
        }
      }
    };
    conn->set_callbacks(std::move(callbacks));
    conn->send("220 trace test server\r\n");
  });

  obs::TraceOptions trace_options;
  trace_options.enabled = true;
  obs::TraceCollector collector(trace_options, 1);
  obs::TraceSession* session =
      collector.open_session(server.value(), loop.now());
  ASSERT_NE(session, nullptr);

  ftp::FtpClient::Options options;
  options.client_ip = client_ip;
  options.trace = session;
  auto client = ftp::FtpClient::create(network, options);
  bool finished = false;
  client->connect(server, 21, [&](Result<ftp::Reply> banner) {
    ASSERT_TRUE(banner.is_ok());
    client->send("USER", "anonymous", [&](Result<ftp::Reply> user) {
      ASSERT_TRUE(user.is_ok());
      EXPECT_EQ(user.value().code, 530);
      client->send("PASV", "", [&](Result<ftp::Reply> pasv) {
        ASSERT_TRUE(pasv.is_ok());
        client->quit([&] { finished = true; });
      });
    });
  });
  loop.run_until_idle();
  ASSERT_TRUE(finished);

  obs::TraceBuffer& buffer = collector.buffer();
  buffer.canonicalize();
  std::vector<std::pair<obs::TraceEventKind, std::string>> wire;
  bool saw_connect_span = false;
  for (const auto& event : buffer.events()) {
    if (event.kind == obs::TraceEventKind::kSpan) {
      if (event.name == "connect") {
        saw_connect_span = true;
        EXPECT_EQ(event.status, "ok");
      }
      continue;
    }
    wire.emplace_back(event.kind, event.name);
  }
  EXPECT_TRUE(saw_connect_span);

  using K = obs::TraceEventKind;
  const std::vector<std::pair<K, std::string>> expected = {
      {K::kRecv, "220 trace test server"},
      {K::kSend, "USER anonymous"},
      {K::kRecv, "530 Login incorrect."},
      {K::kSend, "PASV"},
      {K::kRecv, "227 Entering Passive Mode (203,0,113,9,?,?)."},
      {K::kSend, "QUIT"},
      {K::kRecv, "221 Goodbye."},
  };
  EXPECT_EQ(wire, expected);
}

// ---------------------------------------------------------------------------
// Split invariance: the tentpole contract
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

core::CensusConfig traced_config() {
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = kScaleShift;
  config.trace.enabled = true;
  // Sample well below 1.0 so the pure-sampling path is what the identity
  // check exercises; force one host to keep that path covered end to end.
  config.trace.sample_rate = 0.35;
  config.trace.force_hosts = {Ipv4(1, 2, 3, 4).value()};
  return config;
}

core::CensusStats run_traced_sequential() {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::VectorSink sink;
  return core::Census(network, traced_config()).run(sink);
}

core::CensusStats run_traced_sharded(std::uint32_t shards,
                                     std::uint32_t threads) {
  core::CensusConfig config = traced_config();
  config.shards = shards;
  config.threads = threads;
  core::ShardedCensus census(
      [] { return std::make_unique<popgen::SyntheticPopulation>(kSeed); },
      config);
  core::VectorSink sink;
  return census.run(sink);
}

class TraceSplitInvariance : public ::testing::Test {
 protected:
  // One sequential baseline for the whole suite (the expensive run).
  static core::CensusStats& sequential() {
    static core::CensusStats stats = run_traced_sequential();
    return stats;
  }
};

TEST_F(TraceSplitInvariance, ExportsByteIdenticalAcrossShardConfigs) {
  const std::string baseline_jsonl = sequential().trace.to_jsonl();
  const std::string baseline_chrome = sequential().trace.to_chrome_json();
  ASSERT_GT(sequential().trace.size(), 0u);
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 1}, {4, 1}, {4, 8}}) {
    core::CensusStats stats = run_traced_sharded(shards, threads);
    EXPECT_EQ(stats.trace.to_jsonl(), baseline_jsonl)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(stats.trace.to_chrome_json(), baseline_chrome)
        << "shards=" << shards << " threads=" << threads;
  }
}

TEST_F(TraceSplitInvariance, TraceTellsTheFunnelStory) {
  core::CensusStats& stats = sequential();
  // Every sampled probe appears as a seq-0 probe span, and sampled
  // responsive hosts carry a connect span plus wire traffic.
  std::size_t probe_spans = 0;
  std::size_t connect_spans = 0;
  std::size_t wire_lines = 0;
  for (const auto& event : stats.trace.events()) {
    if (event.kind != obs::TraceEventKind::kSpan) {
      ++wire_lines;
      continue;
    }
    if (event.name == "probe") {
      ++probe_spans;
      EXPECT_EQ(event.seq, 0u);
    }
    if (event.name == "connect") ++connect_spans;
  }
  EXPECT_GT(probe_spans, 0u);
  EXPECT_GT(connect_spans, 0u);
  EXPECT_GT(wire_lines, 0u);
  EXPECT_LT(probe_spans, stats.scan.probed);  // sampling actually sampled
}

TEST(TraceDisabledTest, DefaultConfigLeavesBufferEmptyAndDetaches) {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = 22;  // tiny: this test is about the flag only
  core::VectorSink sink;
  const core::CensusStats stats = core::Census(network, config).run(sink);
  EXPECT_TRUE(stats.trace.empty());
  EXPECT_EQ(network.trace(), nullptr);
}

}  // namespace
}  // namespace ftpc
