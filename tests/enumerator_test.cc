// End-to-end tests of the HostEnumerator against crafted hosts.
#include <gtest/gtest.h>
#include <optional>
#include <set>

#include "core/enumerator.h"
#include "ftpd/server.h"
#include "sim/chaos.h"
#include "sim/network.h"
#include "vfs/vfs.h"

namespace ftpc::core {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest() : network_(loop_) {}

  std::shared_ptr<ftpd::Personality> personality() {
    auto p = std::make_shared<ftpd::Personality>();
    p->implementation = "TestFTPd";
    p->banner = "220 TestFTPd 9.9 ready.";
    p->allow_anonymous = true;
    return p;
  }

  std::shared_ptr<vfs::Vfs> tree() {
    auto fs = std::make_shared<vfs::Vfs>();
    (void)fs->mkdir("/pub/sub");
    (void)fs->add_file("/pub/a.txt", {.size = 10});
    (void)fs->add_file("/pub/sub/b.txt", {.size = 20});
    (void)fs->add_file("/top.zip", {.size = 30});
    return fs;
  }

  HostReport enumerate(std::shared_ptr<ftpd::Personality> p,
                       std::shared_ptr<vfs::Vfs> fs,
                       EnumeratorOptions options = {}) {
    auto server = std::make_shared<ftpd::FtpServer>(target_, std::move(p),
                                                    std::move(fs));
    server->attach(network_);
    std::optional<HostReport> report;
    HostEnumerator::start(network_, target_, options,
                          [&](HostReport r) { report = std::move(r); });
    loop_.run_while_pending([&] { return report.has_value(); });
    server->detach(network_);
    return std::move(*report);
  }

  sim::EventLoop loop_;
  sim::Network network_;
  const Ipv4 target_{198, 51, 100, 10};
};

TEST_F(EnumeratorTest, FullTraversal) {
  const HostReport report = enumerate(personality(), tree());
  EXPECT_TRUE(report.ftp_compliant);
  EXPECT_EQ(report.login, LoginOutcome::kAccepted);
  EXPECT_TRUE(report.error.is_ok());
  EXPECT_NE(report.banner.find("TestFTPd"), std::string::npos);

  // Every node appears exactly once: /pub, /top.zip, /pub/a.txt,
  // /pub/sub, /pub/sub/b.txt.
  EXPECT_EQ(report.files.size(), 5u);
  std::set<std::string> paths;
  for (const auto& f : report.files) paths.insert(f.path);
  EXPECT_TRUE(paths.count("/pub/sub/b.txt"));
  EXPECT_TRUE(paths.count("/top.zip"));
  EXPECT_EQ(report.dirs_listed, 3u);  // "/", "/pub", "/pub/sub"
  EXPECT_FALSE(report.truncated_by_request_cap);
}

TEST_F(EnumeratorTest, FileMetadataCaptured) {
  auto fs = std::make_shared<vfs::Vfs>();
  (void)fs->add_file("/secret.key", {.size = 128, .mode = vfs::Mode{0600}});
  (void)fs->add_file("/open.txt", {.size = 5, .mode = vfs::Mode{0644}});
  const HostReport report = enumerate(personality(), fs);
  ASSERT_EQ(report.files.size(), 2u);
  for (const auto& f : report.files) {
    if (f.path == "/secret.key") {
      EXPECT_EQ(f.readable, ftp::Readability::kNotReadable);
    } else {
      EXPECT_EQ(f.readable, ftp::Readability::kReadable);
    }
    EXPECT_TRUE(f.has_permissions);
  }
}

TEST_F(EnumeratorTest, WindowsFormatYieldsUnknownReadability) {
  auto p = personality();
  p->listing_format = vfs::ListingFormat::kWindows;
  const HostReport report = enumerate(p, tree());
  ASSERT_FALSE(report.files.empty());
  for (const auto& f : report.files) {
    EXPECT_EQ(f.readable, ftp::Readability::kUnknown);
    EXPECT_FALSE(f.has_permissions);
  }
}

TEST_F(EnumeratorTest, BannerForbidsAnonymousSkipsLogin) {
  auto p = personality();
  p->allow_anonymous = false;
  p->banner_forbids_anonymous = true;
  const HostReport report = enumerate(p, tree());
  EXPECT_EQ(report.login, LoginOutcome::kNotAttempted);
  EXPECT_TRUE(report.files.empty());
}

TEST_F(EnumeratorTest, RejectedLoginStillSurveysTls) {
  auto p = personality();
  p->allow_anonymous = false;
  p->user_reply_style = ftpd::UserReplyStyle::kReject530;
  p->supports_ftps = true;
  ftp::Certificate cert;
  cert.subject_cn = "shared-device";
  cert.issuer_cn = "shared-device";
  p->certificate = cert;
  const HostReport report = enumerate(p, tree());
  EXPECT_EQ(report.login, LoginOutcome::kRejected);
  EXPECT_TRUE(report.files.empty());
  EXPECT_TRUE(report.ftps_supported);
  ASSERT_TRUE(report.certificate);
  EXPECT_EQ(report.certificate->subject_cn, "shared-device");
}

TEST_F(EnumeratorTest, RejectIn331TextThenPassStillTried) {
  auto p = personality();
  p->allow_anonymous = false;
  p->user_reply_style = ftpd::UserReplyStyle::kRejectIn331;
  const HostReport report = enumerate(p, tree());
  EXPECT_EQ(report.login, LoginOutcome::kRejected);
}

TEST_F(EnumeratorTest, VirtualHostOutcome) {
  auto p = personality();
  p->user_reply_style = ftpd::UserReplyStyle::kNeedVirtualHost;
  const HostReport report = enumerate(p, tree());
  EXPECT_EQ(report.login, LoginOutcome::kNeedVirtualHost);
}

TEST_F(EnumeratorTest, FtpsRequiredOutcome) {
  auto p = personality();
  p->requires_ftps_before_login = true;
  p->supports_ftps = true;
  ftp::Certificate cert;
  cert.subject_cn = "x";
  cert.issuer_cn = "x";
  p->certificate = cert;
  const HostReport report = enumerate(p, tree());
  EXPECT_EQ(report.login, LoginOutcome::kFtpsRequired);
  EXPECT_TRUE(report.ftps_required_before_login);
}

TEST_F(EnumeratorTest, RobotsFullExclusionHonored) {
  auto fs = tree();
  (void)fs->add_file("/robots.txt",
                     {.size = 0, .mode = vfs::Mode{0644},
                      .content = "User-agent: *\nDisallow: /\n"});
  const HostReport report = enumerate(personality(), fs);
  EXPECT_TRUE(report.robots_present);
  EXPECT_TRUE(report.robots_full_exclusion);
  EXPECT_TRUE(report.files.empty());
  EXPECT_EQ(report.dirs_listed, 0u);
}

TEST_F(EnumeratorTest, RobotsPartialExclusionSkipsSubtree) {
  auto fs = tree();
  (void)fs->add_file("/robots.txt",
                     {.size = 0, .mode = vfs::Mode{0644},
                      .content = "User-agent: *\nDisallow: /pub/sub/\n"});
  const HostReport report = enumerate(personality(), fs);
  EXPECT_TRUE(report.robots_present);
  EXPECT_FALSE(report.robots_full_exclusion);
  std::set<std::string> paths;
  for (const auto& f : report.files) paths.insert(f.path);
  EXPECT_TRUE(paths.count("/pub/a.txt"));
  EXPECT_TRUE(paths.count("/pub/sub"));        // listed as an entry...
  EXPECT_FALSE(paths.count("/pub/sub/b.txt")); // ...but never traversed
}

TEST_F(EnumeratorTest, RobotsIgnoredWhenDisabled) {
  auto fs = tree();
  (void)fs->add_file("/robots.txt",
                     {.size = 0, .mode = vfs::Mode{0644},
                      .content = "User-agent: *\nDisallow: /\n"});
  EnumeratorOptions options;
  options.honor_robots = false;
  const HostReport report = enumerate(personality(), fs, options);
  EXPECT_FALSE(report.robots_present);  // never even fetched
  EXPECT_GT(report.files.size(), 0u);
}

TEST_F(EnumeratorTest, RequestCapTruncatesTraversal) {
  auto fs = std::make_shared<vfs::Vfs>();
  for (int i = 0; i < 60; ++i) {
    (void)fs->mkdir("/d" + std::to_string(i));
    (void)fs->add_file("/d" + std::to_string(i) + "/f.txt", {.size = 1});
  }
  EnumeratorOptions options;
  options.request_cap = 20;
  const HostReport report = enumerate(personality(), fs, options);
  EXPECT_TRUE(report.truncated_by_request_cap);
  EXPECT_LT(report.dirs_listed, 60u);
  EXPECT_LE(report.requests_used, 30u);  // cap + post-traversal surveys
}

TEST_F(EnumeratorTest, ServerTerminationStopsInteraction) {
  auto p = personality();
  p->max_commands_per_session = 8;
  auto fs = std::make_shared<vfs::Vfs>();
  for (int i = 0; i < 20; ++i) {
    (void)fs->mkdir("/dir" + std::to_string(i));
  }
  const HostReport report = enumerate(p, fs);
  EXPECT_TRUE(report.server_terminated_early);
  EXPECT_FALSE(report.error.is_ok());
}

TEST_F(EnumeratorTest, SurveysCollected) {
  auto p = personality();
  p->syst_reply = "UNIX Type: L8";
  p->feat_lines = {"MDTM", "SIZE"};
  const HostReport report = enumerate(p, tree());
  EXPECT_EQ(report.syst_reply, "UNIX Type: L8");
  ASSERT_GE(report.feat_lines.size(), 3u);  // "Features:" + entries + "End"
  EXPECT_FALSE(report.help_text.empty());
  EXPECT_FALSE(report.site_text.empty());
}

TEST_F(EnumeratorTest, NatPasvRecorded) {
  auto p = personality();
  p->internal_ip = Ipv4(192, 168, 77, 5);
  const HostReport report = enumerate(p, tree());
  ASSERT_TRUE(report.pasv_ip);
  EXPECT_EQ(*report.pasv_ip, Ipv4(192, 168, 77, 5));
}

TEST_F(EnumeratorTest, NonNatHasNoPasvMismatch) {
  const HostReport report = enumerate(personality(), tree());
  EXPECT_FALSE(report.pasv_ip);
}

TEST_F(EnumeratorTest, RefusedConnectionReported) {
  std::optional<HostReport> report;
  HostEnumerator::start(network_, Ipv4(203, 0, 113, 250), {},
                        [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  EXPECT_FALSE(report->connected);
  EXPECT_FALSE(report->ftp_compliant);
  EXPECT_FALSE(report->error.is_ok());
}

TEST_F(EnumeratorTest, NonFtpSpeakerNotCompliant) {
  network_.listen(target_, 21, [](std::shared_ptr<sim::Connection> conn) {
    conn->send("SSH-2.0-dropbear\r\n");
    conn->close();
  });
  std::optional<HostReport> report;
  HostEnumerator::start(network_, target_, {},
                        [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  network_.stop_listening(target_, 21);
  EXPECT_TRUE(report->connected);
  EXPECT_FALSE(report->ftp_compliant);
}

TEST_F(EnumeratorTest, SilentListenerTimesOut) {
  network_.listen(target_, 21, [](std::shared_ptr<sim::Connection>) {});
  std::optional<HostReport> report;
  HostEnumerator::start(network_, target_, {},
                        [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  network_.stop_listening(target_, 21);
  EXPECT_FALSE(report->ftp_compliant);
  EXPECT_EQ(report->error.code(), ErrorCode::kTimeout);
}

TEST_F(EnumeratorTest, BannerTimeoutStillCountsConnected) {
  // A silent listener accepts TCP but never sends the 220 banner. The
  // session times out in the *banner* phase, after a successful handshake:
  // the host must be counted as connected (funnel drop at the banner edge),
  // unlike a connect-phase timeout where the host was never reached.
  network_.listen(target_, 21, [](std::shared_ptr<sim::Connection>) {});
  std::optional<HostReport> report;
  HostEnumerator::start(network_, target_, {},
                        [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  network_.stop_listening(target_, 21);
  EXPECT_EQ(report->error.code(), ErrorCode::kTimeout);
  EXPECT_TRUE(report->connected);
  EXPECT_FALSE(report->ftp_compliant);
}

TEST_F(EnumeratorTest, ConnectTimeoutReportsNotConnected) {
  // The converse of the banner-timeout case: a timeout during the TCP
  // handshake itself means the host was never reached.
  sim::ChaosEngine chaos = sim::ChaosEngine::fixed(
      {.kind = sim::FaultKind::kConnectTimeout}, target_.value());
  network_.set_chaos(&chaos);
  std::optional<HostReport> report;
  HostEnumerator::start(network_, target_, {},
                        [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  network_.set_chaos(nullptr);
  EXPECT_EQ(report->error.code(), ErrorCode::kTimeout);
  EXPECT_FALSE(report->connected);
  EXPECT_FALSE(report->ftp_compliant);
}

TEST_F(EnumeratorTest, IdleServerCloseAbortsPromptlyAndCancelsGapTimer) {
  // A hand-rolled server that greets, accepts the USER command, and then
  // closes the control connection — landing the close inside the client's
  // inter-request gap, when no operation is outstanding. Regression test
  // for two bugs: (a) the death went unnoticed until the next doomed
  // command, and (b) the armed gap timer kept a closure owning the session
  // alive in the event loop after finalize.
  network_.listen(target_, 21, [](std::shared_ptr<sim::Connection> conn) {
    conn->send("220 flaky ready\r\n");
    sim::ConnCallbacks callbacks;
    callbacks.on_data = [conn](std::string_view) {
      conn->send("230 welcome\r\n");
      conn->close();
    };
    conn->set_callbacks(std::move(callbacks));
  });

  EnumeratorOptions options;
  std::optional<HostReport> report;
  const sim::SimTime started = loop_.now();
  std::weak_ptr<HostEnumerator> weak = HostEnumerator::start(
      network_, target_, options, [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  network_.stop_listening(target_, 21);
  const sim::SimTime done_at = loop_.now();

  // The close arrived mid-gap and aborted the session immediately: one gap
  // precedes USER, and the close lands right after the 230. Waiting out a
  // second gap to discover the death via a doomed command (the old
  // behavior) would need two full gaps.
  EXPECT_LT(done_at - started, 2 * options.request_gap);
  EXPECT_EQ(report->login, LoginOutcome::kAccepted);
  EXPECT_EQ(report->error.code(), ErrorCode::kConnectionReset);
  // The close preceded traversal, so it is not a mid-traversal refusal.
  EXPECT_FALSE(report->server_terminated_early);

  // Draining the loop must neither resurrect the session nor advance time
  // by the request gap: the pending gap closure was cancelled, not left to
  // fire into a finished session.
  loop_.run_until_idle();
  EXPECT_TRUE(weak.expired());
  EXPECT_LT(loop_.now() - done_at, options.request_gap / 2);
}

TEST_F(EnumeratorTest, BackoffTimerCancelledWhenServerDiesMidBackoff) {
  // The reply-retry backoff timer is the same hazard class as the gap timer
  // above: it is armed while no reply timeout guards the session, so a
  // connection death inside the backoff window must cancel it on finalize.
  // Script: the server greets, swallows USER without replying (the client's
  // reply timeout fires and arms a 20 s backoff), then closes the control
  // connection 10 s into that window.
  obs::MetricsRegistry metrics;
  network_.set_metrics(&metrics);
  network_.listen(target_, 21, [&](std::shared_ptr<sim::Connection> conn) {
    conn->send("220 mute\r\n");
    sim::ConnCallbacks callbacks;
    callbacks.on_data = [this, conn](std::string_view) {
      loop_.schedule_after(40 * sim::kSecond, [conn] { conn->close(); });
    };
    conn->set_callbacks(std::move(callbacks));
  });

  EnumeratorOptions options;
  options.command_retries = 3;
  options.retry_backoff = 20 * sim::kSecond;
  options.retry_backoff_cap = 80 * sim::kSecond;
  std::optional<HostReport> report;
  std::weak_ptr<HostEnumerator> weak = HostEnumerator::start(
      network_, target_, options, [&](HostReport r) { report = std::move(r); });
  loop_.run_while_pending([&] { return report.has_value(); });
  network_.stop_listening(target_, 21);
  network_.set_metrics(nullptr);
  const sim::SimTime done_at = loop_.now();

  // The timeout really fired and a retry was pending when the close landed.
  EXPECT_EQ(metrics.value("retry.command"), 1u);
  EXPECT_EQ(report->error.code(), ErrorCode::kConnectionReset);
  EXPECT_TRUE(report->connected);

  // Draining the loop must not advance time to the backoff expiry: the
  // armed backoff closure was cancelled on finalize, not left to fire.
  loop_.run_until_idle();
  EXPECT_TRUE(weak.expired());
  EXPECT_LT(loop_.now() - done_at, sim::kSecond);
}

TEST_F(EnumeratorTest, DepthFirstAblationCoversSameTree) {
  EnumeratorOptions options;
  options.breadth_first = false;
  const HostReport report = enumerate(personality(), tree(), options);
  EXPECT_EQ(report.files.size(), 5u);
}

TEST_F(EnumeratorTest, RateLimitSpacingRespected) {
  EnumeratorOptions options;
  options.request_gap = sim::kSecond;  // 1 req/s
  const sim::SimTime start = loop_.now();
  const HostReport report = enumerate(personality(), tree(), options);
  // One inter-request gap precedes each LIST (and each survey step), so at
  // least dirs_listed seconds of virtual time must have elapsed.
  EXPECT_GE(loop_.now() - start, report.dirs_listed * sim::kSecond);
}

TEST_F(EnumeratorTest, TlsDisabledSkipsCert) {
  auto p = personality();
  p->supports_ftps = true;
  ftp::Certificate cert;
  cert.subject_cn = "x";
  cert.issuer_cn = "x";
  p->certificate = cert;
  EnumeratorOptions options;
  options.try_tls = false;
  const HostReport report = enumerate(p, tree(), options);
  EXPECT_FALSE(report.ftps_supported);
  EXPECT_FALSE(report.certificate);
}

TEST_F(EnumeratorTest, MaxFilesCapRespected) {
  auto fs = std::make_shared<vfs::Vfs>();
  for (int i = 0; i < 100; ++i) {
    (void)fs->add_file("/f" + std::to_string(i), {.size = 1});
  }
  EnumeratorOptions options;
  options.max_files = 25;
  const HostReport report = enumerate(personality(), fs, options);
  EXPECT_EQ(report.files.size(), 25u);
}

}  // namespace
}  // namespace ftpc::core
