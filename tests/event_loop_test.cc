// event_loop_test — the EventLoop behavioral contract, pinned before the
// timer-wheel swap so the heap->wheel replacement is provably
// behavior-identical.
//
// The census engine leans on every corner of this contract: the sharded
// census byte-identity suites depend on exact (time, insertion seq) fire
// order, the perf sampler reads pending() live, retry/backoff timers are
// scheduled and cancelled at high churn, and run_until's
// advance-to-deadline semantics pace the scanner. Each leg here pins one
// clause; the randomized leg checks the whole contract against a naive
// reference model across every timer horizon.
#include "sim/event_loop.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ftpc::sim {
namespace {

// -- pending() -------------------------------------------------------------

TEST(EventLoopContract, PendingCountsLiveTimersOnly) {
  EventLoop loop;
  EXPECT_EQ(loop.pending(), 0u);
  const TimerId a = loop.schedule_after(10, [] {});
  const TimerId b = loop.schedule_after(20, [] {});
  loop.schedule_after(30, [] {});
  EXPECT_EQ(loop.pending(), 3u);
  EXPECT_TRUE(loop.cancel(a));
  EXPECT_EQ(loop.pending(), 2u);  // drops immediately, not at pop time
  EXPECT_TRUE(loop.cancel(b));
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_TRUE(loop.run_one());
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_FALSE(loop.run_one());
}

TEST(EventLoopContract, PendingDropsWhileEventIsFiring) {
  EventLoop loop;
  std::size_t seen = 99;
  loop.schedule_after(5, [&] { seen = loop.pending(); });
  loop.schedule_after(10, [] {});
  loop.run_one();
  // The firing event is no longer pending while its callback runs.
  EXPECT_EQ(seen, 1u);
}

// -- cancel() return values ------------------------------------------------

TEST(EventLoopContract, CancelReturnValueMatrix) {
  EventLoop loop;
  const TimerId live = loop.schedule_after(10, [] {});
  EXPECT_TRUE(loop.cancel(live));
  EXPECT_FALSE(loop.cancel(live));  // double-cancel misses
  EXPECT_FALSE(loop.cancel(TimerId{0}));
  EXPECT_FALSE(loop.cancel(TimerId{~0ULL}));

  const TimerId fired = loop.schedule_after(1, [] {});
  EXPECT_TRUE(loop.run_one());
  EXPECT_FALSE(loop.cancel(fired));  // already fired

  // A cancelled timer's callback never runs, and the slot is immediately
  // reusable for a new schedule at the same time.
  bool ran_cancelled = false;
  bool ran_fresh = false;
  const TimerId dead = loop.schedule_after(7, [&] { ran_cancelled = true; });
  EXPECT_TRUE(loop.cancel(dead));
  loop.schedule_after(7, [&] { ran_fresh = true; });
  loop.run_until_idle();
  EXPECT_FALSE(ran_cancelled);
  EXPECT_TRUE(ran_fresh);
}

// -- run_until() deadline semantics ----------------------------------------

TEST(EventLoopContract, RunUntilAdvancesToDeadlineWhenQueueEmptiesEarly) {
  EventLoop loop;
  loop.schedule_after(10, [] {});
  EXPECT_EQ(loop.run_until(100), 1u);
  EXPECT_EQ(loop.now(), 100u);
}

TEST(EventLoopContract, RunUntilFiresEventsAtExactlyTheDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(50, [&] { ++fired; });
  loop.schedule_at(50, [&] { ++fired; });
  loop.schedule_at(51, [&] { ++fired; });
  EXPECT_EQ(loop.run_until(50), 2u);  // inclusive deadline
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 50u);
  EXPECT_EQ(loop.pending(), 1u);  // the 51 event survives untouched
}

TEST(EventLoopContract, RunUntilDoesNotCountCancelledEvents) {
  EventLoop loop;
  loop.schedule_at(10, [] {});
  const TimerId dead = loop.schedule_at(20, [] {});
  loop.schedule_at(30, [] {});
  loop.cancel(dead);
  EXPECT_EQ(loop.run_until(100), 2u);
}

TEST(EventLoopContract, RunUntilNeverMovesTimeBackwards) {
  EventLoop loop;
  loop.schedule_at(80, [] {});
  loop.run_until_idle();
  EXPECT_EQ(loop.now(), 80u);
  EXPECT_EQ(loop.run_until(40), 0u);  // deadline in the past: no-op
  EXPECT_EQ(loop.now(), 80u);
}

TEST(EventLoopContract, RunUntilHonorsEventsScheduledWithinTheWindow) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(10, [&] {
    order.push_back(1);
    loop.schedule_at(20, [&] { order.push_back(2); });
  });
  EXPECT_EQ(loop.run_until(30), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 30u);
}

// -- FIFO tie-break order --------------------------------------------------

TEST(EventLoopContract, FifoOrderAmongSameTimeEvents) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run_until_idle();
  ASSERT_EQ(order.size(), 16u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

// The hard FIFO case for any bucketed timer store: events with the same
// fire time scheduled from *different* current times (so a hierarchical
// structure would file them at different distances). Insertion order must
// still win the tie, even interleaved with cancellations.
TEST(EventLoopContract, FifoOrderAcrossScheduleHorizons) {
  EventLoop loop;
  std::vector<int> order;
  constexpr SimTime kWhen = 5000;
  loop.schedule_at(kWhen, [&] { order.push_back(0); });  // far: ~5000 ahead
  loop.schedule_at(4096, [&] {
    // Mid-flight: same fire time, scheduled from a closer horizon.
    loop.schedule_at(kWhen, [&] { order.push_back(1); });
  });
  loop.schedule_at(4990, [&] {
    const TimerId doomed = loop.schedule_at(kWhen, [&] { order.push_back(99); });
    loop.schedule_at(kWhen, [&] { order.push_back(2); });
    loop.cancel(doomed);
  });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(loop.now(), kWhen);
}

TEST(EventLoopContract, PastTimeSchedulesClampAndStayFifo) {
  EventLoop loop;
  loop.schedule_at(50, [] {});
  loop.run_until_idle();
  std::vector<int> order;
  loop.schedule_at(10, [&] { order.push_back(0); });  // clamped to now=50
  loop.schedule_at(50, [&] { order.push_back(1); });
  loop.schedule_after(0, [&] { order.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(loop.now(), 50u);
}

// -- long-horizon timers ---------------------------------------------------

TEST(EventLoopContract, DayScaleAndYearScaleTimersFireInOrder) {
  EventLoop loop;
  std::vector<int> order;
  // Horizons chosen to land in every level of a hierarchical store,
  // including beyond 2^48 us (~8.9 sim-years).
  const SimTime whens[] = {1,          63,           64,        4097,
                           kSecond,    kMinute,      kDay,      90 * kDay,
                           (SimTime{1} << 48) + 123, (SimTime{1} << 50)};
  for (int i = 9; i >= 0; --i) {
    loop.schedule_at(whens[i], [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(loop.run_until_idle(), 10u);
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(loop.now(), SimTime{1} << 50);
}

TEST(EventLoopContract, CancelWorksAtEveryHorizon) {
  EventLoop loop;
  int fired = 0;
  std::vector<TimerId> ids;
  for (unsigned shift = 0; shift <= 52; shift += 4) {
    ids.push_back(
        loop.schedule_after(SimTime{1} << shift, [&] { ++fired; }));
  }
  for (const TimerId id : ids) EXPECT_TRUE(loop.cancel(id));
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.run_until_idle(), 0u);
  EXPECT_EQ(fired, 0);
}

// -- cancel must reclaim, not tombstone ------------------------------------

// High-churn schedule/cancel at a fixed horizon: the retry/timeout pattern.
// A tombstoning store would accumulate one dead entry per iteration (the
// old heap kept cancelled entries until popped); a reclaiming store stays
// flat. pending() == 0 throughout is the observable half of that contract;
// the 2M-iteration count makes unbounded growth a timeout/OOM in practice.
TEST(EventLoopContract, HighChurnCancelDoesNotAccumulateState) {
  EventLoop loop;
  for (int i = 0; i < 2'000'000; ++i) {
    const TimerId id = loop.schedule_after(30 * kSecond, [] {});
    ASSERT_TRUE(loop.cancel(id));
    ASSERT_EQ(loop.pending(), 0u);
  }
  // The loop is still fully functional afterwards.
  bool ran = false;
  loop.schedule_after(1, [&] { ran = true; });
  EXPECT_EQ(loop.run_until_idle(), 1u);
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.events_processed(), 1u);
}

// -- run_while_pending -----------------------------------------------------

TEST(EventLoopContract, RunWhilePendingChecksPredicateBeforeEachEvent) {
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 5; ++i) loop.schedule_at(10 * (i + 1), [&] { ++fired; });
  EXPECT_TRUE(loop.run_while_pending([&] { return fired >= 3; }));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.pending(), 2u);
}

// -- randomized differential check vs a reference model --------------------

// Minimal splitmix64: deterministic, seedable, no <random> engine drift.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

// Drives random schedule/cancel/run_one/run_until traffic through the loop
// and an ordered-map reference model simultaneously; any divergence in fire
// order, fire times, pending counts, cancel results, or run_until counts
// fails. Deltas are drawn log-uniform so every wheel level (and the
// overflow horizon) sees traffic.
TEST(EventLoopContract, MatchesReferenceModelUnderRandomTraffic) {
  EventLoop loop;
  SplitMix64 rng{0xf7d0c0ffee15ULL};

  struct ModelEntry {
    TimerId id;
    std::uint64_t slot;  // index into `fired`, for order checking
  };
  // (when, schedule order) -> entry: exactly the documented fire order.
  std::map<std::pair<SimTime, std::uint64_t>, ModelEntry> model;
  std::map<TimerId, std::pair<SimTime, std::uint64_t>> by_id;
  std::vector<std::uint64_t> fired;
  std::uint64_t schedule_order = 0;
  std::uint64_t next_slot = 0;

  const auto expect_front = [&](std::uint64_t slot_fired, bool check_time) {
    ASSERT_FALSE(model.empty());
    const auto front = model.begin();
    EXPECT_EQ(front->second.slot, slot_fired) << "fire order diverged";
    if (check_time) {
      EXPECT_EQ(loop.now(), front->first.first) << "fire time diverged";
    }
    by_id.erase(front->second.id);
    model.erase(front);
  };

  for (int step = 0; step < 60'000; ++step) {
    const std::uint64_t op = rng.below(100);
    if (op < 55 || model.empty()) {
      // Schedule: log-uniform delta across 2^0 .. 2^52 us, with occasional
      // zero-delay and past-time (clamped) schedules.
      SimTime when;
      const std::uint64_t kind = rng.below(16);
      if (kind == 0) {
        when = loop.now();  // due immediately
      } else if (kind == 1) {
        when = loop.now() - rng.below(1000);  // past: clamps to now
        if (when > loop.now()) when = 0;      // underflow guard
      } else {
        const unsigned shift = static_cast<unsigned>(rng.below(53));
        when = loop.now() + (SimTime{1} << shift) + rng.below(1u << 10);
      }
      const std::uint64_t slot = next_slot++;
      const TimerId id =
          loop.schedule_at(when, [&fired, slot] { fired.push_back(slot); });
      const SimTime effective = std::max(when, loop.now());
      model.emplace(std::make_pair(effective, schedule_order),
                    ModelEntry{id, slot});
      by_id.emplace(id, std::make_pair(effective, schedule_order));
      ++schedule_order;
    } else if (op < 75) {
      // Cancel: mix of live, already-fired, and never-issued ids.
      if (rng.below(4) == 0) {
        EXPECT_FALSE(loop.cancel(TimerId{rng.next() | (1ULL << 63)}));
      } else {
        auto it = by_id.begin();
        const std::uint64_t walk =
            std::min<std::uint64_t>(by_id.size(), 512);
        std::advance(it, static_cast<long>(rng.below(walk)));
        EXPECT_TRUE(loop.cancel(it->first));
        model.erase(it->second);
        by_id.erase(it);
        EXPECT_FALSE(loop.cancel(TimerId{0}));
      }
    } else if (op < 90) {
      const bool was_empty = model.empty();
      const std::size_t before = fired.size();
      const bool ran = loop.run_one();
      EXPECT_EQ(ran, !was_empty);
      if (ran) {
        ASSERT_EQ(fired.size(), before + 1);
        expect_front(fired.back(), /*check_time=*/true);
      }
    } else {
      // run_until a deadline somewhere around the model's front.
      SimTime deadline = loop.now() + (SimTime{1} << rng.below(20));
      if (!model.empty() && rng.below(2) == 0) {
        deadline = model.begin()->first.first + rng.below(3);
      }
      const SimTime now_before = loop.now();
      const std::size_t before = fired.size();
      const std::uint64_t count = loop.run_until(deadline);
      ASSERT_EQ(fired.size(), before + count);
      for (std::size_t i = before; i < fired.size(); ++i) {
        expect_front(fired[i], /*check_time=*/false);
      }
      if (!model.empty()) {
        EXPECT_GT(model.begin()->first.first, deadline);
      }
      EXPECT_EQ(loop.now(), std::max(now_before, deadline));
    }
    ASSERT_EQ(loop.pending(), model.size());
  }

  // Drain: everything left fires in model order.
  const std::size_t before = fired.size();
  const std::size_t remaining = model.size();
  loop.run_until_idle();
  ASSERT_EQ(fired.size(), before + remaining);
  for (std::size_t i = before; i < fired.size(); ++i) {
    ASSERT_FALSE(model.empty());
    EXPECT_EQ(model.begin()->second.slot, fired[i]);
    model.erase(model.begin());
  }
  EXPECT_EQ(loop.pending(), 0u);
}

}  // namespace
}  // namespace ftpc::sim
