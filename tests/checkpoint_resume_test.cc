// Crash-recovery determinism battery for checkpointed shard slices.
//
// The contract under test (see core/shard_slice.h): a shard process killed
// after any committed checkpoint, restarted with resume=true, produces an
// artifact directory byte-identical — every file, journal and checkpoint
// included — to an uninterrupted run with the same checkpoint cadence.
// Torn tails past the last commit (a partial journal line, extra record
// bytes from a mid-write kill) are truncated on resume and leave no residue
// in the final bytes. The checkpoint itself is pinned as a pure function of
// (config, global element index): the cadence that produced it must not
// leak into its bytes, so runs checkpointing every I and every 2I elements
// write identical checkpoints at their common boundaries.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/census.h"
#include "core/shard_artifact.h"
#include "core/shard_slice.h"
#include "shard_fixture.h"

namespace ftpc {
namespace {

using fixture::append_file;
using fixture::expect_dirs_identical;
using fixture::factory;
using fixture::make_temp_root;
using fixture::read_file;

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;       // 65536 global elements
constexpr std::uint64_t kInterval = 16384;  // boundaries at 16384/32768/49152

core::CensusConfig shard_config(std::uint64_t seed) {
  return fixture::shard_config(seed, kScaleShift);
}

core::ShardSliceConfig slice_config(const std::string& out_dir,
                                    std::uint64_t seed = kSeed,
                                    std::uint32_t shard = 0,
                                    std::uint32_t total = 1,
                                    std::uint64_t interval = kInterval) {
  core::ShardSliceConfig slice;
  slice.census = shard_config(seed);
  slice.shard = shard;
  slice.total_shards = total;
  slice.out_dir = out_dir;
  slice.checkpoint_interval = interval;
  return slice;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  // The uninterrupted same-cadence run every crash leg is compared to.
  static const std::string& reference_dir() {
    static const std::string dir = [] {
      const std::string root = make_temp_root("ckpt_reference");
      const auto result =
          core::run_shard_slice(slice_config(root + "/shard"), factory(kSeed));
      EXPECT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.checkpoints_written, 3u);
      return root + "/shard";
    }();
    return dir;
  }
};

TEST_F(CheckpointResumeTest, KillAtEveryCheckpointBoundaryThenResume) {
  for (const std::uint32_t crash_after : {1u, 2u, 3u}) {
    const std::string label = "crash-after-" + std::to_string(crash_after);
    const std::string dir = make_temp_root("ckpt_" + label) + "/shard";

    core::ShardSliceConfig crash = slice_config(dir);
    crash.crash_after_checkpoints = crash_after;
    const auto crashed = core::run_shard_slice(crash, factory(kSeed));
    EXPECT_FALSE(crashed.ok) << label;
    EXPECT_TRUE(crashed.crashed) << label;
    EXPECT_TRUE(crashed.error.empty()) << label << ": " << crashed.error;
    EXPECT_EQ(crashed.checkpoints_written, crash_after) << label;
    // A crashed run must never look complete.
    EXPECT_TRUE(read_file(dir + "/manifest.json").empty()) << label;

    core::ShardSliceConfig resume = slice_config(dir);
    resume.resume = true;
    const auto resumed = core::run_shard_slice(resume, factory(kSeed));
    ASSERT_TRUE(resumed.ok) << label << ": " << resumed.error;
    expect_dirs_identical(reference_dir(), dir, label);
  }
}

TEST_F(CheckpointResumeTest, RepeatedKillsAcrossSuccessiveBoundaries) {
  // The worst operational case: the process dies again after every single
  // checkpoint it manages to commit. Three kills walk all three
  // boundaries; the final resume still lands on the reference bytes.
  const std::string dir = make_temp_root("ckpt_repeated") + "/shard";
  core::ShardSliceConfig crash = slice_config(dir);
  crash.crash_after_checkpoints = 1;
  const auto first = core::run_shard_slice(crash, factory(kSeed));
  EXPECT_TRUE(first.crashed);

  crash.resume = true;  // keep dying one checkpoint after each restart
  for (int restart = 0; restart < 2; ++restart) {
    const auto again = core::run_shard_slice(crash, factory(kSeed));
    EXPECT_TRUE(again.crashed) << "restart " << restart;
    EXPECT_EQ(again.checkpoints_written, 1u) << "restart " << restart;
  }
  core::ShardSliceConfig resume = slice_config(dir);
  resume.resume = true;
  const auto resumed = core::run_shard_slice(resume, factory(kSeed));
  ASSERT_TRUE(resumed.ok) << resumed.error;
  expect_dirs_identical(reference_dir(), dir, "repeated-kills");
}

TEST_F(CheckpointResumeTest, TornTailsAreTruncatedOnResume) {
  // A kill mid-write leaves bytes past the last commit: a partial journal
  // line and a partial record frame. Resume must discard both.
  const std::string dir = make_temp_root("ckpt_torn") + "/shard";
  core::ShardSliceConfig crash = slice_config(dir);
  crash.crash_after_checkpoints = 2;
  EXPECT_TRUE(core::run_shard_slice(crash, factory(kSeed)).crashed);

  append_file(dir + "/journal.jsonl", "{\"k\":\"trace\",\"t\":99");
  append_file(dir + "/records.ftpd", std::string("\x13\x37garbage", 9));

  core::ShardSliceConfig resume = slice_config(dir);
  resume.resume = true;
  const auto resumed = core::run_shard_slice(resume, factory(kSeed));
  ASSERT_TRUE(resumed.ok) << resumed.error;
  expect_dirs_identical(reference_dir(), dir, "torn-tails");
}

TEST_F(CheckpointResumeTest, ResumeOfCompletedShardIsIdempotent) {
  const std::string before = read_file(reference_dir() + "/manifest.json");
  core::ShardSliceConfig resume = slice_config(reference_dir());
  resume.resume = true;
  const auto resumed = core::run_shard_slice(resume, factory(kSeed));
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_FALSE(resumed.crashed);
  EXPECT_EQ(read_file(reference_dir() + "/manifest.json"), before);
}

TEST_F(CheckpointResumeTest, ResumeRejectsMismatchedConfig) {
  const std::string dir = make_temp_root("ckpt_mismatch") + "/shard";
  core::ShardSliceConfig crash = slice_config(dir);
  crash.crash_after_checkpoints = 1;
  EXPECT_TRUE(core::run_shard_slice(crash, factory(kSeed)).crashed);

  core::ShardSliceConfig resume = slice_config(dir, kSeed + 1);
  resume.resume = true;
  const auto resumed = core::run_shard_slice(resume, factory(kSeed + 1));
  EXPECT_FALSE(resumed.ok);
  EXPECT_FALSE(resumed.crashed);
  EXPECT_NE(resumed.error.find("config"), std::string::npos) << resumed.error;
}

TEST_F(CheckpointResumeTest, MultiShardSliceResumesIdentically) {
  // Shard 1 of 2: the resumed walk has to re-derive an interior slice
  // (start offset + stride jump), not just the k=0 prefix.
  const std::string ref_root = make_temp_root("ckpt_ms_ref");
  const auto ref = core::run_shard_slice(
      slice_config(ref_root + "/shard", kSeed, 1, 2), factory(kSeed));
  ASSERT_TRUE(ref.ok) << ref.error;

  const std::string dir = make_temp_root("ckpt_ms_crash") + "/shard";
  core::ShardSliceConfig crash = slice_config(dir, kSeed, 1, 2);
  crash.crash_after_checkpoints = 1;
  EXPECT_TRUE(core::run_shard_slice(crash, factory(kSeed)).crashed);
  core::ShardSliceConfig resume = slice_config(dir, kSeed, 1, 2);
  resume.resume = true;
  const auto resumed = core::run_shard_slice(resume, factory(kSeed));
  ASSERT_TRUE(resumed.ok) << resumed.error;
  expect_dirs_identical(ref_root + "/shard", dir, "shard-1-of-2");
}

// ---------------------------------------------------------------------------
// Checkpoint purity: the state is a function of (config, boundary), never
// of the cadence that happened to produce it.
// ---------------------------------------------------------------------------

TEST(CheckpointPurity, CadenceDoesNotLeakIntoCheckpointBytes) {
  // I = 16384 crashing after its 2nd checkpoint and I = 32768 crashing
  // after its 1st both stop at global boundary 32768 — the checkpoint
  // files must match byte for byte.
  const std::string dir_fine = make_temp_root("ckpt_purity_fine") + "/shard";
  core::ShardSliceConfig fine = slice_config(dir_fine, kSeed, 0, 1, 16384);
  fine.crash_after_checkpoints = 2;
  EXPECT_TRUE(core::run_shard_slice(fine, factory(kSeed)).crashed);

  const std::string dir_coarse =
      make_temp_root("ckpt_purity_coarse") + "/shard";
  core::ShardSliceConfig coarse = slice_config(dir_coarse, kSeed, 0, 1, 32768);
  coarse.crash_after_checkpoints = 1;
  EXPECT_TRUE(core::run_shard_slice(coarse, factory(kSeed)).crashed);

  const std::string fine_bytes = read_file(dir_fine + "/checkpoint.json");
  const std::string coarse_bytes = read_file(dir_coarse + "/checkpoint.json");
  ASSERT_FALSE(fine_bytes.empty());
  EXPECT_EQ(fine_bytes, coarse_bytes)
      << "checkpoint at boundary 32768 depends on the cadence that wrote it";

  std::string error;
  const auto parsed = core::ShardCheckpoint::parse(fine_bytes, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->boundary_element, 32768u);
  EXPECT_EQ(parsed->config_hash,
            core::census_config_fingerprint(shard_config(kSeed)));
  // Round trip is canonical: parse + re-serialize gives the same bytes.
  EXPECT_EQ(parsed->to_json(), fine_bytes);
}

TEST(CheckpointPurity, SeedChangesEveryCheckpointField) {
  const std::string dir_a = make_temp_root("ckpt_purity_seed_a") + "/shard";
  core::ShardSliceConfig a = slice_config(dir_a, kSeed);
  a.crash_after_checkpoints = 1;
  EXPECT_TRUE(core::run_shard_slice(a, factory(kSeed)).crashed);

  const std::string dir_b = make_temp_root("ckpt_purity_seed_b") + "/shard";
  core::ShardSliceConfig b = slice_config(dir_b, kSeed + 1);
  b.crash_after_checkpoints = 1;
  EXPECT_TRUE(core::run_shard_slice(b, factory(kSeed + 1)).crashed);

  const auto ca = core::ShardCheckpoint::parse(
      read_file(dir_a + "/checkpoint.json"));
  const auto cb = core::ShardCheckpoint::parse(
      read_file(dir_b + "/checkpoint.json"));
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(ca->boundary_element, cb->boundary_element);
  EXPECT_NE(ca->config_hash, cb->config_hash);
  EXPECT_NE(ca->records_bytes, cb->records_bytes);
}

}  // namespace
}  // namespace ftpc
