// Additional ftpd behaviour coverage: miscellaneous commands, the FEAT
// surface, multi-session isolation, and PASV bookkeeping edge cases.
#include <gtest/gtest.h>

#include <optional>

#include "ftp/client.h"
#include "ftpd/server.h"
#include "sim/network.h"
#include "vfs/vfs.h"

namespace ftpc {
namespace {

class FtpdExtraTest : public ::testing::Test {
 protected:
  FtpdExtraTest() : network_(loop_) {}

  std::shared_ptr<ftpd::FtpServer> deploy(
      std::shared_ptr<ftpd::Personality> personality,
      std::shared_ptr<vfs::Vfs> fs) {
    auto server = std::make_shared<ftpd::FtpServer>(server_ip_, personality,
                                                    std::move(fs));
    server->attach(network_);
    return server;
  }

  std::shared_ptr<ftpd::Personality> personality() {
    auto p = std::make_shared<ftpd::Personality>();
    p->banner = "220 extra";
    p->allow_anonymous = true;
    p->feat_lines = {"MDTM", "SIZE", "REST STREAM"};
    return p;
  }

  std::shared_ptr<ftp::FtpClient> connected_client() {
    ftp::FtpClient::Options options;
    options.client_ip = client_ip_;
    auto client = ftp::FtpClient::create(network_, options);
    bool done = false;
    client->connect(server_ip_, 21, [&](Result<ftp::Reply>) { done = true; });
    loop_.run_while_pending([&] { return done; });
    return client;
  }

  ftp::Reply roundtrip(const std::shared_ptr<ftp::FtpClient>& client,
                       std::string verb, std::string arg) {
    std::optional<ftp::Reply> reply;
    client->send(std::move(verb), std::move(arg), [&](Result<ftp::Reply> r) {
      reply = r.is_ok() ? r.value() : ftp::Reply(0, r.status().str());
    });
    loop_.run_while_pending([&] { return reply.has_value(); });
    return *reply;
  }

  void login(const std::shared_ptr<ftp::FtpClient>& client) {
    roundtrip(client, "USER", "anonymous");
    roundtrip(client, "PASS", "t@e.st");
  }

  sim::EventLoop loop_;
  sim::Network network_;
  const Ipv4 server_ip_{203, 0, 113, 50};
  const Ipv4 client_ip_{203, 0, 113, 51};
};

TEST_F(FtpdExtraTest, FeatListsConfiguredFeatures) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  const ftp::Reply feat = roundtrip(client, "FEAT", "");
  EXPECT_EQ(feat.code, 211);
  EXPECT_NE(feat.full_text().find("MDTM"), std::string::npos);
  EXPECT_NE(feat.full_text().find("REST STREAM"), std::string::npos);
  EXPECT_EQ(feat.lines.back(), "End");
}

TEST_F(FtpdExtraTest, MiscCommands) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  login(client);
  EXPECT_EQ(roundtrip(client, "TYPE", "I").code, 200);
  EXPECT_EQ(roundtrip(client, "STRU", "F").code, 200);
  EXPECT_EQ(roundtrip(client, "MODE", "S").code, 200);
  EXPECT_EQ(roundtrip(client, "REST", "100").code, 350);
  EXPECT_EQ(roundtrip(client, "ABOR", "").code, 226);
  EXPECT_EQ(roundtrip(client, "STAT", "").code, 211);
  EXPECT_EQ(roundtrip(client, "XPWD", "").code, 257);
}

TEST_F(FtpdExtraTest, SiteReplyUsesConfiguredCode) {
  auto p = personality();
  p->site_reply = "200 SITE noop accepted";
  auto server = deploy(p, std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  const ftp::Reply site = roundtrip(client, "SITE", "HELP");
  EXPECT_EQ(site.code, 200);
  EXPECT_NE(site.text().find("SITE noop"), std::string::npos);
}

TEST_F(FtpdExtraTest, TwoConcurrentSessionsAreIsolated) {
  auto fs = std::make_shared<vfs::Vfs>();
  ASSERT_TRUE(fs->mkdir("/a").is_ok());
  ASSERT_TRUE(fs->mkdir("/b").is_ok());
  auto server = deploy(personality(), fs);

  auto c1 = connected_client();
  ftp::FtpClient::Options options;
  options.client_ip = Ipv4(203, 0, 113, 52);
  auto c2 = ftp::FtpClient::create(network_, options);
  bool done = false;
  c2->connect(server_ip_, 21, [&](Result<ftp::Reply>) { done = true; });
  loop_.run_while_pending([&] { return done; });

  login(c1);
  login(c2);
  EXPECT_EQ(roundtrip(c1, "CWD", "/a").code, 250);
  EXPECT_EQ(roundtrip(c2, "CWD", "/b").code, 250);
  // Working directories do not bleed across sessions.
  EXPECT_NE(roundtrip(c1, "PWD", "").text().find("\"/a\""),
            std::string::npos);
  EXPECT_NE(roundtrip(c2, "PWD", "").text().find("\"/b\""),
            std::string::npos);
  EXPECT_EQ(server->sessions_accepted(), 2u);
}

TEST_F(FtpdExtraTest, RepeatedPasvReplacesListener) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  login(client);
  const ftp::Reply first = roundtrip(client, "PASV", "");
  const ftp::Reply second = roundtrip(client, "PASV", "");
  ASSERT_EQ(first.code, 227);
  ASSERT_EQ(second.code, 227);
  const auto hp1 = ftp::parse_pasv_reply(first.full_text());
  const auto hp2 = ftp::parse_pasv_reply(second.full_text());
  ASSERT_TRUE(hp1 && hp2);
  EXPECT_NE(hp1->port, hp2->port);
  // The stale listener is gone; only the new port accepts.
  EXPECT_FALSE(network_.is_listening(server_ip_, hp1->port));
  EXPECT_TRUE(network_.is_listening(server_ip_, hp2->port));
}

TEST_F(FtpdExtraTest, TransferWithoutDataChannelGets425) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  login(client);
  // LIST with no preceding PASV/PORT.
  const ftp::Reply reply = roundtrip(client, "LIST", "/");
  EXPECT_EQ(reply.code, 425);
}

TEST_F(FtpdExtraTest, PasvWithoutDialInTimesOutWith425) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  // The server gives up waiting for the data dial-in after 30 virtual
  // seconds; the client must outwait that to observe the 425.
  ftp::FtpClient::Options options;
  options.client_ip = client_ip_;
  options.reply_timeout = 120 * sim::kSecond;
  auto client = ftp::FtpClient::create(network_, options);
  bool done = false;
  client->connect(server_ip_, 21, [&](Result<ftp::Reply>) { done = true; });
  loop_.run_while_pending([&] { return done; });
  login(client);
  ASSERT_EQ(roundtrip(client, "PASV", "").code, 227);
  // Issue LIST but never open the data connection; the server must give
  // up with 425 after its internal timeout rather than hang.
  const ftp::Reply reply = roundtrip(client, "LIST", "/");
  EXPECT_EQ(reply.code, 425);
}

TEST_F(FtpdExtraTest, UploadToNestedMissingPathFails) {
  auto p = personality();
  p->anonymous_writable = true;
  auto server = deploy(p, std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  login(client);
  std::optional<Result<ftp::TransferOutcome>> out;
  client->upload("/", "x", [&](Result<ftp::TransferOutcome> r) {
    out = std::move(r);
  });
  loop_.run_while_pending([&] { return out.has_value(); });
  ASSERT_TRUE(out->is_ok());
  EXPECT_TRUE(out->value().refused);
}

TEST_F(FtpdExtraTest, AnonymousAliasesAccepted) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  // "ftp" is the traditional anonymous alias.
  EXPECT_EQ(roundtrip(client, "USER", "ftp").code, 331);
  EXPECT_EQ(roundtrip(client, "PASS", "x@y.z").code, 230);
}

TEST_F(FtpdExtraTest, DetachStopsNewSessionsButNotActiveOnes) {
  auto server = deploy(personality(), std::make_shared<vfs::Vfs>());
  auto client = connected_client();
  login(client);
  server->detach(network_);
  // The live session still answers.
  EXPECT_EQ(roundtrip(client, "NOOP", "").code, 200);
  // New connections are refused.
  ftp::FtpClient::Options options;
  options.client_ip = Ipv4(203, 0, 113, 53);
  auto c2 = ftp::FtpClient::create(network_, options);
  std::optional<bool> ok;
  c2->connect(server_ip_, 21,
              [&](Result<ftp::Reply> r) { ok = r.is_ok(); });
  loop_.run_while_pending([&] { return ok.has_value(); });
  EXPECT_FALSE(*ok);
}

}  // namespace
}  // namespace ftpc
