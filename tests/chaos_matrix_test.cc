// The chaos fault-matrix determinism suite — the acceptance gate for
// sim::chaos and the retry layer above it. For every fault kind (and two
// mixed profiles) it pins three properties:
//
//   1. Split invariance: a chaos-enabled census produces byte-identical
//      metrics JSON, trace JSONL, and record stream for every
//      (shards, threads) decomposition, because each host's fault plan is
//      a pure hash of (chaos_seed, ip) — never shared RNG state.
//   2. Funnel conservation: every probed address has exactly one terminal
//      outcome, faults included:
//        funnel.stage.probe == sum(funnel.drop.*) + funnel.done.completed
//   3. Monotone recovery: raising the retry budget (SYN retransmits +
//      command retries) never yields fewer completed hosts. One fault kind
//      per host is what makes this provable — see src/sim/chaos.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/census.h"
#include "core/records.h"
#include "core/sharded_census.h"
#include "net/internet.h"
#include "obs/metrics.h"
#include "popgen/population.h"
#include "sim/chaos.h"
#include "sim/network.h"

namespace ftpc {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

struct MatrixEntry {
  std::string name;
  sim::ChaosProfile profile;
};

// Every fault kind alone at a rate high enough to hit dozens of hosts,
// plus the two mixed presets.
std::vector<MatrixEntry> fault_matrix() {
  std::vector<MatrixEntry> matrix;
  for (const sim::FaultKind kind :
       {sim::FaultKind::kSynLoss, sim::FaultKind::kConnectTimeout,
        sim::FaultKind::kRstAtByte, sim::FaultKind::kReplyStall,
        sim::FaultKind::kTruncatedReply, sim::FaultKind::kGarbledReply,
        sim::FaultKind::kPrematureClose,
        sim::FaultKind::kDataChannelFailure}) {
    matrix.push_back({std::string(sim::fault_kind_name(kind)),
                      sim::ChaosProfile::single(kind, 0.5)});
  }
  matrix.push_back({"flaky", *sim::ChaosProfile::named("flaky")});
  matrix.push_back({"hostile", *sim::ChaosProfile::named("hostile")});
  return matrix;
}

core::CensusConfig matrix_config(const sim::ChaosProfile& profile,
                                 std::uint32_t retries, bool with_trace) {
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = kScaleShift;
  config.chaos_enabled = true;
  config.chaos = profile;
  config.probe_retries = retries;
  config.enumerator.command_retries = retries;
  if (with_trace) {
    config.trace.enabled = true;
    config.trace.sample_rate = 0.25;  // per-IP pure: split-invariant
    config.trace.capture_wire = true;
  }
  return config;
}

// One line per report, sorted by IP: the sharded merge replays in
// ascending-IP order while the sequential census emits in discovery
// order, so comparisons must be order-normalized.
std::string record_digest(std::vector<core::HostReport> reports) {
  std::sort(reports.begin(), reports.end(),
            [](const core::HostReport& a, const core::HostReport& b) {
              return a.ip.value() < b.ip.value();
            });
  std::string out;
  for (const core::HostReport& r : reports) {
    out += std::to_string(r.ip.value()) + '|' + std::to_string(r.connected) +
           std::to_string(r.ftp_compliant) +
           std::to_string(static_cast<int>(r.login)) + '|' +
           std::to_string(r.files.size()) + '|' +
           std::to_string(r.dirs_listed) + '|' +
           std::to_string(r.requests_used) + '|' +
           std::to_string(static_cast<int>(r.error.code())) + '\n';
  }
  return out;
}

struct RunOutput {
  std::string metrics_json;
  std::string trace_jsonl;
  std::string records;
  std::uint64_t probed = 0;
  std::uint64_t completed = 0;
  obs::MetricsRegistry metrics;
};

RunOutput digest(core::CensusStats stats, core::VectorSink& sink) {
  RunOutput out;
  out.metrics_json = stats.metrics.to_json();
  out.trace_jsonl = stats.trace.to_jsonl();
  out.records = record_digest(sink.reports());
  out.probed = stats.scan.probed;
  out.completed = stats.metrics.value("funnel.done.completed");
  out.metrics = std::move(stats.metrics);
  return out;
}

RunOutput run_sequential(const core::CensusConfig& config) {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::VectorSink sink;
  core::CensusStats stats = core::Census(network, config).run(sink);
  return digest(std::move(stats), sink);
}

RunOutput run_sharded(core::CensusConfig config, std::uint32_t shards,
                      std::uint32_t threads) {
  config.shards = shards;
  config.threads = threads;
  core::ShardedCensus census(
      [] { return std::make_unique<popgen::SyntheticPopulation>(kSeed); },
      config);
  core::VectorSink sink;
  core::CensusStats stats = census.run(sink);
  return digest(std::move(stats), sink);
}

// ---------------------------------------------------------------------------
// 1. Split invariance
// ---------------------------------------------------------------------------

TEST(ChaosMatrixTest, EveryFaultKindIsSplitInvariant) {
  for (const MatrixEntry& entry : fault_matrix()) {
    // retries=1 so the invariance check also covers the retransmit and
    // backoff paths, not just first-attempt outcomes.
    const core::CensusConfig config =
        matrix_config(entry.profile, /*retries=*/1, /*with_trace=*/true);
    const RunOutput baseline = run_sequential(config);
    ASSERT_GT(baseline.probed, 0u) << entry.name;
    ASSERT_GT(baseline.metrics.sum_with_prefix("chaos.injected."), 0u)
        << entry.name << ": profile injected nothing; the matrix row is"
        << " vacuous";

    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        const RunOutput split = run_sharded(config, shards, threads);
        const auto label = entry.name + " shards=" +
                           std::to_string(shards) +
                           " threads=" + std::to_string(threads);
        EXPECT_EQ(split.metrics_json, baseline.metrics_json) << label;
        EXPECT_EQ(split.trace_jsonl, baseline.trace_jsonl) << label;
        EXPECT_EQ(split.records, baseline.records) << label;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Funnel conservation
// ---------------------------------------------------------------------------

TEST(ChaosMatrixTest, FunnelConservesEveryProbedAddress) {
  for (const MatrixEntry& entry : fault_matrix()) {
    for (const std::uint32_t retries : {0u, 2u}) {
      const RunOutput out = run_sequential(
          matrix_config(entry.profile, retries, /*with_trace=*/false));
      const obs::MetricsRegistry& m = out.metrics;
      EXPECT_EQ(m.value("funnel.stage.probe"), out.probed)
          << entry.name << " retries=" << retries;
      EXPECT_EQ(
          m.sum_with_prefix("funnel.drop.") + m.value("funnel.done.completed"),
          m.value("funnel.stage.probe"))
          << entry.name << " retries=" << retries
          << ": a probed address leaked out of (or was double-counted in)"
          << " the funnel";
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Monotone recovery
// ---------------------------------------------------------------------------

TEST(ChaosMatrixTest, MoreRetriesNeverCompleteFewerHosts) {
  for (const MatrixEntry& entry : fault_matrix()) {
    std::uint64_t previous = 0;
    std::vector<std::uint64_t> completed_by_retries;
    for (const std::uint32_t retries : {0u, 1u, 2u, 3u}) {
      const RunOutput out = run_sequential(
          matrix_config(entry.profile, retries, /*with_trace=*/false));
      EXPECT_GE(out.completed, previous)
          << entry.name << ": raising the retry budget to " << retries
          << " lost completed hosts";
      previous = out.completed;
      completed_by_retries.push_back(out.completed);
    }
    // Retries must actually buy something for the recoverable kinds: a
    // syn_loss plan drops 1-3 SYNs, so a budget of 3 recovers every
    // faulted host; a stalled reply is re-elicited by a retransmit.
    if (entry.name == "syn_loss" || entry.name == "stall") {
      EXPECT_GT(completed_by_retries.back(), completed_by_retries.front())
          << entry.name;
    }
  }
}

}  // namespace
}  // namespace ftpc
