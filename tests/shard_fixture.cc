#include "shard_fixture.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "core/dataset.h"
#include "core/shard_artifact.h"
#include "core/sharded_census.h"
#include "popgen/population.h"
#include "sim/chaos.h"

namespace ftpc::fixture {

core::PopulationFactory factory(std::uint64_t seed) {
  return [seed] { return std::make_unique<popgen::SyntheticPopulation>(seed); };
}

core::CensusConfig shard_config(std::uint64_t seed, unsigned scale_shift,
                                const ShardConfigOptions& options) {
  core::CensusConfig config;
  config.seed = seed;
  config.scale_shift = scale_shift;
  config.trace.enabled = true;
  if (options.full_wire) {
    config.trace.sample_rate = 1.0;
    config.trace.capture_wire = true;
  }
  config.timeline.enabled = true;
  config.timeline.interval_us = 10'000;  // 10k elements per tick at 1M pps
  if (options.chaos_lossy) {
    config.chaos_enabled = true;
    config.chaos = *sim::ChaosProfile::named("lossy");
  }
  config.probe_retries = options.retries;
  config.enumerator.command_retries = options.retries;
  return config;
}

std::string read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
    out.append(buffer, got);
  }
  std::fclose(in);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), out);
  std::fclose(out);
}

void append_file(const std::string& path, const std::string& bytes) {
  std::FILE* out = std::fopen(path.c_str(), "ab");
  ASSERT_NE(out, nullptr) << path;
  std::fwrite(bytes.data(), 1, bytes.size(), out);
  std::fclose(out);
}

std::string make_temp_root(const std::string& tag) {
  // Pid-qualified: ctest runs each gtest case as its own process, often in
  // parallel, so a tag-only path (e.g. a fixture's shared "pristine" dir)
  // would be written concurrently by sibling processes.
  const std::string root = ::testing::TempDir() + "ftpc_" + tag + "_" +
                           std::to_string(static_cast<long>(::getpid()));
  ::mkdir(root.c_str(), 0777);
  return root;
}

const char* const kShardArtifactFiles[8] = {
    "manifest.json", "records.ftpd",         "metrics.json",
    "trace.jsonl",   "timeline.jsonl",       "timeline_facts.jsonl",
    "journal.jsonl", "checkpoint.json",
};

void expect_dirs_identical(const std::string& expected_dir,
                           const std::string& actual_dir,
                           const std::string& label) {
  for (const char* file : kShardArtifactFiles) {
    const std::string expected = read_file(expected_dir + "/" + file);
    const std::string actual = read_file(actual_dir + "/" + file);
    ASSERT_FALSE(expected.empty()) << label << ": reference " << file
                                   << " is empty — vacuous comparison";
    EXPECT_EQ(expected, actual)
        << label << ": " << file << " diverged after crash/resume";
  }
}

SingleProcessArtifacts run_single_process(const core::CensusConfig& base) {
  core::CensusConfig config = base;
  config.shards = 1;
  config.threads = 1;
  core::ShardedCensus census(factory(base.seed), config);
  core::VectorSink sink;
  core::CensusStats stats = census.run(sink);
  SingleProcessArtifacts out;
  out.records = core::dataset_file_header();
  for (const core::HostReport& report : sink.reports()) {
    out.records += core::encode_host_frame(report);
  }
  out.metrics = stats.metrics.to_json();
  out.trace = stats.trace.to_jsonl();
  out.timeline = stats.timeline.to_jsonl();
  return out;
}

std::vector<std::string> run_slices(const core::CensusConfig& base,
                                    std::uint32_t total_shards,
                                    const std::string& root,
                                    std::uint64_t checkpoint_interval) {
  std::vector<std::string> dirs;
  for (std::uint32_t shard = 0; shard < total_shards; ++shard) {
    core::ShardSliceConfig slice;
    slice.census = base;
    slice.shard = shard;
    slice.total_shards = total_shards;
    slice.out_dir = root + "/shard" + std::to_string(shard);
    slice.checkpoint_interval = checkpoint_interval;
    const core::ShardSliceResult result =
        core::run_shard_slice(slice, factory(base.seed));
    EXPECT_TRUE(result.ok) << "shard " << shard << "/" << total_shards << ": "
                           << result.error;
    dirs.push_back(slice.out_dir);
  }
  return dirs;
}

void expect_merged_dir_matches(const SingleProcessArtifacts& expected,
                               const std::string& out_dir,
                               const std::string& label) {
  EXPECT_EQ(expected.records, read_file(out_dir + "/records.ftpd"))
      << label << ": merged records diverged from single-process bytes";
  EXPECT_EQ(expected.metrics, read_file(out_dir + "/metrics.json"))
      << label << ": merged metrics diverged from single-process bytes";
  EXPECT_EQ(expected.trace, read_file(out_dir + "/trace.jsonl"))
      << label << ": merged trace diverged from single-process bytes";
  EXPECT_EQ(expected.timeline, read_file(out_dir + "/timeline.jsonl"))
      << label << ": merged timeline diverged from single-process bytes";
}

std::vector<obs::HealthSample> parse_history(const std::string& path) {
  std::vector<obs::HealthSample> beats;
  const std::string body = read_file(path);
  std::size_t offset = 0;
  while (offset < body.size()) {
    std::size_t eol = body.find('\n', offset);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line(body.data() + offset, eol - offset);
    offset = eol + 1;
    if (line.empty()) continue;
    std::string error;
    const auto sample = obs::parse_health_line(line, &error);
    EXPECT_TRUE(sample.has_value()) << path << ": " << error;
    if (sample) beats.push_back(*sample);
  }
  return beats;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace ftpc::fixture
