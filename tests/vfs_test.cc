#include <gtest/gtest.h>

#include "common/datetime.h"
#include "vfs/listing.h"
#include "vfs/vfs.h"

namespace ftpc::vfs {
namespace {

TEST(Mode, PermissionBits) {
  EXPECT_TRUE(Mode{0644}.world_readable());
  EXPECT_FALSE(Mode{0644}.world_writable());
  EXPECT_TRUE(Mode{0666}.world_writable());
  EXPECT_FALSE(Mode{0600}.world_readable());
  EXPECT_FALSE(Mode{0750}.world_readable());
}

TEST(Mode, StringRendering) {
  EXPECT_EQ(Mode{0644}.str(), "rw-r--r--");
  EXPECT_EQ(Mode{0755}.str(), "rwxr-xr-x");
  EXPECT_EQ(Mode{0600}.str(), "rw-------");
  EXPECT_EQ(Mode{0777}.str(), "rwxrwxrwx");
  EXPECT_EQ(Mode{0}.str(), "---------");
}

TEST(VfsTest, RootExists) {
  Vfs fs;
  const Node* root = fs.lookup("/");
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->is_dir());
  EXPECT_EQ(fs.node_count(), 0u);
}

TEST(VfsTest, MkdirCreatesParents) {
  Vfs fs;
  auto result = fs.mkdir("/a/b/c");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(fs.lookup("/a")->is_dir());
  EXPECT_TRUE(fs.lookup("/a/b")->is_dir());
  EXPECT_TRUE(fs.lookup("/a/b/c")->is_dir());
  EXPECT_EQ(fs.node_count(), 3u);
}

TEST(VfsTest, MkdirIsIdempotent) {
  Vfs fs;
  ASSERT_TRUE(fs.mkdir("/a/b").is_ok());
  ASSERT_TRUE(fs.mkdir("/a/b").is_ok());
  EXPECT_EQ(fs.node_count(), 2u);
}

TEST(VfsTest, MkdirFailsThroughFile) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/a", {.size = 10}).is_ok());
  EXPECT_FALSE(fs.mkdir("/a/b").is_ok());
  EXPECT_FALSE(fs.mkdir("/a").is_ok());  // file exists at path
}

TEST(VfsTest, AddFileWithMetadata) {
  Vfs fs;
  FileAttrs attrs;
  attrs.size = 1234;
  attrs.mode = Mode{0600};
  attrs.owner = "alice";
  auto result = fs.add_file("/docs/report.pdf", std::move(attrs));
  ASSERT_TRUE(result.is_ok());
  const Node* node = fs.lookup("/docs/report.pdf");
  ASSERT_NE(node, nullptr);
  EXPECT_FALSE(node->is_dir());
  EXPECT_EQ(node->size, 1234u);
  EXPECT_EQ(node->owner, "alice");
  EXPECT_FALSE(node->mode.world_readable());
}

TEST(VfsTest, ContentImpliesSize) {
  Vfs fs;
  FileAttrs attrs;
  attrs.size = 9999;  // ignored when content is present
  attrs.content = "hello";
  auto result = fs.add_file("/x.txt", std::move(attrs));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->size, 5u);
  EXPECT_EQ(result.value()->content, "hello");
}

TEST(VfsTest, OverwriteKeepsNodeCount) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/f", {.size = 1}).is_ok());
  ASSERT_TRUE(fs.add_file("/f", {.size = 2}).is_ok());
  EXPECT_EQ(fs.node_count(), 1u);
  EXPECT_EQ(fs.lookup("/f")->size, 2u);
}

TEST(VfsTest, CannotOverwriteDirWithFile) {
  Vfs fs;
  ASSERT_TRUE(fs.mkdir("/d").is_ok());
  EXPECT_FALSE(fs.add_file("/d", {.size = 1}).is_ok());
}

TEST(VfsTest, RemoveFile) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/a/f", {.size = 1}).is_ok());
  EXPECT_TRUE(fs.remove("/a/f").is_ok());
  EXPECT_EQ(fs.lookup("/a/f"), nullptr);
  EXPECT_EQ(fs.node_count(), 1u);  // /a remains
}

TEST(VfsTest, RemoveRules) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/a/f", {.size = 1}).is_ok());
  EXPECT_FALSE(fs.remove("/a").is_ok());     // not empty
  EXPECT_FALSE(fs.remove("/nope").is_ok());  // missing
  EXPECT_FALSE(fs.remove("/").is_ok());      // root
  ASSERT_TRUE(fs.remove("/a/f").is_ok());
  EXPECT_TRUE(fs.remove("/a").is_ok());  // now empty
}

TEST(VfsTest, ListSortedByName) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/zeta", {.size = 1}).is_ok());
  ASSERT_TRUE(fs.add_file("/alpha", {.size = 1}).is_ok());
  ASSERT_TRUE(fs.mkdir("/mid").is_ok());
  auto listing = fs.list("/");
  ASSERT_TRUE(listing.is_ok());
  ASSERT_EQ(listing.value().size(), 3u);
  EXPECT_EQ(listing.value()[0]->name, "alpha");
  EXPECT_EQ(listing.value()[1]->name, "mid");
  EXPECT_EQ(listing.value()[2]->name, "zeta");
}

TEST(VfsTest, ListErrors) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/f", {.size = 1}).is_ok());
  EXPECT_FALSE(fs.list("/missing").is_ok());
  EXPECT_FALSE(fs.list("/f").is_ok());
}

TEST(VfsTest, WalkVisitsEverything) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/a/b/c.txt", {.size = 1}).is_ok());
  ASSERT_TRUE(fs.add_file("/a/d.txt", {.size = 1}).is_ok());
  std::vector<std::string> paths;
  fs.walk([&](const std::string& path, const Node&) { paths.push_back(path); });
  EXPECT_EQ(paths.size(), 4u);  // /a, /a/b, /a/b/c.txt, /a/d.txt
  EXPECT_EQ(paths[0], "/a");
}

TEST(VfsTest, PathNormalizationInLookup) {
  Vfs fs;
  ASSERT_TRUE(fs.mkdir("/a/b").is_ok());
  EXPECT_NE(fs.lookup("a/b"), nullptr);    // missing leading slash ok
  EXPECT_NE(fs.lookup("/a//b"), nullptr);  // doubled separator ok
  EXPECT_NE(fs.lookup("/a/b/"), nullptr);  // trailing slash ok
}

// ---------------------------------------------------------------------------
// Listing renderers
// ---------------------------------------------------------------------------

class ListingTest : public ::testing::Test {
 protected:
  Node make_file(const std::string& name, std::uint64_t size,
                 std::uint16_t mode) {
    Node node;
    node.name = name;
    node.type = NodeType::kFile;
    node.size = size;
    node.mode = Mode{mode};
    node.mtime = unix_from_civil({2015, 6, 18, 9, 42, 0});
    return node;
  }
};

TEST_F(ListingTest, UnixFileLine) {
  const Node node = make_file("data.bin", 1024, 0644);
  const std::string line =
      render_listing_line(node, ListingFormat::kUnix, 2015);
  EXPECT_EQ(line,
            "-rw-r--r--    1 ftp      ftp              1024 Jun 18 09:42 "
            "data.bin");
}

TEST_F(ListingTest, UnixDirectoryLine) {
  Node node;
  node.name = "pub";
  node.type = NodeType::kDirectory;
  node.mode = Mode{0755};
  node.mtime = unix_from_civil({2014, 1, 5, 0, 0, 0});
  const std::string line =
      render_listing_line(node, ListingFormat::kUnix, 2015);
  EXPECT_TRUE(line.rfind("drwxr-xr-x", 0) == 0) << line;
  EXPECT_NE(line.find("Jan  5  2014"), std::string::npos) << line;
  EXPECT_NE(line.find(" pub"), std::string::npos);
}

TEST_F(ListingTest, WindowsFileLine) {
  const Node node = make_file("report.doc", 52224, 0644);
  const std::string line =
      render_listing_line(node, ListingFormat::kWindows, 2015);
  EXPECT_EQ(line, "06-18-15  09:42AM                52224 report.doc");
}

TEST_F(ListingTest, WindowsDirLine) {
  Node node;
  node.name = "WINDOWS";
  node.type = NodeType::kDirectory;
  node.mtime = unix_from_civil({2012, 11, 2, 17, 30, 0});
  const std::string line =
      render_listing_line(node, ListingFormat::kWindows, 2015);
  EXPECT_EQ(line, "11-02-12  05:30PM       <DIR>          WINDOWS");
}

TEST_F(ListingTest, FullListingUsesCrlf) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/a.txt", {.size = 5}).is_ok());
  ASSERT_TRUE(fs.mkdir("/dir").is_ok());
  const auto entries = fs.list("/");
  ASSERT_TRUE(entries.is_ok());
  const std::string body =
      render_listing(entries.value(), ListingFormat::kUnix, 2015);
  EXPECT_NE(body.find("a.txt\r\n"), std::string::npos);
  EXPECT_NE(body.find("dir\r\n"), std::string::npos);
}

TEST_F(ListingTest, NlstIsBareNames) {
  Vfs fs;
  ASSERT_TRUE(fs.add_file("/a.txt", {.size = 5}).is_ok());
  ASSERT_TRUE(fs.add_file("/b.txt", {.size = 5}).is_ok());
  const auto entries = fs.list("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(render_nlst(entries.value()), "a.txt\r\nb.txt\r\n");
}

}  // namespace
}  // namespace ftpc::vfs
