#include <gtest/gtest.h>

#include <cstdio>

#include "core/dataset.h"

namespace ftpc::core {
namespace {

HostReport sample_report(std::uint32_t ip_value) {
  HostReport r;
  r.ip = Ipv4(ip_value);
  r.connected = true;
  r.ftp_compliant = true;
  r.banner = "ProFTPD 1.3.5 Server (ProFTPD Default Installation)";
  r.login = LoginOutcome::kAccepted;
  for (int i = 0; i < 3; ++i) {
    FileRecord f;
    f.path = "/pub/file-" + std::to_string(i) + ".txt";
    f.size = 100 + static_cast<std::uint64_t>(i);
    f.readable = ftp::Readability::kReadable;
    f.has_permissions = true;
    f.owner = "ftp";
    r.files.push_back(std::move(f));
  }
  FileRecord dir;
  dir.path = "/pub";
  dir.is_dir = true;
  r.files.push_back(dir);
  r.dirs_listed = 2;
  r.requests_used = 9;
  r.syst_reply = "UNIX Type: L8";
  r.feat_lines = {"Features:", " MDTM", "End"};
  r.help_text = "214 Help OK.";
  r.ftps_supported = true;
  ftp::Certificate cert;
  cert.subject_cn = "*.home.pl";
  cert.issuer_cn = "SimTrust CA";
  cert.browser_trusted = true;
  cert.serial = 7;
  cert.key_id = 9;
  r.certificate = cert;
  r.pasv_ip = Ipv4(192, 168, 1, 4);
  return r;
}

TEST(DatasetCodec, RoundTripsFullReport) {
  const HostReport original = sample_report(0x01020304);
  const auto decoded = decode_host_report(encode_host_report(original));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->ip, original.ip);
  EXPECT_EQ(decoded->banner, original.banner);
  EXPECT_EQ(decoded->login, original.login);
  ASSERT_EQ(decoded->files.size(), original.files.size());
  EXPECT_EQ(decoded->files[0].path, original.files[0].path);
  EXPECT_EQ(decoded->files[0].size, original.files[0].size);
  EXPECT_EQ(decoded->files[3].is_dir, true);
  EXPECT_EQ(decoded->feat_lines, original.feat_lines);
  ASSERT_TRUE(decoded->certificate);
  EXPECT_EQ(*decoded->certificate, *original.certificate);
  ASSERT_TRUE(decoded->pasv_ip);
  EXPECT_EQ(*decoded->pasv_ip, *original.pasv_ip);
  EXPECT_TRUE(decoded->error.is_ok());
}

TEST(DatasetCodec, RoundTripsErrorStatus) {
  HostReport report;
  report.ip = Ipv4(9, 9, 9, 9);
  report.error = Status(ErrorCode::kTimeout, "no banner");
  const auto decoded = decode_host_report(encode_host_report(report));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->error.code(), ErrorCode::kTimeout);
  EXPECT_EQ(decoded->error.message(), "no banner");
}

TEST(DatasetCodec, RejectsTruncatedFrames) {
  const std::string frame = encode_host_report(sample_report(1));
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                frame.size() / 2, frame.size() - 1}) {
    EXPECT_FALSE(decode_host_report(std::string_view(frame).substr(0, cut)))
        << "cut at " << cut;
  }
  EXPECT_FALSE(decode_host_report(frame + "extra"));
}

class DatasetFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/dataset_test.ftpd";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(DatasetFileTest, WriteReadRoundTrip) {
  {
    DatasetWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    for (std::uint32_t i = 0; i < 50; ++i) {
      writer.on_host(sample_report(i));
    }
    EXPECT_EQ(writer.records_written(), 50u);
    EXPECT_TRUE(writer.close());
  }
  DatasetReader reader(path_);
  ASSERT_TRUE(reader.ok());
  std::uint32_t expected = 0;
  while (auto report = reader.next()) {
    EXPECT_EQ(report->ip.value(), expected++);
  }
  EXPECT_EQ(expected, 50u);
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.records_read(), 50u);
}

TEST_F(DatasetFileTest, DetectsTruncatedTail) {
  {
    DatasetWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    for (std::uint32_t i = 0; i < 10; ++i) writer.on_host(sample_report(i));
    ASSERT_TRUE(writer.close());
  }
  // Chop the last 5 bytes: the final frame's checksum is damaged.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size - 5), 0);

  DatasetReader reader(path_);
  ASSERT_TRUE(reader.ok());
  std::uint64_t count = 0;
  while (reader.next()) ++count;
  EXPECT_EQ(count, 9u);
  EXPECT_TRUE(reader.truncated());
}

TEST_F(DatasetFileTest, DetectsCorruptedByte) {
  {
    DatasetWriter writer(path_);
    ASSERT_TRUE(writer.ok());
    writer.on_host(sample_report(1));
    writer.on_host(sample_report(2));
    ASSERT_TRUE(writer.close());
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);  // somewhere inside the first frame body
  std::fputc(0xFF, f);
  std::fclose(f);

  DatasetReader reader(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.next());  // checksum mismatch
  EXPECT_TRUE(reader.truncated());
}

TEST_F(DatasetFileTest, RejectsWrongMagic) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTAFTPD", f);
  std::fclose(f);
  DatasetReader reader(path_);
  EXPECT_FALSE(reader.ok());
}

TEST_F(DatasetFileTest, MissingFileNotOk) {
  DatasetReader reader(path_ + ".missing");
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.next());
}

TEST_F(DatasetFileTest, UnwritablePathNotOk) {
  DatasetWriter writer("/nonexistent-dir/x.ftpd");
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace ftpc::core
