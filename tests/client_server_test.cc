// Integration tests: FtpClient against the ftpd engine over the simulated
// network, exercising every personality quirk the paper documents.
#include <gtest/gtest.h>

#include "ftp/client.h"
#include "ftpd/server.h"
#include "sim/network.h"
#include "vfs/vfs.h"

namespace ftpc {
namespace {

using ftp::FtpClient;
using ftp::Reply;
using ftp::TransferOutcome;
using ftpd::FtpServer;
using ftpd::Personality;
using ftpd::UserReplyStyle;

class ClientServerTest : public ::testing::Test {
 protected:
  ClientServerTest() : network_(loop_) {}

  std::shared_ptr<Personality> base_personality() {
    auto p = std::make_shared<Personality>();
    p->implementation = "TestFTPd";
    p->banner = "220 TestFTPd ready.";
    p->allow_anonymous = true;
    return p;
  }

  std::shared_ptr<vfs::Vfs> base_filesystem() {
    auto fs = std::make_shared<vfs::Vfs>();
    (void)fs->mkdir("/pub");
    (void)fs->add_file("/pub/readme.txt",
                       {.size = 0, .mode = vfs::Mode{0644},
                        .content = "hello world"});
    (void)fs->add_file("/pub/secret.key",
                       {.size = 128, .mode = vfs::Mode{0600}});
    return fs;
  }

  /// Deploys a server and returns it (attached).
  std::shared_ptr<FtpServer> deploy(std::shared_ptr<Personality> personality,
                                    std::shared_ptr<vfs::Vfs> fs,
                                    ftpd::SessionObserver* observer = nullptr) {
    auto server = std::make_shared<FtpServer>(server_ip_, std::move(personality),
                                              std::move(fs), observer);
    server->attach(network_);
    return server;
  }

  std::shared_ptr<FtpClient> make_client() {
    FtpClient::Options options;
    options.client_ip = client_ip_;
    return FtpClient::create(network_, options);
  }

  /// Connects and returns the banner (drives the loop).
  Reply connect_and_banner(const std::shared_ptr<FtpClient>& client) {
    Reply banner;
    bool done = false;
    client->connect(server_ip_, 21, [&](Result<Reply> r) {
      EXPECT_TRUE(r.is_ok()) << r.is_ok();
      if (r.is_ok()) banner = r.value();
      done = true;
    });
    loop_.run_while_pending([&] { return done; });
    return banner;
  }

  /// Sends a command and returns the reply (drives the loop).
  Reply roundtrip(const std::shared_ptr<FtpClient>& client, std::string verb,
                  std::string arg) {
    Reply reply;
    bool done = false;
    client->send(std::move(verb), std::move(arg), [&](Result<Reply> r) {
      EXPECT_TRUE(r.is_ok());
      if (r.is_ok()) reply = r.value();
      done = true;
    });
    loop_.run_while_pending([&] { return done; });
    return reply;
  }

  /// Anonymous login helper; returns final reply code.
  int login_anonymous(const std::shared_ptr<FtpClient>& client) {
    const Reply user = roundtrip(client, "USER", "anonymous");
    if (user.code == 230) return 230;
    if (user.code != 331 && user.code != 332) return user.code;
    return roundtrip(client, "PASS", "test@example.com").code;
  }

  Result<TransferOutcome> download(const std::shared_ptr<FtpClient>& client,
                                   std::string verb, std::string arg) {
    std::optional<Result<TransferOutcome>> out;
    client->download(std::move(verb), std::move(arg),
                     [&](Result<TransferOutcome> r) { out = std::move(r); });
    loop_.run_while_pending([&] { return out.has_value(); });
    return std::move(*out);
  }

  sim::EventLoop loop_;
  sim::Network network_;
  const Ipv4 server_ip_{198, 51, 100, 1};
  const Ipv4 client_ip_{198, 51, 100, 2};
};

// ---------------------------------------------------------------------------
// Login flows
// ---------------------------------------------------------------------------

TEST_F(ClientServerTest, BannerAndAnonymousLogin) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  const Reply banner = connect_and_banner(client);
  EXPECT_EQ(banner.code, 220);
  EXPECT_EQ(banner.text(), "TestFTPd ready.");
  EXPECT_EQ(login_anonymous(client), 230);
}

TEST_F(ClientServerTest, AnonymousDisabled530) {
  auto p = base_personality();
  p->allow_anonymous = false;
  p->user_reply_style = UserReplyStyle::kReject530;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "USER", "anonymous").code, 530);
}

TEST_F(ClientServerTest, RejectIn331Quirk) {
  auto p = base_personality();
  p->allow_anonymous = false;
  p->user_reply_style = UserReplyStyle::kRejectIn331;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  const Reply user = roundtrip(client, "USER", "anonymous");
  EXPECT_EQ(user.code, 331);
  EXPECT_NE(user.text().find("not allowed"), std::string::npos);
  EXPECT_EQ(roundtrip(client, "PASS", "x@y.z").code, 530);
}

TEST_F(ClientServerTest, Immediate230Quirk) {
  auto p = base_personality();
  p->user_reply_style = UserReplyStyle::kImmediate230;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "USER", "anonymous").code, 230);
}

TEST_F(ClientServerTest, VirtualHostQuirk) {
  auto p = base_personality();
  p->user_reply_style = UserReplyStyle::kNeedVirtualHost;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  const Reply user = roundtrip(client, "USER", "anonymous");
  EXPECT_EQ(user.code, 331);
  EXPECT_NE(user.text().find("virtual"), std::string::npos);
  EXPECT_EQ(roundtrip(client, "PASS", "x@y.z").code, 530);
  // With the vhost suffix the login completes.
  EXPECT_EQ(roundtrip(client, "USER", "anonymous@site.example").code, 331);
  EXPECT_EQ(roundtrip(client, "PASS", "x@y.z").code, 230);
}

TEST_F(ClientServerTest, FtpsRequiredBeforeLogin) {
  auto p = base_personality();
  p->supports_ftps = true;
  p->requires_ftps_before_login = true;
  ftp::Certificate cert;
  cert.subject_cn = "test";
  cert.issuer_cn = "test";
  p->certificate = cert;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  const Reply user = roundtrip(client, "USER", "anonymous");
  EXPECT_EQ(user.code, 331);
  EXPECT_NE(user.text().find("secure"), std::string::npos);
  EXPECT_EQ(roundtrip(client, "PASS", "x@y.z").code, 530);

  // After AUTH TLS, the login succeeds.
  std::optional<Result<ftp::Certificate>> got;
  client->auth_tls([&](Result<ftp::Certificate> r) { got = std::move(r); });
  loop_.run_while_pending([&] { return got.has_value(); });
  ASSERT_TRUE(got->is_ok());
  EXPECT_EQ(got->value().subject_cn, "test");
  EXPECT_TRUE(client->tls_active());
  EXPECT_EQ(login_anonymous(client), 230);
}

TEST_F(ClientServerTest, RealCredentialsAccepted) {
  auto p = base_personality();
  p->allow_anonymous = false;
  p->valid_credentials.emplace_back("root", "");
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "USER", "root").code, 331);
  EXPECT_EQ(roundtrip(client, "PASS", "").code, 230);
}

TEST_F(ClientServerTest, PassWithoutUser503) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "PASS", "whatever").code, 503);
}

TEST_F(ClientServerTest, BannerForbidsAnonymousLine) {
  auto p = base_personality();
  p->allow_anonymous = false;
  p->banner_forbids_anonymous = true;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  const Reply banner = connect_and_banner(client);
  EXPECT_NE(banner.full_text().find("NO ANONYMOUS ACCESS"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Commands requiring auth
// ---------------------------------------------------------------------------

TEST_F(ClientServerTest, CommandsRejectedBeforeLogin) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "PWD", "").code, 530);
  EXPECT_EQ(roundtrip(client, "PASV", "").code, 530);
  EXPECT_EQ(roundtrip(client, "CWD", "/pub").code, 530);
}

TEST_F(ClientServerTest, PreLoginCommandsWork) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "SYST", "").code, 215);
  EXPECT_EQ(roundtrip(client, "FEAT", "").code, 211);
  EXPECT_EQ(roundtrip(client, "NOOP", "").code, 200);
}

TEST_F(ClientServerTest, CwdAndPwd) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  EXPECT_NE(roundtrip(client, "PWD", "").text().find("\"/\""),
            std::string::npos);
  EXPECT_EQ(roundtrip(client, "CWD", "pub").code, 250);
  EXPECT_NE(roundtrip(client, "PWD", "").text().find("\"/pub\""),
            std::string::npos);
  EXPECT_EQ(roundtrip(client, "CDUP", "").code, 250);
  EXPECT_EQ(roundtrip(client, "CWD", "/missing").code, 550);
}

TEST_F(ClientServerTest, SizeAndMdtm) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  const Reply size = roundtrip(client, "SIZE", "/pub/readme.txt");
  EXPECT_EQ(size.code, 213);
  EXPECT_EQ(size.text(), "11");  // "hello world"
  EXPECT_EQ(roundtrip(client, "SIZE", "/pub").code, 550);
  EXPECT_EQ(roundtrip(client, "MDTM", "/pub/readme.txt").code, 213);
}

TEST_F(ClientServerTest, UnknownCommand500) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  EXPECT_EQ(roundtrip(client, "MAGIC", "xyzzy").code, 500);
}

// ---------------------------------------------------------------------------
// Transfers
// ---------------------------------------------------------------------------

TEST_F(ClientServerTest, PassiveListing) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "LIST", "/pub");
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().refused);
  EXPECT_NE(result.value().data.find("readme.txt"), std::string::npos);
  EXPECT_NE(result.value().data.find("secret.key"), std::string::npos);
  EXPECT_EQ(result.value().completion.code, 226);
}

TEST_F(ClientServerTest, ActiveModeListing) {
  auto server = deploy(base_personality(), base_filesystem());
  FtpClient::Options options;
  options.client_ip = client_ip_;
  options.transfer_mode = ftp::TransferMode::kActive;
  auto client = FtpClient::create(network_, options);
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "LIST", "/pub");
  ASSERT_TRUE(result.is_ok());
  EXPECT_NE(result.value().data.find("readme.txt"), std::string::npos);
}

TEST_F(ClientServerTest, RetrReadableFile) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "RETR", "/pub/readme.txt");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().data, "hello world");
}

TEST_F(ClientServerTest, RetrPermissionDenied) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "RETR", "/pub/secret.key");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().refused);
  EXPECT_EQ(result.value().opening.code, 550);
}

TEST_F(ClientServerTest, RetrMissingFile) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "RETR", "/nope.txt");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().refused);
}

TEST_F(ClientServerTest, ListMissingDirRefused) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "LIST", "/missing");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().refused);
  EXPECT_EQ(result.value().opening.code, 550);
}

TEST_F(ClientServerTest, NlstReturnsBareNames) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "NLST", "/pub");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().data, "readme.txt\r\nsecret.key\r\n");
}

TEST_F(ClientServerTest, WindowsListingFormat) {
  auto p = base_personality();
  p->listing_format = vfs::ListingFormat::kWindows;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "LIST", "/pub");
  ASSERT_TRUE(result.is_ok());
  // No permission bits in DIR format.
  EXPECT_EQ(result.value().data.find("-rw-"), std::string::npos);
  EXPECT_NE(result.value().data.find("readme.txt"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Uploads (§VI.A behaviours)
// ---------------------------------------------------------------------------

TEST_F(ClientServerTest, UploadRefusedWhenNotWritable) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  std::optional<Result<TransferOutcome>> out;
  client->upload("/probe.txt", "data",
                 [&](Result<TransferOutcome> r) { out = std::move(r); });
  loop_.run_while_pending([&] { return out.has_value(); });
  ASSERT_TRUE(out->is_ok());
  EXPECT_TRUE(out->value().refused);
}

TEST_F(ClientServerTest, UploadSucceedsWhenWritable) {
  auto p = base_personality();
  p->anonymous_writable = true;
  auto fs = base_filesystem();
  auto server = deploy(p, fs);
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  std::optional<Result<TransferOutcome>> out;
  client->upload("/w0000000t.txt", "Anonymous",
                 [&](Result<TransferOutcome> r) { out = std::move(r); });
  loop_.run_while_pending([&] { return out.has_value(); });
  ASSERT_TRUE(out->is_ok());
  EXPECT_FALSE(out->value().refused);
  EXPECT_EQ(out->value().completion.code, 226);
  const vfs::Node* node = fs->lookup("/w0000000t.txt");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->content, "Anonymous");
}

TEST_F(ClientServerTest, UploadApprovalGate) {
  // Pure-FTPd semantics: upload lands but RETR is refused with the
  // approval message.
  auto p = base_personality();
  p->anonymous_writable = true;
  p->uploads_need_approval = true;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  std::optional<Result<TransferOutcome>> out;
  client->upload("/up.txt", "x",
                 [&](Result<TransferOutcome> r) { out = std::move(r); });
  loop_.run_while_pending([&] { return out.has_value(); });
  ASSERT_TRUE(out->is_ok());
  auto retr = download(client, "RETR", "/up.txt");
  ASSERT_TRUE(retr.is_ok());
  EXPECT_TRUE(retr.value().refused);
  EXPECT_NE(retr.value().opening.text().find("has not yet been approved"),
            std::string::npos);
}

TEST_F(ClientServerTest, UploadRenameOnConflict) {
  auto p = base_personality();
  p->anonymous_writable = true;
  p->upload_conflict = ftpd::UploadConflictPolicy::kRenameWithSuffix;
  auto fs = base_filesystem();
  auto server = deploy(p, fs);
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  for (int i = 0; i < 3; ++i) {
    std::optional<Result<TransferOutcome>> out;
    client->upload("/name", "v" + std::to_string(i),
                   [&](Result<TransferOutcome> r) { out = std::move(r); });
    loop_.run_while_pending([&] { return out.has_value(); });
    ASSERT_TRUE(out->is_ok());
  }
  // "name", "name.1", "name.2" — the §VI.A trail.
  EXPECT_NE(fs->lookup("/name"), nullptr);
  EXPECT_NE(fs->lookup("/name.1"), nullptr);
  EXPECT_NE(fs->lookup("/name.2"), nullptr);
}

TEST_F(ClientServerTest, DeleteRespectsPolicy) {
  auto p = base_personality();
  p->anonymous_writable = true;
  p->allow_anonymous_delete = true;
  auto fs = base_filesystem();
  auto server = deploy(p, fs);
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  EXPECT_EQ(roundtrip(client, "DELE", "/pub/readme.txt").code, 250);
  EXPECT_EQ(fs->lookup("/pub/readme.txt"), nullptr);
  EXPECT_EQ(roundtrip(client, "DELE", "/pub/readme.txt").code, 550);
}

TEST_F(ClientServerTest, MkdRequiresPolicy) {
  auto p = base_personality();
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  EXPECT_EQ(roundtrip(client, "MKD", "newdir").code, 550);
}

// ---------------------------------------------------------------------------
// PORT validation / bounce (§VII.B)
// ---------------------------------------------------------------------------

class BounceObserver : public ftpd::SessionObserver {
 public:
  int bounces = 0;
  void on_port_bounce(Ipv4, Ipv4, std::uint16_t) override { ++bounces; }
};

TEST_F(ClientServerTest, ValidatingServerRejectsThirdPartyPort) {
  auto p = base_personality();
  p->validate_port_ip = true;
  BounceObserver observer;
  auto server = deploy(p, base_filesystem(), &observer);
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  const ftp::HostPort third{.ip = Ipv4(203, 0, 113, 77).value(), .port = 9000};
  EXPECT_EQ(roundtrip(client, "PORT", third.wire()).code, 500);
  EXPECT_EQ(observer.bounces, 0);
}

TEST_F(ClientServerTest, VulnerableServerDialsThirdParty) {
  auto p = base_personality();
  p->validate_port_ip = false;
  BounceObserver observer;
  auto server = deploy(p, base_filesystem(), &observer);

  // A listener standing in for the third-party victim.
  const Ipv4 third_ip(198, 51, 100, 99);
  bool victim_contacted = false;
  network_.listen(third_ip, 9000, [&](std::shared_ptr<sim::Connection> conn) {
    victim_contacted = true;
    conn->reset();
  });

  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  const ftp::HostPort third{.ip = third_ip.value(), .port = 9000};
  EXPECT_EQ(roundtrip(client, "PORT", third.wire()).code, 200);
  roundtrip(client, "NLST", "/");
  loop_.run_until_idle();
  EXPECT_TRUE(victim_contacted);
  EXPECT_EQ(observer.bounces, 1);
}

TEST_F(ClientServerTest, OwnAddressPortIsNotBounce) {
  auto p = base_personality();
  p->validate_port_ip = true;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  const ftp::HostPort own{.ip = client_ip_.value(), .port = 50001};
  EXPECT_EQ(roundtrip(client, "PORT", own.wire()).code, 200);
}

// ---------------------------------------------------------------------------
// NAT / PASV address
// ---------------------------------------------------------------------------

TEST_F(ClientServerTest, NatServerAdvertisesInternalAddress) {
  auto p = base_personality();
  p->internal_ip = Ipv4(192, 168, 1, 10);
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  const Reply pasv = roundtrip(client, "PASV", "");
  EXPECT_EQ(pasv.code, 227);
  const auto hp = ftp::parse_pasv_reply(pasv.full_text());
  ASSERT_TRUE(hp);
  EXPECT_EQ(Ipv4(hp->ip), Ipv4(192, 168, 1, 10));
}

TEST_F(ClientServerTest, BannerIpExpansion) {
  auto p = base_personality();
  p->banner = "220 Device at {ip} ready.";
  p->internal_ip = Ipv4(10, 0, 0, 42);
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  const Reply banner = connect_and_banner(client);
  EXPECT_NE(banner.text().find("10.0.0.42"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Robustness
// ---------------------------------------------------------------------------

TEST_F(ClientServerTest, MaxCommandsTermination) {
  auto p = base_personality();
  p->max_commands_per_session = 3;
  auto server = deploy(p, base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  EXPECT_EQ(roundtrip(client, "NOOP", "").code, 200);
  EXPECT_EQ(roundtrip(client, "NOOP", "").code, 200);
  EXPECT_EQ(roundtrip(client, "NOOP", "").code, 200);
  // The 4th command trips the cap: abrupt termination, no reply.
  bool failed = false;
  bool done = false;
  client->send("NOOP", "", [&](Result<Reply> r) {
    failed = !r.is_ok();
    done = true;
  });
  loop_.run_while_pending([&] { return done; });
  EXPECT_TRUE(failed);
}

TEST_F(ClientServerTest, QuitClosesCleanly) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  bool done = false;
  client->quit([&] { done = true; });
  loop_.run_while_pending([&] { return done; });
  EXPECT_FALSE(client->connected());
}

TEST_F(ClientServerTest, AuthTlsWithoutSupport) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  std::optional<Result<ftp::Certificate>> got;
  client->auth_tls([&](Result<ftp::Certificate> r) { got = std::move(r); });
  loop_.run_while_pending([&] { return got.has_value(); });
  EXPECT_FALSE(got->is_ok());
  EXPECT_EQ(got->code(), ErrorCode::kUnavailable);
}

TEST_F(ClientServerTest, ListArgWithFlags) {
  auto server = deploy(base_personality(), base_filesystem());
  auto client = make_client();
  connect_and_banner(client);
  login_anonymous(client);
  auto result = download(client, "LIST", "-la /pub");
  ASSERT_TRUE(result.is_ok());
  EXPECT_NE(result.value().data.find("readme.txt"), std::string::npos);
}

}  // namespace
}  // namespace ftpc
