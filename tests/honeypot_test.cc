#include <gtest/gtest.h>

#include "honeypot/attackers.h"
#include "honeypot/honeypot.h"
#include "sim/network.h"

namespace ftpc::honeypot {
namespace {

class HoneypotTest : public ::testing::Test {
 protected:
  HoneypotTest() : network_(loop_) {}

  sim::EventLoop loop_;
  sim::Network network_;
};

TEST_F(HoneypotTest, FleetDeploysEightListeners) {
  HoneypotFleet fleet(network_, Ipv4(141, 212, 121, 1));
  EXPECT_EQ(fleet.addresses().size(), 8u);
  for (const Ipv4 ip : fleet.addresses()) {
    EXPECT_TRUE(network_.is_listening(ip, 21));
  }
}

TEST_F(HoneypotTest, FullStudyReproducesMix) {
  HoneypotFleet fleet(network_, Ipv4(141, 212, 121, 1));
  AttackerMix mix;  // defaults sized to §VIII
  AttackerPopulation attackers(network_, 7, mix);
  EXPECT_EQ(attackers.total_attackers(), 457u);

  attackers.deploy(fleet.addresses(), 90 * sim::kDay);
  loop_.run_until_idle();

  const HoneypotLog& log = fleet.log();
  // §VIII.A: 457 unique scanner IPs. A couple may fail to connect (e.g.
  // scheduling edge), so allow slack downward only.
  EXPECT_GE(log.unique_scanners(), 450u);
  EXPECT_LE(log.unique_scanners(), 457u);

  // 85 spoke FTP.
  EXPECT_GE(log.spoke_ftp(), 80u);
  EXPECT_LE(log.spoke_ftp(), 90u);

  // Most of the rest asked for a web page.
  EXPECT_GE(log.http_get_ips(), 320u);

  // 16 traversed, 21 listed.
  EXPECT_EQ(log.traversal_ips(), 16u);
  EXPECT_EQ(log.listing_ips(), 21u);

  // >1,400 unique credential pairs.
  EXPECT_GE(log.unique_credentials(), 1400u);

  // 8 bounce attempts, all aimed at one third party.
  EXPECT_EQ(log.bounce_ips(), 8u);
  EXPECT_EQ(log.bounce_targets(), 1u);

  // AUTH TLS device identification.
  EXPECT_EQ(log.auth_tls_ips(), 36u);

  // One mod_copy exploit attempt (two SITE CPFR/CPTO commands).
  EXPECT_GE(log.cve_2015_3306_attempts(), 1u);

  // Seagate password-less root.
  EXPECT_GE(log.root_login_attempts(), 1u);

  // WaReZ mkdir-without-upload behaviour.
  EXPECT_GE(log.mkdirs_without_upload(), 1u);

  // ~30% of scanners share one /16 ("China Unicom Henan").
  EXPECT_NEAR(log.dominant_prefix_share(), 0.30, 0.08);
}

TEST_F(HoneypotTest, WriteProberUploadsAndDeletes) {
  HoneypotFleet fleet(network_, Ipv4(141, 212, 121, 1));
  AttackerMix mix{};
  mix.http_get_clients = 0;
  mix.silent_connects = 0;
  mix.tls_identifiers = 0;
  mix.traversers = 0;
  mix.pure_listers = 0;
  mix.brute_forcers = 0;
  mix.write_probers = 5;
  mix.port_bouncers = 0;
  mix.mod_copy_exploiters = 0;
  mix.seagate_exploiters = 0;
  mix.warez_mkdir_clients = 0;
  AttackerPopulation attackers(network_, 11, mix);
  attackers.deploy(fleet.addresses(), sim::kDay);
  loop_.run_until_idle();
  EXPECT_EQ(fleet.log().uploads(), 5u);
  EXPECT_EQ(fleet.log().deletes(), 5u);
}

TEST_F(HoneypotTest, PopulateProbedPathsAddsWebRoots) {
  HoneypotFleet fleet(network_, Ipv4(141, 212, 121, 1));
  fleet.populate_probed_paths();
  // Re-deployment of paths is observable through a traverser now finding
  // the directory.
  AttackerMix mix{};
  mix.http_get_clients = 0;
  mix.silent_connects = 0;
  mix.tls_identifiers = 0;
  mix.traversers = 1;
  mix.pure_listers = 0;
  mix.brute_forcers = 0;
  mix.write_probers = 0;
  mix.port_bouncers = 0;
  mix.mod_copy_exploiters = 0;
  mix.seagate_exploiters = 0;
  mix.warez_mkdir_clients = 0;
  AttackerPopulation attackers(network_, 13, mix);
  attackers.deploy(fleet.addresses(), sim::kHour);
  loop_.run_until_idle();
  EXPECT_EQ(fleet.log().traversal_ips(), 1u);
}

TEST_F(HoneypotTest, LogIgnoresHttpGetAsFtp) {
  HoneypotLog log;
  log.on_command(Ipv4(1, 2, 3, 4), ftp::Command{.verb = "GET", .arg = "/"});
  EXPECT_EQ(log.spoke_ftp(), 0u);
  EXPECT_EQ(log.http_get_ips(), 1u);
  log.on_command(Ipv4(1, 2, 3, 5), ftp::Command{.verb = "USER", .arg = "x"});
  EXPECT_EQ(log.spoke_ftp(), 1u);
}

TEST_F(HoneypotTest, ModCopyDetection) {
  HoneypotLog log;
  log.on_command(Ipv4(1, 1, 1, 1),
                 ftp::Command{.verb = "SITE", .arg = "CPFR /etc/passwd"});
  log.on_command(Ipv4(1, 1, 1, 1),
                 ftp::Command{.verb = "SITE", .arg = "CPTO /tmp/x"});
  log.on_command(Ipv4(1, 1, 1, 1),
                 ftp::Command{.verb = "SITE", .arg = "HELP"});
  EXPECT_EQ(log.cve_2015_3306_attempts(), 2u);
}

}  // namespace
}  // namespace ftpc::honeypot
