#include <gtest/gtest.h>

#include "common/ipv4.h"
#include "ftp/cert.h"
#include "ftp/client.h"
#include "ftp/command.h"
#include "ftp/listing_parser.h"
#include "ftp/path.h"
#include "ftp/reply.h"
#include "ftp/robots.h"

namespace ftpc::ftp {
namespace {

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

TEST(CommandTest, ParseBasics) {
  const auto cmd = parse_command("USER anonymous");
  ASSERT_TRUE(cmd);
  EXPECT_EQ(cmd->verb, "USER");
  EXPECT_EQ(cmd->arg, "anonymous");
}

TEST(CommandTest, VerbIsUppercased) {
  EXPECT_EQ(parse_command("list /pub")->verb, "LIST");
  EXPECT_EQ(parse_command("Cwd dir")->verb, "CWD");
}

TEST(CommandTest, NoArgument) {
  const auto cmd = parse_command("PASV");
  ASSERT_TRUE(cmd);
  EXPECT_EQ(cmd->verb, "PASV");
  EXPECT_TRUE(cmd->arg.empty());
}

TEST(CommandTest, ArgumentKeepsInteriorSpaces) {
  const auto cmd = parse_command("RETR my file name.txt");
  ASSERT_TRUE(cmd);
  EXPECT_EQ(cmd->arg, "my file name.txt");
}

TEST(CommandTest, RejectsEmptyAndNul) {
  EXPECT_FALSE(parse_command(""));
  EXPECT_FALSE(parse_command("   "));
  EXPECT_FALSE(parse_command(std::string_view("US\0ER", 5)));
}

TEST(CommandTest, WireForm) {
  EXPECT_EQ((Command{.verb = "USER", .arg = "ftp"}).wire(), "USER ftp\r\n");
  EXPECT_EQ((Command{.verb = "QUIT", .arg = ""}).wire(), "QUIT\r\n");
}

TEST(LineReaderTest, SplitsCrlfLines) {
  LineReader reader;
  reader.push("USER a\r\nPASS b\r\n");
  EXPECT_EQ(reader.pop_line(), "USER a");
  EXPECT_EQ(reader.pop_line(), "PASS b");
  EXPECT_FALSE(reader.pop_line());
}

TEST(LineReaderTest, HandlesPartialPushes) {
  LineReader reader;
  reader.push("US");
  EXPECT_FALSE(reader.pop_line());
  reader.push("ER anonymous\r");
  EXPECT_FALSE(reader.pop_line());
  reader.push("\n");
  EXPECT_EQ(reader.pop_line(), "USER anonymous");
}

TEST(LineReaderTest, ToleratesBareLf) {
  LineReader reader;
  reader.push("NOOP\n");
  EXPECT_EQ(reader.pop_line(), "NOOP");
}

TEST(LineReaderTest, OversizedLineIsSurfaced) {
  LineReader reader;
  reader.push(std::string(LineReader::kMaxLineBytes + 10, 'x'));
  const auto line = reader.pop_line();
  ASSERT_TRUE(line);
  EXPECT_GT(line->size(), LineReader::kMaxLineBytes);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

TEST(ReplyTest, WireSingleLine) {
  const Reply reply(230, "Login successful.");
  EXPECT_EQ(reply.wire(), "230 Login successful.\r\n");
}

TEST(ReplyTest, WireMultiLine) {
  Reply reply;
  reply.code = 220;
  reply.lines = {"Welcome", "Second line", "Ready."};
  EXPECT_EQ(reply.wire(), "220-Welcome\r\n220-Second line\r\n220 Ready.\r\n");
}

TEST(ReplyTest, CodeClassPredicates) {
  EXPECT_TRUE(Reply(150, "").is_positive_preliminary());
  EXPECT_TRUE(Reply(226, "").is_positive_completion());
  EXPECT_TRUE(Reply(331, "").is_positive_intermediate());
  EXPECT_TRUE(Reply(425, "").is_transient_negative());
  EXPECT_TRUE(Reply(530, "").is_permanent_negative());
}

TEST(ReplyParserTest, SingleReply) {
  ReplyParser parser;
  parser.push("220 FTP server ready.\r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 220);
  EXPECT_EQ(reply->text(), "FTP server ready.");
  EXPECT_FALSE(parser.pop_reply());
}

TEST(ReplyParserTest, MultiLineReply) {
  ReplyParser parser;
  parser.push("230-Welcome\r\n230-More\r\n230 Done\r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 230);
  ASSERT_EQ(reply->lines.size(), 3u);
  EXPECT_EQ(reply->full_text(), "Welcome\nMore\nDone");
}

TEST(ReplyParserTest, ContinuationWithoutCodePrefix) {
  // Seen in the wild: raw text lines inside a multi-line reply.
  ReplyParser parser;
  parser.push("214-Commands:\r\n USER PASS\r\n LIST RETR\r\n214 End\r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->lines.size(), 4u);
  EXPECT_EQ(reply->lines[1], " USER PASS");
}

TEST(ReplyParserTest, DifferentCodeInsideMultilineIsText) {
  ReplyParser parser;
  parser.push("220-Banner says 530 sometimes\r\n530 not the end\r\n"
              "220 real end\r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 220);
  EXPECT_EQ(reply->lines.size(), 3u);
}

TEST(ReplyParserTest, ByteAtATime) {
  ReplyParser parser;
  const std::string wire = "331 Please specify the password.\r\n";
  for (const char c : wire) parser.push(std::string_view(&c, 1));
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 331);
}

TEST(ReplyParserTest, MultipleRepliesQueue) {
  ReplyParser parser;
  parser.push("150 Opening\r\n226 Done\r\n");
  EXPECT_EQ(parser.pop_reply()->code, 150);
  EXPECT_EQ(parser.pop_reply()->code, 226);
}

TEST(ReplyParserTest, PoisonedByNonFtp) {
  ReplyParser parser;
  parser.push("SSH-2.0-OpenSSH_6.6\r\n");
  EXPECT_FALSE(parser.pop_reply());
  EXPECT_TRUE(parser.poisoned());
  parser.push("220 too late\r\n");
  EXPECT_FALSE(parser.pop_reply());
}

TEST(ReplyParserTest, EmptyReplyTextAllowed) {
  ReplyParser parser;
  parser.push("200 \r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 200);
}

TEST(ReplyParserTest, ShortCodeOnlyLine) {
  ReplyParser parser;
  parser.push("220\r\n");  // no separator, no text
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 220);
  EXPECT_EQ(reply->text(), "");
}

TEST(ReplyParserTest, MultilineSplitAtEveryByteBoundary) {
  // A multi-line reply must parse identically no matter how the network
  // fragments it. Split the wire form at every possible boundary into two
  // pushes, and also feed it one byte at a time.
  const std::string wire =
      "230-Welcome\r\nplain text line\r\n230-more\r\n230 Done\r\n";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    ReplyParser parser;
    parser.push(std::string_view(wire).substr(0, split));
    EXPECT_FALSE(parser.poisoned()) << "split at " << split;
    parser.push(std::string_view(wire).substr(split));
    const auto reply = parser.pop_reply();
    ASSERT_TRUE(reply) << "split at " << split;
    EXPECT_EQ(reply->code, 230);
    ASSERT_EQ(reply->lines.size(), 4u) << "split at " << split;
    EXPECT_EQ(reply->lines[1], "plain text line");
    EXPECT_FALSE(parser.pop_reply());
    EXPECT_EQ(parser.pending_bytes(), 0u);
  }
  ReplyParser parser;
  for (const char c : wire) parser.push(std::string_view(&c, 1));
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->lines.size(), 4u);
}

TEST(ReplyParserTest, MultilineTerminatedByBareCodeLine) {
  // The terminator line may be exactly "226" — three digits, no separator,
  // no text. starts_with_code treats the missing separator as a space, so
  // this closes the reply rather than reading as continuation text.
  ReplyParser parser;
  parser.push("226-Transfer starting\r\n226\r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 226);
  ASSERT_EQ(reply->lines.size(), 2u);
  EXPECT_EQ(reply->lines[1], "");
  EXPECT_FALSE(parser.poisoned());
}

TEST(ReplyParserTest, DifferentCodeWithDashInsideMultilineIsText) {
  // A continuation line opening with a *different* code and a dash must
  // not start a nested reply; only "<own code><space>" terminates.
  ReplyParser parser;
  parser.push("220-header\r\n530-looks like another opener\r\n220 end\r\n");
  const auto reply = parser.pop_reply();
  ASSERT_TRUE(reply);
  EXPECT_EQ(reply->code, 220);
  ASSERT_EQ(reply->lines.size(), 3u);
  EXPECT_EQ(reply->lines[1], "530-looks like another opener");
  EXPECT_FALSE(parser.pop_reply());
}

TEST(ReplyParserTest, GarbageBetweenRepliesPoisonsButKeepsEarlierReplies) {
  // Garbage is only fatal *between* replies (no reply open). Replies that
  // completed before the poison are still retrievable; everything after —
  // including well-formed replies — is discarded.
  ReplyParser parser;
  parser.push("220 hello\r\nnot ftp at all\r\n220 too late\r\n");
  EXPECT_TRUE(parser.poisoned());
  EXPECT_EQ(parser.pending_bytes(), 0u);  // buffer dropped on poison
  const auto first = parser.pop_reply();
  ASSERT_TRUE(first);
  EXPECT_EQ(first->code, 220);
  EXPECT_EQ(first->text(), "hello");
  EXPECT_FALSE(parser.pop_reply());
  parser.push("230 still ignored\r\n");
  EXPECT_FALSE(parser.pop_reply());
}

TEST(ReplyParserTest, TwoDigitPrefixPoisons) {
  // "22 ready" is not a three-digit code; with no reply open that is a
  // protocol violation, not continuation text.
  ReplyParser parser;
  parser.push("22 ready\r\n");
  EXPECT_TRUE(parser.poisoned());
  EXPECT_FALSE(parser.pop_reply());
}

TEST(ReplyParserTest, TruncatedAndGarbledStreamsAbortCleanlyTable) {
  // The reply shapes sim::chaos manufactures (truncated multilines, garbled
  // non-protocol bytes) plus classic stream abuse (bare-CR terminators,
  // oversized lines). Each row must end in a bounded, clean terminal state
  // — poisoned or still-waiting — never a parsed reply from damaged input
  // and never unbounded buffering.
  struct Row {
    const char* name;
    std::string wire;
    bool expect_poisoned;
    std::size_t expect_replies;
  };
  const std::vector<Row> rows = {
      // Bare-CR line endings never terminate a line; the bytes sit in the
      // buffer awaiting an LF that may never come.
      {"bare_cr_terminators", "220 hello\r221 bye\r", false, 0},
      // ...but a bare-CR stream cannot buffer forever: past the line cap
      // the peer is declared hostile.
      {"bare_cr_flood",
       "220 hello\r" + std::string(ReplyParser::kMaxLineBytes + 1, 'x'),
       true, 0},
      // A multiline whose end sentinel never arrives accumulates
      // continuation lines only up to the reply-size cap.
      {"missing_multiline_sentinel", [] {
         std::string wire = "230-Welcome\r\n";
         for (std::size_t i = 0; i <= ReplyParser::kMaxReplyLines; ++i) {
           wire += "prose line\r\n";
         }
         return wire;
       }(), true, 0},
      // One line larger than the cap, LF-terminated and not.
      {"oversized_line_terminated",
       "220 " + std::string(ReplyParser::kMaxLineBytes, 'a') + "\r\n", true,
       0},
      {"oversized_line_unterminated",
       "150 " + std::string(ReplyParser::kMaxLineBytes + 8, 'b'), true, 0},
      // The chaos engine's garble payload: non-protocol bytes between
      // replies.
      {"chaos_garble", "!! GARBLED NON-PROTOCOL LINE !!\r\n", true, 0},
      // Chaos truncation drops the closing line of a multiline; the reply
      // stays open (no false completion) until the retransmitted reply's
      // opener arrives with the closing form.
      {"chaos_truncated_multiline_recovered",
       "230-Welcome\r\n230 Login successful.\r\n", false, 1},
  };

  for (const Row& row : rows) {
    ReplyParser parser;
    parser.push(row.wire);
    std::size_t replies = 0;
    while (parser.pop_reply()) ++replies;
    EXPECT_EQ(parser.poisoned(), row.expect_poisoned) << row.name;
    EXPECT_EQ(replies, row.expect_replies) << row.name;
    // Bounded memory whatever the damage: at most one uncapped line plus
    // slack may remain buffered.
    EXPECT_LE(parser.pending_bytes(), ReplyParser::kMaxLineBytes + 1)
        << row.name;
    // A poisoned parser ignores all further bytes — the session above it
    // aborts instead of waiting on a reply that cannot arrive.
    parser.push("220 resurrection attempt\r\n");
    if (row.expect_poisoned) {
      EXPECT_FALSE(parser.pop_reply()) << row.name;
    }
  }
}

// ---------------------------------------------------------------------------
// HostPort / PASV
// ---------------------------------------------------------------------------

TEST(HostPortTest, WireRoundTrip) {
  const HostPort hp{.ip = ftpc::Ipv4(192, 0, 2, 10).value(), .port = 50000};
  EXPECT_EQ(hp.wire(), "192,0,2,10,195,80");
  const auto parsed = parse_host_port(hp.wire());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ip, hp.ip);
  EXPECT_EQ(parsed->port, hp.port);
}

TEST(HostPortTest, RejectsBadInput) {
  EXPECT_FALSE(parse_host_port("1,2,3,4,5"));         // too few
  EXPECT_FALSE(parse_host_port("1,2,3,4,5,6,7"));     // too many
  EXPECT_FALSE(parse_host_port("256,2,3,4,5,6"));     // octet range
  EXPECT_FALSE(parse_host_port("a,2,3,4,5,6"));       // non-numeric
}

TEST(HostPortTest, ToleratesSpaces) {
  const auto parsed = parse_host_port(" 10, 0, 0, 1, 4, 0 ");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->ip, ftpc::Ipv4(10, 0, 0, 1).value());
  EXPECT_EQ(parsed->port, 1024);
}

TEST(PasvReplyTest, StandardParenthesized) {
  const auto hp =
      parse_pasv_reply("Entering Passive Mode (10,0,0,5,195,149).");
  ASSERT_TRUE(hp);
  EXPECT_EQ(hp->ip, ftpc::Ipv4(10, 0, 0, 5).value());
  EXPECT_EQ(hp->port, 50069);
}

TEST(PasvReplyTest, WithoutParentheses) {
  const auto hp = parse_pasv_reply("Entering Passive Mode 10,0,0,5,4,1");
  ASSERT_TRUE(hp);
  EXPECT_EQ(hp->port, 1025);
}

TEST(PasvReplyTest, IgnoresLeadingNumbers) {
  const auto hp = parse_pasv_reply("227 ok =10,1,2,3,10,0");
  ASSERT_TRUE(hp);
  EXPECT_EQ(hp->ip, ftpc::Ipv4(10, 1, 2, 3).value());
}

TEST(PasvReplyTest, NoTupleReturnsNull) {
  EXPECT_FALSE(parse_pasv_reply("Passive mode refused"));
  EXPECT_FALSE(parse_pasv_reply("1,2,3 only"));
}

// ---------------------------------------------------------------------------
// Listing parser
// ---------------------------------------------------------------------------

TEST(ListingParserTest, UnixFile) {
  const auto entry = parse_listing_line(
      "-rw-r--r--    1 ftp      ftp              1024 Jun 18 09:42 data.bin");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->name, "data.bin");
  EXPECT_FALSE(entry->is_dir);
  EXPECT_EQ(entry->size, 1024u);
  EXPECT_EQ(entry->readable, Readability::kReadable);
  EXPECT_FALSE(entry->world_writable);
  EXPECT_TRUE(entry->has_permissions);
  EXPECT_EQ(entry->owner, "ftp");
}

TEST(ListingParserTest, UnixDirectory) {
  const auto entry = parse_listing_line(
      "drwxrwxrwx    5 ftp      ftp              4096 Jan  5  2014 incoming");
  ASSERT_TRUE(entry);
  EXPECT_TRUE(entry->is_dir);
  EXPECT_TRUE(entry->world_writable);
  EXPECT_EQ(entry->name, "incoming");
}

TEST(ListingParserTest, UnixNonReadable) {
  const auto entry = parse_listing_line(
      "-rw-------    1 root     root              718 Mar  3  2013 shadow");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->readable, Readability::kNotReadable);
  EXPECT_EQ(entry->owner, "root");
}

TEST(ListingParserTest, UnixNameWithSpaces) {
  const auto entry = parse_listing_line(
      "-rw-r--r--    1 ftp      ftp            52224 Jun 18  2014 Tax Return "
      "2013.pdf");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->name, "Tax Return 2013.pdf");
}

TEST(ListingParserTest, UnixSymlinkKeepsLinkName) {
  const auto entry = parse_listing_line(
      "lrwxrwxrwx    1 ftp      ftp                11 Jun 18  2014 www -> "
      "public_html");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->name, "www");
}

TEST(ListingParserTest, WindowsFile) {
  const auto entry = parse_listing_line(
      "06-18-15  09:42AM                52224 report.doc");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->name, "report.doc");
  EXPECT_EQ(entry->size, 52224u);
  EXPECT_EQ(entry->readable, Readability::kUnknown);
  EXPECT_FALSE(entry->has_permissions);
}

TEST(ListingParserTest, WindowsDirectory) {
  const auto entry = parse_listing_line(
      "11-02-12  05:30PM       <DIR>          WINDOWS");
  ASSERT_TRUE(entry);
  EXPECT_TRUE(entry->is_dir);
  EXPECT_EQ(entry->name, "WINDOWS");
}

TEST(ListingParserTest, WindowsNameWithSpaces) {
  const auto entry = parse_listing_line(
      "11-02-12  05:30PM       <DIR>          Program Files");
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->name, "Program Files");
}

TEST(ListingParserTest, RejectsGarbage) {
  EXPECT_FALSE(parse_listing_line("total 42"));
  EXPECT_FALSE(parse_listing_line(""));
  EXPECT_FALSE(parse_listing_line("welcome to my ftp"));
  EXPECT_FALSE(parse_listing_line("-rw-r--r--"));  // truncated
}

TEST(ListingParserTest, SkipsDotEntries) {
  EXPECT_FALSE(parse_listing_line(
      "drwxr-xr-x    2 ftp      ftp              4096 Jun 18  2014 ."));
  EXPECT_FALSE(parse_listing_line(
      "drwxr-xr-x    2 ftp      ftp              4096 Jun 18  2014 .."));
}

TEST(ListingParserTest, FullBodyCountsSkipped) {
  const std::string body =
      "total 2\r\n"
      "-rw-r--r--    1 ftp ftp 100 Jun 18  2014 a.txt\r\n"
      "garbage line\r\n"
      "-rw-r--r--    1 ftp ftp 200 Jun 18  2014 b.txt\r\n";
  std::size_t skipped = 0;
  const auto entries = parse_listing(body, &skipped);
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(skipped, 2u);  // "total 2" and "garbage line"
}

TEST(ListingParserTest, MixedDialectsInOneBody) {
  const std::string body =
      "-rw-r--r--    1 ftp ftp 100 Jun 18  2014 unix.txt\r\n"
      "06-18-15  09:42AM                  100 windows.txt\r\n";
  const auto entries = parse_listing(body);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].has_permissions);
  EXPECT_FALSE(entries[1].has_permissions);
}

// ---------------------------------------------------------------------------
// robots.txt
// ---------------------------------------------------------------------------

TEST(RobotsTest, EmptyAllowsEverything) {
  const auto policy = RobotsPolicy::parse("");
  EXPECT_TRUE(policy.is_allowed("ftpcensus", "/anything"));
  EXPECT_FALSE(policy.excludes_everything("ftpcensus"));
}

TEST(RobotsTest, FullExclusion) {
  const auto policy = RobotsPolicy::parse("User-agent: *\nDisallow: /\n");
  EXPECT_TRUE(policy.excludes_everything("ftpcensus"));
  EXPECT_FALSE(policy.is_allowed("ftpcensus", "/pub/file"));
}

TEST(RobotsTest, PathPrefixes) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: *\nDisallow: /private/\nDisallow: /tmp\n");
  EXPECT_FALSE(policy.is_allowed("x", "/private/file"));
  EXPECT_TRUE(policy.is_allowed("x", "/privateer"));  // needs the slash
  EXPECT_FALSE(policy.is_allowed("x", "/tmpfile"));   // no trailing slash
  EXPECT_TRUE(policy.is_allowed("x", "/public"));
}

TEST(RobotsTest, AllowOverridesAtLongerMatch) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: *\nDisallow: /pub/\nAllow: /pub/open/\n");
  EXPECT_FALSE(policy.is_allowed("x", "/pub/secret"));
  EXPECT_TRUE(policy.is_allowed("x", "/pub/open/file"));
}

TEST(RobotsTest, AllowWinsTies) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: *\nDisallow: /dir/\nAllow: /dir/\n");
  EXPECT_TRUE(policy.is_allowed("x", "/dir/file"));
}

TEST(RobotsTest, SpecificAgentGroupWins) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: *\nDisallow: /\n\nUser-agent: ftpcensus\nDisallow: "
      "/private/\n");
  EXPECT_TRUE(policy.is_allowed("ftpcensus", "/pub"));
  EXPECT_FALSE(policy.is_allowed("ftpcensus", "/private/x"));
  EXPECT_FALSE(policy.is_allowed("otherbot", "/pub"));
}

TEST(RobotsTest, SharedGroupAgents) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: a\nUser-agent: b\nDisallow: /x/\n");
  EXPECT_FALSE(policy.is_allowed("a", "/x/1"));
  EXPECT_FALSE(policy.is_allowed("b", "/x/1"));
  EXPECT_TRUE(policy.is_allowed("c", "/x/1"));  // no wildcard group
}

TEST(RobotsTest, WildcardsInPaths) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: *\nDisallow: /*.zip$\nDisallow: /backup*/\n");
  EXPECT_FALSE(policy.is_allowed("x", "/data.zip"));
  EXPECT_TRUE(policy.is_allowed("x", "/data.zip.txt"));  // $ anchor
  EXPECT_FALSE(policy.is_allowed("x", "/backup-2015/f"));
}

TEST(RobotsTest, CommentsAndCaseInsensitiveFields) {
  const auto policy = RobotsPolicy::parse(
      "# a comment\nUSER-AGENT: *  # trailing\nDISALLOW: /secret/\n");
  EXPECT_FALSE(policy.is_allowed("x", "/secret/f"));
}

TEST(RobotsTest, CrawlDelay) {
  const auto policy = RobotsPolicy::parse(
      "User-agent: *\nCrawl-delay: 2.5\nDisallow: /x/\n");
  ASSERT_TRUE(policy.crawl_delay("anybot"));
  EXPECT_DOUBLE_EQ(*policy.crawl_delay("anybot"), 2.5);
}

TEST(RobotsTest, EmptyDisallowMeansAllowAll) {
  const auto policy = RobotsPolicy::parse("User-agent: *\nDisallow:\n");
  EXPECT_TRUE(policy.is_allowed("x", "/anything"));
}

TEST(RobotsTest, NoTrailingNewline) {
  const auto policy =
      RobotsPolicy::parse("User-agent: *\nDisallow: /private/");
  EXPECT_FALSE(policy.is_allowed("x", "/private/f"));
}

// ---------------------------------------------------------------------------
// Path resolution
// ---------------------------------------------------------------------------

struct PathCase {
  const char* cwd;
  const char* arg;
  const char* expected;
};

class PathResolveTest : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathResolveTest, Resolves) {
  const PathCase& c = GetParam();
  EXPECT_EQ(resolve_path(c.cwd, c.arg), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PathResolveTest,
    ::testing::Values(
        PathCase{"/", "", "/"}, PathCase{"/", "pub", "/pub"},
        PathCase{"/a/b", "c", "/a/b/c"}, PathCase{"/a/b", "../x", "/a/x"},
        PathCase{"/a", "/etc//./", "/etc"}, PathCase{"/", "..", "/"},
        PathCase{"/a/b/c", "../../..", "/"},
        PathCase{"/a", "./b/./c", "/a/b/c"},
        PathCase{"/x", "/abs/path", "/abs/path"},
        PathCase{"/x", "a/../b", "/x/b"},
        PathCase{"/", "../../escape", "/escape"}));

TEST(PathTest, JoinPath) {
  EXPECT_EQ(join_path("/", "a"), "/a");
  EXPECT_EQ(join_path("/a", "b"), "/a/b");
}

TEST(PathTest, IsNormalized) {
  EXPECT_TRUE(is_normalized("/"));
  EXPECT_TRUE(is_normalized("/a/b"));
  EXPECT_FALSE(is_normalized(""));
  EXPECT_FALSE(is_normalized("a/b"));
  EXPECT_FALSE(is_normalized("/a/"));
  EXPECT_FALSE(is_normalized("/a//b"));
  EXPECT_FALSE(is_normalized("/a/../b"));
}

TEST(PathTest, Depth) {
  EXPECT_EQ(path_depth("/"), 0u);
  EXPECT_EQ(path_depth("/a"), 1u);
  EXPECT_EQ(path_depth("/a/b/c"), 3u);
}

// ---------------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------------

TEST(CertTest, EncodeDecodeRoundTrip) {
  Certificate cert;
  cert.subject_cn = "*.home.pl";
  cert.issuer_cn = "SimTrust CA";
  cert.serial = 0x1234;
  cert.key_id = 0xabcd;
  cert.browser_trusted = true;
  const auto decoded = Certificate::decode(cert.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, cert);
}

TEST(CertTest, SelfSignedDetection) {
  Certificate cert;
  cert.subject_cn = "localhost";
  cert.issuer_cn = "localhost";
  EXPECT_TRUE(cert.self_signed());
  cert.issuer_cn = "CA";
  EXPECT_FALSE(cert.self_signed());
}

TEST(CertTest, FingerprintStableAndDistinct) {
  Certificate a;
  a.subject_cn = "QNAP NAS (#1)";
  a.issuer_cn = a.subject_cn;
  Certificate b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.serial = 99;
  EXPECT_FALSE(a.fingerprint() == b.fingerprint());
}

TEST(CertTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Certificate::decode(""));
  EXPECT_FALSE(Certificate::decode("CN=x"));           // missing issuer
  EXPECT_FALSE(Certificate::decode("CN=x|IS=y|SN=zz")); // bad hex
  EXPECT_FALSE(Certificate::decode("XX=1|CN=x|IS=y"));  // unknown field
}

// ---------------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------------

TEST(RetryBackoffTest, DoublesThenSaturatesAtCap) {
  constexpr sim::SimTime base = sim::kSecond;
  constexpr sim::SimTime cap = 8 * sim::kSecond;
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(base, cap, 1), sim::kSecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(base, cap, 2), 2 * sim::kSecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(base, cap, 3), 4 * sim::kSecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(base, cap, 4), 8 * sim::kSecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(base, cap, 5), 8 * sim::kSecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(base, cap, 1000), cap);
}

TEST(RetryBackoffTest, HugeBaseNeverWrapsBelowTheCap) {
  // The old doubling loop multiplied before clamping: a base above 2^63
  // wrapped SimTime and produced a near-zero delay. The clamp must be
  // multiplicative — the result can never leave (0, cap].
  constexpr sim::SimTime huge = sim::SimTime{1} << 63;
  constexpr sim::SimTime cap = ~sim::SimTime{0} - 1;
  const sim::SimTime b2 = FtpClient::retry_backoff_for_attempt(huge, cap, 2);
  EXPECT_EQ(b2, cap);  // doubling 2^63 would wrap; saturate instead
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(huge, cap, 30), cap);
  // A base already above the cap clamps straight down to it.
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(huge, sim::kSecond, 1),
            sim::kSecond);
}

TEST(RetryBackoffTest, ZeroBaseNormalizesInsteadOfRetryStorming) {
  // A zero base used to yield a 0us delay on every attempt — an immediate
  // retransmit storm. It now behaves as a 1ms base.
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(0, 8 * sim::kSecond, 1),
            sim::kMillisecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(0, 8 * sim::kSecond, 3),
            4 * sim::kMillisecond);
  // Zero cap (another storm config) falls back to the normalized base.
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(0, 0, 7), sim::kMillisecond);
  EXPECT_EQ(FtpClient::retry_backoff_for_attempt(sim::kSecond, 0, 7),
            sim::kSecond);
}

}  // namespace
}  // namespace ftpc::ftp
