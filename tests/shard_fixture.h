// Shared scaffolding for the shard-artifact test suites.
//
// process_shard_test, checkpoint_resume_test, merge_corrupt_test,
// health_test and ftpcrun_test all build the same objects: a census config
// shaped like `ftpcensus census --shard-id k/N` builds it, a temp artifact
// root, k/N slice runs, a single-process reference rendering, and byte
// comparisons over the ftpc.shard.v1 file set. This header is that
// scaffolding, factored once so the suites pin contracts, not plumbing.
//
// Conventions: helpers that can fail use gtest EXPECT/ASSERT internally
// (call them from a TEST body); pure helpers return values. Each suite
// passes its own temp-root tag so concurrent ctest runs never collide.
#ifndef FTPC_TESTS_SHARD_FIXTURE_H_
#define FTPC_TESTS_SHARD_FIXTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/census.h"
#include "core/shard_slice.h"
#include "obs/health.h"

namespace ftpc::fixture {

/// Fresh synthetic population per call — what every shard process builds.
core::PopulationFactory factory(std::uint64_t seed);

/// Knobs that differ between the suites. The defaults mirror the plain
/// shard-mode CLI (trace + timeline forced on, 10ms ticks); full_wire adds
/// `--trace-sample 1.0` semantics (sample everything, capture wire bytes),
/// which the byte-identity suites use so the trace channel is maximal.
struct ShardConfigOptions {
  bool full_wire = false;
  bool chaos_lossy = false;
  std::uint32_t retries = 0;
};

/// The exact census configuration `ftpcensus census --shard-id k/N` builds:
/// every deterministic channel on, so the artifacts are self-contained.
core::CensusConfig shard_config(std::uint64_t seed, unsigned scale_shift,
                                const ShardConfigOptions& options = {});

/// Whole-file read; empty string on a missing file (tests assert content).
std::string read_file(const std::string& path);

/// Write/append with an ASSERT on open failure.
void write_file(const std::string& path, const std::string& bytes);
void append_file(const std::string& path, const std::string& bytes);

/// Creates (and returns) ::testing::TempDir()/ftpc_<tag>.
std::string make_temp_root(const std::string& tag);

/// Every file a completed checkpointed ftpc.shard.v1 artifact dir holds.
extern const char* const kShardArtifactFiles[8];

/// Byte-compares the full artifact file set; the reference side must be
/// non-empty so a missing reference can never pass vacuously.
void expect_dirs_identical(const std::string& expected_dir,
                           const std::string& actual_dir,
                           const std::string& label);

/// The single-process reference: one in-process sharded run (K=1,T=1) with
/// the same config, artifacts rendered exactly as ftpcensus writes them.
struct SingleProcessArtifacts {
  std::string records;  // dataset header + canonical-order frames
  std::string metrics;
  std::string trace;
  std::string timeline;
};

SingleProcessArtifacts run_single_process(const core::CensusConfig& base);

/// Runs each shard as its own slice (fresh EventLoop/Network/population per
/// call — exactly what N separate processes would build) into
/// `root/shard<k>`, returning the artifact dirs in shard order.
std::vector<std::string> run_slices(const core::CensusConfig& base,
                                    std::uint32_t total_shards,
                                    const std::string& root,
                                    std::uint64_t checkpoint_interval = 0);

/// Byte-compares a merged artifact dir's four deterministic channels
/// against the single-process reference.
void expect_merged_dir_matches(const SingleProcessArtifacts& expected,
                               const std::string& out_dir,
                               const std::string& label);

/// Parses an ftpc.health.v1 history file, EXPECTing every line to parse.
std::vector<obs::HealthSample> parse_history(const std::string& path);

/// system() wrapper: the child's exit code, or -1 on abnormal termination.
int run_command(const std::string& command);

}  // namespace ftpc::fixture

#endif  // FTPC_TESTS_SHARD_FIXTURE_H_
