// Tests for the deterministic timeline channel (obs/timeline.h): the
// canonical projection (window replay, tick bucketing, scan boundary
// merging), merge-order independence, the ftpc.tsdb.v1 golden schema, and
// the tentpole contract — the exported timeline is byte-identical for
// every (--shards, --threads) split of the same (seed, scale), with and
// without chaos.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ipv4.h"
#include "core/census.h"
#include "core/sharded_census.h"
#include "net/internet.h"
#include "obs/build_info.h"
#include "obs/timeline.h"
#include "popgen/population.h"
#include "sim/network.h"

namespace ftpc {
namespace {

// ---------------------------------------------------------------------------
// Projection unit tests
// ---------------------------------------------------------------------------

obs::TimelineOptions second_interval() {
  obs::TimelineOptions options;
  options.enabled = true;
  options.interval_us = 1'000'000;
  return options;
}

obs::TimelineHost host(std::uint64_t global_index, std::uint64_t duration_us,
                       std::uint64_t requests = 0,
                       std::uint64_t retries = 0) {
  obs::TimelineHost h;
  h.global_index = global_index;
  h.ip = static_cast<std::uint32_t>(0x0a000000 + global_index);
  h.enumerated = true;
  h.duration_us = duration_us;
  h.connected = true;
  h.ftp_compliant = true;
  h.requests = requests;
  h.retries = retries;
  return h;
}

TEST(TimelineProjectionTest, EmptyTimelineProjectsNoRows) {
  obs::Timeline timeline(second_interval(), 4);
  EXPECT_TRUE(timeline.empty());
  EXPECT_TRUE(timeline.project().empty());
  EXPECT_EQ(timeline.t0_us(), 0u);
}

TEST(TimelineProjectionTest, WindowReplayMatchesHandSchedule) {
  // 100 probes at 1M pps -> T0 = 100 µs, scan ends inside tick 1.
  obs::Timeline timeline(second_interval(), /*concurrency=*/2);
  timeline.set_pps(1'000'000);
  timeline.add_scan_series({{1, 100, 100, 3, 0}});
  // Window of 2: hosts 1 and 2 launch at T0; host 3 launches when host 1
  // (the shorter session) completes at T0 + 0.5s and finishes at T0 + 0.9s.
  timeline.add_host(host(1, 500'000, /*requests=*/7));
  timeline.add_host(host(2, 1'500'000, /*requests=*/9));
  timeline.add_host(host(3, 400'000, /*requests=*/5, /*retries=*/2));

  const auto rows = timeline.project();
  ASSERT_EQ(rows.size(), 2u);
  using TL = obs::Timeline;

  // Tick 1 (t=1s): all three launched; hosts 1 and 3 completed.
  EXPECT_EQ(rows[0].t, 1'000'000u);
  EXPECT_EQ(rows[0].gauges[TL::kScanProbed], 100u);
  EXPECT_EQ(rows[0].gauges[TL::kScanResponsive], 3u);
  EXPECT_EQ(rows[0].gauges[TL::kEnumLaunched], 3u);
  EXPECT_EQ(rows[0].gauges[TL::kEnumDone], 2u);
  EXPECT_EQ(rows[0].gauges[TL::kEnumInFlight], 1u);
  EXPECT_EQ(rows[0].gauges[TL::kEnumQueue], 0u);
  EXPECT_EQ(rows[0].gauges[TL::kFtpRequests], 12u);   // hosts 1 + 3
  EXPECT_EQ(rows[0].gauges[TL::kRetryCommands], 2u);  // host 3

  // Tick 2: host 2 completes at T0 + 1.5s.
  EXPECT_EQ(rows[1].gauges[TL::kEnumDone], 3u);
  EXPECT_EQ(rows[1].gauges[TL::kEnumInFlight], 0u);
  EXPECT_EQ(rows[1].gauges[TL::kFunnelConnected], 3u);
  EXPECT_EQ(rows[1].gauges[TL::kFtpRequests], 21u);
}

TEST(TimelineProjectionTest, EventOnTickBoundaryCountsInThatTick) {
  // A session completing exactly at t = k*interval belongs to snapshot k
  // (a snapshot at t counts every event with time <= t).
  obs::Timeline timeline(second_interval(), 1);
  timeline.set_pps(1'000'000);
  timeline.add_scan_series({{1, 10, 10, 1, 0}});  // T0 = 10 µs
  timeline.add_host(host(1, 1'000'000 - 10));     // completes at exactly 1s
  const auto rows = timeline.project();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].gauges[obs::Timeline::kEnumDone], 1u);
}

TEST(TimelineProjectionTest, QueueTracksDiscoveredMinusLaunched) {
  // Window of 1 serializes three sessions; the queue drains one per launch.
  obs::Timeline timeline(second_interval(), 1);
  timeline.set_pps(1'000'000);
  timeline.add_scan_series({{1, 10, 10, 3, 0}});
  for (std::uint64_t i = 1; i <= 3; ++i) {
    // T0 = 10 µs, so each back-to-back session completes exactly on a
    // tick boundary: one session per tick.
    timeline.add_host(host(i, 999'990 + (i > 1 ? 10 : 0)));
  }
  const auto rows = timeline.project();
  ASSERT_EQ(rows.size(), 3u);
  using TL = obs::Timeline;
  EXPECT_EQ(rows[0].gauges[TL::kEnumLaunched], 2u);  // 2nd launches at 1s
  EXPECT_EQ(rows[0].gauges[TL::kEnumQueue], 1u);
  EXPECT_EQ(rows[1].gauges[TL::kEnumQueue], 0u);
  EXPECT_EQ(rows[2].gauges[TL::kEnumDone], 3u);
}

TEST(TimelineProjectionTest, MergeOrderDoesNotChangeTheExport) {
  const auto build = [](bool reversed) {
    obs::Timeline a(second_interval(), 2);
    a.set_pps(1'000'000);
    a.add_scan_series({{1, 50, 50, 1, 0}});
    a.add_host(host(2, 700'000));
    obs::Timeline b(second_interval(), 2);
    b.set_pps(1'000'000);
    b.add_scan_series({{1, 50, 50, 1, 0}});
    b.add_host(host(1, 300'000));
    obs::Timeline merged(second_interval(), 2);
    if (reversed) {
      merged.merge_from(b);
      merged.merge_from(a);
    } else {
      merged.merge_from(a);
      merged.merge_from(b);
    }
    return merged;
  };
  EXPECT_EQ(build(false).to_jsonl(), build(true).to_jsonl());
  EXPECT_EQ(build(false).to_chrome_json(), build(true).to_chrome_json());
}

// ---------------------------------------------------------------------------
// Census-level: the split-invariance contract
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

core::CensusConfig timeline_config() {
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = kScaleShift;
  config.timeline.enabled = true;
  return config;
}

core::CensusStats run_sequential(core::CensusConfig config) {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::VectorSink sink;
  return core::Census(network, config).run(sink);
}

core::CensusStats run_sharded(core::CensusConfig config, std::uint32_t shards,
                              std::uint32_t threads) {
  config.shards = shards;
  config.threads = threads;
  core::ShardedCensus census(
      [] { return std::make_unique<popgen::SyntheticPopulation>(kSeed); },
      config);
  core::VectorSink sink;
  return census.run(sink);
}

class TimelineSplitInvariance : public ::testing::Test {
 protected:
  // One sequential baseline for the whole suite (the expensive run).
  static core::CensusStats& sequential() {
    static core::CensusStats stats = run_sequential(timeline_config());
    return stats;
  }
};

TEST_F(TimelineSplitInvariance, ExportsByteIdenticalAcrossShardConfigs) {
  const std::string baseline_jsonl = sequential().timeline.to_jsonl();
  const std::string baseline_chrome = sequential().timeline.to_chrome_json();
  ASSERT_FALSE(sequential().timeline.empty());
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 1}, {2, 1}, {2, 4}, {4, 1}, {4, 8}}) {
    core::CensusStats stats = run_sharded(timeline_config(), shards, threads);
    EXPECT_EQ(stats.timeline.to_jsonl(), baseline_jsonl)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(stats.timeline.to_chrome_json(), baseline_chrome)
        << "shards=" << shards << " threads=" << threads;
  }
}

TEST_F(TimelineSplitInvariance, SubSecondCadenceMergesScanBoundaries) {
  // A 10 ms cadence puts dozens of tick boundaries inside the scan phase,
  // exercising the per-shard boundary samples summing to the sequential
  // cumulative counters (not just the post-scan clamp).
  core::CensusConfig config = timeline_config();
  config.timeline.interval_us = 10'000;
  const std::string baseline = run_sequential(config).timeline.to_jsonl();
  core::CensusStats stats = run_sharded(config, 4, 4);
  EXPECT_EQ(stats.timeline.to_jsonl(), baseline);
}

TEST_F(TimelineSplitInvariance, ChaosRunsStayByteIdentical) {
  core::CensusConfig config = timeline_config();
  config.chaos_enabled = true;
  config.chaos = *sim::ChaosProfile::named("lossy");
  config.probe_retries = 2;
  config.enumerator.command_retries = 2;
  const core::CensusStats baseline = run_sequential(config);
  const std::string baseline_jsonl = baseline.timeline.to_jsonl();
  ASSERT_FALSE(baseline.timeline.empty());
  core::CensusStats stats = run_sharded(config, 4, 4);
  EXPECT_EQ(stats.timeline.to_jsonl(), baseline_jsonl);
  EXPECT_EQ(stats.timeline.to_chrome_json(),
            baseline.timeline.to_chrome_json());
}

TEST_F(TimelineSplitInvariance, FinalRowAgreesWithCensusTotals) {
  const core::CensusStats& stats = sequential();
  const auto rows = stats.timeline.project();
  ASSERT_FALSE(rows.empty());
  using TL = obs::Timeline;
  const auto& last = rows.back().gauges;
  EXPECT_EQ(last[TL::kEnumDone], stats.hosts_enumerated);
  EXPECT_EQ(last[TL::kEnumInFlight], 0u);
  EXPECT_EQ(last[TL::kEnumQueue], 0u);
  EXPECT_EQ(last[TL::kFunnelAnonymous], stats.anonymous);
  EXPECT_EQ(last[TL::kFunnelErrored], stats.sessions_errored);
  EXPECT_EQ(last[TL::kFunnelFtp], stats.ftp_compliant);
  EXPECT_EQ(last[TL::kScanProbed], stats.scan.probed);
  EXPECT_EQ(last[TL::kScanResponsive], stats.scan.responsive);
  // Cumulative gauges never decrease.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    for (const std::size_t g :
         {TL::kScanProbed, TL::kEnumLaunched, TL::kEnumDone,
          TL::kFunnelConnected, TL::kFtpRequests}) {
      EXPECT_GE(rows[i].gauges[g], rows[i - 1].gauges[g]) << "tick " << i;
    }
  }
}

TEST_F(TimelineSplitInvariance, DisabledTimelineRecordsNothing) {
  core::CensusConfig config = timeline_config();
  config.timeline.enabled = false;
  core::CensusStats stats = run_sequential(config);
  EXPECT_TRUE(stats.timeline.empty());
  EXPECT_TRUE(stats.timeline.project().empty());
}

// ---------------------------------------------------------------------------
// ftpc.tsdb.v1 golden file
// ---------------------------------------------------------------------------

// The serialized timeline is pinned byte for byte (schema AND values: the
// whole point of the channel is that these bytes are reproducible). Any
// intentional change — a new gauge column, different tick placement —
// must show up as a reviewed golden diff.
// Regenerate with: FTPC_UPDATE_GOLDEN=1 ./timeline_test
TEST(TimelineGoldenTest, TsdbV1MatchesGoldenFile) {
  core::CensusConfig config = timeline_config();
  config.scale_shift = 18;                   // small: keeps the golden short
  config.timeline.interval_us = 10'000'000;  // 10 s cadence -> a few rows
  const core::CensusStats stats = run_sequential(config);
  // The golden is stamp-free: the build stamp varies per commit by design,
  // so it is stripped before the comparison (and before regeneration).
  const std::string jsonl = obs::strip_build_stamp(stats.timeline.to_jsonl());

  const std::string path =
      std::string(FTPC_GOLDEN_DIR) + "/timeline_v1.jsonl";
  if (std::getenv("FTPC_UPDATE_GOLDEN") != nullptr) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr) << "cannot write " << path;
    std::fwrite(jsonl.data(), 1, jsonl.size(), out);
    std::fclose(out);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr)
      << path << " missing; run with FTPC_UPDATE_GOLDEN=1 to create it";
  std::string golden;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) golden.append(buf, n);
  std::fclose(in);
  EXPECT_EQ(jsonl, golden)
      << "ftpc.tsdb.v1 output drifted; if intentional, regenerate with "
         "FTPC_UPDATE_GOLDEN=1 and commit the golden diff";
}

}  // namespace
}  // namespace ftpc
