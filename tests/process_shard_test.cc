// Cross-process split-invariance suite for ftpc.shard.v1 artifacts.
//
// The contract under test (see core/shard_artifact.h + core/shard_slice.h):
// running the census as N independent single-shard processes and reducing
// the N artifact directories with merge_shard_artifacts() reproduces the
// single-process outputs *byte-identically* on all four deterministic
// channels — records (FTPD framing), ftpc.metrics.v1, ftpc.trace.v1 and
// ftpc.tsdb.v1. The matrix covers N in {1,2,4,8}, a chaos profile with
// retries (the hardest ordering case: retransmits + per-connection fault
// plans), shuffled merge input order, and — when the driver passes the
// tool binaries — a true multi-process leg through `ftpcensus census
// --shard-id k/N` + `ftpcmerge`.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/census.h"
#include "core/dataset.h"
#include "core/shard_artifact.h"
#include "core/shard_slice.h"
#include "core/sharded_census.h"
#include "popgen/population.h"
#include "sim/chaos.h"

namespace ftpc {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

core::PopulationFactory factory(std::uint64_t seed) {
  return [seed] { return std::make_unique<popgen::SyntheticPopulation>(seed); };
}

/// The exact census configuration `ftpcensus census --shard-id k/N` builds:
/// every deterministic channel on, so the artifacts are self-contained.
core::CensusConfig shard_config(std::uint64_t seed, unsigned scale_shift,
                                bool chaos_lossy = false,
                                std::uint32_t retries = 0) {
  core::CensusConfig config;
  config.seed = seed;
  config.scale_shift = scale_shift;
  config.trace.enabled = true;
  config.trace.sample_rate = 1.0;
  config.trace.capture_wire = true;
  config.timeline.enabled = true;
  config.timeline.interval_us = 10'000;  // 10k elements per tick at 1M pps
  if (chaos_lossy) {
    config.chaos_enabled = true;
    config.chaos = *sim::ChaosProfile::named("lossy");
  }
  config.probe_retries = retries;
  config.enumerator.command_retries = retries;
  return config;
}

std::string read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
    out.append(buffer, got);
  }
  std::fclose(in);
  return out;
}

std::string make_temp_root(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "ftpc_pshard_" + tag;
  ::mkdir(root.c_str(), 0777);
  return root;
}

/// The single-process reference: one in-process sharded run (K=1,T=1) with
/// the same config, artifacts rendered exactly as ftpcensus writes them.
struct SingleProcessArtifacts {
  std::string records;  // dataset header + canonical-order frames
  std::string metrics;
  std::string trace;
  std::string timeline;
};

SingleProcessArtifacts run_single_process(const core::CensusConfig& base) {
  core::CensusConfig config = base;
  config.shards = 1;
  config.threads = 1;
  core::ShardedCensus census(factory(base.seed), config);
  core::VectorSink sink;
  core::CensusStats stats = census.run(sink);
  SingleProcessArtifacts out;
  out.records = core::dataset_file_header();
  for (const core::HostReport& report : sink.reports()) {
    out.records += core::encode_host_frame(report);
  }
  out.metrics = stats.metrics.to_json();
  out.trace = stats.trace.to_jsonl();
  out.timeline = stats.timeline.to_jsonl();
  return out;
}

/// Runs each shard as its own slice (fresh EventLoop/Network/population per
/// call — exactly what N separate processes would build) into `root`.
std::vector<std::string> run_slices(const core::CensusConfig& base,
                                    std::uint32_t total_shards,
                                    const std::string& root) {
  std::vector<std::string> dirs;
  for (std::uint32_t shard = 0; shard < total_shards; ++shard) {
    core::ShardSliceConfig slice;
    slice.census = base;
    slice.shard = shard;
    slice.total_shards = total_shards;
    slice.out_dir = root + "/shard" + std::to_string(shard);
    const core::ShardSliceResult result =
        core::run_shard_slice(slice, factory(base.seed));
    EXPECT_TRUE(result.ok) << "shard " << shard << "/" << total_shards << ": "
                           << result.error;
    dirs.push_back(slice.out_dir);
  }
  return dirs;
}

void expect_merge_matches(const SingleProcessArtifacts& expected,
                          const std::vector<std::string>& shard_dirs,
                          const std::string& out_dir,
                          const std::string& label) {
  const core::MergeResult merged =
      core::merge_shard_artifacts(shard_dirs, out_dir);
  ASSERT_TRUE(merged.ok) << label << ": " << merged.error;
  EXPECT_EQ(merged.shards, shard_dirs.size()) << label;
  EXPECT_TRUE(merged.wrote_metrics) << label;
  EXPECT_TRUE(merged.wrote_trace) << label;
  EXPECT_TRUE(merged.wrote_timeline) << label;
  EXPECT_EQ(expected.records, read_file(out_dir + "/records.ftpd"))
      << label << ": merged records diverged from single-process bytes";
  EXPECT_EQ(expected.metrics, read_file(out_dir + "/metrics.json"))
      << label << ": merged metrics diverged from single-process bytes";
  EXPECT_EQ(expected.trace, read_file(out_dir + "/trace.jsonl"))
      << label << ": merged trace diverged from single-process bytes";
  EXPECT_EQ(expected.timeline, read_file(out_dir + "/timeline.jsonl"))
      << label << ": merged timeline diverged from single-process bytes";
}

class ProcessShardTest : public ::testing::Test {
 protected:
  // Single-process golden artifacts, shared across the matrix.
  static const SingleProcessArtifacts& golden() {
    static const SingleProcessArtifacts artifacts =
        run_single_process(shard_config(kSeed, kScaleShift));
    return artifacts;
  }
};

TEST_F(ProcessShardTest, GoldenRunIsNonTrivial) {
  // Guard against the suite passing vacuously on empty artifacts.
  EXPECT_GT(golden().records.size(), core::dataset_file_header().size());
  EXPECT_FALSE(golden().metrics.empty());
  EXPECT_GT(golden().trace.size(), 1000u);
  EXPECT_GT(golden().timeline.size(), 100u);
}

TEST_F(ProcessShardTest, ShardMergeIsByteIdenticalAcrossN) {
  for (const std::uint32_t total : {1u, 2u, 4u, 8u}) {
    const std::string label = "N" + std::to_string(total);
    const std::string root = make_temp_root(label);
    const auto dirs =
        run_slices(shard_config(kSeed, kScaleShift), total, root);
    expect_merge_matches(golden(), dirs, root + "/merged", label);
  }
}

TEST_F(ProcessShardTest, MergeInputOrderDoesNotMatter) {
  // The manifests carry the shard index; the directory argument order is
  // presentation, not semantics.
  const std::string root = make_temp_root("shuffled");
  auto dirs = run_slices(shard_config(kSeed, kScaleShift), 4, root);
  std::vector<std::string> shuffled = {dirs[2], dirs[0], dirs[3], dirs[1]};
  expect_merge_matches(golden(), shuffled, root + "/merged", "shuffled-N4");
}

TEST_F(ProcessShardTest, ChaosWithRetriesStaysByteIdentical) {
  // Lossy chaos + retry budget: retransmissions and per-connection fault
  // plans must stay pure per (chaos_seed, target) across the process split.
  const core::CensusConfig config =
      shard_config(kSeed, kScaleShift, /*chaos_lossy=*/true, /*retries=*/2);
  const SingleProcessArtifacts expected = run_single_process(config);
  EXPECT_GT(expected.records.size(), core::dataset_file_header().size());
  const std::string root = make_temp_root("chaos");
  const auto dirs = run_slices(config, 2, root);
  expect_merge_matches(expected, dirs, root + "/merged", "chaos-lossy-N2");
}

TEST_F(ProcessShardTest, ManifestRoundTripsAndFingerprintIsLayoutBlind) {
  const std::string root = make_temp_root("manifest");
  const auto dirs = run_slices(shard_config(kSeed, kScaleShift), 2, root);
  std::string error;
  const auto manifest =
      core::ShardManifest::parse(read_file(dirs[1] + "/manifest.json"), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->shard, 1u);
  EXPECT_EQ(manifest->total_shards, 2u);
  EXPECT_EQ(manifest->seed, kSeed);
  EXPECT_TRUE(manifest->has_metrics);
  EXPECT_TRUE(manifest->has_trace);
  EXPECT_TRUE(manifest->has_timeline);
  // The config hash must not depend on the execution layout...
  core::CensusConfig a = shard_config(kSeed, kScaleShift);
  core::CensusConfig b = a;
  b.shards = 8;
  b.threads = 4;
  EXPECT_EQ(core::census_config_fingerprint(a),
            core::census_config_fingerprint(b));
  EXPECT_EQ(manifest->config_hash, core::census_config_fingerprint(a));
  // ...but must distinguish every determinism-relevant knob.
  core::CensusConfig c = a;
  c.seed = kSeed + 1;
  EXPECT_NE(core::census_config_fingerprint(a),
            core::census_config_fingerprint(c));
  core::CensusConfig d = a;
  d.probe_retries = 2;
  EXPECT_NE(core::census_config_fingerprint(a),
            core::census_config_fingerprint(d));
}

// ---------------------------------------------------------------------------
// True multi-process leg: the same contract through the shipped binaries.
// Smaller scale — this is about CLI plumbing, not the reduction math.
// ---------------------------------------------------------------------------

#if defined(FTPC_FTPCENSUS_BIN) && defined(FTPC_FTPCMERGE_BIN)

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ProcessShardCli, BinariesReproduceSingleProcessBytes) {
  const std::string root = make_temp_root("cli");
  const std::string quiet = " >/dev/null 2>&1";
  // Flags mirror shard mode's forced channels: trace + timeline + metrics
  // on, 0.01 sim-seconds = the 10'000us tick the library tests use.
  const std::string common =
      " --scale 12 --seed 42 --timeline-interval 0.01";
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCENSUS_BIN) + " census" +
                           common + " --dataset " + root +
                           "/single.ftpd --metrics-out " + root +
                           "/metrics.json --trace-out " + root +
                           "/trace.jsonl --timeline-out " + root +
                           "/timeline.jsonl" + quiet));
  for (int shard = 0; shard < 2; ++shard) {
    ASSERT_EQ(0, run_command(std::string(FTPC_FTPCENSUS_BIN) + " census" +
                             common + " --shard-id " + std::to_string(shard) +
                             "/2 --shard-out " + root + "/shard" +
                             std::to_string(shard) + quiet));
  }
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCMERGE_BIN) + " --out " + root +
                           "/merged " + root + "/shard0 " + root + "/shard1" +
                           quiet));
  const std::string records = read_file(root + "/single.ftpd");
  ASSERT_GT(records.size(), core::dataset_file_header().size());
  EXPECT_EQ(records, read_file(root + "/merged/records.ftpd"));
  EXPECT_EQ(read_file(root + "/metrics.json"),
            read_file(root + "/merged/metrics.json"));
  EXPECT_EQ(read_file(root + "/trace.jsonl"),
            read_file(root + "/merged/trace.jsonl"));
  EXPECT_EQ(read_file(root + "/timeline.jsonl"),
            read_file(root + "/merged/timeline.jsonl"));
}

TEST(ProcessShardCli, ShardModeRejectsBadUsage) {
  // --shard-id without --shard-out, malformed K/N, K >= N: all usage
  // errors (exit 2), never a partial artifact.
  const std::string quiet = " >/dev/null 2>&1";
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --shard-id 0/2" + quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --shard-id 2of4 --shard-out /tmp/x" +
                           quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --shard-id 4/4 --shard-out /tmp/x" +
                           quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --resume" + quiet));
}

#endif  // FTPC_FTPCENSUS_BIN && FTPC_FTPCMERGE_BIN

}  // namespace
}  // namespace ftpc
