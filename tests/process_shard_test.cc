// Cross-process split-invariance suite for ftpc.shard.v1 artifacts.
//
// The contract under test (see core/shard_artifact.h + core/shard_slice.h):
// running the census as N independent single-shard processes and reducing
// the N artifact directories with merge_shard_artifacts() reproduces the
// single-process outputs *byte-identically* on all four deterministic
// channels — records (FTPD framing), ftpc.metrics.v1, ftpc.trace.v1 and
// ftpc.tsdb.v1. The matrix covers N in {1,2,4,8}, a chaos profile with
// retries (the hardest ordering case: retransmits + per-connection fault
// plans), shuffled merge input order, and — when the driver passes the
// tool binaries — a true multi-process leg through `ftpcensus census
// --shard-id k/N` + `ftpcmerge`. Every leg also cross-checks the streaming
// reduction against the materializing one: both must produce the same
// bytes, so the bounded-memory path can never drift from the reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/census.h"
#include "core/dataset.h"
#include "core/shard_artifact.h"
#include "shard_fixture.h"

namespace ftpc {
namespace {

using fixture::SingleProcessArtifacts;
using fixture::make_temp_root;
using fixture::read_file;
using fixture::run_single_process;
using fixture::run_slices;

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

core::CensusConfig shard_config(std::uint64_t seed, unsigned scale_shift,
                                bool chaos_lossy = false,
                                std::uint32_t retries = 0) {
  fixture::ShardConfigOptions options;
  options.full_wire = true;
  options.chaos_lossy = chaos_lossy;
  options.retries = retries;
  return fixture::shard_config(seed, scale_shift, options);
}

/// Merges `shard_dirs` twice — the default streaming reduction into
/// `out_dir` and the materializing reference into `out_dir + "_mat"` — and
/// byte-compares both against the single-process artifacts. Any divergence
/// between the two reduction strategies fails here first.
void expect_merge_matches(const SingleProcessArtifacts& expected,
                          const std::vector<std::string>& shard_dirs,
                          const std::string& out_dir,
                          const std::string& label) {
  const core::MergeResult merged =
      core::merge_shard_artifacts(shard_dirs, out_dir);
  ASSERT_TRUE(merged.ok) << label << ": " << merged.error;
  EXPECT_EQ(merged.shards, shard_dirs.size()) << label;
  EXPECT_TRUE(merged.wrote_metrics) << label;
  EXPECT_TRUE(merged.wrote_trace) << label;
  EXPECT_TRUE(merged.wrote_timeline) << label;
  // Canonical artifacts must take the bounded-memory path, not fall back.
  EXPECT_TRUE(merged.streamed_records) << label;
  EXPECT_TRUE(merged.streamed_trace) << label;
  EXPECT_TRUE(merged.streamed_timeline) << label;
  EXPECT_GT(merged.peak_stream_bytes, 0u) << label;
  fixture::expect_merged_dir_matches(expected, out_dir, label);

  core::MergeOptions materialize;
  materialize.force_materialize = true;
  const std::string mat_dir = out_dir + "_mat";
  const core::MergeResult reference =
      core::merge_shard_artifacts(shard_dirs, mat_dir, materialize);
  ASSERT_TRUE(reference.ok) << label << ": " << reference.error;
  EXPECT_FALSE(reference.streamed_records) << label;
  EXPECT_FALSE(reference.streamed_trace) << label;
  EXPECT_FALSE(reference.streamed_timeline) << label;
  for (const char* file :
       {"records.ftpd", "metrics.json", "trace.jsonl", "timeline.jsonl"}) {
    EXPECT_EQ(read_file(mat_dir + "/" + file), read_file(out_dir + "/" + file))
        << label << ": streaming and materializing merges disagree on "
        << file;
  }
}

class ProcessShardTest : public ::testing::Test {
 protected:
  // Single-process golden artifacts, shared across the matrix.
  static const SingleProcessArtifacts& golden() {
    static const SingleProcessArtifacts artifacts =
        run_single_process(shard_config(kSeed, kScaleShift));
    return artifacts;
  }
};

TEST_F(ProcessShardTest, GoldenRunIsNonTrivial) {
  // Guard against the suite passing vacuously on empty artifacts.
  EXPECT_GT(golden().records.size(), core::dataset_file_header().size());
  EXPECT_FALSE(golden().metrics.empty());
  EXPECT_GT(golden().trace.size(), 1000u);
  EXPECT_GT(golden().timeline.size(), 100u);
}

TEST_F(ProcessShardTest, ShardMergeIsByteIdenticalAcrossN) {
  for (const std::uint32_t total : {1u, 2u, 4u, 8u}) {
    const std::string label = "N" + std::to_string(total);
    const std::string root = make_temp_root("pshard_" + label);
    const auto dirs =
        run_slices(shard_config(kSeed, kScaleShift), total, root);
    expect_merge_matches(golden(), dirs, root + "/merged", label);
  }
}

TEST_F(ProcessShardTest, MergeInputOrderDoesNotMatter) {
  // The manifests carry the shard index; the directory argument order is
  // presentation, not semantics.
  const std::string root = make_temp_root("pshard_shuffled");
  auto dirs = run_slices(shard_config(kSeed, kScaleShift), 4, root);
  std::vector<std::string> shuffled = {dirs[2], dirs[0], dirs[3], dirs[1]};
  expect_merge_matches(golden(), shuffled, root + "/merged", "shuffled-N4");
}

TEST_F(ProcessShardTest, ChaosWithRetriesStaysByteIdentical) {
  // Lossy chaos + retry budget: retransmissions and per-connection fault
  // plans must stay pure per (chaos_seed, target) across the process split.
  const core::CensusConfig config =
      shard_config(kSeed, kScaleShift, /*chaos_lossy=*/true, /*retries=*/2);
  const SingleProcessArtifacts expected = run_single_process(config);
  EXPECT_GT(expected.records.size(), core::dataset_file_header().size());
  const std::string root = make_temp_root("pshard_chaos");
  const auto dirs = run_slices(config, 2, root);
  expect_merge_matches(expected, dirs, root + "/merged", "chaos-lossy-N2");
}

TEST_F(ProcessShardTest, StreamBufferSizeDoesNotChangeBytes) {
  // A pathologically small buffer forces every refill/spill edge in the
  // incremental readers; the output bytes must not notice.
  const std::string root = make_temp_root("pshard_smallbuf");
  const auto dirs = run_slices(shard_config(kSeed, kScaleShift), 2, root);
  core::MergeOptions tiny;
  tiny.buffer_bytes = 64;  // far below any single line/frame
  const core::MergeResult merged =
      core::merge_shard_artifacts(dirs, root + "/merged", tiny);
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_TRUE(merged.streamed_records);
  EXPECT_TRUE(merged.streamed_trace);
  EXPECT_TRUE(merged.streamed_timeline);
  fixture::expect_merged_dir_matches(golden(), root + "/merged", "smallbuf");
}

TEST_F(ProcessShardTest, ManifestRoundTripsAndFingerprintIsLayoutBlind) {
  const std::string root = make_temp_root("pshard_manifest");
  const auto dirs = run_slices(shard_config(kSeed, kScaleShift), 2, root);
  std::string error;
  const auto manifest =
      core::ShardManifest::parse(read_file(dirs[1] + "/manifest.json"), &error);
  ASSERT_TRUE(manifest.has_value()) << error;
  EXPECT_EQ(manifest->shard, 1u);
  EXPECT_EQ(manifest->total_shards, 2u);
  EXPECT_EQ(manifest->seed, kSeed);
  EXPECT_TRUE(manifest->has_metrics);
  EXPECT_TRUE(manifest->has_trace);
  EXPECT_TRUE(manifest->has_timeline);
  // The config hash must not depend on the execution layout...
  core::CensusConfig a = shard_config(kSeed, kScaleShift);
  core::CensusConfig b = a;
  b.shards = 8;
  b.threads = 4;
  EXPECT_EQ(core::census_config_fingerprint(a),
            core::census_config_fingerprint(b));
  EXPECT_EQ(manifest->config_hash, core::census_config_fingerprint(a));
  // ...but must distinguish every determinism-relevant knob.
  core::CensusConfig c = a;
  c.seed = kSeed + 1;
  EXPECT_NE(core::census_config_fingerprint(a),
            core::census_config_fingerprint(c));
  core::CensusConfig d = a;
  d.probe_retries = 2;
  EXPECT_NE(core::census_config_fingerprint(a),
            core::census_config_fingerprint(d));
}

// ---------------------------------------------------------------------------
// True multi-process leg: the same contract through the shipped binaries.
// Smaller scale — this is about CLI plumbing, not the reduction math.
// ---------------------------------------------------------------------------

#if defined(FTPC_FTPCENSUS_BIN) && defined(FTPC_FTPCMERGE_BIN)

using fixture::run_command;

TEST(ProcessShardCli, BinariesReproduceSingleProcessBytes) {
  const std::string root = make_temp_root("pshard_cli");
  const std::string quiet = " >/dev/null 2>&1";
  // Flags mirror shard mode's forced channels: trace + timeline + metrics
  // on, 0.01 sim-seconds = the 10'000us tick the library tests use.
  const std::string common =
      " --scale 12 --seed 42 --timeline-interval 0.01";
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCENSUS_BIN) + " census" +
                           common + " --dataset " + root +
                           "/single.ftpd --metrics-out " + root +
                           "/metrics.json --trace-out " + root +
                           "/trace.jsonl --timeline-out " + root +
                           "/timeline.jsonl" + quiet));
  for (int shard = 0; shard < 2; ++shard) {
    ASSERT_EQ(0, run_command(std::string(FTPC_FTPCENSUS_BIN) + " census" +
                             common + " --shard-id " + std::to_string(shard) +
                             "/2 --shard-out " + root + "/shard" +
                             std::to_string(shard) + quiet));
  }
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCMERGE_BIN) + " --out " + root +
                           "/merged " + root + "/shard0 " + root + "/shard1" +
                           quiet));
  const std::string records = read_file(root + "/single.ftpd");
  ASSERT_GT(records.size(), core::dataset_file_header().size());
  EXPECT_EQ(records, read_file(root + "/merged/records.ftpd"));
  EXPECT_EQ(read_file(root + "/metrics.json"),
            read_file(root + "/merged/metrics.json"));
  EXPECT_EQ(read_file(root + "/trace.jsonl"),
            read_file(root + "/merged/trace.jsonl"));
  EXPECT_EQ(read_file(root + "/timeline.jsonl"),
            read_file(root + "/merged/timeline.jsonl"));

  // The CLI's materializing escape hatch produces the same bytes.
  ASSERT_EQ(0, run_command(std::string(FTPC_FTPCMERGE_BIN) +
                           " --materialize --out " + root + "/merged_mat " +
                           root + "/shard0 " + root + "/shard1" + quiet));
  EXPECT_EQ(records, read_file(root + "/merged_mat/records.ftpd"));
  EXPECT_EQ(read_file(root + "/merged/timeline.jsonl"),
            read_file(root + "/merged_mat/timeline.jsonl"));
}

TEST(ProcessShardCli, ShardModeRejectsBadUsage) {
  // --shard-id without --shard-out, malformed K/N, K >= N: all usage
  // errors (exit 2), never a partial artifact.
  const std::string quiet = " >/dev/null 2>&1";
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --shard-id 0/2" + quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --shard-id 2of4 --shard-out /tmp/x" +
                           quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --shard-id 4/4 --shard-out /tmp/x" +
                           quiet));
  EXPECT_EQ(2, run_command(std::string(FTPC_FTPCENSUS_BIN) +
                           " census --resume" + quiet));
}

#endif  // FTPC_FTPCENSUS_BIN && FTPC_FTPCMERGE_BIN

}  // namespace
}  // namespace ftpc
