// Health-plane suite: the ftpc.health.v1 heartbeat channel (obs/health.h).
//
// Three contracts are pinned here:
//   1. Schema: render_health_line() is a pure function of HealthSample and
//      its bytes are golden-pinned (tests/golden/health_v1.json), with
//      parse_health_line() as its exact inverse.
//   2. Monitor behavior: HealthMonitor writes beat 0 immediately, beats on
//      cadence, an atomic-rename heartbeat.json that always parses, and a
//      final done=true beat on a clean stop.
//   3. Split invariance: heartbeats are wall-clock telemetry and must not
//      perturb the four deterministic channels — a shard slice run with
//      heartbeats on is byte-identical to one with them off.
// The CLI acceptance leg (4-shard fleet, one killed, ftpcwatch flags
// exactly that shard dead with the fleet exit code) runs when the build
// passes the tool binaries in.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/census.h"
#include "core/shard_slice.h"
#include "net/internet.h"
#include "obs/build_info.h"
#include "obs/health.h"
#include "popgen/population.h"
#include "shard_fixture.h"
#include "sim/network.h"

namespace ftpc {
namespace {

using fixture::factory;
using fixture::parse_history;
using fixture::read_file;

constexpr std::uint64_t kSeed = 42;

std::string make_temp_root(const std::string& tag) {
  return fixture::make_temp_root("health_" + tag);
}

/// The fixed sample the golden file pins: every field non-default so a
/// dropped or reordered key cannot hide behind a zero.
obs::HealthSample golden_sample() {
  obs::HealthSample sample;
  sample.seq = 3;
  sample.ts_ms = 1723111222333;
  sample.pid = 4242;
  sample.shard = 2;
  sample.total_shards = 8;
  sample.seed = 42;
  sample.config_hash = 123456789;
  sample.interval_ms = 1000;
  sample.stage = "enumerate";
  sample.done = false;
  sample.global_element = 1048576;
  sample.elements_total = 4194304;
  sample.hosts_attempted = 900;
  sample.hosts_enumerated = 880;
  sample.connected = 700;
  sample.ftp_compliant = 420;
  sample.anonymous = 77;
  sample.errored = 180;
  sample.retries = 12;
  sample.chaos_injected = 3;
  sample.checkpoint_element = 786432;
  sample.wall_s = 12.5;
  sample.cpu_s = 9.25;
  sample.rss_kb = 20480;
  return sample;
}

// ---------------------------------------------------------------------------
// Schema: golden bytes + parse round trip
// ---------------------------------------------------------------------------

// The serialized beat is pinned byte for byte — key order included, since
// ftpcwatch/ftpcreport and external dashboards key on this line format.
// Regenerate with: FTPC_UPDATE_GOLDEN=1 ./health_test
TEST(HealthSchema, RenderedBeatMatchesGoldenFile) {
  // Stamp-free golden: the build stamp varies per commit by design.
  const std::string line =
      obs::strip_build_stamp(obs::render_health_line(golden_sample()));
  const std::string path = std::string(FTPC_GOLDEN_DIR) + "/health_v1.json";
  if (std::getenv("FTPC_UPDATE_GOLDEN") != nullptr) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr) << "cannot write " << path;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fclose(out);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << path << " missing; run with FTPC_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(line, golden)
      << "ftpc.health.v1 beat format drifted; if intentional, regenerate "
         "with FTPC_UPDATE_GOLDEN=1 and commit the golden diff";
}

TEST(HealthSchema, ParseIsTheInverseOfRender) {
  const obs::HealthSample sample = golden_sample();
  std::string error;
  const auto parsed =
      obs::parse_health_line(obs::render_health_line(sample), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->seq, sample.seq);
  EXPECT_EQ(parsed->ts_ms, sample.ts_ms);
  EXPECT_EQ(parsed->pid, sample.pid);
  EXPECT_EQ(parsed->shard, sample.shard);
  EXPECT_EQ(parsed->total_shards, sample.total_shards);
  EXPECT_EQ(parsed->seed, sample.seed);
  EXPECT_EQ(parsed->config_hash, sample.config_hash);
  EXPECT_EQ(parsed->interval_ms, sample.interval_ms);
  EXPECT_EQ(parsed->stage, sample.stage);
  EXPECT_EQ(parsed->done, sample.done);
  EXPECT_EQ(parsed->global_element, sample.global_element);
  EXPECT_EQ(parsed->elements_total, sample.elements_total);
  EXPECT_EQ(parsed->hosts_attempted, sample.hosts_attempted);
  EXPECT_EQ(parsed->hosts_enumerated, sample.hosts_enumerated);
  EXPECT_EQ(parsed->connected, sample.connected);
  EXPECT_EQ(parsed->ftp_compliant, sample.ftp_compliant);
  EXPECT_EQ(parsed->anonymous, sample.anonymous);
  EXPECT_EQ(parsed->errored, sample.errored);
  EXPECT_EQ(parsed->retries, sample.retries);
  EXPECT_EQ(parsed->chaos_injected, sample.chaos_injected);
  EXPECT_EQ(parsed->checkpoint_element, sample.checkpoint_element);
  EXPECT_DOUBLE_EQ(parsed->wall_s, sample.wall_s);
  EXPECT_DOUBLE_EQ(parsed->cpu_s, sample.cpu_s);
  EXPECT_EQ(parsed->rss_kb, sample.rss_kb);
}

TEST(HealthSchema, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(obs::parse_health_line("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      obs::parse_health_line("{\"schema\":\"ftpc.perf.v1\"}", &error)
          .has_value());
  // A torn beat (required field missing) must not parse to zeros.
  EXPECT_FALSE(
      obs::parse_health_line(
          "{\"schema\":\"ftpc.health.v1\",\"seq\":1,\"ts_ms\":5", &error)
          .has_value());
  EXPECT_FALSE(
      obs::parse_health_line("{\"schema\":\"ftpc.health.v1\",\"seq\":1}",
                             &error)
          .has_value());
}

TEST(HealthSchema, ResourceProbesReportLiveValues) {
  // This process is certainly resident and has burned CPU by now.
  EXPECT_GT(obs::process_rss_kb(), 0u);
  EXPECT_GT(obs::process_cpu_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Monitor behavior
// ---------------------------------------------------------------------------

obs::HealthOptions monitor_options(const std::string& dir,
                                   std::uint64_t interval_ms) {
  obs::HealthOptions options;
  options.enabled = true;
  options.interval_ms = interval_ms;  // tests may go below the CLI's 100ms
  options.dir = dir;
  options.shard = 1;
  options.total_shards = 4;
  options.seed = kSeed;
  options.config_hash = 777;
  return options;
}

TEST(HealthMonitor, EmitsBeatZeroThenCadenceThenDoneBeat) {
  const std::string dir = make_temp_root("monitor");
  obs::HealthState state;
  state.elements_total.store(1000, std::memory_order_relaxed);
  {
    obs::HealthMonitor monitor(monitor_options(dir, 5), state);
    ASSERT_TRUE(monitor.ok());
    // Beat 0 lands before the first interval elapses.
    EXPECT_GE(monitor.beats(), 1u);
    state.global_element.store(500, std::memory_order_relaxed);
    state.set_stage(obs::PerfStage::kEnumerate);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    monitor.stop(true);
  }
  const auto beats = parse_history(dir + "/" + obs::kHealthHistoryFile);
  ASSERT_GE(beats.size(), 3u);  // beat 0 + cadence beats + final
  for (std::size_t i = 0; i < beats.size(); ++i) {
    EXPECT_EQ(beats[i].seq, i) << "seq must be dense from 0";
    EXPECT_EQ(beats[i].shard, 1u);
    EXPECT_EQ(beats[i].total_shards, 4u);
    EXPECT_EQ(beats[i].interval_ms, 5u);
    if (i > 0) {
      EXPECT_GE(beats[i].ts_ms, beats[i - 1].ts_ms);
    }
  }
  EXPECT_FALSE(beats.front().done);
  EXPECT_TRUE(beats.back().done);
  EXPECT_EQ(beats.back().stage, "done");
  EXPECT_EQ(beats.back().global_element, 500u);
  EXPECT_GT(beats.back().wall_s, 0.0);
  EXPECT_GT(beats.back().rss_kb, 0u);

  // heartbeat.json is the rename-replaced latest beat.
  std::string error;
  const auto latest = obs::parse_health_line(
      read_file(dir + "/" + obs::kHeartbeatFile), &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_EQ(latest->seq, beats.back().seq);
  EXPECT_TRUE(latest->done);
}

TEST(HealthMonitor, StopWithoutCompletionKeepsLastStageHonest) {
  const std::string dir = make_temp_root("killed");
  obs::HealthState state;
  state.set_stage(obs::PerfStage::kEnumerate);
  {
    obs::HealthMonitor monitor(monitor_options(dir, 1000), state);
    ASSERT_TRUE(monitor.ok());
    // Destruction without stop(true) = the crash/kill path.
  }
  const auto beats = parse_history(dir + "/" + obs::kHealthHistoryFile);
  ASSERT_GE(beats.size(), 2u);
  EXPECT_FALSE(beats.back().done);
  EXPECT_EQ(beats.back().stage, "enumerate");
}

TEST(HealthMonitor, ResumeAppendsHistoryWithSeqReset) {
  const std::string dir = make_temp_root("resume");
  obs::HealthState state;
  {
    obs::HealthMonitor first(monitor_options(dir, 1000), state);
    ASSERT_TRUE(first.ok());
    first.stop(false);
  }
  const std::size_t first_beats =
      parse_history(dir + "/" + obs::kHealthHistoryFile).size();
  ASSERT_GE(first_beats, 2u);
  obs::HealthOptions resumed = monitor_options(dir, 1000);
  resumed.append = true;
  {
    obs::HealthMonitor second(resumed, state);
    ASSERT_TRUE(second.ok());
    second.stop(true);
  }
  const auto beats = parse_history(dir + "/" + obs::kHealthHistoryFile);
  ASSERT_GE(beats.size(), first_beats + 2);
  // The restart is visible as a seq reset mid-stream, not a rewrite.
  EXPECT_EQ(beats[first_beats].seq, 0u);
  EXPECT_TRUE(beats.back().done);
}

// ---------------------------------------------------------------------------
// Census wiring: gauges move, determinism does not
// ---------------------------------------------------------------------------

core::CensusConfig census_config() {
  return fixture::shard_config(kSeed, /*scale_shift=*/16);  // CI-sized
}

TEST(HealthCensus, GaugesTrackTheRealFunnel) {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::CensusConfig config = census_config();
  obs::HealthState health;
  config.health = &health;
  core::VectorSink sink;
  const core::CensusStats stats = core::Census(network, config).run(sink);

  EXPECT_EQ(health.elements_total.load(std::memory_order_relaxed),
            std::uint64_t{1} << 16);
  EXPECT_EQ(health.hosts_enumerated.load(std::memory_order_relaxed),
            stats.hosts_enumerated);
  EXPECT_EQ(health.ftp_compliant.load(std::memory_order_relaxed),
            stats.ftp_compliant);
  EXPECT_EQ(health.anonymous.load(std::memory_order_relaxed),
            stats.anonymous);
  EXPECT_EQ(health.errored.load(std::memory_order_relaxed),
            stats.sessions_errored);
  EXPECT_EQ(health.hosts_attempted.load(std::memory_order_relaxed),
            health.hosts_enumerated.load(std::memory_order_relaxed));
  EXPECT_GT(health.global_element.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(health.stage.load(std::memory_order_relaxed),
            static_cast<std::uint32_t>(obs::PerfStage::kFinalize));
  // Frame-scoped attachment: the network must not dangle into `health`.
  EXPECT_EQ(network.health(), nullptr);
}

// The split-invariance regression the header promises: every deterministic
// channel byte-identical with the health plane on vs off, while the run
// with heartbeats actually produced them.
TEST(HealthCensus, HeartbeatsNeverTouchTheDeterministicChannels) {
  const std::string off_dir = make_temp_root("hb_off") + "/shard";
  const std::string on_dir = make_temp_root("hb_on") + "/shard";

  core::ShardSliceConfig off;
  off.census = census_config();
  off.out_dir = off_dir;
  off.checkpoint_interval = 16384;
  core::ShardSliceConfig on = off;
  on.out_dir = on_dir;
  on.heartbeat_interval_ms = 1;  // hammer the plane: ~every millisecond

  const auto off_result = core::run_shard_slice(off, factory(kSeed));
  ASSERT_TRUE(off_result.ok) << off_result.error;
  const auto on_result = core::run_shard_slice(on, factory(kSeed));
  ASSERT_TRUE(on_result.ok) << on_result.error;

  for (const char* file :
       {"records.ftpd", "metrics.json", "trace.jsonl", "timeline.jsonl",
        "manifest.json", "journal.jsonl", "checkpoint.json"}) {
    const std::string expected = read_file(off_dir + "/" + file);
    ASSERT_FALSE(expected.empty()) << file << ": vacuous comparison";
    EXPECT_EQ(expected, read_file(on_dir + "/" + file))
        << file << " diverged with heartbeats enabled";
  }

  // And the health plane really ran: beats landed, the last one is done,
  // and the final checkpoint boundary was reported.
  EXPECT_EQ(read_file(off_dir + "/" + obs::kHealthHistoryFile), "");
  const auto beats = parse_history(on_dir + "/" + obs::kHealthHistoryFile);
  ASSERT_GE(beats.size(), 2u);
  EXPECT_TRUE(beats.back().done);
  EXPECT_EQ(beats.back().stage, "done");
  EXPECT_EQ(beats.back().elements_total, std::uint64_t{1} << 16);
  EXPECT_EQ(beats.back().checkpoint_element, 49152u);
  EXPECT_EQ(beats.back().hosts_enumerated, on_result.stats.hosts_enumerated);
}

// ---------------------------------------------------------------------------
// CLI acceptance: a killed shard is flagged dead, and only that shard
// ---------------------------------------------------------------------------

#if defined(FTPC_FTPCENSUS_BIN) && defined(FTPC_FTPCWATCH_BIN)

using fixture::run_command;

TEST(HealthCli, WatcherFlagsExactlyTheKilledShardDead) {
  const std::string root = make_temp_root("fleet");
  const std::string quiet = " >/dev/null 2>&1";
  const std::string common =
      " --scale 14 --seed 42 --timeline-interval 0.01 "
      "--checkpoint-interval 4096 --heartbeat-interval 0.1";
  // Shards 0,1,3 run to completion; shard 2 dies after its first
  // checkpoint (exit 3, pid gone, heartbeat not done).
  for (int shard = 0; shard < 4; ++shard) {
    std::string cmd = std::string(FTPC_FTPCENSUS_BIN) + " census" + common +
                      " --shard-id " + std::to_string(shard) + "/4" +
                      " --shard-out " + root + "/shard" +
                      std::to_string(shard);
    if (shard == 2) cmd += " --crash-after-checkpoint 1";
    ASSERT_EQ(shard == 2 ? 3 : 0, run_command(cmd + quiet)) << cmd;
  }
  // Let the dead shard's last beat go stale (interval 100ms, --stale 1).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const std::string json_path = root + "/fleet.json";
  const int code =
      run_command(std::string(FTPC_FTPCWATCH_BIN) + " --once --json --stale 1 " +
                  root + " > " + json_path + " 2>/dev/null");
  EXPECT_EQ(code, 3) << "a dead shard must yield the dead fleet exit code";
  const std::string json = read_file(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"schema\":\"ftpc.fleet.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"dead\""), std::string::npos);
  EXPECT_NE(json.find("\"done\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dead\":1"), std::string::npos);
  // The dead entry is shard 2 specifically.
  const auto dead_at = json.find("shard2");
  ASSERT_NE(dead_at, std::string::npos);
  const auto entry_end = json.find('}', dead_at);
  const std::string entry = json.substr(dead_at, entry_end - dead_at);
  EXPECT_NE(entry.find("\"status\":\"dead\""), std::string::npos) << entry;
  EXPECT_NE(entry.find("\"pid_alive\":false"), std::string::npos) << entry;
}

#endif  // FTPC_FTPCENSUS_BIN && FTPC_FTPCWATCH_BIN

}  // namespace
}  // namespace ftpc
