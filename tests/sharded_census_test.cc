// Determinism-equivalence suite for the sharded census engine.
//
// The contract under test (see sharded_census.h): for a fixed seed and
// scale, every (shards=K, threads=T) configuration produces a merged
// record stream and summary byte-identical to the sequential pipeline.
// Streams are compared through the dataset wire encoding and summaries
// through summary_io serialization, so "identical" here really is
// byte-for-byte, not just equal counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/summary.h"
#include "analysis/summary_io.h"
#include "core/census.h"
#include "core/dataset.h"
#include "core/records.h"
#include "core/sharded_census.h"
#include "net/internet.h"
#include "popgen/population.h"
#include "sim/network.h"

namespace ftpc {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

// Canonical byte encoding of a record stream: reports sorted by IP (the
// sharded engine's merge order), each framed by the dataset encoder.
std::string encode_stream_sorted(std::vector<core::HostReport> reports) {
  std::sort(reports.begin(), reports.end(),
            [](const core::HostReport& a, const core::HostReport& b) {
              return a.ip.value() < b.ip.value();
            });
  std::string bytes;
  for (const core::HostReport& report : reports) {
    bytes += core::encode_host_report(report);
  }
  return bytes;
}

// Serialized summary built by replaying `reports` (already in canonical
// order for sharded runs; sorted here for sequential ones).
std::string encode_summary(const std::vector<core::HostReport>& reports,
                           const popgen::SyntheticPopulation& population,
                           const core::CensusStats& stats,
                           std::uint64_t seed, unsigned scale_shift) {
  analysis::SummaryBuilder builder(
      population.as_table(), [&population](Ipv4 ip) {
        const popgen::HttpProfile http = population.http_profile(ip);
        return analysis::HttpSignal{
            .has_http = http.has_http,
            .server_side_scripting =
                http.powered_by != popgen::HttpProfile::PoweredBy::kNone};
      });
  std::vector<core::HostReport> sorted = reports;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::HostReport& a, const core::HostReport& b) {
              return a.ip.value() < b.ip.value();
            });
  for (const core::HostReport& report : sorted) builder.on_host(report);
  const analysis::CensusSummary summary = builder.take(
      seed, scale_shift, stats.scan.probed, stats.scan.responsive);
  return analysis::serialize_summary(summary);
}

struct RunOutput {
  core::CensusStats stats;
  std::string stream_bytes;   // canonical-order dataset encoding
  std::string summary_bytes;  // serialized CensusSummary
  std::size_t report_count = 0;
};

// The pre-sharding pipeline: one stack, Census::run.
RunOutput run_sequential(std::uint64_t seed, unsigned scale_shift) {
  popgen::SyntheticPopulation population(seed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::CensusConfig config;
  config.seed = seed;
  config.scale_shift = scale_shift;
  core::VectorSink sink;
  core::Census census(network, config);
  RunOutput out;
  out.stats = census.run(sink);
  out.report_count = sink.reports().size();
  out.stream_bytes = encode_stream_sorted(sink.reports());
  out.summary_bytes = encode_summary(sink.reports(), population, out.stats,
                                     seed, scale_shift);
  return out;
}

RunOutput run_sharded(std::uint64_t seed, unsigned scale_shift,
                      std::uint32_t shards, std::uint32_t threads) {
  core::CensusConfig config;
  config.seed = seed;
  config.scale_shift = scale_shift;
  config.shards = shards;
  config.threads = threads;
  core::ShardedCensus census(
      [seed] { return std::make_unique<popgen::SyntheticPopulation>(seed); },
      config);
  core::VectorSink sink;
  RunOutput out;
  out.stats = census.run(sink);
  out.report_count = sink.reports().size();
  // The merged stream arrives in canonical order already; encode as-is to
  // additionally pin the merge order itself.
  std::string bytes;
  for (const core::HostReport& report : sink.reports()) {
    bytes += core::encode_host_report(report);
  }
  out.stream_bytes = std::move(bytes);
  popgen::SyntheticPopulation analysis_population(seed);
  out.summary_bytes = encode_summary(sink.reports(), analysis_population,
                                     out.stats, seed, scale_shift);
  return out;
}

void expect_equivalent(const RunOutput& sequential, const RunOutput& sharded,
                       const std::string& label) {
  EXPECT_EQ(sequential.report_count, sharded.report_count) << label;
  // Scan counters partition exactly (element-indexed shard budgets).
  EXPECT_EQ(sequential.stats.scan.elements_walked,
            sharded.stats.scan.elements_walked) << label;
  EXPECT_EQ(sequential.stats.scan.addresses_walked,
            sharded.stats.scan.addresses_walked) << label;
  EXPECT_EQ(sequential.stats.scan.blocklisted,
            sharded.stats.scan.blocklisted) << label;
  EXPECT_EQ(sequential.stats.scan.probed, sharded.stats.scan.probed) << label;
  EXPECT_EQ(sequential.stats.scan.responsive,
            sharded.stats.scan.responsive) << label;
  // Enumeration counters are pure sums over identical per-host reports.
  EXPECT_EQ(sequential.stats.hosts_enumerated,
            sharded.stats.hosts_enumerated) << label;
  EXPECT_EQ(sequential.stats.ftp_compliant,
            sharded.stats.ftp_compliant) << label;
  EXPECT_EQ(sequential.stats.anonymous, sharded.stats.anonymous) << label;
  EXPECT_EQ(sequential.stats.sessions_errored,
            sharded.stats.sessions_errored) << label;
  // The golden properties: byte-identical stream and summary.
  EXPECT_EQ(sequential.stream_bytes, sharded.stream_bytes)
      << label << ": merged record stream diverged from sequential";
  EXPECT_EQ(sequential.summary_bytes, sharded.summary_bytes)
      << label << ": merged summary diverged from sequential";
}

class ShardedCensusTest : public ::testing::Test {
 protected:
  // The sequential golden run is shared across tests (computed once).
  static const RunOutput& golden() {
    static const RunOutput output = run_sequential(kSeed, kScaleShift);
    return output;
  }
};

TEST_F(ShardedCensusTest, GoldenRunIsNonTrivial) {
  // Guard against the suite passing vacuously on an empty census.
  EXPECT_GT(golden().report_count, 25u);
  EXPECT_GT(golden().stats.ftp_compliant, 10u);
  EXPECT_GT(golden().stats.anonymous, 0u);
  EXPECT_FALSE(golden().stream_bytes.empty());
}

TEST_F(ShardedCensusTest, SingleShardSingleThreadMatchesSequential) {
  expect_equivalent(golden(), run_sharded(kSeed, kScaleShift, 1, 1), "K1T1");
}

TEST_F(ShardedCensusTest, ShardedRunsMatchSequentialAcrossKandT) {
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      const std::string label = "K" + std::to_string(shards) + "T" +
                                std::to_string(threads);
      expect_equivalent(golden(),
                        run_sharded(kSeed, kScaleShift, shards, threads),
                        label);
    }
  }
}

TEST_F(ShardedCensusTest, OddShardCountPartitionsExactly) {
  // Non-power-of-two K exercises the uneven element-budget split.
  expect_equivalent(golden(), run_sharded(kSeed, kScaleShift, 3, 2), "K3T2");
  expect_equivalent(golden(), run_sharded(kSeed, kScaleShift, 7, 3), "K7T3");
}

TEST_F(ShardedCensusTest, ThreadCountExceedingShardsIsClamped) {
  expect_equivalent(golden(), run_sharded(kSeed, kScaleShift, 2, 16), "K2T16");
}

TEST_F(ShardedCensusTest, MergedStatsCountShards) {
  EXPECT_EQ(run_sharded(kSeed, kScaleShift, 4, 2).stats.shards_run, 4u);
  EXPECT_EQ(golden().stats.shards_run, 1u);
}

// ---------------------------------------------------------------------------
// Determinism stress: same config, repeated runs, different thread counts —
// full serialized outputs diffed byte-for-byte.
// ---------------------------------------------------------------------------

TEST_F(ShardedCensusTest, RepeatedRunsAreByteIdenticalAcrossThreadCounts) {
  const RunOutput first = run_sharded(kSeed, kScaleShift, 8, 1);
  const RunOutput second = run_sharded(kSeed, kScaleShift, 8, 4);
  const RunOutput third = run_sharded(kSeed, kScaleShift, 8, 8);
  EXPECT_EQ(first.stream_bytes, second.stream_bytes);
  EXPECT_EQ(first.stream_bytes, third.stream_bytes);
  EXPECT_EQ(first.summary_bytes, second.summary_bytes);
  EXPECT_EQ(first.summary_bytes, third.summary_bytes);
  // Re-run of the identical config is also bit-stable (no hidden global
  // state leaks between ShardedCensus instances).
  const RunOutput again = run_sharded(kSeed, kScaleShift, 8, 4);
  EXPECT_EQ(first.stream_bytes, again.stream_bytes);
  EXPECT_EQ(first.summary_bytes, again.summary_bytes);
}

TEST_F(ShardedCensusTest, DifferentSeedsProduceDifferentBytes) {
  // Guards against trivially-passing comparisons (e.g. everything
  // serializing to empty strings).
  const RunOutput a = run_sharded(kSeed, kScaleShift, 4, 2);
  const RunOutput b = run_sharded(kSeed + 1, kScaleShift, 4, 2);
  EXPECT_NE(a.stream_bytes, b.stream_bytes);
  EXPECT_NE(a.summary_bytes, b.summary_bytes);
}

// ---------------------------------------------------------------------------
// ShardMergeSink unit behavior
// ---------------------------------------------------------------------------

core::HostReport report_for(std::uint32_t ip) {
  core::HostReport report;
  report.ip = Ipv4(ip);
  return report;
}

TEST(ShardMergeSink, ReplaysInAscendingIpOrder) {
  core::ShardMergeSink merge(3);
  merge.shard(1).on_host(report_for(30));
  merge.shard(0).on_host(report_for(20));
  merge.shard(2).on_host(report_for(10));
  merge.shard(0).on_host(report_for(40));
  EXPECT_EQ(merge.total_reports(), 4u);

  core::VectorSink out;
  merge.merge_into(out);
  ASSERT_EQ(out.reports().size(), 4u);
  EXPECT_EQ(out.reports()[0].ip.value(), 10u);
  EXPECT_EQ(out.reports()[1].ip.value(), 20u);
  EXPECT_EQ(out.reports()[2].ip.value(), 30u);
  EXPECT_EQ(out.reports()[3].ip.value(), 40u);
  EXPECT_EQ(merge.total_reports(), 0u);  // buffers released
}

TEST(ShardMergeSink, DuplicateIpsAreStableByShardThenArrival) {
  core::ShardMergeSink merge(2);
  core::HostReport a = report_for(7);
  a.banner = "first-from-shard1";
  core::HostReport b = report_for(7);
  b.banner = "second-from-shard0";
  merge.shard(1).on_host(a);
  merge.shard(0).on_host(b);
  core::VectorSink out;
  merge.merge_into(out);
  ASSERT_EQ(out.reports().size(), 2u);
  EXPECT_EQ(out.reports()[0].banner, "second-from-shard0");
  EXPECT_EQ(out.reports()[1].banner, "first-from-shard1");
}

}  // namespace
}  // namespace ftpc
