#include <gtest/gtest.h>

#include "analysis/notify.h"

namespace ftpc::analysis {
namespace {

core::HostReport anon_host(Ipv4 ip) {
  core::HostReport report;
  report.ip = ip;
  report.connected = true;
  report.ftp_compliant = true;
  report.banner = "FTP server ready.";
  report.login = core::LoginOutcome::kAccepted;
  return report;
}

core::FileRecord file(std::string path, bool is_dir = false) {
  core::FileRecord record;
  record.path = std::move(path);
  record.is_dir = is_dir;
  record.readable = ftp::Readability::kReadable;
  return record;
}

net::AsTable one_as_table() {
  return net::AsTable(
      {net::AsInfo{.asn = 64500, .name = "ExampleNet",
                   .type = net::AsType::kIsp, .ips_advertised = 65536}},
      {net::AsTable::Allocation{.first = Ipv4(6, 0, 0, 0).value(),
                                .last = Ipv4(6, 0, 255, 255).value(),
                                .as_index = 0}});
}

TEST(AssessHost, CleanHostHasNoFinding) {
  core::HostReport report = anon_host(Ipv4(6, 0, 0, 1));
  report.files.push_back(file("/pub/readme.txt"));
  const HostFinding finding = assess_host(report);
  EXPECT_TRUE(finding.evidence.empty());
  EXPECT_EQ(finding.severity, Severity::kInfo);
}

TEST(AssessHost, NonAnonymousIgnored) {
  core::HostReport report = anon_host(Ipv4(6, 0, 0, 1));
  report.login = core::LoginOutcome::kRejected;
  report.files.push_back(file("/backup/etc/shadow"));
  EXPECT_TRUE(assess_host(report).evidence.empty());
}

TEST(AssessHost, CredentialSeverityForKeys) {
  core::HostReport report = anon_host(Ipv4(6, 0, 0, 2));
  report.files.push_back(file("/backup/etc/ssh/ssh_host_rsa_key"));
  report.files.push_back(file("/docs/passwords.kdbx"));
  const HostFinding finding = assess_host(report);
  EXPECT_EQ(finding.severity, Severity::kCredential);
  EXPECT_EQ(finding.evidence.size(), 2u);
}

TEST(AssessHost, FinancialIsSensitive) {
  core::HostReport report = anon_host(Ipv4(6, 0, 0, 3));
  report.files.push_back(file("/taxes/TurboTax-export-1.txf"));
  EXPECT_EQ(assess_host(report).severity, Severity::kSensitive);
}

TEST(AssessHost, PhotoLibraryNeedsTwentyImages) {
  core::HostReport few = anon_host(Ipv4(6, 0, 0, 4));
  for (int i = 0; i < 19; ++i) {
    few.files.push_back(file("/photos/IMG_00" + std::to_string(10 + i) +
                             ".jpg"));
  }
  EXPECT_TRUE(assess_host(few).evidence.empty());
  few.files.push_back(file("/photos/IMG_0042.jpg"));
  const HostFinding finding = assess_host(few);
  EXPECT_EQ(finding.severity, Severity::kSensitive);
  ASSERT_EQ(finding.evidence.size(), 1u);
  EXPECT_NE(finding.evidence[0].find("photo library"), std::string::npos);
}

TEST(AssessHost, MalwareOutranksEverything) {
  core::HostReport report = anon_host(Ipv4(6, 0, 0, 5));
  report.files.push_back(file("/backup/etc/shadow"));
  report.files.push_back(file("/incoming/ftpchk3.php"));
  report.files.push_back(file("/history.php"));
  const HostFinding finding = assess_host(report);
  EXPECT_EQ(finding.severity, Severity::kCompromised);
  // Deduplicated campaign names: ftpchk3 + history.php DDoS + shadow.
  EXPECT_EQ(finding.evidence.size(), 3u);
}

TEST(NotificationBuilderTest, GroupsByAsAndFilters) {
  const net::AsTable table = one_as_table();
  NotificationBuilder builder(table);

  core::HostReport credential = anon_host(Ipv4(6, 0, 0, 10));
  credential.files.push_back(file("/backup/etc/shadow"));
  builder.on_host(credential);

  core::HostReport sensitive = anon_host(Ipv4(6, 0, 0, 11));
  sensitive.files.push_back(file("/mail/a.pst"));
  builder.on_host(sensitive);

  core::HostReport clean = anon_host(Ipv4(6, 0, 0, 12));
  clean.files.push_back(file("/pub/file.zip"));
  builder.on_host(clean);

  // Outside any allocation: dropped even with findings.
  core::HostReport orphan = anon_host(Ipv4(9, 0, 0, 1));
  orphan.files.push_back(file("/backup/etc/shadow"));
  builder.on_host(orphan);

  EXPECT_EQ(builder.hosts_with_findings(), 2u);

  const auto all = builder.digests(Severity::kSensitive);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].hosts.size(), 2u);
  EXPECT_EQ(all[0].worst, Severity::kCredential);
  // Most severe host listed first.
  EXPECT_EQ(all[0].hosts[0].severity, Severity::kCredential);

  const auto credential_only = builder.digests(Severity::kCredential);
  ASSERT_EQ(credential_only.size(), 1u);
  EXPECT_EQ(credential_only[0].hosts.size(), 1u);
}

TEST(NotificationBuilderTest, RenderContainsContactEssentials) {
  const net::AsTable table = one_as_table();
  NotificationBuilder builder(table);
  core::HostReport report = anon_host(Ipv4(6, 0, 0, 20));
  report.files.push_back(file("/docs/keys/login.ppk"));
  builder.on_host(report);
  const auto digests = builder.digests(Severity::kInfo);
  ASSERT_EQ(digests.size(), 1u);
  const std::string text = builder.render(digests[0]);
  EXPECT_NE(text.find("AS64500"), std::string::npos);
  EXPECT_NE(text.find("ExampleNet"), std::string::npos);
  EXPECT_NE(text.find("6.0.0.20"), std::string::npos);
  EXPECT_NE(text.find("Putty"), std::string::npos);
  EXPECT_NE(text.find("disabling anonymous FTP"), std::string::npos);
}

}  // namespace
}  // namespace ftpc::analysis
