// Tests for the deterministic observability layer: metric primitives,
// funnel classification, end-to-end funnel accounting against crafted
// hosts, and the cross-shard byte-identity contract for the census
// metrics JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/census.h"
#include "core/enumerator.h"
#include "core/funnel.h"
#include "core/records.h"
#include "core/sharded_census.h"
#include "net/internet.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "popgen/population.h"
#include "sim/chaos.h"
#include "sim/network.h"

namespace ftpc {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketPlacementAndOverflow) {
  obs::Histogram h({10, 100, 1000});
  h.record(0);     // <= 10
  h.record(10);    // <= 10 (bounds are inclusive)
  h.record(11);    // <= 100
  h.record(1000);  // <= 1000
  h.record(1001);  // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 1000 + 1001);
}

TEST(HistogramTest, BinarySearchAgreesWithLinearReference) {
  // The lower_bound fast path must place values exactly where the obvious
  // linear scan would, across every edge: below the first bound, equal to
  // each bound, between bounds, and above the last.
  const std::vector<std::uint64_t> bounds{3, 7, 7, 20, 1000};
  obs::Histogram h(bounds);
  std::vector<std::uint64_t> reference(bounds.size() + 1, 0);
  const std::vector<std::uint64_t> values{0, 3, 4, 7, 8, 19, 20, 21,
                                          999, 1000, 1001, ~0ull};
  for (const std::uint64_t v : values) {
    h.record(v);
    std::size_t i = 0;
    while (i < bounds.size() && bounds[i] < v) ++i;
    ++reference[i];
  }
  EXPECT_EQ(h.buckets(), reference);
  EXPECT_EQ(h.count(), values.size());
}

TEST(HistogramTest, EmptyBoundsSendEverythingToOverflow) {
  obs::Histogram h(std::vector<std::uint64_t>{});
  h.record(0);
  h.record(42);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0], 2u);
}

TEST(HistogramTest, MergeAddsBucketwise) {
  obs::Histogram a({10, 100});
  obs::Histogram b({10, 100});
  a.record(5);
  a.record(500);
  b.record(50);
  a.merge_from(b);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 1u);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 555u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterCellIsStable) {
  obs::MetricsRegistry registry;
  std::uint64_t& cell = registry.counter("a");
  // Creating many more counters must not invalidate the reference.
  for (int i = 0; i < 100; ++i) {
    registry.add("filler." + std::to_string(i));
  }
  cell += 7;
  EXPECT_EQ(registry.value("a"), 7u);
  EXPECT_EQ(registry.value("never.touched"), 0u);
}

TEST(MetricsRegistryTest, SumWithPrefix) {
  obs::MetricsRegistry registry;
  registry.add("funnel.drop.connect.refused", 3);
  registry.add("funnel.drop.banner.timeout", 2);
  registry.add("funnel.done.completed", 5);
  registry.add("funnel.dropout", 100);  // prefix is literal, not a segment
  EXPECT_EQ(registry.sum_with_prefix("funnel.drop."), 5u);
  EXPECT_EQ(registry.sum_with_prefix("funnel."), 110u);
  EXPECT_EQ(registry.sum_with_prefix("nope."), 0u);
}

TEST(MetricsRegistryTest, MergeAddsAndAdopts) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.add("shared", 1);
  b.add("shared", 2);
  b.add("only.b", 4);
  b.histogram("h", {10}).record(3);
  a.merge_from(b);
  EXPECT_EQ(a.value("shared"), 3u);
  EXPECT_EQ(a.value("only.b"), 4u);
  EXPECT_EQ(a.histograms().at("h").count(), 1u);
}

TEST(MetricsRegistryTest, JsonIsCanonicalAndInsertionOrderFree) {
  obs::MetricsRegistry forward;
  forward.add("alpha", 1);
  forward.add("beta", 2);
  forward.histogram("h1", {5}).record(1);
  forward.histogram("h2", {5}).record(9);

  obs::MetricsRegistry backward;
  backward.histogram("h2", {5}).record(9);
  backward.histogram("h1", {5}).record(1);
  backward.add("beta", 2);
  backward.add("alpha", 1);

  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(MetricsRegistryTest, JsonSchemaIsStable) {
  obs::MetricsRegistry registry;
  registry.add("c", 3);
  registry.histogram("h", {1, 2}).record(2);
  // The build stamp varies per commit; the schema is pinned modulo it.
  EXPECT_EQ(obs::strip_build_stamp(registry.to_json()),
            "{\"schema\":\"ftpc.metrics.v1\",\"counters\":{\"c\":3},"
            "\"histograms\":{\"h\":{\"bounds\":[1,2],\"buckets\":[0,1,0],"
            "\"count\":1,\"sum\":2}}}\n");
}

// ---------------------------------------------------------------------------
// classify_funnel
// ---------------------------------------------------------------------------

core::HostReport base_report() {
  core::HostReport report;
  report.ip = Ipv4(198, 51, 100, 10);
  return report;
}

TEST(FunnelClassifyTest, CleanCompletion) {
  core::HostReport report = base_report();
  report.connected = true;
  report.ftp_compliant = true;
  const auto outcome = core::classify_funnel(report);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kFinalize);
  EXPECT_EQ(outcome.reason, "completed");
}

TEST(FunnelClassifyTest, ConnectDrops) {
  core::HostReport report = base_report();
  report.error = Status(ErrorCode::kConnectionRefused, "refused");
  auto outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kConnect);
  EXPECT_EQ(outcome.reason, "refused");

  report.error = Status(ErrorCode::kTimeout, "injected connect loss");
  outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kConnect);
  EXPECT_EQ(outcome.reason, "timeout");
}

TEST(FunnelClassifyTest, BannerDrops) {
  core::HostReport report = base_report();
  report.connected = true;
  report.error = Status(ErrorCode::kTimeout, "no reply from server");
  auto outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kBanner);
  EXPECT_EQ(outcome.reason, "timeout");

  report.error = Status(ErrorCode::kProtocolError, "server is not speaking FTP");
  outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kBanner);
  EXPECT_EQ(outcome.reason, "not_ftp");
}

TEST(FunnelClassifyTest, LoginTraverseAndFinalizeDrops) {
  core::HostReport report = base_report();
  report.connected = true;
  report.ftp_compliant = true;
  report.login = core::LoginOutcome::kError;
  report.error = Status(ErrorCode::kConnectionReset, "reset");
  auto outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kLogin);
  EXPECT_EQ(outcome.reason, "reset");

  // Anonymous session that died before listing anything: traversal drop.
  report.login = core::LoginOutcome::kAccepted;
  report.dirs_listed = 0;
  outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kTraverse);

  // Explicit mid-traversal termination is a traverse drop too.
  report.dirs_listed = 3;
  report.server_terminated_early = true;
  outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kTraverse);

  // Traversal finished, died later (surveys/TLS/QUIT): finalize drop.
  report.server_terminated_early = false;
  outcome = core::classify_funnel(report);
  EXPECT_EQ(outcome.stage, core::FunnelStage::kFinalize);
  EXPECT_FALSE(outcome.completed);
}

// ---------------------------------------------------------------------------
// End-to-end funnel accounting against crafted hosts
// ---------------------------------------------------------------------------

TEST(FunnelAccountingTest, EachFailureModeLandsInItsCounter) {
  sim::EventLoop loop;
  sim::Network network(loop);
  obs::MetricsRegistry metrics;
  network.set_metrics(&metrics);

  const Ipv4 refused_host(203, 0, 113, 1);   // nothing listens
  const Ipv4 conn_timeout_host(203, 0, 113, 2);  // connect faulted
  const Ipv4 banner_timeout_host(203, 0, 113, 3);  // accepts, stays silent
  const Ipv4 not_ftp_host(203, 0, 113, 4);   // speaks SSH

  // Chaos faults connects to exactly one victim address.
  sim::ChaosEngine chaos = sim::ChaosEngine::fixed(
      {.kind = sim::FaultKind::kConnectTimeout}, conn_timeout_host.value());
  network.set_chaos(&chaos);
  network.listen(banner_timeout_host, 21,
                 [](std::shared_ptr<sim::Connection>) {});
  network.listen(not_ftp_host, 21, [](std::shared_ptr<sim::Connection> conn) {
    conn->send("SSH-2.0-dropbear\r\n");
    conn->close();
  });

  for (const Ipv4 target : {refused_host, conn_timeout_host,
                            banner_timeout_host, not_ftp_host}) {
    std::optional<core::HostReport> report;
    core::HostEnumerator::start(network, target, {},
                                [&](core::HostReport r) {
                                  report = std::move(r);
                                });
    loop.run_while_pending([&] { return report.has_value(); });
    core::record_host_funnel(*report, metrics);
  }
  network.set_metrics(nullptr);
  network.set_chaos(nullptr);

  EXPECT_EQ(metrics.value("funnel.drop.connect.refused"), 1u);
  EXPECT_EQ(metrics.value("funnel.drop.connect.timeout"), 1u);
  EXPECT_EQ(metrics.value("funnel.drop.banner.timeout"), 1u);
  EXPECT_EQ(metrics.value("funnel.drop.banner.not_ftp"), 1u);

  // Stage-entry accounting: all four attempted the connect; only the
  // silent listener and the SSH speaker got a TCP connection.
  EXPECT_EQ(metrics.value("funnel.stage.connect"), 4u);
  EXPECT_EQ(metrics.value("funnel.stage.banner"), 2u);
  EXPECT_EQ(metrics.value("funnel.stage.login"), 0u);

  // Every session has exactly one terminal outcome.
  EXPECT_EQ(metrics.sum_with_prefix("funnel.drop.") +
                metrics.value("funnel.done.completed"),
            4u);
}

// ---------------------------------------------------------------------------
// Census metrics: cross-shard byte-identity + probe conservation
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 16;  // ~65K addresses: CI-sized

core::CensusStats run_sequential_census() {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = kScaleShift;
  core::VectorSink sink;
  return core::Census(network, config).run(sink);
}

core::CensusStats run_sharded_census(std::uint32_t shards,
                                     std::uint32_t threads) {
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = kScaleShift;
  config.shards = shards;
  config.threads = threads;
  core::ShardedCensus census(
      [] { return std::make_unique<popgen::SyntheticPopulation>(kSeed); },
      config);
  core::VectorSink sink;
  return census.run(sink);
}

class CensusMetricsTest : public ::testing::Test {
 protected:
  // One sequential baseline for the whole suite; it is the most expensive
  // configuration and every test compares against it.
  static const core::CensusStats& sequential() {
    static const core::CensusStats stats = run_sequential_census();
    return stats;
  }
};

TEST_F(CensusMetricsTest, JsonByteIdenticalAcrossShardConfigs) {
  const std::string baseline = sequential().metrics.to_json();
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 1}, {4, 1}, {4, 8}}) {
    const core::CensusStats stats = run_sharded_census(shards, threads);
    EXPECT_EQ(stats.metrics.to_json(), baseline)
        << "shards=" << shards << " threads=" << threads;
  }
}

TEST_F(CensusMetricsTest, EveryProbeHasExactlyOneOutcome) {
  const core::CensusStats& stats = sequential();
  const obs::MetricsRegistry& m = stats.metrics;
  EXPECT_EQ(m.value("funnel.stage.probe"), stats.scan.probed);
  EXPECT_EQ(m.sum_with_prefix("funnel.drop.") +
                m.value("funnel.done.completed"),
            m.value("funnel.stage.probe"));
  // And the funnel head is fed by real probes, not synthesized numbers.
  EXPECT_EQ(m.value("net.probes"), stats.scan.probed);
  EXPECT_EQ(m.value("net.probe_hits"), stats.scan.responsive);
  EXPECT_EQ(m.value("census.hosts_enumerated"), stats.hosts_enumerated);
  EXPECT_GT(m.value("ftp.commands_sent"), 0u);
}

// The ftpc.metrics.v1 surface downstream dashboards key on: every counter
// name and every histogram name + bucket bounds, pinned against a golden
// file. Values are deliberately NOT pinned — behavior may evolve, but a
// renamed or re-bucketed metric must show up as a reviewed golden diff.
// Regenerate with: FTPC_UPDATE_GOLDEN=1 ./obs_test
TEST_F(CensusMetricsTest, MetricsSchemaMatchesGoldenFile) {
  const obs::MetricsRegistry& m = sequential().metrics;
  std::string schema;
  for (const auto& [name, value] : m.counters()) {
    (void)value;
    schema += "counter " + name + "\n";
  }
  for (const auto& [name, histogram] : m.histograms()) {
    schema += "histogram " + name + " bounds";
    for (const std::uint64_t bound : histogram.bounds()) {
      schema += " " + std::to_string(bound);
    }
    schema += "\n";
  }

  const std::string path =
      std::string(FTPC_GOLDEN_DIR) + "/metrics_schema_v1.txt";
  if (std::getenv("FTPC_UPDATE_GOLDEN") != nullptr) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr) << "cannot write " << path;
    std::fwrite(schema.data(), 1, schema.size(), out);
    std::fclose(out);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr)
      << path << " missing; run with FTPC_UPDATE_GOLDEN=1 to create it";
  std::string golden;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) golden.append(buf, n);
  std::fclose(in);
  EXPECT_EQ(schema, golden)
      << "ftpc.metrics.v1 schema drifted; if intentional, regenerate with "
         "FTPC_UPDATE_GOLDEN=1 and commit the golden diff";
}

TEST_F(CensusMetricsTest, CollectMetricsOffLeavesRegistryEmpty) {
  popgen::SyntheticPopulation population(kSeed);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 256);
  core::CensusConfig config;
  config.seed = kSeed;
  config.scale_shift = 20;  // small: this test is about the flag only
  config.collect_metrics = false;
  core::VectorSink sink;
  const core::CensusStats stats = core::Census(network, config).run(sink);
  EXPECT_TRUE(stats.metrics.counters().empty());
  EXPECT_TRUE(stats.metrics.histograms().empty());
  EXPECT_EQ(network.metrics(), nullptr);
}

}  // namespace
}  // namespace ftpc
