// Adversarial-input suite for merge_shard_artifacts (the ftpcmerge core).
//
// A merge is only trustworthy if it refuses to produce output from a
// damaged or incoherent shard set: every corruption — truncated records,
// garbled JSON, duplicate or missing shards, mixed census configs — must
// fail the merge with a first-divergence diagnostic naming the offending
// file, never silently drop or double-count data. The manifest schema
// itself is pinned against tests/golden/shard_manifest_v1.json so any
// drift in ftpc.shard.v1 shows up in review. Every rejection is asserted
// on both reduction strategies: the streaming default and the
// materializing fallback must refuse the same inputs.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/census.h"
#include "core/dataset.h"
#include "core/records.h"
#include "core/shard_artifact.h"
#include "obs/build_info.h"
#include "core/shard_slice.h"
#include "shard_fixture.h"

namespace ftpc {
namespace {

using fixture::append_file;
using fixture::factory;
using fixture::read_file;
using fixture::write_file;

constexpr std::uint64_t kSeed = 42;
constexpr unsigned kScaleShift = 12;  // small: corruption, not scale

/// Mirrors the config `ftpcensus census --shard-id k/N --scale 12 --seed 42
/// --timeline-interval 0.01` builds — the golden manifest was generated
/// through that exact CLI invocation.
core::CensusConfig shard_config(std::uint64_t seed = kSeed) {
  fixture::ShardConfigOptions options;
  options.full_wire = true;
  return fixture::shard_config(seed, kScaleShift, options);
}

/// Fresh two-shard artifact set per test: corruption legs mutate in
/// place, so each test gets a byte copy of one shared pristine run.
class MergeCorruptTest : public ::testing::Test {
 protected:
  static const std::vector<std::string>& pristine_dirs() {
    static const std::vector<std::string> dirs = [] {
      const std::string root = fixture::make_temp_root("mcorrupt_pristine");
      std::vector<std::string> out;
      for (std::uint32_t shard = 0; shard < 2; ++shard) {
        core::ShardSliceConfig slice;
        slice.census = shard_config();
        slice.shard = shard;
        slice.total_shards = 2;
        slice.out_dir = root + "/shard" + std::to_string(shard);
        // A cadence, so checkpoint.json exists and every artifact file is
        // present in the copies the corruption legs start from. The
        // manifest bytes are cadence-independent (checkpoint purity), so
        // the golden comparison below is unaffected.
        slice.checkpoint_interval = 262'144;
        const auto result = core::run_shard_slice(slice, factory(kSeed));
        EXPECT_TRUE(result.ok) << result.error;
        out.push_back(slice.out_dir);
      }
      return out;
    }();
    return dirs;
  }

  void SetUp() override {
    root_ = fixture::make_temp_root(
        std::string("mcorrupt_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    for (std::uint32_t shard = 0; shard < 2; ++shard) {
      const std::string dir = root_ + "/shard" + std::to_string(shard);
      ::mkdir(dir.c_str(), 0777);
      for (const char* file : fixture::kShardArtifactFiles) {
        const std::string bytes =
            read_file(pristine_dirs()[shard] + "/" + file);
        ASSERT_FALSE(bytes.empty()) << file;
        write_file(dir + "/" + file, bytes);
      }
      dirs_.push_back(dir);
    }
  }

  core::MergeResult merge(const std::vector<std::string>& dirs) {
    return core::merge_shard_artifacts(dirs, root_ + "/merged");
  }

  void expect_rejected(const core::MergeResult& result,
                       const std::string& needle) {
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find(needle), std::string::npos)
        << "diagnostic \"" << result.error << "\" does not mention \""
        << needle << "\"";
  }

  /// Both reduction strategies must reject the same corrupted inputs with
  /// the same class of diagnostic.
  void expect_rejected_both_paths(const std::vector<std::string>& dirs,
                                  const std::string& needle) {
    expect_rejected(merge(dirs), needle);
    core::MergeOptions materialize;
    materialize.force_materialize = true;
    expect_rejected(
        core::merge_shard_artifacts(dirs, root_ + "/merged_mat", materialize),
        needle);
  }

  std::string root_;
  std::vector<std::string> dirs_;
};

TEST_F(MergeCorruptTest, HealthySetMerges) {
  const auto result = merge(dirs_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.shards, 2u);
  EXPECT_GT(result.records, 0u);
}

TEST_F(MergeCorruptTest, ManifestMatchesGoldenBytes) {
  // ftpc.shard.v1 is an interchange format now: its exact serialization is
  // part of the contract. Regenerate the golden via
  //   ftpcensus census --scale 12 --seed 42 --timeline-interval 0.01 \
  //     --shard-id 0/2 --shard-out DIR
  // if the schema deliberately changes.
  // Compared modulo the build stamp, which varies per commit by design.
  const std::string golden =
      read_file(std::string(FTPC_GOLDEN_DIR) + "/shard_manifest_v1.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(obs::strip_build_stamp(read_file(dirs_[0] + "/manifest.json")),
            golden);
}

TEST_F(MergeCorruptTest, RejectsMissingManifest) {
  ASSERT_EQ(::unlink((dirs_[1] + "/manifest.json").c_str()), 0);
  expect_rejected_both_paths(dirs_, "manifest");
}

TEST_F(MergeCorruptTest, RejectsGarbledManifest) {
  write_file(dirs_[0] + "/manifest.json", "{\"schema\":\"ftpc.shard.v1\",");
  expect_rejected_both_paths(dirs_, "manifest.json");
}

TEST_F(MergeCorruptTest, RejectsWrongManifestSchema) {
  std::string manifest = read_file(dirs_[0] + "/manifest.json");
  const auto at = manifest.find("ftpc.shard.v1");
  ASSERT_NE(at, std::string::npos);
  manifest.replace(at, 13, "ftpc.other.v9");
  write_file(dirs_[0] + "/manifest.json", manifest);
  expect_rejected_both_paths(dirs_, "manifest.json");
}

TEST_F(MergeCorruptTest, RejectsTruncatedRecords) {
  const std::string path = dirs_[1] + "/records.ftpd";
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  write_file(path, bytes.substr(0, bytes.size() - 7));  // torn final frame
  expect_rejected_both_paths(dirs_, "truncated");
}

TEST_F(MergeCorruptTest, RejectsRecordsHeaderDamage) {
  const std::string path = dirs_[0] + "/records.ftpd";
  std::string bytes = read_file(path);
  bytes[0] = 'X';  // breaks the FTPD magic
  write_file(path, bytes);
  expect_rejected_both_paths(dirs_, "records.ftpd");
}

TEST_F(MergeCorruptTest, RejectsRecordCountMismatch) {
  // An extra well-formed frame: the file parses fine but disagrees with
  // the manifest's declared count — silent gain must be caught too.
  core::HostReport extra;
  extra.ip = Ipv4(10, 0, 0, 1);
  append_file(dirs_[0] + "/records.ftpd", core::encode_host_frame(extra));
  expect_rejected_both_paths(dirs_, "manifest");
}

TEST_F(MergeCorruptTest, RejectsDuplicateShard) {
  expect_rejected_both_paths({dirs_[0], dirs_[0]}, "duplicate shard 0");
}

TEST_F(MergeCorruptTest, RejectsIncompleteShardSet) {
  expect_rejected_both_paths({dirs_[0]}, "2 shard(s)");
}

TEST_F(MergeCorruptTest, RejectsConfigHashMismatch) {
  // Shard 1 regenerated under a different seed: same layout, different
  // census. Mixing the two must name both hashes, not merge garbage.
  core::ShardSliceConfig slice;
  slice.census = shard_config(kSeed + 1);
  slice.shard = 1;
  slice.total_shards = 2;
  slice.out_dir = root_ + "/alien";
  ASSERT_TRUE(core::run_shard_slice(slice, factory(kSeed + 1)).ok);
  expect_rejected_both_paths({dirs_[0], slice.out_dir}, "config");
}

TEST_F(MergeCorruptTest, RejectsGarbledTraceLine) {
  append_file(dirs_[1] + "/trace.jsonl", "this is not a trace event\n");
  expect_rejected_both_paths(dirs_, "trace.jsonl");
}

TEST_F(MergeCorruptTest, RejectsWrongTraceHeader) {
  std::string trace = read_file(dirs_[0] + "/trace.jsonl");
  const auto eol = trace.find('\n');
  ASSERT_NE(eol, std::string::npos);
  trace.replace(0, eol, "{\"schema\":\"ftpc.trace.v2\"}");
  write_file(dirs_[0] + "/trace.jsonl", trace);
  expect_rejected_both_paths(dirs_, "trace.jsonl");
}

TEST_F(MergeCorruptTest, RejectsGarbledMetrics) {
  write_file(dirs_[1] + "/metrics.json", "{\"schema\":\"ftpc.metrics.v1\"");
  expect_rejected_both_paths(dirs_, "metrics.json");
}

TEST_F(MergeCorruptTest, RejectsGarbledTimelineFacts) {
  append_file(dirs_[0] + "/timeline_facts.jsonl", "{\"k\":\"host\"}\n");
  expect_rejected_both_paths(dirs_, "timeline_facts.jsonl");
}

TEST_F(MergeCorruptTest, DiagnosticNamesTheOffendingDirectory) {
  // Two shards, one corrupted: the diagnostic must point at shard1, the
  // broken one, so an operator reruns the right process.
  const std::string path = dirs_[1] + "/records.ftpd";
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 3));
  const auto result = merge(dirs_);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("shard1"), std::string::npos) << result.error;
  EXPECT_EQ(result.error.find("shard0/"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace ftpc
