#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/connection.h"
#include "sim/event_loop.h"
#include "sim/network.h"

namespace ftpc::sim {
namespace {

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  loop.schedule_at(100, [] {});
  loop.run_until_idle();
  bool fired = false;
  loop.schedule_at(50, [&] { fired = true; });  // in the past
  loop.run_one();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.now(), 100u);  // time never goes backwards
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const TimerId id = loop.schedule_after(10, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // double-cancel is a no-op
  loop.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelUnknownIdReturnsFalse) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(424242));
}

TEST(EventLoop, RunUntilAdvancesTimeEvenWhenEmpty) {
  EventLoop loop;
  EXPECT_EQ(loop.run_until(500), 0u);
  EXPECT_EQ(loop.now(), 500u);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> fired;
  loop.schedule_at(10, [&] { fired.push_back(1); });
  loop.schedule_at(20, [&] { fired.push_back(2); });
  loop.schedule_at(30, [&] { fired.push_back(3); });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), 20u);
  loop.run_until_idle();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(EventLoop, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.schedule_after(1, recurse);
  };
  loop.schedule_after(0, recurse);
  loop.run_until_idle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.events_processed(), 100u);
}

TEST(EventLoop, RunWhilePendingStopsOnPredicate) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(i, [&] { ++count; });
  }
  EXPECT_TRUE(loop.run_while_pending([&] { return count >= 4; }));
  EXPECT_EQ(count, 4);
}

TEST(EventLoop, RunWhilePendingReturnsFalseWhenDrained) {
  EventLoop loop;
  loop.schedule_at(1, [] {});
  EXPECT_FALSE(loop.run_while_pending([] { return false; }));
}

TEST(EventLoop, CancelAlreadyFiredIdIsHarmless) {
  EventLoop loop;
  bool refired = false;
  const TimerId id = loop.schedule_at(5, [] {});
  loop.run_until_idle();
  // The id is spent: cancelling it must report false...
  EXPECT_FALSE(loop.cancel(id));
  // ...and must not disturb later events or the pending count.
  loop.schedule_at(10, [&] { refired = true; });
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.cancel(id));  // still a no-op with an event pending
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until_idle();
  EXPECT_TRUE(refired);
}

TEST(EventLoop, CancelOwnIdFromInsideFiringCallback) {
  EventLoop loop;
  bool cancel_result = true;
  TimerId id = 0;
  id = loop.schedule_at(5, [&] {
    // By the time the callback runs, the event has fired; cancelling the
    // id from inside its own callback must be a no-op returning false.
    cancel_result = loop.cancel(id);
  });
  loop.run_until_idle();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, ScheduleFromInsideFiringCallback) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(5, [&] {
    order.push_back(1);
    // Same-time reschedule: must fire later in the same drain, after any
    // already-queued same-time events (FIFO by insertion).
    loop.schedule_at(5, [&] { order.push_back(3); });
    // Past-time schedule from inside a callback clamps to now.
    loop.schedule_at(1, [&] { order.push_back(4); });
  });
  loop.schedule_at(5, [&] { order.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.now(), 5u);
}

TEST(EventLoop, CancelAndRescheduleFromInsideCallback) {
  EventLoop loop;
  std::vector<int> fired;
  TimerId victim = 0;
  loop.schedule_at(5, [&] {
    fired.push_back(1);
    EXPECT_TRUE(loop.cancel(victim));     // pending same-time event
    EXPECT_FALSE(loop.cancel(victim));    // double-cancel inside callback
    loop.schedule_at(6, [&] { fired.push_back(3); });
  });
  victim = loop.schedule_at(5, [&] { fired.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventLoop, TimerIdsAreUniqueAcrossLoops) {
  // Per-shard loops each own a private queue, but TimerIds come from one
  // process-wide sequence: an id minted by loop A can never alias a
  // pending event of loop B, so cancelling on the wrong loop is a
  // detectable no-op instead of silently killing an unrelated event.
  EventLoop a;
  EventLoop b;
  const TimerId ida = a.schedule_at(1, [] {});
  bool b_fired = false;
  const TimerId idb = b.schedule_at(1, [&] { b_fired = true; });
  EXPECT_NE(ida, idb);
  EXPECT_FALSE(b.cancel(ida));  // foreign id: miss, not corruption
  EXPECT_EQ(b.pending(), 1u);
  b.run_until_idle();
  EXPECT_TRUE(b_fired);
  EXPECT_TRUE(a.cancel(ida));  // the real owner can still cancel it
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  loop.schedule_at(1, [] {});
  const TimerId id = loop.schedule_at(2, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(id);
  EXPECT_EQ(loop.pending(), 1u);
}

// ---------------------------------------------------------------------------
// Network + Connection
// ---------------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(loop_) {}

  EventLoop loop_;
  Network network_;
  const Ipv4 server_ip_{10, 0, 0, 1};
  const Ipv4 client_ip_{10, 0, 0, 2};
};

TEST_F(NetworkTest, ConnectToListener) {
  std::shared_ptr<Connection> server_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    server_side = std::move(conn);
  });

  std::shared_ptr<Connection> client_side;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     ASSERT_TRUE(result.is_ok());
                     client_side = std::move(result).take();
                   });
  loop_.run_until_idle();
  ASSERT_TRUE(server_side);
  ASSERT_TRUE(client_side);
  EXPECT_EQ(server_side->remote().ip, client_ip_);
  EXPECT_EQ(client_side->remote().ip, server_ip_);
  EXPECT_EQ(client_side->remote().port, 21);
  EXPECT_EQ(network_.stats().connects_established, 1u);
}

TEST_F(NetworkTest, ConnectRefusedWithoutListener) {
  bool failed = false;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     EXPECT_FALSE(result.is_ok());
                     EXPECT_EQ(result.code(), ErrorCode::kConnectionRefused);
                     failed = true;
                   });
  loop_.run_until_idle();
  EXPECT_TRUE(failed);
  EXPECT_EQ(network_.stats().connects_refused, 1u);
}

TEST_F(NetworkTest, ServerLearnsBeforeClientHandler) {
  // Accept fires at one-way latency, client handler at a full RTT — so a
  // banner sent from the accept handler is never lost.
  std::string received;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    conn->send("220 hello\r\n");
  });
  std::shared_ptr<Connection> client_side;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     ASSERT_TRUE(result.is_ok());
                     client_side = std::move(result).take();
                     client_side->set_callbacks(ConnCallbacks{
                         .on_data = [&](std::string_view d) { received += d; },
                     });
                   });
  loop_.run_until_idle();
  EXPECT_EQ(received, "220 hello\r\n");
}

TEST_F(NetworkTest, DataFlowsBothWays) {
  std::string server_got, client_got;
  std::shared_ptr<Connection> server_side, client_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    server_side = conn;
    conn->set_callbacks(ConnCallbacks{
        .on_data = [&](std::string_view d) { server_got += d; }});
  });
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     client_side = std::move(result).take();
                     client_side->set_callbacks(ConnCallbacks{
                         .on_data = [&](std::string_view d) {
                           client_got += d;
                         }});
                     client_side->send("USER anonymous\r\n");
                   });
  loop_.run_until_idle();
  ASSERT_TRUE(server_side);
  server_side->send("331 ok\r\n");
  loop_.run_until_idle();
  EXPECT_EQ(server_got, "USER anonymous\r\n");
  EXPECT_EQ(client_got, "331 ok\r\n");
}

TEST_F(NetworkTest, SendsArriveInOrder) {
  std::string got;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    conn->set_callbacks(
        ConnCallbacks{.on_data = [&](std::string_view d) { got += d; }});
    // Keep the server side alive for the test duration.
    static std::shared_ptr<Connection> keeper;
    keeper = conn;
  });
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     auto conn = std::move(result).take();
                     conn->send("a");
                     conn->send("b");
                     conn->send("c");
                     static std::shared_ptr<Connection> keeper;
                     keeper = conn;
                   });
  loop_.run_until_idle();
  EXPECT_EQ(got, "abc");
}

TEST_F(NetworkTest, CloseDeliversOnce) {
  int closes = 0;
  std::shared_ptr<Connection> server_side, client_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    server_side = conn;
    conn->set_callbacks(ConnCallbacks{.on_close = [&] { ++closes; }});
  });
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     client_side = std::move(result).take();
                   });
  loop_.run_until_idle();
  client_side->close();
  client_side->close();  // idempotent
  loop_.run_until_idle();
  EXPECT_EQ(closes, 1);
  EXPECT_FALSE(server_side->is_open());
  EXPECT_FALSE(client_side->is_open());
}

TEST_F(NetworkTest, ResetDeliversStatus) {
  Status seen = Status::ok();
  std::shared_ptr<Connection> server_side, client_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    server_side = conn;
    conn->set_callbacks(
        ConnCallbacks{.on_reset = [&](Status s) { seen = std::move(s); }});
  });
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     client_side = std::move(result).take();
                   });
  loop_.run_until_idle();
  client_side->reset();
  loop_.run_until_idle();
  EXPECT_EQ(seen.code(), ErrorCode::kConnectionReset);
}

TEST_F(NetworkTest, SendAfterCloseIsDropped) {
  std::string got;
  std::shared_ptr<Connection> server_side, client_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    server_side = conn;
    conn->set_callbacks(
        ConnCallbacks{.on_data = [&](std::string_view d) { got += d; }});
  });
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     client_side = std::move(result).take();
                   });
  loop_.run_until_idle();
  client_side->close();
  client_side->send("late");
  loop_.run_until_idle();
  EXPECT_EQ(got, "");
}

TEST_F(NetworkTest, LatencyIsApplied) {
  const SimTime latency = network_.config().one_way_latency;
  SimTime banner_at = 0;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    conn->send("hi");
    static std::shared_ptr<Connection> keeper;
    keeper = conn;
  });
  const SimTime start = loop_.now();
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     auto conn = std::move(result).take();
                     conn->set_callbacks(ConnCallbacks{
                         .on_data = [&](std::string_view) {
                           banner_at = loop_.now();
                         }});
                     static std::shared_ptr<Connection> keeper;
                     keeper = conn;
                   });
  loop_.run_until_idle();
  // SYN (1 latency) + banner (1 latency) = 2 one-way latencies.
  EXPECT_EQ(banner_at - start, 2 * latency);
}

TEST_F(NetworkTest, StopListeningRefusesNewConnects) {
  network_.listen(server_ip_, 21, [](std::shared_ptr<Connection>) {});
  EXPECT_TRUE(network_.is_listening(server_ip_, 21));
  network_.stop_listening(server_ip_, 21);
  EXPECT_FALSE(network_.is_listening(server_ip_, 21));
  bool refused = false;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     refused = !result.is_ok();
                   });
  loop_.run_until_idle();
  EXPECT_TRUE(refused);
}

TEST_F(NetworkTest, HostResolverMaterializesListener) {
  int resolver_calls = 0;
  network_.set_host_resolver([&](Ipv4 ip, std::uint16_t port) {
    ++resolver_calls;
    if (ip == server_ip_ && port == 21) {
      network_.listen(ip, port, [](std::shared_ptr<Connection>) {});
      return true;
    }
    return false;
  });
  bool connected = false;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     connected = result.is_ok();
                   });
  loop_.run_until_idle();
  EXPECT_TRUE(connected);
  EXPECT_EQ(resolver_calls, 1);
}

TEST_F(NetworkTest, ProbeChecksListenersThenHook) {
  network_.listen(server_ip_, 21, [](std::shared_ptr<Connection>) {});
  EXPECT_TRUE(network_.probe(server_ip_, 21));
  EXPECT_FALSE(network_.probe(server_ip_, 22));
  network_.set_probe_fn(
      [&](Ipv4 ip, std::uint16_t port) { return port == 8080; });
  EXPECT_TRUE(network_.probe(client_ip_, 8080));
  EXPECT_FALSE(network_.probe(client_ip_, 81));
  EXPECT_EQ(network_.stats().probes, 4u);
  EXPECT_EQ(network_.stats().probe_hits, 2u);
}

TEST_F(NetworkTest, EphemeralPortsRotate) {
  const std::uint16_t first = network_.allocate_ephemeral_port();
  const std::uint16_t second = network_.allocate_ephemeral_port();
  EXPECT_GE(first, 49152);
  EXPECT_NE(first, second);
}

// ---------------------------------------------------------------------------
// Chaos engine (sim::chaos)
// ---------------------------------------------------------------------------

TEST(ChaosEngineTest, PlansArePureAndSeedDependent) {
  const ChaosProfile profile = *ChaosProfile::named("hostile");
  ChaosEngine a(profile, 42);
  ChaosEngine b(profile, 42);
  ChaosEngine c(profile, 43);
  int assigned = 0;
  int differs = 0;
  for (std::uint32_t ip = 0; ip < 4096; ++ip) {
    const FaultPlan pa = a.plan_for(ip);
    const FaultPlan pb = b.plan_for(ip);
    EXPECT_EQ(pa.kind, pb.kind);
    EXPECT_EQ(pa.syn_losses, pb.syn_losses);
    EXPECT_EQ(pa.trigger_byte, pb.trigger_byte);
    EXPECT_EQ(pa.trigger_send, pb.trigger_send);
    EXPECT_EQ(pa.stall_count, pb.stall_count);
    if (pa.kind != FaultKind::kNone) ++assigned;
    if (pa.kind != c.plan_for(ip).kind) ++differs;
  }
  // "hostile" assigns roughly half the population a fault, and a different
  // seed must reshuffle the assignment.
  EXPECT_GT(assigned, 4096 / 3);
  EXPECT_LT(assigned, 4096 * 2 / 3);
  EXPECT_GT(differs, 1000);
}

TEST(ChaosEngineTest, ProbeSynLossRespectsAttemptIndex) {
  ChaosEngine engine = ChaosEngine::fixed(
      FaultPlan{.kind = FaultKind::kSynLoss, .syn_losses = 2});
  EXPECT_TRUE(engine.probe_syn_lost(7, 0));
  EXPECT_TRUE(engine.probe_syn_lost(7, 1));
  EXPECT_FALSE(engine.probe_syn_lost(7, 2));
}

TEST_F(NetworkTest, ChaosConnectTimeout) {
  ChaosEngine engine = ChaosEngine::fixed(
      FaultPlan{.kind = FaultKind::kConnectTimeout}, server_ip_.value());
  network_.set_chaos(&engine);
  network_.listen(server_ip_, 21, [](std::shared_ptr<Connection>) {});
  ErrorCode seen = ErrorCode::kOk;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     seen = result.code();
                   });
  loop_.run_until_idle();
  EXPECT_EQ(seen, ErrorCode::kTimeout);
  EXPECT_EQ(network_.stats().connects_faulted, 1u);
  network_.set_chaos(nullptr);
}

TEST_F(NetworkTest, ChaosSynLossDrainsIntoRetransmits) {
  ChaosEngine engine = ChaosEngine::fixed(
      FaultPlan{.kind = FaultKind::kSynLoss, .syn_losses = 2},
      server_ip_.value());
  network_.set_chaos(&engine);
  network_.listen(server_ip_, 21, [](std::shared_ptr<Connection>) {});
  EXPECT_EQ(network_.probe_attempt(server_ip_, 21, 0), ProbeResult::kSynLost);
  EXPECT_EQ(network_.probe_attempt(server_ip_, 21, 1), ProbeResult::kSynLost);
  EXPECT_EQ(network_.probe_attempt(server_ip_, 21, 2), ProbeResult::kAck);
  // A host without a plan answers first try; one without a listener is a
  // live "no listener", never a loss.
  EXPECT_EQ(network_.probe_attempt(client_ip_, 21, 0),
            ProbeResult::kNoListener);
  EXPECT_EQ(network_.stats().probes, 4u);
  EXPECT_EQ(network_.stats().probe_hits, 1u);
  network_.set_chaos(nullptr);
}

TEST_F(NetworkTest, ChaosMidStreamReset) {
  ChaosEngine engine = ChaosEngine::fixed(
      FaultPlan{.kind = FaultKind::kRstAtByte, .trigger_byte = 4});
  network_.set_chaos(&engine);
  bool server_reset = false, client_reset = false;
  std::shared_ptr<Connection> client_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    conn->set_callbacks(
        ConnCallbacks{.on_reset = [&](Status) { server_reset = true; }});
    static std::shared_ptr<Connection> keeper;
    keeper = conn;
  });
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     client_side = std::move(result).take();
                     client_side->set_callbacks(ConnCallbacks{
                         .on_reset = [&](Status) { client_reset = true; }});
                   });
  loop_.run_until_idle();
  client_side->send("1234");   // within budget
  client_side->send("5678");   // exceeds: reset both ways
  loop_.run_until_idle();
  EXPECT_TRUE(client_reset);
  EXPECT_TRUE(server_reset);
  EXPECT_FALSE(client_side->is_open());
  network_.set_chaos(nullptr);
}

TEST_F(NetworkTest, ChaosReplyManipulationOnServerSends) {
  // One engine, three victims, three reply faults: swallow, truncate,
  // garble — exercised at the raw connection layer.
  ChaosEngine engine = ChaosEngine::fixed(
      FaultPlan{.kind = FaultKind::kReplyStall,
                .trigger_send = 0,
                .stall_count = 1});
  network_.set_chaos(&engine);
  std::string client_saw;
  std::shared_ptr<Connection> server_side;
  network_.listen(server_ip_, 21, [&](std::shared_ptr<Connection> conn) {
    server_side = std::move(conn);
  });
  std::shared_ptr<Connection> client_side;
  network_.connect(client_ip_, server_ip_, 21,
                   [&](Result<std::shared_ptr<Connection>> result) {
                     client_side = std::move(result).take();
                     client_side->set_callbacks(ConnCallbacks{
                         .on_data = [&](std::string_view data) {
                           client_saw += data;
                         }});
                   });
  loop_.run_until_idle();
  server_side->send("220 swallowed banner\r\n");  // send 0: eaten
  loop_.run_until_idle();
  EXPECT_EQ(client_saw, "");
  server_side->send("220 retransmitted banner\r\n");  // send 1: delivered
  loop_.run_until_idle();
  EXPECT_EQ(client_saw, "220 retransmitted banner\r\n");
  // Client->server sends are never reply-manipulated.
  std::string server_saw;
  server_side->set_callbacks(ConnCallbacks{
      .on_data = [&](std::string_view data) { server_saw += data; }});
  client_side->send("USER anonymous\r\n");
  loop_.run_until_idle();
  EXPECT_EQ(server_saw, "USER anonymous\r\n");
  network_.set_chaos(nullptr);
}

}  // namespace
}  // namespace ftpc::sim
