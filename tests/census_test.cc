// Integration tests of the full census pipeline (scan + enumerate) and the
// PORT-bounce prober against the synthetic population.
#include <gtest/gtest.h>

#include "analysis/summary.h"
#include "core/bounce.h"
#include "ftpd/server.h"
#include "core/census.h"
#include "net/internet.h"
#include "popgen/population.h"
#include "sim/network.h"

namespace ftpc {
namespace {

class CensusTest : public ::testing::Test {
 protected:
  static popgen::SyntheticPopulation& population() {
    static popgen::SyntheticPopulation instance(42);
    return instance;
  }
};

TEST_F(CensusTest, SmallCensusFunnelConsistent) {
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population(), 64);

  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 15;  // ~131K addresses
  config.concurrency = 32;

  core::VectorSink sink;
  core::Census census(network, config);
  const core::CensusStats stats = census.run(sink);

  EXPECT_EQ(stats.scan.addresses_walked, (std::uint64_t{1} << 17));
  EXPECT_EQ(stats.hosts_enumerated, stats.scan.responsive);
  EXPECT_LE(stats.ftp_compliant, stats.hosts_enumerated);
  EXPECT_LE(stats.anonymous, stats.ftp_compliant);
  EXPECT_EQ(sink.reports().size(), stats.hosts_enumerated);
  EXPECT_GT(stats.ftp_compliant, 0u);

  // Every report resolves to a scanned hit; FTP-compliant reports carry
  // banners.
  for (const core::HostReport& report : sink.reports()) {
    if (report.ftp_compliant) {
      EXPECT_FALSE(report.banner.empty());
      EXPECT_TRUE(population().has_ftp(report.ip));
    }
  }
}

TEST_F(CensusTest, GroundTruthAgreement) {
  // The census must agree with population ground truth on anonymity for
  // every contacted host (the measurement is not allowed to hallucinate).
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population(), 64);

  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 15;
  core::VectorSink sink;
  core::Census census(network, config);
  census.run(sink);

  int checked = 0;
  for (const core::HostReport& report : sink.reports()) {
    if (!report.ftp_compliant) continue;
    const auto truth = population().host_config(report.ip);
    ASSERT_TRUE(truth) << report.ip.str();
    if (!report.error.is_ok()) continue;  // session died mid-way
    if (report.login == core::LoginOutcome::kNotAttempted) {
      continue;  // banner text scared the enumerator off (by design)
    }
    if (truth->personality->user_reply_style ==
            ftpd::UserReplyStyle::kNeedVirtualHost ||
        truth->personality->banner_forbids_anonymous) {
      continue;  // login outcome legitimately differs from the anon bit
    }
    EXPECT_EQ(report.anonymous(),
              truth->personality->allow_anonymous &&
                  !truth->personality->requires_ftps_before_login)
        << report.ip.str();
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST_F(CensusTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::EventLoop loop;
    sim::Network network(loop);
    popgen::SyntheticPopulation fresh(42);
    net::Internet internet(network, fresh, 64);
    core::CensusConfig config;
    config.seed = 42;
    config.scale_shift = 16;
    core::VectorSink sink;
    core::Census census(network, config);
    const core::CensusStats stats = census.run(sink);
    std::uint64_t file_total = 0;
    for (const auto& report : sink.reports()) file_total += report.files.size();
    return std::tuple(stats.scan.responsive, stats.ftp_compliant,
                      stats.anonymous, file_total);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(CensusTest, MaxHostsCapsEnumeration) {
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population(), 64);
  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 15;
  config.max_hosts = 10;
  core::VectorSink sink;
  core::Census census(network, config);
  const core::CensusStats stats = census.run(sink);
  EXPECT_EQ(stats.hosts_enumerated, 10u);
}

TEST_F(CensusTest, SummaryBuilderEndToEnd) {
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population(), 64);
  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 14;
  analysis::SummaryBuilder builder(
      population().as_table(), [](Ipv4 ip) {
        const auto http = CensusTest::population().http_profile(ip);
        return analysis::HttpSignal{
            .has_http = http.has_http,
            .server_side_scripting =
                http.powered_by != popgen::HttpProfile::PoweredBy::kNone};
      });
  core::Census census(network, config);
  const core::CensusStats stats = census.run(builder);
  const analysis::CensusSummary summary =
      builder.take(42, 14, stats.scan.probed, stats.scan.responsive);

  EXPECT_EQ(summary.ftp_servers, stats.ftp_compliant);
  EXPECT_EQ(summary.anonymous_servers, stats.anonymous);
  EXPECT_GT(summary.total_files + summary.total_dirs, 0u);
  EXPECT_LE(summary.exposing_servers, summary.anonymous_servers);
  EXPECT_GT(summary.ftps_supported, 0u);
  EXPECT_LE(summary.ftps_self_signed, summary.ftps_supported);
  // Per-AS counts add up to the totals.
  std::uint64_t as_ftp = 0, as_anon = 0;
  for (const auto& c : summary.as_counts) {
    as_ftp += c.ftp;
    as_anon += c.anonymous;
  }
  EXPECT_EQ(as_ftp, summary.ftp_servers);
  EXPECT_EQ(as_anon, summary.anonymous_servers);
}

TEST_F(CensusTest, InternetCacheEvicts) {
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population(), /*capacity=*/4);
  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 15;
  config.concurrency = 2;
  core::VectorSink sink;
  core::Census census(network, config);
  census.run(sink);
  EXPECT_LE(internet.resident_hosts(), 4u);
  EXPECT_GT(internet.hosts_evicted(), 0u);
}

// ---------------------------------------------------------------------------
// PORT-bounce prober
// ---------------------------------------------------------------------------

TEST_F(CensusTest, BounceProberClassifiesServers) {
  sim::EventLoop loop;
  sim::Network network(loop);

  // Hand-built targets: one vulnerable, one validating, one anonymous-less.
  auto deploy = [&](Ipv4 ip, bool validate, bool anon) {
    auto p = std::make_shared<ftpd::Personality>();
    p->banner = "220 test";
    p->allow_anonymous = anon;
    p->validate_port_ip = validate;
    auto server = std::make_shared<ftpd::FtpServer>(
        ip, std::move(p), std::make_shared<vfs::Vfs>());
    server->attach(network);
    return server;
  };
  const Ipv4 vulnerable(8, 8, 1, 1), secure(8, 8, 1, 2), closed(8, 8, 1, 3);
  auto s1 = deploy(vulnerable, false, true);
  auto s2 = deploy(secure, true, true);
  auto s3 = deploy(closed, true, false);

  core::BounceProber prober(network, {});
  const auto results = prober.run(
      {vulnerable.value(), secure.value(), closed.value()});
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    if (r.ip == vulnerable) {
      EXPECT_TRUE(r.login_ok);
      EXPECT_TRUE(r.port_accepted);
      EXPECT_TRUE(r.connection_observed);
    } else if (r.ip == secure) {
      EXPECT_TRUE(r.login_ok);
      EXPECT_FALSE(r.port_accepted);
      EXPECT_FALSE(r.connection_observed);
    } else {
      EXPECT_FALSE(r.login_ok);
    }
  }
}

TEST_F(CensusTest, BounceProberDetectsNat) {
  sim::EventLoop loop;
  sim::Network network(loop);
  auto p = std::make_shared<ftpd::Personality>();
  p->banner = "220 nat device";
  p->allow_anonymous = true;
  p->internal_ip = Ipv4(10, 0, 0, 99);
  const Ipv4 ip(8, 8, 2, 1);
  auto server = std::make_shared<ftpd::FtpServer>(
      ip, std::move(p), std::make_shared<vfs::Vfs>());
  server->attach(network);

  core::BounceProber prober(network, {});
  const auto results = prober.run({ip.value()});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].pasv_ip);
  EXPECT_EQ(*results[0].pasv_ip, Ipv4(10, 0, 0, 99));
}

TEST_F(CensusTest, BounceProberAgainstPopulation) {
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population(), 64);

  // Collect a few hundred anonymous hosts from a census first.
  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 13;
  core::VectorSink sink;
  core::Census census(network, config);
  census.run(sink);

  std::vector<std::uint32_t> anon_hosts;
  for (const auto& report : sink.reports()) {
    if (report.anonymous()) anon_hosts.push_back(report.ip.value());
  }
  ASSERT_GT(anon_hosts.size(), 50u);

  core::BounceProber prober(network, {});
  const auto results = prober.run(anon_hosts);
  EXPECT_EQ(results.size(), anon_hosts.size());
  std::uint64_t failed = 0, logged_in = 0;
  for (const auto& r : results) {
    if (r.login_ok) ++logged_in;
    if (r.port_accepted) {
      EXPECT_TRUE(r.connection_observed) << r.ip.str();
      ++failed;
    }
  }
  EXPECT_GT(logged_in, anon_hosts.size() * 3 / 4);
  // Paper: 12.74% of anonymous servers fail validation. Small sample, so
  // just demand a plausible, non-degenerate share.
  EXPECT_GT(failed, 0u);
  EXPECT_LT(failed, logged_in / 2);
}

}  // namespace
}  // namespace ftpc
