// Failure-injection tests: the census pipeline must complete and stay
// self-consistent when the network randomly drops connects and resets
// streams mid-session — the enumerator treats damage as refusal of
// service, never hangs, never double-reports a host.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "core/census.h"
#include "ftpd/server.h"
#include "net/internet.h"
#include "popgen/population.h"
#include "sim/network.h"

namespace ftpc {
namespace {

/// Deterministic chaos: a fraction of connects time out, a fraction of
/// sends kill the connection.
class ChaosInjector : public sim::FaultInjector {
 public:
  ChaosInjector(std::uint64_t seed, double connect_fail_p, double send_fail_p)
      : rng_(seed), connect_fail_p_(connect_fail_p), send_fail_p_(send_fail_p) {}

  Status on_connect(std::uint64_t, Ipv4, std::uint16_t) override {
    if (rng_.chance(connect_fail_p_)) {
      ++connect_faults_;
      return Status(ErrorCode::kTimeout, "injected connect loss");
    }
    return Status::ok();
  }

  Status on_send(std::uint64_t, std::size_t) override {
    if (rng_.chance(send_fail_p_)) {
      ++send_faults_;
      return Status(ErrorCode::kConnectionReset, "injected stream loss");
    }
    return Status::ok();
  }

  std::uint64_t connect_faults() const noexcept { return connect_faults_; }
  std::uint64_t send_faults() const noexcept { return send_faults_; }

 private:
  Xoshiro256ss rng_;
  double connect_fail_p_;
  double send_fail_p_;
  std::uint64_t connect_faults_ = 0;
  std::uint64_t send_faults_ = 0;
};

struct CountingSink : core::RecordSink {
  std::uint64_t reports = 0;
  std::uint64_t compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t terminated = 0;
  std::set<std::uint32_t> seen;
  bool duplicates = false;

  void on_host(const core::HostReport& report) override {
    ++reports;
    if (!seen.insert(report.ip.value()).second) duplicates = true;
    if (report.ftp_compliant) ++compliant;
    if (report.anonymous()) ++anonymous;
    if (report.server_terminated_early) ++terminated;
  }
};

class FaultInjectionTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultInjectionTest, CensusCompletesUnderChaos) {
  const double fault_rate = GetParam();

  popgen::SyntheticPopulation population(42);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 64);
  ChaosInjector chaos(99, fault_rate, fault_rate / 20);
  network.set_fault_injector(&chaos);

  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 14;
  CountingSink sink;
  core::Census census(network, config);
  const core::CensusStats stats = census.run(sink);

  // Every discovered host produced exactly one report, chaos or not.
  EXPECT_EQ(sink.reports, stats.scan.responsive);
  EXPECT_FALSE(sink.duplicates);
  EXPECT_LE(sink.anonymous, sink.compliant);
  // The loop fully drained: no stuck session left events behind forever.
  EXPECT_LE(loop.pending(), 2u);
  if (fault_rate > 0.0) {
    EXPECT_GT(chaos.connect_faults() + chaos.send_faults(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ChaosLevels, FaultInjectionTest,
                         ::testing::Values(0.0, 0.02, 0.10, 0.30));

TEST(FaultInjectionTest, HeavyChaosDegradesButNeverCorrupts) {
  popgen::SyntheticPopulation population(42);

  auto run_with = [&](double rate) {
    sim::EventLoop loop;
    sim::Network network(loop);
    net::Internet internet(network, population, 64);
    ChaosInjector chaos(7, rate, rate / 10);
    network.set_fault_injector(&chaos);
    core::CensusConfig config;
    config.seed = 42;
    config.scale_shift = 14;
    CountingSink sink;
    core::Census census(network, config);
    census.run(sink);
    return std::tuple(sink.compliant, sink.anonymous);
  };

  const auto [clean_compliant, clean_anon] = run_with(0.0);
  const auto [dirty_compliant, dirty_anon] = run_with(0.5);
  // Heavy chaos can only lose hosts, never invent them.
  EXPECT_LT(dirty_compliant, clean_compliant);
  EXPECT_LE(dirty_anon, clean_anon);
  EXPECT_GT(dirty_compliant, 0u);  // but the study still produces data
}

TEST(FaultInjectionTest, MidTraversalResetKeepsPartialListing) {
  // A server that dies after N commands yields a partial, truncated-marked
  // report rather than nothing.
  sim::EventLoop loop;
  sim::Network network(loop);
  auto personality = std::make_shared<ftpd::Personality>();
  personality->banner = "220 flaky";
  personality->allow_anonymous = true;
  personality->max_commands_per_session = 6;
  auto fs = std::make_shared<vfs::Vfs>();
  for (int i = 0; i < 10; ++i) {
    (void)fs->mkdir("/d" + std::to_string(i));
    (void)fs->add_file("/d" + std::to_string(i) + "/f", {.size = 1});
  }
  const Ipv4 ip(8, 7, 6, 5);
  auto server = std::make_shared<ftpd::FtpServer>(ip, personality, fs);
  server->attach(network);

  std::optional<core::HostReport> report;
  core::HostEnumerator::start(network, ip, {},
                              [&](core::HostReport r) { report = std::move(r); });
  loop.run_while_pending([&] { return report.has_value(); });
  ASSERT_TRUE(report);
  EXPECT_TRUE(report->server_terminated_early);
  EXPECT_GT(report->files.size(), 0u);  // partial data survived
  EXPECT_FALSE(report->error.is_ok());
}

}  // namespace
}  // namespace ftpc
