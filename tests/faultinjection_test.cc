// Failure-injection tests: the census pipeline must complete and stay
// self-consistent when the network drops connects, stalls replies, and
// resets streams mid-session — the enumerator treats damage as refusal of
// service, never hangs, never double-reports a host.
//
// Faults come from sim::chaos (per-IP pure fault plans). The previous
// incarnation of this suite drew faults from a shared RNG consulted in
// connect/send order, which made the fault pattern depend on host visit
// order — a latent determinism bug under sharding. Plan hashing has no
// such order dependence; tests/chaos_matrix_test.cc pins that property.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string_view>
#include <tuple>

#include "core/census.h"
#include "ftpd/server.h"
#include "net/internet.h"
#include "popgen/population.h"
#include "sim/chaos.h"
#include "sim/network.h"

namespace ftpc {
namespace {

/// A mixed profile with every fault kind enabled, scaled so the total
/// assignment probability is `rate`.
sim::ChaosProfile mixed_profile(double rate) {
  sim::ChaosProfile p;
  p.syn_loss = rate / 4;
  p.connect_timeout = rate / 8;
  p.rst = rate / 8;
  p.stall = rate / 8;
  p.truncate = rate / 8;
  p.garble = rate / 16;
  p.premature_close = rate / 8;
  p.data_fail = rate / 16;
  return p;
}

std::uint64_t injected_total(const obs::MetricsRegistry& metrics) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : metrics.counters()) {
    if (std::string_view(name).starts_with("chaos.injected.")) total += value;
  }
  return total;
}

struct CountingSink : core::RecordSink {
  std::uint64_t reports = 0;
  std::uint64_t compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t completed = 0;  // sessions that finished with no error
  std::set<std::uint32_t> seen;
  bool duplicates = false;

  void on_host(const core::HostReport& report) override {
    ++reports;
    if (!seen.insert(report.ip.value()).second) duplicates = true;
    if (report.ftp_compliant) ++compliant;
    if (report.anonymous()) ++anonymous;
    if (report.error.is_ok()) ++completed;
  }
};

class FaultInjectionTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultInjectionTest, CensusCompletesUnderChaos) {
  const double fault_rate = GetParam();

  popgen::SyntheticPopulation population(42);
  sim::EventLoop loop;
  sim::Network network(loop);
  net::Internet internet(network, population, 64);

  core::CensusConfig config;
  config.seed = 42;
  config.scale_shift = 14;
  config.chaos_enabled = fault_rate > 0.0;
  config.chaos = mixed_profile(fault_rate);
  CountingSink sink;
  core::Census census(network, config);
  const core::CensusStats stats = census.run(sink);

  // Every discovered host produced exactly one report, chaos or not.
  EXPECT_EQ(sink.reports, stats.scan.responsive);
  EXPECT_FALSE(sink.duplicates);
  EXPECT_LE(sink.anonymous, sink.compliant);
  // The loop fully drained: no stuck session left events behind forever.
  EXPECT_LE(loop.pending(), 2u);
  if (fault_rate > 0.0) {
    EXPECT_GT(injected_total(stats.metrics), 0u);
  } else {
    EXPECT_EQ(injected_total(stats.metrics), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(ChaosLevels, FaultInjectionTest,
                         ::testing::Values(0.0, 0.02, 0.10, 0.30));

TEST(FaultInjectionTest, HeavyChaosDegradesButNeverCorrupts) {
  popgen::SyntheticPopulation population(42);

  auto run_with = [&](double rate) {
    sim::EventLoop loop;
    sim::Network network(loop);
    net::Internet internet(network, population, 64);
    core::CensusConfig config;
    config.seed = 42;
    config.scale_shift = 14;
    config.chaos_enabled = rate > 0.0;
    config.chaos = mixed_profile(rate);
    CountingSink sink;
    core::Census census(network, config);
    census.run(sink);
    return std::tuple(sink.compliant, sink.anonymous);
  };

  const auto [clean_compliant, clean_anon] = run_with(0.0);
  const auto [dirty_compliant, dirty_anon] = run_with(0.9);
  // Heavy chaos can only lose hosts, never invent them.
  EXPECT_LT(dirty_compliant, clean_compliant);
  EXPECT_LE(dirty_anon, clean_anon);
  EXPECT_GT(dirty_compliant, 0u);  // but the study still produces data
}

TEST(FaultInjectionTest, RetriesRecoverStalledSessions) {
  // A pure reply-stall population: with no retry budget the stalled command
  // kills its session; with a budget covering the worst-case stall_count
  // (2), every stall whose trigger lands on a retryable reply recovers.
  popgen::SyntheticPopulation population(42);

  auto run_with = [&](std::uint32_t retries) {
    sim::EventLoop loop;
    sim::Network network(loop);
    net::Internet internet(network, population, 64);
    core::CensusConfig config;
    config.seed = 42;
    config.scale_shift = 14;
    config.chaos_enabled = true;
    config.chaos = sim::ChaosProfile::single(sim::FaultKind::kReplyStall, 0.8);
    config.enumerator.command_retries = retries;
    CountingSink sink;
    core::Census census(network, config);
    const core::CensusStats stats = census.run(sink);
    EXPECT_EQ(sink.reports, stats.scan.responsive);
    return std::tuple(sink.completed,
                      stats.metrics.value("retry.command"));
  };

  const auto [completed0, retry_count0] = run_with(0);
  const auto [completed2, retry_count2] = run_with(2);
  EXPECT_EQ(retry_count0, 0u);
  EXPECT_GT(retry_count2, 0u);
  EXPECT_GT(completed2, completed0);
}

TEST(FaultInjectionTest, MidTraversalResetKeepsPartialListing) {
  // A server that dies after N commands yields a partial, truncated-marked
  // report rather than nothing.
  sim::EventLoop loop;
  sim::Network network(loop);
  auto personality = std::make_shared<ftpd::Personality>();
  personality->banner = "220 flaky";
  personality->allow_anonymous = true;
  personality->max_commands_per_session = 6;
  auto fs = std::make_shared<vfs::Vfs>();
  for (int i = 0; i < 10; ++i) {
    (void)fs->mkdir("/d" + std::to_string(i));
    (void)fs->add_file("/d" + std::to_string(i) + "/f", {.size = 1});
  }
  const Ipv4 ip(8, 7, 6, 5);
  auto server = std::make_shared<ftpd::FtpServer>(ip, personality, fs);
  server->attach(network);

  std::optional<core::HostReport> report;
  core::HostEnumerator::start(network, ip, {},
                              [&](core::HostReport r) { report = std::move(r); });
  loop.run_while_pending([&] { return report.has_value(); });
  ASSERT_TRUE(report);
  EXPECT_TRUE(report->server_terminated_early);
  EXPECT_GT(report->files.size(), 0u);  // partial data survived
  EXPECT_FALSE(report->error.is_ok());
}

}  // namespace
}  // namespace ftpc
