#include "core/funnel.h"

#include <string>

namespace ftpc::core {

std::string_view funnel_stage_name(FunnelStage stage) noexcept {
  switch (stage) {
    case FunnelStage::kProbe:
      return "probe";
    case FunnelStage::kConnect:
      return "connect";
    case FunnelStage::kBanner:
      return "banner";
    case FunnelStage::kLogin:
      return "login";
    case FunnelStage::kTraverse:
      return "traverse";
    case FunnelStage::kFinalize:
      return "finalize";
  }
  return "?";
}

namespace {

std::string_view drop_reason(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kConnectionRefused:
      return "refused";
    case ErrorCode::kConnectionReset:
      return "reset";
    case ErrorCode::kProtocolError:
      return "protocol";
    default:
      return error_code_name(code);
  }
}

}  // namespace

FunnelOutcome classify_funnel(const HostReport& report) noexcept {
  if (report.error.is_ok()) {
    return {FunnelStage::kFinalize, "completed", true};
  }
  const ErrorCode code = report.error.code();

  // connected reflects TCP establishment only (see the banner-timeout fix
  // in enumerator.cc): a host that never completed the handshake dropped at
  // the connect edge, everything else got at least as far as the banner.
  if (!report.connected) {
    return {FunnelStage::kConnect, drop_reason(code), false};
  }
  if (!report.ftp_compliant) {
    // Connected but no parseable 220: silent listener (timeout), non-FTP
    // speaker (protocol garbage poisoned the stream), bad banner code, or
    // a reset while awaiting the banner.
    const std::string_view reason =
        code == ErrorCode::kProtocolError ? "not_ftp" : drop_reason(code);
    return {FunnelStage::kBanner, reason, false};
  }
  if (report.login == LoginOutcome::kError) {
    return {FunnelStage::kLogin, drop_reason(code), false};
  }
  // Mid-traversal termination is flagged explicitly; an anonymous session
  // that died before listing anything fell in the robots/traversal phase.
  if (report.server_terminated_early ||
      (report.anonymous() && report.dirs_listed == 0)) {
    return {FunnelStage::kTraverse, drop_reason(code), false};
  }
  // Login resolved, traversal (if any) done: died in surveys/TLS/QUIT.
  return {FunnelStage::kFinalize, drop_reason(code), false};
}

void record_host_funnel(const HostReport& report, obs::MetricsRegistry& m) {
  const FunnelOutcome outcome = classify_funnel(report);

  // funnel.stage.<s> counts sessions that *entered* stage s. Every
  // enumerated (= probe-responsive) host enters the connect stage; each
  // later stage is gated by surviving the previous one. The funnel is not
  // strictly linear past login: non-anonymous sessions skip traverse and
  // go straight to finalize.
  m.add("funnel.stage.connect");
  if (report.connected) m.add("funnel.stage.banner");
  if (report.ftp_compliant) {
    m.add("funnel.stage.login");
    m.add(std::string("funnel.login.") +
          std::string(login_outcome_name(report.login)));
  }
  if (report.anonymous()) m.add("funnel.stage.traverse");
  if (outcome.stage == FunnelStage::kFinalize) m.add("funnel.stage.finalize");

  if (outcome.completed) {
    m.add("funnel.done.completed");
  } else {
    m.add(std::string("funnel.drop.") +
          std::string(funnel_stage_name(outcome.stage)) + "." +
          std::string(outcome.reason));
  }
}

}  // namespace ftpc::core
