#include "core/shard_stream.h"

#include <cstring>

#include "common/hash.h"

namespace ftpc::core {

namespace {

// Even a pathological buffer_bytes (the equivalence tests run with 64) must
// leave room for a length prefix read and forward progress.
constexpr std::size_t kMinChunk = 16;

std::size_t clamp_chunk(std::size_t bytes) {
  return bytes < kMinChunk ? kMinChunk : bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// LineReader
// ---------------------------------------------------------------------------

LineReader::LineReader(StreamBudget* budget, std::size_t chunk_bytes)
    : budget_(budget), chunk_bytes_(clamp_chunk(chunk_bytes)) {}

LineReader::~LineReader() {
  if (file_ != nullptr) std::fclose(file_);
  budget_->release(accounted_);
}

bool LineReader::open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return false;
  // Our chunk IS the buffering; stdio's would double-count the budget.
  std::setvbuf(file_, nullptr, _IONBF, 0);
  chunk_.resize(chunk_bytes_);
  budget_->add(chunk_bytes_);
  accounted_ = chunk_bytes_;
  return true;
}

LineReader::Status LineReader::next(std::string_view& line) {
  if (error_) return Status::kError;
  spill_.clear();
  for (;;) {
    const char* base = chunk_.data() + pos_;
    const std::size_t avail = len_ - pos_;
    const void* nl = avail > 0 ? std::memchr(base, '\n', avail) : nullptr;
    if (nl != nullptr) {
      const std::size_t n =
          static_cast<std::size_t>(static_cast<const char*>(nl) - base);
      if (spill_.empty()) {
        line = std::string_view(base, n);
      } else {
        spill_.append(base, n);
        line = spill_;
      }
      pos_ += n + 1;
      if (spill_.capacity() > 0 &&
          accounted_ < chunk_bytes_ + spill_.capacity()) {
        budget_->add(chunk_bytes_ + spill_.capacity() - accounted_);
        accounted_ = chunk_bytes_ + spill_.capacity();
      }
      return Status::kLine;
    }
    spill_.append(base, avail);
    pos_ = len_ = 0;
    if (eof_) {
      if (spill_.empty()) return Status::kEof;
      line = spill_;  // unterminated tail: a line, per split_lines()
      return Status::kLine;
    }
    const std::size_t got = std::fread(chunk_.data(), 1, chunk_.size(), file_);
    len_ = got;
    if (got < chunk_.size()) {
      if (std::ferror(file_) != 0) {
        error_ = true;
        return Status::kError;
      }
      eof_ = true;
    }
  }
}

// ---------------------------------------------------------------------------
// FrameReader
// ---------------------------------------------------------------------------

FrameReader::FrameReader(StreamBudget* budget, std::size_t chunk_bytes)
    : budget_(budget), chunk_bytes_(clamp_chunk(chunk_bytes)) {}

FrameReader::~FrameReader() {
  if (file_ != nullptr) std::fclose(file_);
  budget_->release(accounted_);
}

bool FrameReader::open(const std::string& path,
                       std::string_view expected_header) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return false;
  std::setvbuf(file_, nullptr, _IONBF, 0);
  buffer_.resize(chunk_bytes_);
  budget_->add(buffer_.size());
  accounted_ = buffer_.size();
  std::string header(expected_header.size(), '\0');
  const std::size_t got =
      std::fread(header.data(), 1, header.size(), file_);
  if (got != expected_header.size() ||
      std::memcmp(header.data(), expected_header.data(), got) != 0) {
    return false;
  }
  base_offset_ = expected_header.size();
  return true;
}

bool FrameReader::ensure(std::size_t need) {
  if (len_ - pos_ >= need) return true;
  if (pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + pos_, len_ - pos_);
    base_offset_ += pos_;
    len_ -= pos_;
    pos_ = 0;
  }
  if (buffer_.size() < need) {
    // A frame larger than the chunk (bodies go up to 64 MB) grows the
    // buffer to exactly that frame; the growth is part of the budget.
    buffer_.resize(need);
    budget_->add(buffer_.size() - accounted_);
    accounted_ = buffer_.size();
  }
  while (len_ < need && !eof_) {
    const std::size_t want = buffer_.size() - len_;
    const std::size_t got = std::fread(buffer_.data() + len_, 1, want, file_);
    len_ += got;
    if (got < want) {
      if (std::ferror(file_) != 0) {
        error_ = true;
        return false;
      }
      eof_ = true;
    }
  }
  return len_ >= need;
}

FrameReader::Status FrameReader::next() {
  // Fewer than 4 trailing bytes is a clean EOF, as in DatasetReader.
  if (!ensure(sizeof(std::uint32_t))) {
    return error_ ? Status::kError : Status::kEof;
  }
  frame_offset_ = base_offset_ + pos_;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + pos_, sizeof(length));
  if (length < sizeof(std::uint32_t) || length > (64u << 20)) {
    return Status::kTorn;
  }
  const std::size_t frame_size =
      sizeof(length) + length + sizeof(std::uint64_t);
  if (!ensure(frame_size)) {
    return error_ ? Status::kError : Status::kTorn;
  }
  std::uint64_t checksum = 0;
  std::memcpy(&checksum, buffer_.data() + pos_ + sizeof(length) + length,
              sizeof(checksum));
  const std::string_view body(buffer_.data() + pos_ + sizeof(length), length);
  if (checksum != fnv1a64(body)) return Status::kTorn;
  std::memcpy(&ip_, body.data(), sizeof(ip_));
  frame_size_ = static_cast<std::uint32_t>(frame_size);
  if (frame_size_ > max_frame_size_) max_frame_size_ = frame_size_;
  pos_ += frame_size;
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// FrameFetcher
// ---------------------------------------------------------------------------

FrameFetcher::~FrameFetcher() {
  if (file_ != nullptr) std::fclose(file_);
}

bool FrameFetcher::open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return false;
  std::setvbuf(file_, nullptr, _IONBF, 0);
  return true;
}

bool FrameFetcher::fetch(std::uint64_t offset, std::uint32_t size,
                         std::string& out) {
  out.resize(size);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return false;
  }
  return std::fread(out.data(), 1, size, file_) == size;
}

// ---------------------------------------------------------------------------
// BufferedWriter
// ---------------------------------------------------------------------------

BufferedWriter::BufferedWriter(StreamBudget* budget, std::size_t buffer_bytes)
    : budget_(budget), buffer_bytes_(clamp_chunk(buffer_bytes)) {}

BufferedWriter::~BufferedWriter() {
  if (file_ != nullptr) {
    flush();
    std::fclose(file_);
  }
  budget_->release(buffer_bytes_);
}

bool BufferedWriter::open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return false;
  std::setvbuf(file_, nullptr, _IONBF, 0);
  buffer_.reserve(buffer_bytes_);
  budget_->add(buffer_bytes_);
  return true;
}

bool BufferedWriter::flush() {
  if (buffer_.empty()) return !error_;
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
      buffer_.size()) {
    error_ = true;
  }
  buffer_.clear();
  return !error_;
}

void BufferedWriter::append(std::string_view bytes) {
  if (file_ == nullptr || error_) return;
  if (buffer_.size() + bytes.size() > buffer_bytes_) {
    flush();
    if (bytes.size() >= buffer_bytes_) {
      if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
        error_ = true;
      }
      return;
    }
  }
  buffer_.append(bytes.data(), bytes.size());
}

bool BufferedWriter::close() {
  if (file_ == nullptr) return false;
  flush();
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  return closed && !error_;
}

}  // namespace ftpc::core
