// Space-partitioned parallel census.
//
// The paper's collection ran "spread across a large number of widely
// dispersed hosts" (§III.A); this is that architecture in one process.
// The scanned address space is split into K disjoint shards along the
// scan permutation's cyclic-group walk (ZMap's sharding scheme), and each
// shard runs the complete pipeline — scanner, enumerator window, record
// stream — on its own sim::EventLoop + sim::Network + population stack,
// so shards share no mutable state at all. T worker threads drain the K
// shard tasks, per-shard record streams buffer in a ShardMergeSink, and
// the merged stream replays into the caller's sink in canonical order.
//
// Determinism contract: for a fixed (seed, scale_shift, enumerator
// options), every (shards=K, threads=T) configuration produces the same
// merged record stream, byte for byte, as the sequential Census — the
// property tests/sharded_census_test.cc pins. The three mechanisms that
// make it hold:
//   1. element-indexed shard budgets: the K shard slices partition the
//      sequential scan sample exactly (scan/permutation.h);
//   2. per-host purity: a host's report depends only on (seed, target);
//      the client address is a hash of the target, never of launch order;
//   3. order-stable reduction: the merge replays reports sorted by IP,
//      erasing shard-completion and thread-scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/census.h"
#include "core/records.h"
#include "net/internet.h"

namespace ftpc::core {

/// Builds one shard's population model. Invoked once per shard, possibly
/// concurrently from several worker threads, so it must be thread-safe and
/// must return identically-seeded populations — every shard has to see the
/// same simulated Internet for the partition to reassemble exactly.
using PopulationFactory =
    std::function<std::unique_ptr<net::PopulationModel>()>;

class ShardedCensus {
 public:
  /// `host_cache_capacity` is the per-shard net::Internet LRU bound.
  ShardedCensus(PopulationFactory population_factory, CensusConfig config,
                std::size_t host_cache_capacity = 256);

  /// Runs config.shards shards on config.threads worker threads (0 =
  /// hardware concurrency; clamped to the shard count), merges the record
  /// streams into `sink` in canonical order, and returns the summed stats.
  /// Blocks until everything — workers included — has finished.
  CensusStats run(RecordSink& sink);

 private:
  CensusStats run_one_shard(std::uint32_t shard, std::uint32_t total_shards,
                            RecordSink& shard_sink) const;

  PopulationFactory population_factory_;
  CensusConfig config_;
  std::size_t host_cache_capacity_;
};

}  // namespace ftpc::core
