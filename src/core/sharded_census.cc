#include "core/sharded_census.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/perf.h"
#include "obs/prof.h"
#include "sim/network.h"

namespace ftpc::core {

ShardedCensus::ShardedCensus(PopulationFactory population_factory,
                             CensusConfig config,
                             std::size_t host_cache_capacity)
    : population_factory_(std::move(population_factory)),
      config_(config),
      host_cache_capacity_(host_cache_capacity) {}

CensusStats ShardedCensus::run_one_shard(std::uint32_t shard,
                                         std::uint32_t total_shards,
                                         RecordSink& shard_sink) const {
  // A complete private stack: loop, network, population, host cache. The
  // loop binds to this worker thread on first use (debug builds assert
  // no other thread ever drives it).
  sim::EventLoop loop;
  sim::Network network(loop);
  std::unique_ptr<net::PopulationModel> population = population_factory_();
  net::Internet internet(network, *population, host_cache_capacity_);
  Census census(network, config_);
  return census.run_shard(shard_sink, shard, total_shards);
}

CensusStats ShardedCensus::run(RecordSink& sink) {
  const std::uint32_t shards = std::max<std::uint32_t>(1, config_.shards);
  std::uint32_t threads = config_.threads != 0
                              ? config_.threads
                              : std::thread::hardware_concurrency();
  threads = std::clamp<std::uint32_t>(threads, 1, shards);

  ShardMergeSink merge(shards);
  std::vector<CensusStats> per_shard(shards);

  // Workers pull shard indices from a shared counter; each shard writes
  // only its own merge slot and stats entry, so the workers share nothing
  // mutable but the counter itself.
  std::atomic<std::uint32_t> next_shard{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;
  auto worker = [&]() noexcept {
    for (;;) {
      const std::uint32_t shard =
          next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      try {
        per_shard[shard] = run_one_shard(shard, shards, merge.shard(shard));
        if (config_.progress != nullptr) {
          config_.progress->shards_done.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  // Single-threaded from here: deterministic replay + order-free fold.
  // The merge stage runs after the workers join, so its cost lands on the
  // final report directly rather than through a shard collector.
  const auto merge_started = std::chrono::steady_clock::now();
  const double merge_cpu_started = obs::ScopedStageTimer::thread_cpu_seconds();
  // Post-join profile scopes: the merge work belongs to the run, not any
  // shard, so the collector folds in without bumping the shard count.
  obs::ProfCollector merge_prof;
  obs::ProfCollector* mprof = config_.prof_enabled ? &merge_prof : nullptr;
  {
    obs::ScopedProfile prof_scope(mprof, "merge.replay");
    merge.merge_into(sink);
  }
  CensusStats total = std::move(per_shard[0]);
  {
    obs::ScopedProfile prof_scope(mprof, "merge.fold");
    for (std::uint32_t shard = 1; shard < shards; ++shard) {
      total.merge_from(per_shard[shard]);
    }
  }
  if (mprof != nullptr) {
    total.prof.add_collector(merge_prof, /*count_shard=*/false);
  }
  if (config_.perf_enabled) {
    total.perf.add_stage(
        obs::PerfStage::kMerge,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_started)
            .count(),
        obs::ScopedStageTimer::thread_cpu_seconds() - merge_cpu_started);
  }
  return total;
}

}  // namespace ftpc::core
