#include "core/dataset.h"

#include <cstring>

#include "common/hash.h"

namespace ftpc::core {

namespace {

constexpr char kMagic[4] = {'F', 'T', 'P', 'D'};
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  bool u8(std::uint8_t& v) {
    if (pos_ >= data_.size()) return false;
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len) || pos_ + len > data_.size()) return false;
    s.assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool raw(void* p, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_host_report(const HostReport& r) {
  Writer w;
  w.u32(r.ip.value());
  w.u8(r.connected ? 1 : 0);
  w.u8(r.ftp_compliant ? 1 : 0);
  w.str(r.banner);
  w.u8(static_cast<std::uint8_t>(r.login));

  w.u32(static_cast<std::uint32_t>(r.files.size()));
  for (const FileRecord& f : r.files) {
    w.str(f.path);
    w.u8(f.is_dir ? 1 : 0);
    w.u64(f.size);
    w.u8(static_cast<std::uint8_t>(f.readable));
    w.u8(f.world_writable ? 1 : 0);
    w.u8(f.has_permissions ? 1 : 0);
    w.str(f.owner);
  }
  w.u64(r.dirs_listed);
  w.u64(r.listing_lines_skipped);
  w.u8(r.robots_present ? 1 : 0);
  w.u8(r.robots_full_exclusion ? 1 : 0);
  w.u8(r.truncated_by_request_cap ? 1 : 0);
  w.u8(r.server_terminated_early ? 1 : 0);
  w.u32(r.requests_used);

  w.str(r.syst_reply);
  w.u32(static_cast<std::uint32_t>(r.feat_lines.size()));
  for (const std::string& line : r.feat_lines) w.str(line);
  w.str(r.help_text);
  w.str(r.site_text);

  w.u8(r.ftps_supported ? 1 : 0);
  w.u8(r.ftps_required_before_login ? 1 : 0);
  w.u8(r.certificate ? 1 : 0);
  if (r.certificate) w.str(r.certificate->encode());
  w.u8(r.pasv_ip ? 1 : 0);
  if (r.pasv_ip) w.u32(r.pasv_ip->value());
  w.u8(r.error.is_ok() ? 0 : 1);
  if (!r.error.is_ok()) {
    w.u8(static_cast<std::uint8_t>(r.error.code()));
    w.str(r.error.message());
  }
  return w.take();
}

std::optional<HostReport> decode_host_report(std::string_view frame) {
  Reader reader(frame);
  HostReport r;
  std::uint32_t ip = 0;
  std::uint8_t flag = 0;
  if (!reader.u32(ip)) return std::nullopt;
  r.ip = Ipv4(ip);
  if (!reader.u8(flag)) return std::nullopt;
  r.connected = flag != 0;
  if (!reader.u8(flag)) return std::nullopt;
  r.ftp_compliant = flag != 0;
  if (!reader.str(r.banner)) return std::nullopt;
  if (!reader.u8(flag) || flag > static_cast<int>(LoginOutcome::kError)) {
    return std::nullopt;
  }
  r.login = static_cast<LoginOutcome>(flag);

  std::uint32_t files = 0;
  if (!reader.u32(files)) return std::nullopt;
  r.files.reserve(std::min<std::uint32_t>(files, 1 << 20));
  for (std::uint32_t i = 0; i < files; ++i) {
    FileRecord f;
    std::uint8_t readable = 0;
    if (!reader.str(f.path)) return std::nullopt;
    if (!reader.u8(flag)) return std::nullopt;
    f.is_dir = flag != 0;
    if (!reader.u64(f.size)) return std::nullopt;
    if (!reader.u8(readable) || readable > 2) return std::nullopt;
    f.readable = static_cast<ftp::Readability>(readable);
    if (!reader.u8(flag)) return std::nullopt;
    f.world_writable = flag != 0;
    if (!reader.u8(flag)) return std::nullopt;
    f.has_permissions = flag != 0;
    if (!reader.str(f.owner)) return std::nullopt;
    r.files.push_back(std::move(f));
  }
  if (!reader.u64(r.dirs_listed)) return std::nullopt;
  if (!reader.u64(r.listing_lines_skipped)) return std::nullopt;
  if (!reader.u8(flag)) return std::nullopt;
  r.robots_present = flag != 0;
  if (!reader.u8(flag)) return std::nullopt;
  r.robots_full_exclusion = flag != 0;
  if (!reader.u8(flag)) return std::nullopt;
  r.truncated_by_request_cap = flag != 0;
  if (!reader.u8(flag)) return std::nullopt;
  r.server_terminated_early = flag != 0;
  if (!reader.u32(r.requests_used)) return std::nullopt;

  if (!reader.str(r.syst_reply)) return std::nullopt;
  std::uint32_t feats = 0;
  if (!reader.u32(feats)) return std::nullopt;
  for (std::uint32_t i = 0; i < feats; ++i) {
    std::string line;
    if (!reader.str(line)) return std::nullopt;
    r.feat_lines.push_back(std::move(line));
  }
  if (!reader.str(r.help_text)) return std::nullopt;
  if (!reader.str(r.site_text)) return std::nullopt;

  if (!reader.u8(flag)) return std::nullopt;
  r.ftps_supported = flag != 0;
  if (!reader.u8(flag)) return std::nullopt;
  r.ftps_required_before_login = flag != 0;
  if (!reader.u8(flag)) return std::nullopt;
  if (flag != 0) {
    std::string encoded;
    if (!reader.str(encoded)) return std::nullopt;
    auto cert = ftp::Certificate::decode(encoded);
    if (!cert) return std::nullopt;
    r.certificate = std::move(*cert);
  }
  if (!reader.u8(flag)) return std::nullopt;
  if (flag != 0) {
    std::uint32_t pasv = 0;
    if (!reader.u32(pasv)) return std::nullopt;
    r.pasv_ip = Ipv4(pasv);
  }
  if (!reader.u8(flag)) return std::nullopt;
  if (flag != 0) {
    std::uint8_t code = 0;
    std::string message;
    if (!reader.u8(code) || !reader.str(message)) return std::nullopt;
    if (code == 0 || code > static_cast<int>(ErrorCode::kInternal)) {
      return std::nullopt;
    }
    r.error = Status(static_cast<ErrorCode>(code), std::move(message));
  }
  if (!reader.done()) return std::nullopt;
  return r;
}

// ---------------------------------------------------------------------------
// File framing
// ---------------------------------------------------------------------------

std::string dataset_file_header() {
  std::string out(kMagic, 4);
  out.append(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  return out;
}

std::string encode_host_frame(const HostReport& report) {
  const std::string body = encode_host_report(report);
  const auto length = static_cast<std::uint32_t>(body.size());
  const std::uint64_t checksum = fnv1a64(body);
  std::string out;
  out.reserve(sizeof(length) + body.size() + sizeof(checksum));
  out.append(reinterpret_cast<const char*>(&length), sizeof(length));
  out.append(body);
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return out;
}

DatasetWriter::DatasetWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  if (std::fwrite(kMagic, 1, 4, file_) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

DatasetWriter::~DatasetWriter() { close(); }

void DatasetWriter::on_host(const HostReport& report) {
  if (file_ == nullptr || failed_) return;
  const std::string frame = encode_host_report(report);
  const auto length = static_cast<std::uint32_t>(frame.size());
  const std::uint64_t checksum = fnv1a64(frame);
  if (std::fwrite(&length, sizeof(length), 1, file_) != 1 ||
      std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fwrite(&checksum, sizeof(checksum), 1, file_) != 1) {
    failed_ = true;
    return;
  }
  ++records_;
}

bool DatasetWriter::close() {
  if (file_ == nullptr) return !failed_;
  const bool ok = std::fclose(file_) == 0 && !failed_;
  file_ = nullptr;
  return ok;
}

DatasetReader::DatasetReader(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return;
  char magic[4];
  std::uint32_t version = 0;
  header_ok_ = std::fread(magic, 1, 4, file_) == 4 &&
               std::memcmp(magic, kMagic, 4) == 0 &&
               std::fread(&version, sizeof(version), 1, file_) == 1 &&
               version == kVersion;
}

DatasetReader::~DatasetReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<HostReport> DatasetReader::next() {
  if (!ok()) return std::nullopt;
  std::uint32_t length = 0;
  const std::size_t got = std::fread(&length, sizeof(length), 1, file_);
  if (got != 1) return std::nullopt;  // clean EOF
  if (length > (64u << 20)) {
    truncated_ = true;
    return std::nullopt;
  }
  std::string frame(length, '\0');
  if (std::fread(frame.data(), 1, length, file_) != length) {
    truncated_ = true;
    return std::nullopt;
  }
  std::uint64_t checksum = 0;
  if (std::fread(&checksum, sizeof(checksum), 1, file_) != 1 ||
      checksum != fnv1a64(frame)) {
    truncated_ = true;
    return std::nullopt;
  }
  auto report = decode_host_report(frame);
  if (!report) {
    truncated_ = true;
    return std::nullopt;
  }
  ++records_;
  return report;
}

}  // namespace ftpc::core
