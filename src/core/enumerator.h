// The robust FTP enumerator — the paper's core engineering contribution.
//
// One HostEnumerator drives one host through the full measurement
// protocol, mirroring §III:
//   1. connect, read the 220 banner (bail out on non-FTP speakers);
//   2. attempt an anonymous login per RFC 1635 (password = abuse-contact
//      e-mail), skipping the attempt if the banner forbids it, and
//      classifying the zoo of 331-reply meanings;
//   3. fetch and honor robots.txt (Google semantics);
//   4. traverse the directory tree breadth-first, at most two requests per
//      second and 500 requests per connection, recording every listing
//      entry with its permission bits;
//   5. collect SYST/FEAT/HELP/SITE output;
//   6. attempt AUTH TLS regardless of login success and record the
//      certificate;
//   7. QUIT.
//
// A server that resets or closes mid-traversal is treated as an explicit
// refusal of service: interaction stops and the partial report is kept.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/ipv4.h"
#include "core/records.h"
#include "ftp/client.h"
#include "ftp/robots.h"
#include "sim/network.h"

namespace ftpc::core {

struct EnumeratorOptions {
  Ipv4 client_ip{141, 212, 120, 7};  // scanner host (descriptive WHOIS...)
  std::string password = "ftp-census@research.example.edu";
  std::string user_agent = "ftpcensus";

  std::uint32_t request_cap = 500;            // per connection (§III.A)
  sim::SimTime request_gap = sim::kSecond / 2;  // <= 2 requests/second
  std::uint32_t max_depth = 16;
  std::uint64_t max_listing_bytes = 32ull << 20;
  std::uint64_t max_files = 200'000;

  bool honor_robots = true;
  bool collect_surveys = true;
  bool try_tls = true;
  bool breadth_first = true;  // ablation: depth-first when false

  /// Reply-timeout retries per command, passed through to the FtpClient
  /// (0 = fail a command on its first lost reply, the pre-chaos posture).
  std::uint32_t command_retries = 0;
  sim::SimTime retry_backoff = sim::kSecond;
  sim::SimTime retry_backoff_cap = 8 * sim::kSecond;
};

/// Runs the enumeration of a single host. Self-owning: keeps itself alive
/// until the completion callback fires.
class HostEnumerator : public std::enable_shared_from_this<HostEnumerator> {
 public:
  using DoneHandler = std::function<void(HostReport)>;

  static std::shared_ptr<HostEnumerator> start(sim::Network& network,
                                               Ipv4 target,
                                               EnumeratorOptions options,
                                               DoneHandler done);

 private:
  HostEnumerator(sim::Network& network, Ipv4 target,
                 EnumeratorOptions options, DoneHandler done);

  void begin();
  void on_banner(Result<ftp::Reply> result);
  void start_login();
  void on_user_reply(Result<ftp::Reply> result);
  void on_pass_reply(Result<ftp::Reply> result);
  void after_login();
  void fetch_robots();
  void start_traversal();
  void traversal_step();
  void on_listing(std::string dir, Result<ftp::TransferOutcome> result);
  void start_surveys();
  void survey_step(int stage);
  void start_tls_probe();
  void finish_session();
  void finalize(Status error);
  void abort_with(Status error);

  /// Schedules `fn` after the inter-request gap (rate limiting).
  void after_gap(std::function<void()> fn);

  bool budget_exhausted() const;

  sim::Network& network_;
  EnumeratorOptions options_;
  DoneHandler done_;
  std::shared_ptr<ftp::FtpClient> client_;
  HostReport report_;
  // Per-session trace handle (owned by the network's TraceCollector);
  // nullptr when tracing is off or this host is unsampled.
  obs::TraceSession* trace_ = nullptr;
  // Session launch time: everything after begin() is a pure function of
  // (seed, target), so the finalize-time duration (now - started_) is
  // split-invariant and safe for the deterministic timeline.
  sim::SimTime started_ = 0;

  ftp::RobotsPolicy robots_;
  bool have_robots_ = false;
  std::deque<std::string> frontier_;
  std::unordered_set<std::string> visited_;
  std::uint64_t listing_bytes_ = 0;
  bool finished_ = false;
  bool in_traversal_ = false;  // between start_traversal() and start_surveys()
  // Pending inter-request gap timer; cancelled on finalize so an aborted
  // session doesn't leave a closure (owning `this`) in the event loop.
  sim::TimerId gap_timer_ = 0;
  bool gap_armed_ = false;
  std::shared_ptr<HostEnumerator> self_;  // released on completion
};

}  // namespace ftpc::core
