// The enumeration data model: what one census session learns about one
// host. Hosts are processed independently; a HostReport (with its full
// file listing) is handed to a RecordSink and then discarded, so census
// memory stays bounded regardless of scale.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "common/ipv4.h"
#include "common/result.h"
#include "ftp/cert.h"
#include "ftp/listing_parser.h"

namespace ftpc::core {

/// Outcome of the RFC 1635 anonymous login attempt.
enum class LoginOutcome {
  kNotAttempted,   // banner stated anonymous access is forbidden
  kAccepted,       // 230 — we are in
  kRejected,       // 530 (directly or after PASS)
  kNeedVirtualHost,  // 331 asked for "anonymous@vhost"
  kFtpsRequired,   // server demands TLS before login
  kError,          // connection died / unparseable replies
};

std::string_view login_outcome_name(LoginOutcome outcome) noexcept;

/// One listed file or directory.
struct FileRecord {
  std::string path;  // absolute, normalized
  bool is_dir = false;
  std::uint64_t size = 0;
  ftp::Readability readable = ftp::Readability::kUnknown;
  bool world_writable = false;
  bool has_permissions = false;
  std::string owner;
};

/// Everything one enumeration session produced.
struct HostReport {
  Ipv4 ip;

  // Contact phase.
  bool connected = false;
  bool ftp_compliant = false;  // sent a parseable 220 banner
  std::string banner;

  // Login phase.
  LoginOutcome login = LoginOutcome::kError;
  bool anonymous() const noexcept { return login == LoginOutcome::kAccepted; }

  // Traversal phase.
  std::vector<FileRecord> files;
  std::uint64_t dirs_listed = 0;
  std::uint64_t listing_lines_skipped = 0;  // robustness signal
  bool robots_present = false;
  bool robots_full_exclusion = false;
  bool truncated_by_request_cap = false;
  bool server_terminated_early = false;  // reset/close mid-traversal
  std::uint32_t requests_used = 0;

  // Survey phase.
  std::string syst_reply;
  std::vector<std::string> feat_lines;
  std::string help_text;
  std::string site_text;

  // FTPS phase.
  bool ftps_supported = false;
  bool ftps_required_before_login = false;
  std::optional<ftp::Certificate> certificate;

  // NAT signal: address the server reported in its 227 replies, when it
  // differs from the address we connected to.
  std::optional<Ipv4> pasv_ip;

  // Terminal error, if the session ended abnormally.
  Status error;
};

/// Receives completed host reports.
///
/// Ordering contract: implementations must tolerate reports in any host
/// order (sessions run concurrently), but every producer serializes its
/// on_host calls — a sink is never invoked from two threads at once, and
/// is not required to be internally synchronized. The sharded census
/// upholds this by giving each shard a private ShardMergeSink slot and
/// replaying the union into the downstream sink from one thread, in
/// canonical order (ascending IP), after every shard has finished. That
/// replay order is what makes `shards=K, threads=T` produce byte-identical
/// downstream output for every K and T.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_host(const HostReport& report) = 0;
};

/// Keeps every report (tests and small studies).
class VectorSink : public RecordSink {
 public:
  void on_host(const HostReport& report) override {
    reports_.push_back(report);
  }
  const std::vector<HostReport>& reports() const noexcept { return reports_; }

 private:
  std::vector<HostReport> reports_;
};

/// The sharded census's deterministic reducer: one buffering slot per
/// shard, merged into a downstream sink in canonical order once all shards
/// are done.
///
/// Concurrency: slots are disjoint, so K worker threads writing their own
/// slots never share mutable state and no locking is needed; merge_into()
/// must be called after the workers have been joined. Memory: the merge is
/// a barrier, so reports buffer here until it runs — the price of an
/// order-stable reduction over unordered shard streams (see DESIGN.md,
/// "Sharded census").
///
/// Canonical order: ascending (IP, per-shard arrival index). Scanned
/// addresses are unique across shards, so the IP alone determines the
/// order; the arrival index keeps the sort stable should a sink ever
/// receive duplicates.
class ShardMergeSink {
 public:
  explicit ShardMergeSink(std::uint32_t shards) : slots_(shards) {}

  /// The private sub-sink for `shard`. Only that shard's worker may use it.
  RecordSink& shard(std::uint32_t shard) { return slots_.at(shard); }

  /// Replays every buffered report into `downstream` in canonical order
  /// and releases the buffers. Call exactly once, after all shards finish.
  void merge_into(RecordSink& downstream) {
    struct Key {
      std::uint32_t ip;
      std::uint32_t shard;
      std::uint32_t index;
    };
    std::vector<Key> keys;
    keys.reserve(total_reports());
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      for (std::uint32_t i = 0; i < slots_[s].reports.size(); ++i) {
        keys.push_back({slots_[s].reports[i].ip.value(), s, i});
      }
    }
    std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
      if (a.ip != b.ip) return a.ip < b.ip;
      if (a.shard != b.shard) return a.shard < b.shard;
      return a.index < b.index;
    });
    for (const Key& key : keys) {
      downstream.on_host(slots_[key.shard].reports[key.index]);
    }
    for (Slot& slot : slots_) {
      slot.reports.clear();
      slot.reports.shrink_to_fit();
    }
  }

  std::uint64_t total_reports() const noexcept {
    return std::accumulate(
        slots_.begin(), slots_.end(), std::uint64_t{0},
        [](std::uint64_t n, const Slot& s) { return n + s.reports.size(); });
  }

 private:
  struct Slot : RecordSink {
    void on_host(const HostReport& report) override {
      reports.push_back(report);
    }
    std::vector<HostReport> reports;
  };
  std::vector<Slot> slots_;
};

}  // namespace ftpc::core
