// The enumeration data model: what one census session learns about one
// host. Hosts are processed independently; a HostReport (with its full
// file listing) is handed to a RecordSink and then discarded, so census
// memory stays bounded regardless of scale.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ipv4.h"
#include "common/result.h"
#include "ftp/cert.h"
#include "ftp/listing_parser.h"

namespace ftpc::core {

/// Outcome of the RFC 1635 anonymous login attempt.
enum class LoginOutcome {
  kNotAttempted,   // banner stated anonymous access is forbidden
  kAccepted,       // 230 — we are in
  kRejected,       // 530 (directly or after PASS)
  kNeedVirtualHost,  // 331 asked for "anonymous@vhost"
  kFtpsRequired,   // server demands TLS before login
  kError,          // connection died / unparseable replies
};

std::string_view login_outcome_name(LoginOutcome outcome) noexcept;

/// One listed file or directory.
struct FileRecord {
  std::string path;  // absolute, normalized
  bool is_dir = false;
  std::uint64_t size = 0;
  ftp::Readability readable = ftp::Readability::kUnknown;
  bool world_writable = false;
  bool has_permissions = false;
  std::string owner;
};

/// Everything one enumeration session produced.
struct HostReport {
  Ipv4 ip;

  // Contact phase.
  bool connected = false;
  bool ftp_compliant = false;  // sent a parseable 220 banner
  std::string banner;

  // Login phase.
  LoginOutcome login = LoginOutcome::kError;
  bool anonymous() const noexcept { return login == LoginOutcome::kAccepted; }

  // Traversal phase.
  std::vector<FileRecord> files;
  std::uint64_t dirs_listed = 0;
  std::uint64_t listing_lines_skipped = 0;  // robustness signal
  bool robots_present = false;
  bool robots_full_exclusion = false;
  bool truncated_by_request_cap = false;
  bool server_terminated_early = false;  // reset/close mid-traversal
  std::uint32_t requests_used = 0;

  // Survey phase.
  std::string syst_reply;
  std::vector<std::string> feat_lines;
  std::string help_text;
  std::string site_text;

  // FTPS phase.
  bool ftps_supported = false;
  bool ftps_required_before_login = false;
  std::optional<ftp::Certificate> certificate;

  // NAT signal: address the server reported in its 227 replies, when it
  // differs from the address we connected to.
  std::optional<Ipv4> pasv_ip;

  // Terminal error, if the session ended abnormally.
  Status error;
};

/// Receives completed host reports. Implementations must tolerate reports
/// in any host order (sessions run concurrently).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void on_host(const HostReport& report) = 0;
};

/// Keeps every report (tests and small studies).
class VectorSink : public RecordSink {
 public:
  void on_host(const HostReport& report) override {
    reports_.push_back(report);
  }
  const std::vector<HostReport>& reports() const noexcept { return reports_; }

 private:
  std::vector<HostReport> reports_;
};

}  // namespace ftpc::core
