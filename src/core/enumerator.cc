#include "core/enumerator.h"

#include "common/strings.h"
#include "core/funnel.h"
#include "ftp/path.h"
#include "obs/prof.h"

namespace ftpc::core {

std::string_view login_outcome_name(LoginOutcome outcome) noexcept {
  switch (outcome) {
    case LoginOutcome::kNotAttempted:
      return "not_attempted";
    case LoginOutcome::kAccepted:
      return "accepted";
    case LoginOutcome::kRejected:
      return "rejected";
    case LoginOutcome::kNeedVirtualHost:
      return "need_virtual_host";
    case LoginOutcome::kFtpsRequired:
      return "ftps_required";
    case LoginOutcome::kError:
      return "error";
  }
  return "?";
}

std::shared_ptr<HostEnumerator> HostEnumerator::start(
    sim::Network& network, Ipv4 target, EnumeratorOptions options,
    DoneHandler done) {
  std::shared_ptr<HostEnumerator> session(
      new HostEnumerator(network, target, std::move(options), std::move(done)));
  session->self_ = session;
  session->begin();
  return session;
}

HostEnumerator::HostEnumerator(sim::Network& network, Ipv4 target,
                               EnumeratorOptions options, DoneHandler done)
    : network_(network), options_(std::move(options)), done_(std::move(done)) {
  report_.ip = target;
}

void HostEnumerator::begin() {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kConnect);
  obs::ScopedProfile prof(network_.prof(), "session.begin");
  started_ = network_.loop().now();
  // Session-relative trace clock starts now: everything downstream of this
  // point is a pure function of (seed, target), so relative stamps are
  // identical in every shard split (see obs/trace.h).
  if (auto* collector = network_.trace()) {
    trace_ = collector->open_session(report_.ip.value(), started_);
  }

  ftp::FtpClient::Options client_options;
  client_options.client_ip = options_.client_ip;
  client_options.command_retries = options_.command_retries;
  client_options.retry_backoff = options_.retry_backoff;
  client_options.retry_backoff_cap = options_.retry_backoff_cap;
  client_options.trace = trace_;
  client_ = ftp::FtpClient::create(network_, client_options);

  // A server that drops the control connection during a request gap would
  // otherwise only be noticed by the next (doomed) command. Abort promptly
  // instead; a close mid-traversal is the paper's "explicit refusal of
  // service" signal. Weak capture: the client outlives us only via us.
  std::weak_ptr<HostEnumerator> weak = weak_from_this();
  client_->set_idle_disconnect([weak](Status status) {
    auto self = weak.lock();
    if (!self || self->finished_) return;
    if (self->in_traversal_) self->report_.server_terminated_early = true;
    self->abort_with(std::move(status));
  });

  auto self = shared_from_this();
  client_->connect(report_.ip, 21,
                   [self](Result<ftp::Reply> result) {
                     self->on_banner(std::move(result));
                   });
}

void HostEnumerator::after_gap(std::function<void()> fn) {
  auto self = shared_from_this();
  gap_armed_ = true;
  gap_timer_ = network_.loop().schedule_after(
      options_.request_gap, [self, fn = std::move(fn)] {
        self->gap_armed_ = false;
        if (!self->finished_) fn();
      });
}

bool HostEnumerator::budget_exhausted() const {
  return client_->commands_sent() >= options_.request_cap;
}

// ---------------------------------------------------------------------------
// Contact + login
// ---------------------------------------------------------------------------

void HostEnumerator::on_banner(Result<ftp::Reply> result) {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kBanner);
  obs::ScopedProfile prof(network_.prof(), "session.banner");
  if (!result.is_ok()) {
    // `connected` reflects TCP establishment, not banner success: a refused
    // or timed-out *connect* never reached the host, while a silent
    // listener (banner timeout), a reset, or a non-FTP speaker all happened
    // on an established connection. Both phases surface kTimeout here, so
    // ask the client which side of the handshake the failure fell on.
    report_.connected = client_->ever_connected();
    report_.ftp_compliant = false;
    finalize(result.status());
    return;
  }
  const ftp::Reply& banner = result.value();
  report_.connected = true;
  if (banner.code != 220) {
    report_.ftp_compliant = false;
    finalize(Status(ErrorCode::kProtocolError,
                    "banner code " + std::to_string(banner.code)));
    return;
  }
  report_.ftp_compliant = true;
  report_.banner = banner.full_text();
  if (trace_ != nullptr) {
    const auto now = network_.loop().now();
    trace_->stage_end("ok", now);
    trace_->stage_begin("login", now);
  }

  // §III.A: parse banners for "no anonymous access" statements and skip
  // the login attempt entirely.
  if (icontains(report_.banner, "no anonymous")) {
    report_.login = LoginOutcome::kNotAttempted;
    after_login();
    return;
  }
  start_login();
}

void HostEnumerator::start_login() {
  auto self = shared_from_this();
  after_gap([self] {
    self->client_->send("USER", "anonymous", [self](Result<ftp::Reply> r) {
      self->on_user_reply(std::move(r));
    });
  });
}

void HostEnumerator::on_user_reply(Result<ftp::Reply> result) {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kLogin);
  obs::ScopedProfile prof(network_.prof(), "session.login_user");
  if (!result.is_ok()) {
    report_.login = LoginOutcome::kError;
    abort_with(result.status());
    return;
  }
  const ftp::Reply& reply = result.value();
  if (reply.code == 230) {
    report_.login = LoginOutcome::kAccepted;
    after_login();
    return;
  }
  if (reply.code == 530) {
    report_.login = LoginOutcome::kRejected;
    after_login();
    return;
  }
  if (reply.code != 331 && reply.code != 332) {
    report_.login = LoginOutcome::kError;
    after_login();
    return;
  }

  // The four meanings of 331 (§II). The text is only a hint; we still send
  // PASS, because some implementations reject in the 331 text yet accept
  // the login anyway.
  const std::string text = reply.full_text();
  if (icontains(text, "secure connection") || icontains(text, "ssl") ||
      icontains(text, "tls")) {
    report_.ftps_required_before_login = true;
  }
  const bool wants_vhost =
      icontains(text, "virtual") && icontains(text, "hostname");

  auto self = shared_from_this();
  after_gap([self, wants_vhost] {
    self->client_->send("PASS", self->options_.password,
                        [self, wants_vhost](Result<ftp::Reply> r) {
                          if (r.is_ok() && !r.value().is_positive_completion() &&
                              wants_vhost) {
                            self->report_.login =
                                LoginOutcome::kNeedVirtualHost;
                            self->after_login();
                            return;
                          }
                          self->on_pass_reply(std::move(r));
                        });
  });
}

void HostEnumerator::on_pass_reply(Result<ftp::Reply> result) {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kLogin);
  obs::ScopedProfile prof(network_.prof(), "session.login_pass");
  if (!result.is_ok()) {
    report_.login = LoginOutcome::kError;
    abort_with(result.status());
    return;
  }
  const int code = result.value().code;
  if (code == 230) {
    report_.login = LoginOutcome::kAccepted;
  } else if (report_.ftps_required_before_login) {
    report_.login = LoginOutcome::kFtpsRequired;
  } else {
    report_.login = LoginOutcome::kRejected;
  }
  after_login();
}

void HostEnumerator::after_login() {
  if (trace_ != nullptr) {
    // The login span's status is the resolved outcome, matching the
    // funnel.login.* taxonomy; non-anonymous sessions skip straight to the
    // finalize stage, exactly like the funnel accounting.
    const auto now = network_.loop().now();
    trace_->stage_end(login_outcome_name(report_.login), now);
    trace_->stage_begin(report_.anonymous() ? "traverse" : "finalize", now);
  }
  if (report_.anonymous()) {
    fetch_robots();
  } else {
    start_surveys();
  }
}

// ---------------------------------------------------------------------------
// robots.txt
// ---------------------------------------------------------------------------

void HostEnumerator::fetch_robots() {
  if (!options_.honor_robots) {
    start_traversal();
    return;
  }
  auto self = shared_from_this();
  after_gap([self] {
    self->client_->download(
        "RETR", "/robots.txt",
        [self](Result<ftp::TransferOutcome> result) {
          if (!result.is_ok()) {
            self->abort_with(result.status());
            return;
          }
          const ftp::TransferOutcome& outcome = result.value();
          if (!outcome.refused && !outcome.data.empty()) {
            self->report_.robots_present = true;
            self->robots_ = ftp::RobotsPolicy::parse(outcome.data);
            self->have_robots_ = true;
            // Honor Crawl-delay by stretching the inter-request gap (the
            // paper's 2 req/s is the floor, not the ceiling).
            if (const auto delay =
                    self->robots_.crawl_delay(self->options_.user_agent)) {
              const auto gap = static_cast<sim::SimTime>(
                  *delay * static_cast<double>(sim::kSecond));
              if (gap > self->options_.request_gap) {
                self->options_.request_gap = gap;
              }
            }
            if (self->robots_.excludes_everything(
                    self->options_.user_agent)) {
              // §IV: 5.9K servers excluded the entire filesystem; we honor
              // that and skip traversal.
              self->report_.robots_full_exclusion = true;
              self->start_surveys();
              return;
            }
          }
          self->start_traversal();
        });
  });
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

void HostEnumerator::start_traversal() {
  in_traversal_ = true;
  frontier_.push_back("/");
  visited_.insert("/");
  traversal_step();
}

void HostEnumerator::traversal_step() {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kEnumerate);
  obs::ScopedProfile prof(network_.prof(), "session.traverse");
  if (finished_) return;
  if (frontier_.empty()) {
    start_surveys();
    return;
  }
  if (budget_exhausted()) {
    report_.truncated_by_request_cap = true;
    start_surveys();
    return;
  }
  std::string dir;
  if (options_.breadth_first) {
    dir = std::move(frontier_.front());
    frontier_.pop_front();
  } else {
    dir = std::move(frontier_.back());
    frontier_.pop_back();
  }
  auto self = shared_from_this();
  after_gap([self, dir = std::move(dir)]() mutable {
    std::string arg = dir;
    self->client_->download(
        "LIST", std::move(arg),
        [self, dir = std::move(dir)](Result<ftp::TransferOutcome> result) {
          self->on_listing(dir, std::move(result));
        });
  });
}

void HostEnumerator::on_listing(std::string dir,
                                Result<ftp::TransferOutcome> result) {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kEnumerate);
  obs::ScopedProfile prof(network_.prof(), "session.listing");
  if (finished_) return;
  if (!result.is_ok()) {
    // §III.A: termination mid-traversal is an explicit refusal of service;
    // cease interaction.
    report_.server_terminated_early = true;
    abort_with(result.status());
    return;
  }
  const ftp::TransferOutcome& outcome = result.value();
  ++report_.dirs_listed;
  if (!outcome.refused) {
    listing_bytes_ += outcome.data.size();
    std::size_t skipped = 0;
    const auto entries = ftp::parse_listing(outcome.data, &skipped);
    report_.listing_lines_skipped += skipped;
    const std::size_t depth = ftp::path_depth(dir);
    for (const ftp::ListingEntry& entry : entries) {
      if (report_.files.size() >= options_.max_files) break;
      FileRecord record;
      record.path = ftp::join_path(dir, entry.name);
      record.is_dir = entry.is_dir;
      record.size = entry.size;
      record.readable = entry.readable;
      record.world_writable = entry.world_writable;
      record.has_permissions = entry.has_permissions;
      record.owner = entry.owner;

      if (entry.is_dir && depth + 1 < options_.max_depth &&
          listing_bytes_ < options_.max_listing_bytes) {
        const std::string& path = record.path;
        const bool allowed =
            !options_.honor_robots || !have_robots_ ||
            robots_.is_allowed(options_.user_agent, path + "/");
        if (allowed && visited_.insert(path).second) {
          frontier_.push_back(path);
        }
      }
      report_.files.push_back(std::move(record));
    }
  }
  traversal_step();
}

// ---------------------------------------------------------------------------
// Surveys (SYST / FEAT / HELP / SITE)
// ---------------------------------------------------------------------------

void HostEnumerator::start_surveys() {
  in_traversal_ = false;
  if (trace_ != nullptr && trace_->open_stage() == "traverse") {
    const auto now = network_.loop().now();
    trace_->stage_end(report_.truncated_by_request_cap ? "truncated"
                      : report_.robots_full_exclusion  ? "robots_excluded"
                                                       : "ok",
                      now);
    trace_->stage_begin("finalize", now);
  }
  report_.requests_used =
      static_cast<std::uint32_t>(client_->commands_sent());
  if (!options_.collect_surveys || !report_.anonymous()) {
    // FEAT usually answers pre-login; everything else needs auth.
    survey_step(1);
    return;
  }
  survey_step(0);
}

void HostEnumerator::survey_step(int stage) {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kFinalize);
  obs::ScopedProfile prof(network_.prof(), "session.survey");
  if (finished_) return;
  auto self = shared_from_this();
  auto advance = [self](int next) { self->survey_step(next); };
  switch (stage) {
    case 0:
      after_gap([self, advance] {
        self->client_->send("SYST", "", [self, advance](Result<ftp::Reply> r) {
          if (r.is_ok()) self->report_.syst_reply = r.value().full_text();
          advance(1);
        });
      });
      return;
    case 1:
      if (!options_.collect_surveys) {
        advance(4);
        return;
      }
      after_gap([self, advance] {
        self->client_->send("FEAT", "", [self, advance](Result<ftp::Reply> r) {
          if (r.is_ok() && r.value().is_positive_completion()) {
            self->report_.feat_lines = r.value().lines;
          }
          advance(self->report_.anonymous() ? 2 : 4);
        });
      });
      return;
    case 2:
      after_gap([self, advance] {
        self->client_->send("HELP", "", [self, advance](Result<ftp::Reply> r) {
          if (r.is_ok()) self->report_.help_text = r.value().full_text();
          advance(3);
        });
      });
      return;
    case 3:
      after_gap([self, advance] {
        self->client_->send("SITE", "HELP",
                            [self, advance](Result<ftp::Reply> r) {
                              if (r.is_ok()) {
                                self->report_.site_text =
                                    r.value().full_text();
                              }
                              advance(4);
                            });
      });
      return;
    default:
      start_tls_probe();
      return;
  }
}

// ---------------------------------------------------------------------------
// FTPS probe + teardown
// ---------------------------------------------------------------------------

void HostEnumerator::start_tls_probe() {
  if (finished_) return;
  // Record the NAT signal gathered during traversal.
  if (const auto hp = client_->last_pasv_hostport()) {
    if (Ipv4(hp->ip) != report_.ip) report_.pasv_ip = Ipv4(hp->ip);
  }
  if (!options_.try_tls) {
    finish_session();
    return;
  }
  auto self = shared_from_this();
  after_gap([self] {
    self->client_->auth_tls([self](Result<ftp::Certificate> result) {
      if (result.is_ok()) {
        self->report_.ftps_supported = true;
        self->report_.certificate = std::move(result).take();
      } else if (result.code() != ErrorCode::kUnavailable) {
        // Connection died during the handshake; keep what we have.
        self->finalize(result.status());
        return;
      }
      self->finish_session();
    });
  });
}

void HostEnumerator::finish_session() {
  if (finished_) return;
  auto self = shared_from_this();
  client_->quit([self] { self->finalize(Status::ok()); });
}

void HostEnumerator::abort_with(Status error) {
  if (finished_) return;
  client_->abort_session();
  finalize(std::move(error));
}

void HostEnumerator::finalize(Status error) {
  obs::ScopedStageTimer perf(network_.perf(), obs::PerfStage::kFinalize);
  obs::ScopedProfile prof(network_.prof(), "session.finalize");
  if (finished_) return;
  finished_ = true;
  if (gap_armed_) {
    // Drop the pending gap closure; it holds a shared_ptr to us and would
    // otherwise pin the session (and its report buffers) in the event loop
    // for up to a full request gap after completion.
    network_.loop().cancel(gap_timer_);
    gap_armed_ = false;
  }
  report_.error = std::move(error);
  report_.requests_used =
      static_cast<std::uint32_t>(client_->commands_sent());
  if (trace_ != nullptr && trace_->stage_open()) {
    // Terminal span status = the funnel outcome, so a trace and the
    // metrics funnel always tell the same story about where a host fell
    // out and why.
    const FunnelOutcome outcome = classify_funnel(report_);
    trace_->stage_end(outcome.completed ? "completed" : outcome.reason,
                      network_.loop().now());
  }
  client_->abort_session();
  if (auto* timeline = network_.timeline()) {
    // Everything here is pure in (seed, target): the session duration,
    // command/retry counts, and funnel flags are identical no matter which
    // shard ran the host, so the timeline exporter can replay completions
    // deterministically (see obs/timeline.h).
    obs::TimelineSessionFacts facts;
    facts.duration_us = network_.loop().now() - started_;
    facts.connected = report_.connected;
    facts.ftp_compliant = report_.ftp_compliant;
    facts.anonymous = report_.anonymous();
    facts.errored = !report_.error.is_ok();
    facts.requests = report_.requests_used;
    facts.retries = client_->retries_total();
    timeline->record_session(report_.ip.value(), facts);
  }
  if (auto* metrics = network_.metrics()) {
    metrics->add("enum.sessions");
    metrics->add("enum.dirs_listed", report_.dirs_listed);
    metrics->add("enum.files_recorded", report_.files.size());
    metrics->add("enum.listing_lines_skipped", report_.listing_lines_skipped);
    static const std::vector<std::uint64_t> kRequestBounds{
        0, 2, 4, 8, 16, 32, 64, 128, 256, 500};
    metrics->histogram("enum.requests_per_host", kRequestBounds)
        .record(report_.requests_used);
    static const std::vector<std::uint64_t> kFileBounds{
        0, 1, 4, 16, 64, 256, 1'024, 4'096, 16'384, 65'536, 200'000};
    metrics->histogram("enum.files_per_host", kFileBounds)
        .record(report_.files.size());
  }
  DoneHandler done = std::move(done_);
  HostReport report = std::move(report_);
  auto keep_alive = std::move(self_);  // drop self-ownership after `done`
  done(std::move(report));
}

}  // namespace ftpc::core
