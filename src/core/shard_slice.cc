#include "core/shard_slice.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/log.h"
#include "core/dataset.h"
#include "core/shard_artifact.h"
#include "net/internet.h"
#include "obs/health.h"
#include "obs/prof.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "scan/scanner.h"
#include "sim/chaos.h"
#include "sim/network.h"

namespace ftpc::core {

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string content;
  char buffer[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), file);
    content.append(buffer, got);
    if (got < sizeof(buffer)) break;
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return content;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  return (std::fclose(file) == 0) && ok;
}

/// fclose-on-scope-exit wrapper for the append-mode artifact files.
struct File {
  std::FILE* f = nullptr;
  ~File() { close(); }
  bool close() {
    if (f == nullptr) return true;
    const bool ok = std::fclose(f) == 0;
    f = nullptr;
    return ok;
  }
};

/// RecordSink appending completed reports as FTPD frames, tracking the
/// committed byte/record counts the checkpoint persists.
struct FrameAppendSink : RecordSink {
  std::FILE* file = nullptr;
  std::uint64_t* bytes = nullptr;
  std::uint64_t* count = nullptr;
  bool failed = false;

  void on_host(const HostReport& report) override {
    if (failed) return;
    const std::string frame = encode_host_frame(report);
    if (std::fwrite(frame.data(), 1, frame.size(), file) != frame.size()) {
      failed = true;
      return;
    }
    *bytes += frame.size();
    *count += 1;
  }
};

std::string journal_header_line(std::uint64_t config_hash, std::uint32_t shard,
                                std::uint32_t total_shards, std::uint64_t seed,
                                std::uint64_t checkpoint_interval) {
  std::string out = "{\"schema\":\"ftpc.shardjournal.v1\"";
  out += ",\"config_hash\":" + std::to_string(config_hash);
  out += ",\"shard\":" + std::to_string(shard);
  out += ",\"total_shards\":" + std::to_string(total_shards);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"checkpoint_interval\":" + std::to_string(checkpoint_interval);
  out += "}\n";
  return out;
}

std::string commit_line(std::uint64_t boundary, std::uint64_t records_count,
                        std::uint64_t records_bytes) {
  std::string out = "{\"k\":\"commit\",\"boundary\":" + std::to_string(boundary);
  out += ",\"records_count\":" + std::to_string(records_count);
  out += ",\"records_bytes\":" + std::to_string(records_bytes);
  out += "}\n";
  return out;
}

std::optional<std::uint64_t> file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

ShardSliceResult run_shard_slice(const ShardSliceConfig& slice,
                                 const PopulationFactory& population_factory,
                                 std::size_t host_cache_capacity) {
  ShardSliceResult result;
  const CensusConfig& census = slice.census;
  if (slice.total_shards == 0 || slice.shard >= slice.total_shards) {
    result.error = "shard index out of range";
    return result;
  }
  if (slice.out_dir.empty()) {
    result.error = "no artifact directory given";
    return result;
  }
  ::mkdir(slice.out_dir.c_str(), 0777);

  const std::uint64_t config_hash = census_config_fingerprint(census);
  const std::string manifest_path = slice.out_dir + "/" + kShardManifestFile;
  const std::string records_path = slice.out_dir + "/" + kShardRecordsFile;
  const std::string journal_path = slice.out_dir + "/" + kShardJournalFile;
  const std::string checkpoint_path =
      slice.checkpoint_path.empty() ? slice.out_dir + "/" + kShardCheckpointFile
                                    : slice.checkpoint_path;
  const std::uint64_t interval = slice.checkpoint_interval;

  // A manifest is only ever written after a complete run, so resuming a
  // finished shard is an idempotent success.
  if (slice.resume) {
    if (const auto text = read_file(manifest_path)) {
      std::string parse_error;
      const auto manifest = ShardManifest::parse(*text, &parse_error);
      if (!manifest) {
        result.error = manifest_path + ": " + parse_error;
        return result;
      }
      if (manifest->config_hash != config_hash ||
          manifest->shard != slice.shard ||
          manifest->total_shards != slice.total_shards) {
        result.error = manifest_path +
                       ": existing manifest does not match this configuration";
        return result;
      }
      result.ok = true;
      result.records = manifest->records;
      result.stats.scan = manifest->scan;
      result.stats.hosts_enumerated = manifest->hosts_enumerated;
      result.stats.ftp_compliant = manifest->ftp_compliant;
      result.stats.anonymous = manifest->anonymous;
      result.stats.sessions_errored = manifest->sessions_errored;
      return result;
    }
  }

  // --- Cumulative slice state (fresh, or rebuilt from checkpoint+journal) --
  scan::ScanCursor cursor;
  std::vector<obs::TimelineScanSample> scan_samples;  // spliced, one series
  std::vector<obs::TimelineHost> fact_hosts;
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  std::uint64_t hosts_enumerated = 0;
  std::uint64_t ftp_compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t sessions_errored = 0;
  std::uint64_t records_count = 0;
  std::uint64_t records_bytes = 0;
  std::uint64_t next_ckpt_boundary = interval;
  bool resumed = false;

  if (slice.resume) {
    if (const auto ckpt_text = read_file(checkpoint_path)) {
      std::string parse_error;
      const auto ckpt = ShardCheckpoint::parse(*ckpt_text, &parse_error);
      if (!ckpt) {
        result.error = checkpoint_path + ": " + parse_error;
        return result;
      }
      if (ckpt->config_hash != config_hash) {
        result.error = checkpoint_path + ": config hash " +
                       std::to_string(ckpt->config_hash) +
                       " does not match the current configuration (" +
                       std::to_string(config_hash) + ")";
        return result;
      }
      if (ckpt->shard != slice.shard ||
          ckpt->total_shards != slice.total_shards) {
        result.error = checkpoint_path + ": checkpoint is for shard " +
                       std::to_string(ckpt->shard) + "/" +
                       std::to_string(ckpt->total_shards) + ", not " +
                       std::to_string(slice.shard) + "/" +
                       std::to_string(slice.total_shards);
        return result;
      }

      const auto journal_text = read_file(journal_path);
      if (!journal_text) {
        result.error = journal_path + ": missing journal";
        return result;
      }
      // Walk the journal: header, then fact/commit lines, stopping at the
      // commit matching the checkpoint boundary. Anything beyond that
      // commit — a torn segment from the kill — is truncated away.
      std::size_t offset = 0;
      std::size_t line_number = 0;
      const std::string_view text(*journal_text);
      const auto next_line = [&](std::string_view& line) {
        if (offset >= text.size()) return false;
        std::size_t eol = text.find('\n', offset);
        if (eol == std::string_view::npos) eol = text.size();
        line = text.substr(offset, eol - offset);
        offset = std::min(eol + 1, text.size());
        ++line_number;
        return true;
      };
      // Moves `result` out: every call site immediately returns the value,
      // so the moved-from state is never read again.
      const auto line_error = [&](const std::string& what) {
        result.error =
            journal_path + ":" + std::to_string(line_number) + ": " + what;
        return std::move(result);
      };
      std::string_view line;
      if (!next_line(line)) return line_error("empty journal");
      auto header = json::Value::parse(line, &parse_error);
      if (!header) return line_error(parse_error);
      const auto schema = header->str("schema");
      if (!schema || *schema != "ftpc.shardjournal.v1") {
        return line_error("missing ftpc.shardjournal.v1 header");
      }
      if (header->u64("config_hash") != std::optional(config_hash) ||
          header->u64("shard") != std::optional<std::uint64_t>(slice.shard) ||
          header->u64("total_shards") !=
              std::optional<std::uint64_t>(slice.total_shards) ||
          header->u64("seed") != std::optional(census.seed)) {
        return line_error("journal header does not match this configuration");
      }
      if (header->u64("checkpoint_interval") != std::optional(interval)) {
        return line_error(
            "journal checkpoint interval does not match --checkpoint-interval");
      }

      bool found_commit = false;
      std::size_t commit_end = 0;
      while (next_line(line)) {
        auto value = json::Value::parse(line, &parse_error);
        if (!value) return line_error(parse_error);
        const auto kind = value->str("k");
        if (!kind) return line_error("journal line has no kind");
        if (*kind == "scan") {
          const auto series = parse_timeline_scan_series(*value);
          if (!series) return line_error("malformed scan series");
          scan_samples.insert(scan_samples.end(), series->begin(),
                              series->end());
        } else if (*kind == "host") {
          const auto host = parse_timeline_host(*value);
          if (!host) return line_error("malformed host fact");
          fact_hosts.push_back(*host);
        } else if (*kind == "trace") {
          const auto event = parse_trace_event(*value);
          if (!event) return line_error("malformed trace event");
          trace.append(*event);
        } else if (*kind == "metrics") {
          const json::Value* doc = value->find("doc");
          std::string merge_error;
          if (doc == nullptr ||
              !merge_metrics_document(*doc, metrics, &merge_error)) {
            return line_error(merge_error.empty() ? "malformed metrics delta"
                                                  : merge_error);
          }
        } else if (*kind == "commit") {
          const auto boundary = value->u64("boundary");
          const auto count = value->u64("records_count");
          const auto bytes = value->u64("records_bytes");
          if (!boundary || !count || !bytes) {
            return line_error("malformed commit");
          }
          if (*boundary == ckpt->boundary_element) {
            if (*count != ckpt->records_count ||
                *bytes != ckpt->records_bytes) {
              return line_error(
                  "commit record counts disagree with the checkpoint");
            }
            found_commit = true;
            commit_end = offset;
            break;
          }
        } else {
          return line_error("unknown journal line kind");
        }
      }
      if (!found_commit) {
        result.error = journal_path + ": no commit for checkpoint boundary " +
                       std::to_string(ckpt->boundary_element);
        return result;
      }

      const auto records_size = file_size(records_path);
      if (!records_size || *records_size < ckpt->records_bytes) {
        result.error =
            records_path + ": shorter than the checkpointed record bytes";
        return result;
      }
      if (::truncate(journal_path.c_str(),
                     static_cast<off_t>(commit_end)) != 0 ||
          ::truncate(records_path.c_str(),
                     static_cast<off_t>(ckpt->records_bytes)) != 0) {
        result.error = slice.out_dir + ": cannot truncate torn tail";
        return result;
      }

      cursor.elements_consumed = ckpt->elements_consumed;
      cursor.next_boundary = ckpt->next_boundary;
      cursor.stats = ckpt->scan;
      hosts_enumerated = ckpt->hosts_enumerated;
      ftp_compliant = ckpt->ftp_compliant;
      anonymous = ckpt->anonymous;
      sessions_errored = ckpt->sessions_errored;
      records_count = ckpt->records_count;
      records_bytes = ckpt->records_bytes;
      next_ckpt_boundary = ckpt->boundary_element + interval;
      resumed = true;
      log_info() << "shard " << slice.shard << "/" << slice.total_shards
                 << ": resuming from boundary " << ckpt->boundary_element
                 << " (" << records_count << " records committed)";
    }
    // No checkpoint at all: degrade to a fresh run.
  }

  // --- Artifact files -------------------------------------------------------
  File records_file;
  File journal_file;
  if (resumed) {
    records_file.f = std::fopen(records_path.c_str(), "ab");
    journal_file.f = std::fopen(journal_path.c_str(), "ab");
  } else {
    records_file.f = std::fopen(records_path.c_str(), "wb");
    journal_file.f = std::fopen(journal_path.c_str(), "wb");
    if (records_file.f != nullptr && journal_file.f != nullptr) {
      const std::string header = dataset_file_header();
      if (std::fwrite(header.data(), 1, header.size(), records_file.f) !=
          header.size()) {
        result.error = records_path + ": write failed";
        return result;
      }
      records_bytes = header.size();
      const std::string journal_header = journal_header_line(
          config_hash, slice.shard, slice.total_shards, census.seed, interval);
      if (std::fwrite(journal_header.data(), 1, journal_header.size(),
                      journal_file.f) != journal_header.size()) {
        result.error = journal_path + ": write failed";
        return result;
      }
    }
  }
  if (records_file.f == nullptr || journal_file.f == nullptr) {
    result.error = slice.out_dir + ": cannot open artifact files";
    return result;
  }
  // A stale manifest must never coexist with an in-progress run: remove it
  // so a crash mid-run cannot be mistaken for completion.
  std::remove(manifest_path.c_str());

  // --- The private simulation stack (same shape as ShardedCensus) ----------
  sim::EventLoop loop;
  sim::Network network(loop);
  std::unique_ptr<net::PopulationModel> population = population_factory();
  if (!population) {
    result.error = "population factory returned no model";
    return result;
  }
  net::Internet internet(network, *population, host_cache_capacity);
  struct Detach {
    sim::Network& network;
    ~Detach() {
      network.set_metrics(nullptr);
      network.set_trace(nullptr);
      network.set_chaos(nullptr);
      network.set_timeline(nullptr);
      network.set_health(nullptr);
      network.set_prof(nullptr);
    }
  } detach{network};
  // One profile collector for the whole slice (segments are a checkpoint
  // detail, not a profiling boundary). Wall-clock data — the deterministic
  // channels cannot observe it (tests/prof_test.cc pins this).
  obs::ProfCollector prof_collector;
  obs::ProfCollector* prof = census.prof_enabled ? &prof_collector : nullptr;
  if (prof != nullptr) network.set_prof(prof);
  // One chaos engine for the whole slice: fault plans are pure per IP and
  // per-connection chaos progress never spans a segment (sessions complete
  // inside the segment that launched them).
  sim::ChaosEngine chaos_engine(
      census.chaos,
      census.chaos_seed != 0 ? census.chaos_seed : census.seed);
  if (census.chaos_enabled) network.set_chaos(&chaos_engine);

  // Health plane: liveness gauges + background heartbeat thread. The
  // monitor writes heartbeat.json / health.jsonl into the artifact dir on
  // a wall-clock cadence; the census side only ever stores into the
  // relaxed atomics, so the deterministic channels cannot observe it.
  obs::HealthState health_state;
  std::optional<obs::HealthMonitor> health_monitor;
  if (slice.heartbeat_interval_ms > 0) {
    obs::HealthOptions health_options;
    health_options.enabled = true;
    health_options.interval_ms = slice.heartbeat_interval_ms;
    health_options.dir = slice.out_dir;
    health_options.shard = slice.shard;
    health_options.total_shards = slice.total_shards;
    health_options.seed = census.seed;
    health_options.config_hash = config_hash;
    health_options.append = resumed;  // keep history across resume
    if (resumed && interval > 0 && next_ckpt_boundary >= interval) {
      health_state.checkpoint_element.store(next_ckpt_boundary - interval,
                                            std::memory_order_relaxed);
    }
    health_monitor.emplace(health_options, health_state);
    if (!health_monitor->ok()) {
      log_warn() << slice.out_dir
                 << ": cannot open health artifacts; heartbeats disabled";
      health_monitor.reset();
    } else {
      network.set_health(&health_state);
    }
  }

  scan::ScanConfig scan_config;
  scan_config.port = 21;
  scan_config.seed = census.seed;
  scan_config.scale_shift = census.scale_shift;
  scan_config.shard = slice.shard;
  scan_config.total_shards = slice.total_shards;
  scan_config.probe_retries = census.probe_retries;
  scan::Scanner scanner(network, scan_config);

  FrameAppendSink sink;
  sink.file = records_file.f;
  sink.bytes = &records_bytes;
  sink.count = &records_count;

  // --- Segment loop ---------------------------------------------------------
  while (!cursor.finished) {
    std::uint64_t grant = scan::CyclicPermutation::kUnlimited;
    if (interval > 0) {
      // This shard's share of the global elements below the next boundary.
      const std::uint64_t target =
          scan::CyclicPermutation::shard_prefix_elements(
              next_ckpt_boundary, slice.shard, slice.total_shards);
      grant = target > cursor.elements_consumed
                  ? target - cursor.elements_consumed
                  : 0;
    }

    // Fresh per-segment collectors: their contents are exactly this
    // segment's delta, which is what the journal persists.
    CensusStats segment;
    obs::MetricsRegistry* segment_metrics =
        census.collect_metrics ? &segment.metrics : nullptr;
    network.set_metrics(segment_metrics);
    obs::TraceCollector trace_collector(census.trace, census.seed);
    if (census.trace.enabled) network.set_trace(&trace_collector);
    obs::TimelineCollector timeline_collector(census.timeline,
                                              census.concurrency);
    if (census.timeline.enabled) network.set_timeline(&timeline_collector);

    std::vector<std::uint32_t> hits;
    {
      obs::ScopedProfile prof_scope(prof, "scan.sweep");
      scanner.run_segment(cursor, grant,
                          [&hits](Ipv4 ip) { hits.push_back(ip.value()); });
    }
    if (census.max_hosts != 0) {
      const std::uint64_t left = census.max_hosts > hosts_enumerated
                                     ? census.max_hosts - hosts_enumerated
                                     : 0;
      if (hits.size() > left) hits.resize(left);
    }
    drive_enumeration_window(network, census, hits, segment, segment_metrics,
                             sink, nullptr);
    if (sink.failed) {
      result.error = records_path + ": write failed";
      return result;
    }
    network.set_metrics(nullptr);
    network.set_trace(nullptr);
    network.set_timeline(nullptr);

    // Fold the segment delta into the cumulative slice state.
    hosts_enumerated += segment.hosts_enumerated;
    ftp_compliant += segment.ftp_compliant;
    anonymous += segment.anonymous;
    sessions_errored += segment.sessions_errored;
    obs::Timeline segment_timeline = timeline_collector.take();
    trace_collector.buffer().canonicalize();
    for (const obs::TraceEvent& event : trace_collector.buffer().events()) {
      trace.append(event);
    }
    metrics.merge_from(segment.metrics);

    // Journal the segment, then commit.
    std::string chunk;
    if (census.timeline.enabled) {
      std::vector<obs::TimelineScanSample> segment_samples;
      for (const auto& series : segment_timeline.scan_series()) {
        segment_samples.insert(segment_samples.end(), series.begin(),
                               series.end());
      }
      chunk += timeline_scan_series_line(segment_samples);
      for (const obs::TimelineHost& host : segment_timeline.hosts()) {
        chunk += timeline_host_line(host);
      }
      scan_samples.insert(scan_samples.end(), segment_samples.begin(),
                          segment_samples.end());
      fact_hosts.insert(fact_hosts.end(), segment_timeline.hosts().begin(),
                        segment_timeline.hosts().end());
    }
    if (census.trace.enabled) {
      for (const obs::TraceEvent& event : trace_collector.buffer().events()) {
        chunk += trace_event_line(event);
      }
    }
    if (census.collect_metrics) {
      std::string doc = segment.metrics.to_json();
      while (!doc.empty() && doc.back() == '\n') doc.pop_back();
      chunk += "{\"k\":\"metrics\",\"doc\":" + doc + "}\n";
    }
    const std::uint64_t committed_boundary =
        cursor.finished ? (std::uint64_t{1} << 32) >> census.scale_shift
                        : next_ckpt_boundary;
    chunk += commit_line(committed_boundary, records_count, records_bytes);
    if (std::fwrite(chunk.data(), 1, chunk.size(), journal_file.f) !=
        chunk.size()) {
      result.error = journal_path + ": write failed";
      return result;
    }
    // Commit order: data planes reach the disk before the checkpoint that
    // references them.
    std::fflush(records_file.f);
    std::fflush(journal_file.f);

    if (!cursor.finished && interval > 0) {
      ShardCheckpoint ckpt;
      ckpt.config_hash = config_hash;
      ckpt.shard = slice.shard;
      ckpt.total_shards = slice.total_shards;
      ckpt.boundary_element = next_ckpt_boundary;
      ckpt.elements_consumed = cursor.elements_consumed;
      ckpt.next_boundary = cursor.next_boundary;
      ckpt.scan = cursor.stats;
      ckpt.hosts_enumerated = hosts_enumerated;
      ckpt.ftp_compliant = ftp_compliant;
      ckpt.anonymous = anonymous;
      ckpt.sessions_errored = sessions_errored;
      ckpt.records_count = records_count;
      ckpt.records_bytes = records_bytes;
      const std::string tmp_path = checkpoint_path + ".tmp";
      if (!write_file(tmp_path, ckpt.to_json()) ||
          std::rename(tmp_path.c_str(), checkpoint_path.c_str()) != 0) {
        result.error = checkpoint_path + ": write failed";
        return result;
      }
      ++result.checkpoints_written;
      health_state.checkpoint_element.store(next_ckpt_boundary,
                                            std::memory_order_relaxed);
      next_ckpt_boundary += interval;
      if (slice.crash_after_checkpoints > 0 &&
          result.checkpoints_written >= slice.crash_after_checkpoints) {
        // Simulated kill: stop with everything up to this checkpoint
        // committed and nothing finalized. The directory is resumable.
        result.crashed = true;
        result.records = records_count;
        result.stats.scan = cursor.stats;
        result.stats.hosts_enumerated = hosts_enumerated;
        result.stats.ftp_compliant = ftp_compliant;
        result.stats.anonymous = anonymous;
        result.stats.sessions_errored = sessions_errored;
        return result;
      }
    }
  }

  // --- Finalize: totals sample + scan metrics + virtual-time advance -------
  // Recomputed from the cumulative cursor under fresh collectors, never
  // journaled — the one piece that must not be summed per segment.
  health_state.set_stage(obs::PerfStage::kFinalize);
  obs::MetricsRegistry finish_metrics;
  obs::TimelineCollector finish_timeline(census.timeline, census.concurrency);
  network.set_metrics(census.collect_metrics ? &finish_metrics : nullptr);
  if (census.timeline.enabled) network.set_timeline(&finish_timeline);
  scanner.finish(cursor);
  network.set_metrics(nullptr);
  network.set_timeline(nullptr);
  metrics.merge_from(finish_metrics);
  const obs::Timeline finish_facts = finish_timeline.take();
  for (const auto& series : finish_facts.scan_series()) {
    scan_samples.insert(scan_samples.end(), series.begin(), series.end());
  }

  if (!records_file.close() || !journal_file.close()) {
    result.error = slice.out_dir + ": closing artifact files failed";
    return result;
  }

  // --- Exports --------------------------------------------------------------
  const std::uint64_t pps = scan_config.probes_per_second;
  if (census.collect_metrics) {
    const std::string path = slice.out_dir + "/" + kShardMetricsFile;
    if (!write_file(path, metrics.to_json())) {
      result.error = path + ": write failed";
      return result;
    }
  }
  if (census.trace.enabled) {
    const std::string path = slice.out_dir + "/" + kShardTraceFile;
    if (!write_file(path, trace.to_jsonl())) {
      result.error = path + ": write failed";
      return result;
    }
  }
  if (census.timeline.enabled) {
    std::string facts = "{\"schema\":\"ftpc.shardtl.v1\",\"interval_us\":" +
                        std::to_string(census.timeline.interval_us);
    facts += ",\"pps\":" + std::to_string(pps);
    facts += ",\"concurrency\":" + std::to_string(census.concurrency);
    facts += "}\n";
    facts += timeline_scan_series_line(scan_samples);
    for (const obs::TimelineHost& host : fact_hosts) {
      facts += timeline_host_line(host);
    }
    const std::string facts_path =
        slice.out_dir + "/" + kShardTimelineFactsFile;
    if (!write_file(facts_path, facts)) {
      result.error = facts_path + ": write failed";
      return result;
    }
    obs::Timeline projected(census.timeline, census.concurrency);
    projected.set_pps(pps);
    projected.add_scan_series(scan_samples);
    for (const obs::TimelineHost& host : fact_hosts) {
      projected.add_host(host);
    }
    const std::string timeline_path = slice.out_dir + "/" + kShardTimelineFile;
    if (!write_file(timeline_path, projected.to_jsonl())) {
      result.error = timeline_path + ": write failed";
      return result;
    }
  }

  // Manifest last: the completion marker.
  ShardManifest manifest;
  manifest.shard = slice.shard;
  manifest.total_shards = slice.total_shards;
  manifest.seed = census.seed;
  manifest.scale_shift = census.scale_shift;
  manifest.config_hash = config_hash;
  manifest.records = records_count;
  manifest.scan = cursor.stats;
  manifest.hosts_enumerated = hosts_enumerated;
  manifest.ftp_compliant = ftp_compliant;
  manifest.anonymous = anonymous;
  manifest.sessions_errored = sessions_errored;
  manifest.has_metrics = census.collect_metrics;
  manifest.has_trace = census.trace.enabled;
  manifest.has_timeline = census.timeline.enabled;
  manifest.timeline_interval_us = census.timeline.interval_us;
  manifest.pps = pps;
  manifest.concurrency = census.concurrency;
  if (!write_file(manifest_path, manifest.to_json())) {
    result.error = manifest_path + ": write failed";
    return result;
  }
  // Profile export (wall-clock side channel, written after the manifest —
  // it is not part of the deterministic artifact set the manifest marks
  // complete). Subsystem telemetry folds in at collection time.
  if (prof != nullptr) {
    network.set_prof(nullptr);
    const sim::EventLoop::Telemetry wheel = loop.telemetry();
    prof_collector.counter_add("wheel.arena_nodes", wheel.arena_nodes);
    prof_collector.counter_add("wheel.arena_bytes", wheel.arena_bytes);
    prof_collector.counter_add("wheel.freelist_hits", wheel.freelist_hits);
    prof_collector.counter_add("wheel.cascades", wheel.cascades);
    prof_collector.counter_add("loop.events", wheel.events);
    if (census.trace.enabled) {
      prof_collector.counter_add("trace.interner_bytes",
                                 trace.strings().chunk_bytes());
    }
    result.stats.prof.add_collector(prof_collector);
    if (!slice.prof_out.empty() &&
        !write_file(slice.prof_out, result.stats.prof.to_json())) {
      result.error = slice.prof_out + ": write failed";
      return result;
    }
  }
  // Final heartbeat, tagged done=true — a watcher can tell a finished
  // shard from a dead one even before it reads the manifest.
  if (health_monitor) health_monitor->stop(true);

  result.ok = true;
  result.records = records_count;
  result.stats.scan = cursor.stats;
  result.stats.hosts_enumerated = hosts_enumerated;
  result.stats.ftp_compliant = ftp_compliant;
  result.stats.anonymous = anonymous;
  result.stats.sessions_errored = sessions_errored;
  result.stats.virtual_duration = loop.now();
  log_info() << "shard " << slice.shard << "/" << slice.total_shards << ": "
             << records_count << " records, "
             << result.checkpoints_written << " checkpoint(s)"
             << (resumed ? " (resumed)" : "");
  return result;
}

}  // namespace ftpc::core
