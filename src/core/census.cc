#include "core/census.h"

#include <chrono>

#include "common/log.h"
#include "common/rng.h"
#include "core/funnel.h"

namespace ftpc::core {

Census::Census(sim::Network& network, CensusConfig config)
    : network_(network), config_(config) {}

CensusStats Census::run(RecordSink& sink) { return run_shard(sink, 0, 1); }

void drive_enumeration_window(sim::Network& network,
                              const CensusConfig& config,
                              const std::vector<std::uint32_t>& hits,
                              CensusStats& stats,
                              obs::MetricsRegistry* metrics, RecordSink& sink,
                              obs::PerfCollector* perf) {
  // A fixed-width window of sessions drains the hit list; each completion
  // starts the next host.
  std::size_t next = 0;
  std::uint64_t in_flight = 0;
  obs::ProgressCounters* progress = config.progress;
  // Health gauges come off the network attachment (set by Census::run_shard
  // or run_shard_slice) so both drivers share one wiring point.
  obs::HealthState* health = network.health();
  if (health != nullptr) health->set_stage(obs::PerfStage::kEnumerate);
  // Profiling plane rides the same attachment: one scope for the whole
  // window drive. Like perf, prof is wall-clock data and exempt from the
  // byte-identity contract (obs/prof.h).
  obs::ScopedProfile prof_scope(network.prof(), "enumerate.window");

  // Self-referencing launcher; lives on this frame — safe because the
  // function drives the loop to completion before returning.
  std::function<void()> launch = [&] {
    while (in_flight < config.concurrency && next < hits.size()) {
      const Ipv4 target(hits[next++]);
      ++in_flight;
      if (health != nullptr) {
        health->hosts_attempted.fetch_add(1, std::memory_order_relaxed);
      }
      EnumeratorOptions options = config.enumerator;
      // Client address is a pure function of the target, not of launch
      // order: sequential and sharded runs must contact each host from the
      // same client for their reports to be identical.
      options.client_ip = Ipv4(config.client_net.value() + 1 +
                               static_cast<std::uint32_t>(
                                   mix64(target.value()) % 200));
      HostEnumerator::start(
          network, target, options, [&](HostReport report) {
            --in_flight;
            ++stats.hosts_enumerated;
            if (report.ftp_compliant) ++stats.ftp_compliant;
            if (report.anonymous()) ++stats.anonymous;
            if (!report.error.is_ok()) ++stats.sessions_errored;
            if (metrics != nullptr) {
              metrics->add("census.hosts_enumerated");
              metrics->add("census.requests_used", report.requests_used);
              record_host_funnel(report, *metrics);
            }
            if (health != nullptr) {
              health->hosts_enumerated.fetch_add(1,
                                                 std::memory_order_relaxed);
              if (report.connected) {
                health->connected.fetch_add(1, std::memory_order_relaxed);
              }
              if (report.ftp_compliant) {
                health->ftp_compliant.fetch_add(1, std::memory_order_relaxed);
              }
              if (report.anonymous()) {
                health->anonymous.fetch_add(1, std::memory_order_relaxed);
              }
              if (!report.error.is_ok()) {
                health->errored.fetch_add(1, std::memory_order_relaxed);
              }
            }
            if (progress != nullptr) {
              progress->hosts_enumerated.fetch_add(1,
                                                   std::memory_order_relaxed);
              if (report.connected) {
                progress->connected.fetch_add(1, std::memory_order_relaxed);
              }
              if (report.ftp_compliant) {
                progress->ftp_compliant.fetch_add(1,
                                                  std::memory_order_relaxed);
              }
              if (report.anonymous()) {
                progress->anonymous.fetch_add(1, std::memory_order_relaxed);
              }
              if (!report.error.is_ok()) {
                progress->errored.fetch_add(1, std::memory_order_relaxed);
              }
            }
            sink.on_host(report);
            launch();
          });
    }
  };
  launch();

  // Perf plane: a periodic sim-timer samples live shard-local gauges
  // (in-flight window, undrained hit queue, pending-timer count). The timer
  // self-reschedules, so it must be cancelled once the drive loop exits —
  // run_while_pending checks its predicate before every event, so the
  // sampler can never keep the loop alive on its own.
  sim::TimerId sampler_timer = 0;
  bool sampler_armed = false;
  std::function<void()> sample;
  if (perf != nullptr) {
    const sim::SimTime cadence =
        config.timeline.interval_us > 0 ? config.timeline.interval_us
                                        : sim::kSecond;
    sample = [&, cadence] {
      perf->live_sample(in_flight, hits.size() - next,
                        network.loop().pending());
      sampler_timer = network.loop().schedule_after(cadence, [&] { sample(); });
    };
    sampler_timer = network.loop().schedule_after(cadence, [&] { sample(); });
    sampler_armed = true;
  }

  // Drive the loop until every session has completed.
  network.loop().run_while_pending(
      [&] { return in_flight == 0 && next >= hits.size(); });
  if (sampler_armed) network.loop().cancel(sampler_timer);
}

CensusStats Census::run_shard(RecordSink& sink, std::uint32_t shard,
                              std::uint32_t total_shards) {
  CensusStats stats;
  const sim::SimTime started = network_.loop().now();
  const auto wall_started = std::chrono::steady_clock::now();

  // Attach this shard's registry for the duration of the run so every
  // layer (network, client, enumerator, scanner) records into it. RAII:
  // the pointer must not outlive `stats`, whatever path exits this frame.
  obs::MetricsRegistry* metrics =
      config_.collect_metrics ? &stats.metrics : nullptr;
  struct MetricsDetach {
    sim::Network& network;
    ~MetricsDetach() {
      network.set_metrics(nullptr);
      network.set_trace(nullptr);
      network.set_chaos(nullptr);
      network.set_timeline(nullptr);
      network.set_perf(nullptr);
      network.set_health(nullptr);
      network.set_prof(nullptr);
    }
  } detach{network_};
  network_.set_metrics(metrics);
  // Trace collector lives on this frame; its buffer moves into `stats`
  // (already canonicalized) just before return.
  obs::TraceCollector trace_collector(config_.trace, config_.seed);
  if (config_.trace.enabled) network_.set_trace(&trace_collector);
  // Timeline collector, same frame-scoped attachment: records this shard's
  // split-invariant facts (scan boundary samples, per-session outcomes);
  // the merged facts project to the canonical rows at export time.
  obs::TimelineCollector timeline_collector(config_.timeline,
                                            config_.concurrency);
  if (config_.timeline.enabled) network_.set_timeline(&timeline_collector);
  // Perf collector (wall/CPU stage attribution + live load samples). Never
  // feeds a deterministic artifact; see obs/perf.h.
  obs::PerfCollector perf_collector;
  obs::PerfCollector* perf =
      config_.perf_enabled ? &perf_collector : nullptr;
  if (perf != nullptr) network_.set_perf(perf);
  // Profiling collector (hierarchical scope tree + subsystem telemetry).
  // Same frame-scoped attach; ScopedProfile guards throughout the stack
  // read network.prof() and cost one branch when detached.
  obs::ProfCollector prof_collector;
  obs::ProfCollector* prof =
      config_.prof_enabled ? &prof_collector : nullptr;
  if (prof != nullptr) network_.set_prof(prof);
  // Per-shard chaos engine, same frame-scoped attachment: fault plans are
  // pure per IP, so every shard's engine agrees on every host's plan.
  sim::ChaosEngine chaos_engine(
      config_.chaos,
      config_.chaos_seed != 0 ? config_.chaos_seed : config_.seed);
  if (config_.chaos_enabled) network_.set_chaos(&chaos_engine);
  // Health gauges, same frame-scoped attachment; the monitor thread that
  // reads them lives with the caller (shard_slice / ftpcensus).
  if (config_.health != nullptr) network_.set_health(config_.health);
  obs::ProgressCounters* progress = config_.progress;

  // Stage 1: ZMap host discovery over this shard's permutation slice.
  scan::ScanConfig scan_config;
  scan_config.port = 21;
  scan_config.seed = config_.seed;
  scan_config.scale_shift = config_.scale_shift;
  scan_config.shard = shard;
  scan_config.total_shards = total_shards;
  scan_config.probe_retries = config_.probe_retries;
  scan::Scanner scanner(network_, scan_config);
  std::vector<std::uint32_t> hits;
  {
    obs::ScopedStageTimer probe_timer(perf, obs::PerfStage::kProbe);
    obs::ScopedProfile prof_scope(prof, "scan.sweep");
    stats.scan = scanner.run([&hits](Ipv4 ip) { hits.push_back(ip.value()); });
  }
  if (config_.max_hosts != 0 && hits.size() > config_.max_hosts) {
    hits.resize(config_.max_hosts);
  }
  if (progress != nullptr) {
    progress->scan_hits.fetch_add(hits.size(), std::memory_order_relaxed);
  }
  log_info() << "census: shard " << shard << "/" << total_shards
             << " scan found " << hits.size() << " responsive hosts";

  // Stage 2: concurrent enumeration over the discovered hits.
  drive_enumeration_window(network_, config_, hits, stats, metrics, sink,
                           perf);
  if (config_.health != nullptr) {
    config_.health->set_stage(obs::PerfStage::kFinalize);
  }

  stats.virtual_duration = network_.loop().now() - started;
  if (config_.trace.enabled) {
    network_.set_trace(nullptr);
    stats.trace = std::move(trace_collector.buffer());
    stats.trace.canonicalize();
  }
  if (config_.timeline.enabled) {
    network_.set_timeline(nullptr);
    stats.timeline = timeline_collector.take();
  }
  if (perf != nullptr) {
    network_.set_perf(nullptr);
    perf_collector.set_shard(shard);
    perf_collector.set_items(stats.hosts_enumerated);
    perf_collector.set_wall(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_started)
            .count());
    stats.perf.add_collector(perf_collector);
  }
  if (prof != nullptr) {
    network_.set_prof(nullptr);
    // Fold subsystem telemetry into the shard's profile: where the timer
    // wheel's memory went, how hard its recycler worked, and what the
    // trace interner holds. Summed across shards at merge time.
    const sim::EventLoop::Telemetry wheel = network_.loop().telemetry();
    prof_collector.counter_add("wheel.arena_nodes", wheel.arena_nodes);
    prof_collector.counter_add("wheel.arena_bytes", wheel.arena_bytes);
    prof_collector.counter_add("wheel.freelist_hits", wheel.freelist_hits);
    prof_collector.counter_add("wheel.cascades", wheel.cascades);
    prof_collector.counter_add("loop.events", wheel.events);
    if (config_.trace.enabled) {
      prof_collector.counter_add("trace.interner_bytes",
                                 stats.trace.strings().chunk_bytes());
    }
    stats.prof.add_collector(prof_collector);
  }
  return stats;
}

}  // namespace ftpc::core
