#include "core/bounce.h"

#include <memory>
#include <unordered_set>

namespace ftpc::core {

namespace {

/// One probe session, self-owning like HostEnumerator.
class ProbeSession : public std::enable_shared_from_this<ProbeSession> {
 public:
  using Done = std::function<void(BounceProbeResult)>;

  static void start(sim::Network& network, const BounceProberConfig& config,
                    Ipv4 target, std::uint16_t unique_port, Done done) {
    std::shared_ptr<ProbeSession> session(
        new ProbeSession(network, config, target, unique_port,
                         std::move(done)));
    session->self_ = session;
    session->begin();
  }

  /// Called by the shared third-party listener when a connection arrives
  /// on this session's unique port.
  void connection_arrived() { result_.connection_observed = true; }

 private:
  ProbeSession(sim::Network& network, const BounceProberConfig& config,
               Ipv4 target, std::uint16_t unique_port, Done done)
      : network_(network),
        config_(config),
        unique_port_(unique_port),
        done_(std::move(done)) {
    result_.ip = target;
  }

  void begin() {
    ftp::FtpClient::Options options;
    options.client_ip = config_.client_ip;
    client_ = ftp::FtpClient::create(network_, options);
    auto self = shared_from_this();

    // Dedicated third-party listener for this probe: a connection here can
    // only have come from the server under test.
    network_.listen(config_.third_party_ip, unique_port_,
                    [self](std::shared_ptr<sim::Connection> conn) {
                      self->connection_arrived();
                      conn->reset();
                    });

    client_->connect(result_.ip, 21, [self](Result<ftp::Reply> r) {
      if (!r.is_ok() || r.value().code != 220) {
        self->finish();
        return;
      }
      self->client_->send("USER", "anonymous",
                          [self](Result<ftp::Reply> r2) {
                            self->on_user(std::move(r2));
                          });
    });
  }

  void on_user(Result<ftp::Reply> r) {
    if (!r.is_ok()) return finish();
    if (r.value().code == 230) {
      result_.login_ok = true;
      return check_pasv();
    }
    if (r.value().code != 331 && r.value().code != 332) return finish();
    auto self = shared_from_this();
    client_->send("PASS", "bounce-probe@research.example.edu",
                  [self](Result<ftp::Reply> r2) {
                    if (r2.is_ok() && r2.value().code == 230) {
                      self->result_.login_ok = true;
                      self->check_pasv();
                    } else {
                      self->finish();
                    }
                  });
  }

  void check_pasv() {
    auto self = shared_from_this();
    client_->send("PASV", "", [self](Result<ftp::Reply> r) {
      if (r.is_ok() && r.value().code == 227) {
        if (const auto hp = ftp::parse_pasv_reply(r.value().full_text())) {
          if (Ipv4(hp->ip) != self->result_.ip) {
            self->result_.pasv_ip = Ipv4(hp->ip);
          }
        }
      }
      self->send_port();
    });
  }

  void send_port() {
    const ftp::HostPort target{.ip = config_.third_party_ip.value(),
                               .port = unique_port_};
    auto self = shared_from_this();
    client_->send("PORT", target.wire(), [self](Result<ftp::Reply> r) {
      if (!r.is_ok() || !r.value().is_positive_completion()) {
        self->finish();
        return;
      }
      self->result_.port_accepted = true;
      // Trigger the data connection; the reply does not matter — the
      // listener tells us whether the server dialed out.
      self->client_->send("NLST", "/", [self](Result<ftp::Reply>) {
        self->network_.loop().schedule_after(
            self->config_.verdict_wait, [self] { self->finish(); });
      });
    });
  }

  void finish() {
    if (finished_) return;
    finished_ = true;
    network_.stop_listening(config_.third_party_ip, unique_port_);
    auto self = self_;
    self_.reset();
    client_->abort_session();
    done_(result_);
  }

  sim::Network& network_;
  const BounceProberConfig& config_;
  std::uint16_t unique_port_;
  Done done_;
  std::shared_ptr<ftp::FtpClient> client_;
  BounceProbeResult result_;
  bool finished_ = false;
  std::shared_ptr<ProbeSession> self_;
};

}  // namespace

BounceProber::BounceProber(sim::Network& network, BounceProberConfig config)
    : network_(network), config_(config) {}

std::vector<BounceProbeResult> BounceProber::run(
    const std::vector<std::uint32_t>& targets) {
  std::vector<BounceProbeResult> results;
  results.reserve(targets.size());

  std::size_t next = 0;
  std::uint64_t in_flight = 0;
  std::uint16_t port_rotor = 0;

  std::function<void()> launch = [&] {
    while (in_flight < config_.concurrency && next < targets.size()) {
      const Ipv4 target(targets[next++]);
      ++in_flight;
      const std::uint16_t port = static_cast<std::uint16_t>(
          config_.third_party_port + (port_rotor++ % 16000));
      ProbeSession::start(network_, config_, target, port,
                          [&](BounceProbeResult result) {
                            --in_flight;
                            results.push_back(std::move(result));
                            launch();
                          });
    }
  };
  launch();
  network_.loop().run_while_pending(
      [&] { return in_flight == 0 && next >= targets.size(); });
  return results;
}

}  // namespace ftpc::core
