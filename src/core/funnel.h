// Funnel accounting: why each probed address fell out of the pipeline.
//
// The paper's Table I depends on precise per-stage attrition numbers over
// 3.68B probes; this module gives every enumerated host exactly one
// terminal outcome counter, so the funnel is auditable instead of implied.
//
// Stages: probe -> connect -> banner -> login -> traverse -> finalize.
// Counter naming (all in the census MetricsRegistry):
//   funnel.stage.<stage>          sessions that entered the stage
//   funnel.drop.<stage>.<reason>  sessions that fell out at that stage
//   funnel.done.completed         sessions that finished cleanly
//   funnel.login.<outcome>        resolved login outcome (banner-OK hosts)
//
// Invariant (asserted in tests): for a census with no max_hosts cap,
//   funnel.stage.probe == funnel.drop.* (summed) + funnel.done.completed
// i.e. every probe is accounted for by exactly one labeled reason.
//
// The probe-stage counters are recorded by scan::Scanner (which sees the
// unresponsive addresses); everything downstream is derived here from the
// completed HostReport. Because a report depends only on (seed, target),
// these counters partition exactly across shards and merge to the same
// totals for every (--shards, --threads) configuration.
#pragma once

#include <string_view>

#include "core/records.h"
#include "obs/metrics.h"

namespace ftpc::core {

enum class FunnelStage {
  kProbe,     // SYN probe sent
  kConnect,   // TCP connect to port 21
  kBanner,    // awaiting / parsing the 220 banner
  kLogin,     // RFC 1635 anonymous login exchange
  kTraverse,  // robots.txt fetch + directory traversal
  kFinalize,  // surveys, AUTH TLS, QUIT
};

std::string_view funnel_stage_name(FunnelStage stage) noexcept;

/// The single terminal outcome of one enumeration session.
struct FunnelOutcome {
  FunnelStage stage = FunnelStage::kFinalize;
  std::string_view reason = "completed";  // drop reason, or "completed"
  bool completed = true;
};

/// Derives the terminal outcome from a finished report. Pure: no state, no
/// side effects; the same report always classifies identically.
FunnelOutcome classify_funnel(const HostReport& report) noexcept;

/// Records `report`'s stage-entry counters and its terminal outcome
/// (exactly one funnel.drop.* or funnel.done.completed increment).
void record_host_funnel(const HostReport& report, obs::MetricsRegistry& m);

}  // namespace ftpc::core
