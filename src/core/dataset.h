// Full-record dataset persistence.
//
// The aggregate CensusSummary answers the paper's tables, but a real study
// also archives the raw enumeration output for later re-analysis (the
// authors "iteratively processed the dataset"). DatasetWriter streams
// HostReports to a framed binary file as they complete; DatasetReader
// replays them one at a time, so re-analysis is as memory-bounded as the
// census itself.
//
// Format: magic "FTPD", version u32, then one length-prefixed frame per
// host, each ending with an FNV-1a checksum of the frame body. A truncated
// tail (census interrupted mid-write) is detected and reported.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "core/records.h"

namespace ftpc::core {

/// Serializes one HostReport to a framed byte string (exposed for tests).
std::string encode_host_report(const HostReport& report);

/// Decodes a frame body; nullopt on malformed input.
std::optional<HostReport> decode_host_report(std::string_view frame);

/// The 8-byte dataset file header (magic + version) — lets checkpointed
/// shards and ftpcmerge emit files byte-identical to DatasetWriter's.
std::string dataset_file_header();

/// One on-disk frame for `report`: u32 length + body + u64 FNV-1a checksum,
/// exactly the bytes DatasetWriter::on_host appends.
std::string encode_host_frame(const HostReport& report);

/// A RecordSink that streams every report to disk.
class DatasetWriter : public RecordSink {
 public:
  /// Opens `path` for writing; check ok() before use.
  explicit DatasetWriter(const std::string& path);
  ~DatasetWriter() override;
  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  bool ok() const noexcept { return file_ != nullptr; }
  std::uint64_t records_written() const noexcept { return records_; }

  void on_host(const HostReport& report) override;

  /// Flushes and closes; returns false if any write failed.
  bool close();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
  bool failed_ = false;
};

/// Streams reports back from a dataset file.
class DatasetReader {
 public:
  explicit DatasetReader(const std::string& path);
  ~DatasetReader();
  DatasetReader(const DatasetReader&) = delete;
  DatasetReader& operator=(const DatasetReader&) = delete;

  /// True if the file opened and carried a valid header.
  bool ok() const noexcept { return file_ != nullptr && header_ok_; }

  /// Next report; nullopt at end of file. After nullopt, truncated()
  /// reports whether the file ended cleanly.
  std::optional<HostReport> next();

  /// True if the file ended mid-frame or a checksum failed.
  bool truncated() const noexcept { return truncated_; }
  std::uint64_t records_read() const noexcept { return records_; }

 private:
  std::FILE* file_ = nullptr;
  bool header_ok_ = false;
  bool truncated_ = false;
  std::uint64_t records_ = 0;
};

}  // namespace ftpc::core
