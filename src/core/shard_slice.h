// Checkpointed single-shard census slice: the process-level execution unit
// behind `ftpcensus census --shard-id k/N`.
//
// run_shard_slice() runs exactly shard k's element-index slice of the scan
// permutation and emits a self-contained ftpc.shard.v1 artifact directory
// (see core/shard_artifact.h for the layout). Unlike Census::run_shard, the
// slice executes as a sequence of *segments* cut at global-element-index
// checkpoint boundaries. Each segment scans to the next boundary,
// enumerates the hits it discovered, appends the finished records, journals
// its split-invariant facts, and then commits an atomic checkpoint
// (checkpoint.json.tmp + rename). A killed process restarts with
// `resume = true`: the checkpoint fixes the scan cursor and committed
// record bytes, the journal replays the already-emitted facts, any torn
// tail past the last commit is truncated, and the run continues — landing
// on the byte-identical artifact set an uninterrupted run produces
// (tests/checkpoint_resume_test.cc pins this at every boundary).
//
// Why segmentation preserves the artifact bytes:
//   - the scan cursor is a pure function of (config, elements consumed),
//     so a resumed walk continues the exact permutation sequence
//     (scan/permutation.h, shard_walk_from);
//   - per-host reports are pure in (seed, target), and a fresh process's
//     event loop restarts at virtual time 0 — shifting every event of the
//     segment by a constant, which preserves the completion order the
//     records stream depends on;
//   - the observability channels record facts that are either exact
//     element-range partitions (scan boundary samples, metrics deltas) or
//     per-host-pure (trace events with session-relative stamps, timeline
//     host outcomes), so per-segment deltas concatenate/sum to the
//     single-segment values. The closing totals sample, the scan metric
//     block, and the virtual-time advance are recomputed at finalize time
//     from the cumulative cursor — never journaled — so they cannot double
//     up across segments (scan::Scanner::finish).
#pragma once

#include <cstdint>
#include <string>

#include "core/census.h"
#include "core/sharded_census.h"

namespace ftpc::core {

struct ShardSliceConfig {
  /// The logical census configuration. `shards`/`threads` inside it are
  /// ignored — this runner always executes exactly one shard slice.
  CensusConfig census;
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
  /// Artifact directory (created if missing); see shard_artifact.h.
  std::string out_dir;
  /// Checkpoint cadence in *global* permutation elements: a checkpoint is
  /// committed each time the slice crosses a multiple of this boundary.
  /// 0 = run the whole slice as one segment (no checkpoints).
  std::uint64_t checkpoint_interval = 0;
  /// Where the atomic checkpoint lives (`--checkpoint-out`). Empty = the
  /// default `<out_dir>/checkpoint.json`.
  std::string checkpoint_path;
  /// Continue from out_dir's checkpoint + journal instead of starting
  /// over. With a completed manifest already present this is an idempotent
  /// success; with no checkpoint at all it degrades to a fresh run.
  bool resume = false;
  /// Test hook: stop (as if killed) immediately after committing this many
  /// checkpoints. 0 = never. The result reports crashed=true; the process
  /// wrapper turns that into a distinct exit code.
  std::uint32_t crash_after_checkpoints = 0;
  /// Wall-clock heartbeat cadence, milliseconds (`--heartbeat-interval`).
  /// 0 = no health plane. When set, the slice emits ftpc.health.v1 beats
  /// into out_dir (heartbeat.json + health.jsonl) — explicitly
  /// non-deterministic; never touches the four deterministic channels.
  std::uint64_t heartbeat_interval_ms = 0;
  /// Where to write this slice's ftpc.prof.v1 profile (`--prof-out`).
  /// Empty = no profile file. Requires census.prof_enabled for the scope
  /// guards to actually record. Like the health plane, the profile is
  /// wall-clock data and never touches the deterministic artifacts.
  std::string prof_out;
};

struct ShardSliceResult {
  bool ok = false;
  /// True when the crash_after_checkpoints hook fired (ok stays false but
  /// error stays empty — the artifact directory is resumable, not broken).
  bool crashed = false;
  std::string error;
  std::uint64_t records = 0;
  std::uint64_t checkpoints_written = 0;
  /// Slice totals (scan counters + enumeration outcomes). The heavy
  /// channels live in the artifact directory, not here.
  CensusStats stats;
};

/// Runs shard `config.shard` of `config.total_shards` as a checkpointed
/// slice and writes its ftpc.shard.v1 artifact directory. Synchronous;
/// builds a private EventLoop/Network/population stack exactly like
/// ShardedCensus does per shard.
ShardSliceResult run_shard_slice(const ShardSliceConfig& config,
                                 const PopulationFactory& population_factory,
                                 std::size_t host_cache_capacity = 256);

}  // namespace ftpc::core
