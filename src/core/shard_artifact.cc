#include "core/shard_artifact.h"

#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <queue>

#include "common/hash.h"
#include "common/ipv4.h"
#include "core/dataset.h"
#include "core/shard_stream.h"
#include "obs/build_info.h"
#include "obs/health.h"
#include "obs/trace.h"

namespace ftpc::core {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      out += "\\u00";
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

void append_scan_stats(std::string& out, const scan::ScanStats& s) {
  out += "{\"elements\":" + std::to_string(s.elements_walked);
  out += ",\"addresses\":" + std::to_string(s.addresses_walked);
  out += ",\"blocklisted\":" + std::to_string(s.blocklisted);
  out += ",\"probed\":" + std::to_string(s.probed);
  out += ",\"responsive\":" + std::to_string(s.responsive);
  out += ",\"retransmits\":" + std::to_string(s.probe_retransmits);
  out += ",\"timeouts\":" + std::to_string(s.probe_timeouts);
  out.push_back('}');
}

bool parse_scan_stats(const json::Value* v, scan::ScanStats& s) {
  if (v == nullptr || !v->is_object()) return false;
  const auto get = [v](const char* key, std::uint64_t& out) {
    const auto n = v->u64(key);
    if (!n) return false;
    out = *n;
    return true;
  };
  return get("elements", s.elements_walked) &&
         get("addresses", s.addresses_walked) &&
         get("blocklisted", s.blocklisted) && get("probed", s.probed) &&
         get("responsive", s.responsive) &&
         get("retransmits", s.probe_retransmits) &&
         get("timeouts", s.probe_timeouts);
}

bool get_bool(const json::Value& v, const char* key, bool& out) {
  const json::Value* member = v.find(key);
  if (member == nullptr || !member->is_bool()) return false;
  out = member->as_bool();
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string content;
  // Size up front so multi-megabyte artifacts land in one read instead of
  // a realloc-per-64KB append loop; the chunk loop still handles whatever
  // the stat missed.
  struct stat st{};
  if (::fstat(::fileno(file), &st) == 0 && S_ISREG(st.st_mode) &&
      st.st_size > 0) {
    content.resize(static_cast<std::size_t>(st.st_size));
    const std::size_t got = std::fread(content.data(), 1, content.size(), file);
    content.resize(got);
  }
  char buffer[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), file);
    content.append(buffer, got);
    if (got < sizeof(buffer)) break;
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!ok) return std::nullopt;
  return content;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  return (std::fclose(file) == 0) && ok;
}

/// Splits a JSONL document into lines (without the terminating '\n').
std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    if (eol == std::string_view::npos) {
      lines.push_back(text);
      break;
    }
    lines.push_back(text.substr(0, eol));
    text.remove_prefix(eol + 1);
  }
  return lines;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------------

std::uint64_t census_config_fingerprint(const CensusConfig& config) {
  // A labeled, canonical serialization of every field that feeds the
  // deterministic artifacts, FNV-hashed. Execution layout (shards, threads,
  // checkpoint cadence, progress/perf plumbing) is excluded on purpose;
  // doubles print at full precision so distinct profiles never collide via
  // rounding.
  std::string s;
  const auto field = [&s](const char* name, const std::string& value) {
    s += name;
    s.push_back('=');
    s += value;
    s.push_back('\n');
  };
  const auto u64f = [&field](const char* name, std::uint64_t v) {
    field(name, std::to_string(v));
  };
  const auto dblf = [&field](const char* name, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    field(name, buf);
  };
  u64f("seed", config.seed);
  u64f("scale_shift", config.scale_shift);
  u64f("concurrency", config.concurrency);
  u64f("client_net", config.client_net.value());
  const EnumeratorOptions& e = config.enumerator;
  field("enum.password", e.password);
  field("enum.user_agent", e.user_agent);
  u64f("enum.request_cap", e.request_cap);
  u64f("enum.request_gap", e.request_gap);
  u64f("enum.max_depth", e.max_depth);
  u64f("enum.max_listing_bytes", e.max_listing_bytes);
  u64f("enum.max_files", e.max_files);
  u64f("enum.honor_robots", e.honor_robots ? 1 : 0);
  u64f("enum.collect_surveys", e.collect_surveys ? 1 : 0);
  u64f("enum.try_tls", e.try_tls ? 1 : 0);
  u64f("enum.breadth_first", e.breadth_first ? 1 : 0);
  u64f("enum.command_retries", e.command_retries);
  u64f("enum.retry_backoff", e.retry_backoff);
  u64f("enum.retry_backoff_cap", e.retry_backoff_cap);
  u64f("probe_retries", config.probe_retries);
  u64f("chaos_enabled", config.chaos_enabled ? 1 : 0);
  dblf("chaos.syn_loss", config.chaos.syn_loss);
  dblf("chaos.connect_timeout", config.chaos.connect_timeout);
  dblf("chaos.rst", config.chaos.rst);
  dblf("chaos.stall", config.chaos.stall);
  dblf("chaos.truncate", config.chaos.truncate);
  dblf("chaos.garble", config.chaos.garble);
  dblf("chaos.premature_close", config.chaos.premature_close);
  dblf("chaos.data_fail", config.chaos.data_fail);
  u64f("chaos_seed", config.chaos_seed);
  u64f("max_hosts", config.max_hosts);
  u64f("collect_metrics", config.collect_metrics ? 1 : 0);
  u64f("trace.enabled", config.trace.enabled ? 1 : 0);
  dblf("trace.sample_rate", config.trace.sample_rate);
  for (const std::uint32_t host : config.trace.force_hosts) {
    u64f("trace.force_host", host);
  }
  u64f("trace.capture_wire", config.trace.capture_wire ? 1 : 0);
  u64f("timeline.enabled", config.timeline.enabled ? 1 : 0);
  u64f("timeline.interval_us", config.timeline.interval_us);
  return fnv1a64(s);
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::string ShardManifest::to_json() const {
  std::string out = "{\"schema\":\"ftpc.shard.v1\",";
  out += obs::build_info_json();
  out += ",\"shard\":" + std::to_string(shard);
  out += ",\"total_shards\":" + std::to_string(total_shards);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"scale_shift\":" + std::to_string(scale_shift);
  out += ",\"config_hash\":" + std::to_string(config_hash);
  out += ",\"records\":" + std::to_string(records);
  out += ",\"scan\":";
  append_scan_stats(out, scan);
  out += ",\"enum\":{\"hosts\":" + std::to_string(hosts_enumerated);
  out += ",\"ftp\":" + std::to_string(ftp_compliant);
  out += ",\"anonymous\":" + std::to_string(anonymous);
  out += ",\"errored\":" + std::to_string(sessions_errored);
  out += "},\"channels\":{\"metrics\":";
  append_bool(out, has_metrics);
  out += ",\"trace\":";
  append_bool(out, has_trace);
  out += ",\"timeline\":";
  append_bool(out, has_timeline);
  out += "},\"timeline\":{\"interval_us\":" +
         std::to_string(timeline_interval_us);
  out += ",\"pps\":" + std::to_string(pps);
  out += ",\"concurrency\":" + std::to_string(concurrency);
  out += "}}\n";
  return out;
}

std::optional<ShardManifest> ShardManifest::parse(std::string_view text,
                                                  std::string* error) {
  std::string parse_error;
  const auto doc = json::Value::parse(text, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return std::nullopt;
  }
  const auto fail = [error](const char* what) -> std::optional<ShardManifest> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  const auto schema = doc->str("schema");
  if (!schema || *schema != "ftpc.shard.v1") {
    return fail("not a ftpc.shard.v1 manifest");
  }
  ShardManifest m;
  const auto shard = doc->u64("shard");
  const auto total = doc->u64("total_shards");
  const auto seed = doc->u64("seed");
  const auto scale = doc->u64("scale_shift");
  const auto hash = doc->u64("config_hash");
  const auto records = doc->u64("records");
  if (!shard || !total || !seed || !scale || !hash || !records) {
    return fail("manifest missing a required field");
  }
  if (*total == 0 || *shard >= *total) {
    return fail("manifest shard index out of range");
  }
  m.shard = static_cast<std::uint32_t>(*shard);
  m.total_shards = static_cast<std::uint32_t>(*total);
  m.seed = *seed;
  m.scale_shift = static_cast<unsigned>(*scale);
  m.config_hash = *hash;
  m.records = *records;
  if (!parse_scan_stats(doc->find("scan"), m.scan)) {
    return fail("manifest missing scan totals");
  }
  const json::Value* enumeration = doc->find("enum");
  if (enumeration == nullptr || !enumeration->is_object()) {
    return fail("manifest missing enum totals");
  }
  const auto hosts = enumeration->u64("hosts");
  const auto ftp = enumeration->u64("ftp");
  const auto anon = enumeration->u64("anonymous");
  const auto errored = enumeration->u64("errored");
  if (!hosts || !ftp || !anon || !errored) {
    return fail("manifest missing enum totals");
  }
  m.hosts_enumerated = *hosts;
  m.ftp_compliant = *ftp;
  m.anonymous = *anon;
  m.sessions_errored = *errored;
  const json::Value* channels = doc->find("channels");
  if (channels == nullptr ||
      !get_bool(*channels, "metrics", m.has_metrics) ||
      !get_bool(*channels, "trace", m.has_trace) ||
      !get_bool(*channels, "timeline", m.has_timeline)) {
    return fail("manifest missing channel flags");
  }
  const json::Value* timeline = doc->find("timeline");
  if (timeline == nullptr) return fail("manifest missing timeline options");
  const auto interval = timeline->u64("interval_us");
  const auto pps = timeline->u64("pps");
  const auto conc = timeline->u64("concurrency");
  if (!interval || !pps || !conc) {
    return fail("manifest missing timeline options");
  }
  m.timeline_interval_us = *interval;
  m.pps = *pps;
  m.concurrency = static_cast<std::uint32_t>(*conc);
  return m;
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

std::string ShardCheckpoint::to_json() const {
  std::string out = "{\"schema\":\"ftpc.ckpt.v1\"";
  out += ",\"config_hash\":" + std::to_string(config_hash);
  out += ",\"shard\":" + std::to_string(shard);
  out += ",\"total_shards\":" + std::to_string(total_shards);
  out += ",\"boundary_element\":" + std::to_string(boundary_element);
  out += ",\"elements_consumed\":" + std::to_string(elements_consumed);
  out += ",\"next_boundary\":" + std::to_string(next_boundary);
  out += ",\"scan\":";
  append_scan_stats(out, scan);
  out += ",\"enum\":{\"hosts\":" + std::to_string(hosts_enumerated);
  out += ",\"ftp\":" + std::to_string(ftp_compliant);
  out += ",\"anonymous\":" + std::to_string(anonymous);
  out += ",\"errored\":" + std::to_string(sessions_errored);
  out += "},\"records_count\":" + std::to_string(records_count);
  out += ",\"records_bytes\":" + std::to_string(records_bytes);
  out += "}\n";
  return out;
}

std::optional<ShardCheckpoint> ShardCheckpoint::parse(std::string_view text,
                                                      std::string* error) {
  std::string parse_error;
  const auto doc = json::Value::parse(text, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return std::nullopt;
  }
  const auto fail =
      [error](const char* what) -> std::optional<ShardCheckpoint> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  const auto schema = doc->str("schema");
  if (!schema || *schema != "ftpc.ckpt.v1") {
    return fail("not a ftpc.ckpt.v1 checkpoint");
  }
  ShardCheckpoint c;
  const auto hash = doc->u64("config_hash");
  const auto shard = doc->u64("shard");
  const auto total = doc->u64("total_shards");
  const auto boundary = doc->u64("boundary_element");
  const auto consumed = doc->u64("elements_consumed");
  const auto next_boundary = doc->u64("next_boundary");
  const auto records_count = doc->u64("records_count");
  const auto records_bytes = doc->u64("records_bytes");
  if (!hash || !shard || !total || !boundary || !consumed || !next_boundary ||
      !records_count || !records_bytes) {
    return fail("checkpoint missing a required field");
  }
  c.config_hash = *hash;
  c.shard = static_cast<std::uint32_t>(*shard);
  c.total_shards = static_cast<std::uint32_t>(*total);
  c.boundary_element = *boundary;
  c.elements_consumed = *consumed;
  c.next_boundary = *next_boundary;
  c.records_count = *records_count;
  c.records_bytes = *records_bytes;
  if (!parse_scan_stats(doc->find("scan"), c.scan)) {
    return fail("checkpoint missing scan counters");
  }
  const json::Value* enumeration = doc->find("enum");
  if (enumeration == nullptr || !enumeration->is_object()) {
    return fail("checkpoint missing enum counters");
  }
  const auto hosts = enumeration->u64("hosts");
  const auto ftp = enumeration->u64("ftp");
  const auto anon = enumeration->u64("anonymous");
  const auto errored = enumeration->u64("errored");
  if (!hosts || !ftp || !anon || !errored) {
    return fail("checkpoint missing enum counters");
  }
  c.hosts_enumerated = *hosts;
  c.ftp_compliant = *ftp;
  c.anonymous = *anon;
  c.sessions_errored = *errored;
  return c;
}

// ---------------------------------------------------------------------------
// Fact line codecs
// ---------------------------------------------------------------------------

std::string timeline_scan_series_line(
    const std::vector<obs::TimelineScanSample>& series) {
  std::string out = "{\"k\":\"scan\",\"samples\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const obs::TimelineScanSample& s = series[i];
    if (i > 0) out.push_back(',');
    out.push_back('[');
    out += std::to_string(s.boundary);
    out += ',' + std::to_string(s.elements);
    out += ',' + std::to_string(s.probed);
    out += ',' + std::to_string(s.responsive);
    out += ',' + std::to_string(s.retransmits);
    out.push_back(']');
  }
  out += "]}\n";
  return out;
}

std::optional<std::vector<obs::TimelineScanSample>> parse_timeline_scan_series(
    const json::Value& line) {
  const json::Value* samples = line.find("samples");
  if (samples == nullptr || !samples->is_array()) return std::nullopt;
  std::vector<obs::TimelineScanSample> series;
  series.reserve(samples->array().size());
  for (const json::Value& entry : samples->array()) {
    if (!entry.is_array() || entry.array().size() != 5) return std::nullopt;
    obs::TimelineScanSample s;
    std::uint64_t* fields[5] = {&s.boundary, &s.elements, &s.probed,
                                &s.responsive, &s.retransmits};
    for (std::size_t i = 0; i < 5; ++i) {
      const auto v = entry.array()[i].as_u64();
      if (!v) return std::nullopt;
      *fields[i] = *v;
    }
    series.push_back(s);
  }
  return series;
}

std::string timeline_host_line(const obs::TimelineHost& host) {
  std::string out = "{\"k\":\"host\",\"gi\":" + std::to_string(host.global_index);
  out += ",\"ip\":" + std::to_string(host.ip);
  out += ",\"enumerated\":";
  append_bool(out, host.enumerated);
  out += ",\"dur\":" + std::to_string(host.duration_us);
  out += ",\"connected\":";
  append_bool(out, host.connected);
  out += ",\"ftp\":";
  append_bool(out, host.ftp_compliant);
  out += ",\"anon\":";
  append_bool(out, host.anonymous);
  out += ",\"err\":";
  append_bool(out, host.errored);
  out += ",\"req\":" + std::to_string(host.requests);
  out += ",\"retry\":" + std::to_string(host.retries);
  out += "}\n";
  return out;
}

std::optional<obs::TimelineHost> parse_timeline_host(const json::Value& line) {
  obs::TimelineHost host;
  const auto gi = line.u64("gi");
  const auto ip = line.u64("ip");
  const auto dur = line.u64("dur");
  const auto req = line.u64("req");
  const auto retry = line.u64("retry");
  if (!gi || !ip || !dur || !req || !retry ||
      *ip > 0xffffffffULL ||
      !get_bool(line, "enumerated", host.enumerated) ||
      !get_bool(line, "connected", host.connected) ||
      !get_bool(line, "ftp", host.ftp_compliant) ||
      !get_bool(line, "anon", host.anonymous) ||
      !get_bool(line, "err", host.errored)) {
    return std::nullopt;
  }
  host.global_index = *gi;
  host.ip = static_cast<std::uint32_t>(*ip);
  host.duration_us = *dur;
  host.requests = *req;
  host.retries = *retry;
  return host;
}

std::optional<obs::TraceEvent> parse_trace_event(const json::Value& line) {
  obs::TraceEvent event;
  const auto t = line.u64("t");
  const auto seq = line.u64("seq");
  const auto host = line.str("host");
  const auto ev = line.str("ev");
  if (!t || !seq || !host || !ev || *seq > 0xffffffffULL) return std::nullopt;
  const auto ip = Ipv4::parse(*host);
  if (!ip) return std::nullopt;
  event.start = *t;
  event.host = ip->value();
  event.seq = static_cast<std::uint32_t>(*seq);
  if (*ev == "span") {
    event.kind = obs::TraceEventKind::kSpan;
    const auto dur = line.u64("dur");
    const auto name = line.str("name");
    const auto status = line.str("status");
    if (!dur || !name || !status) return std::nullopt;
    event.dur = *dur;
    event.name = *name;
    event.status = *status;
  } else if (*ev == "send" || *ev == "recv") {
    event.kind = *ev == "send" ? obs::TraceEventKind::kSend
                               : obs::TraceEventKind::kRecv;
    const auto text = line.str("line");
    if (!text) return std::nullopt;
    event.name = *text;
  } else {
    return std::nullopt;
  }
  return event;
}

std::string trace_event_line(const obs::TraceEvent& event) {
  std::string out = "{\"k\":\"trace\",\"t\":" + std::to_string(event.start);
  if (event.kind == obs::TraceEventKind::kSpan) {
    out += ",\"dur\":" + std::to_string(event.dur);
  }
  out += ",\"host\":\"" + Ipv4(event.host).str() + "\"";
  out += ",\"seq\":" + std::to_string(event.seq);
  out += ",\"ev\":\"";
  out += trace_event_kind_name(event.kind);
  out.push_back('"');
  if (event.kind == obs::TraceEventKind::kSpan) {
    out += ",\"name\":";
    append_json_string(out, event.name);
    out += ",\"status\":";
    append_json_string(out, event.status);
  } else {
    out += ",\"line\":";
    append_json_string(out, event.name);
  }
  out += "}\n";
  return out;
}

bool merge_metrics_document(const json::Value& doc,
                            obs::MetricsRegistry& into, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  const auto schema = doc.str("schema");
  if (!schema || *schema != "ftpc.metrics.v1") {
    return fail("not a ftpc.metrics.v1 document");
  }
  const json::Value* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return fail("metrics document missing counters object");
  }
  for (const auto& [name, value] : counters->object()) {
    const auto v = value.as_u64();
    if (!v) return fail("counter " + name + " is not an unsigned integer");
    into.add(name, *v);
  }
  const json::Value* histograms = doc.find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return fail("metrics document missing histograms object");
  }
  for (const auto& [name, entry] : histograms->object()) {
    const json::Value* bounds = entry.find("bounds");
    const json::Value* buckets = entry.find("buckets");
    const auto count = entry.u64("count");
    const auto sum = entry.u64("sum");
    if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
        !buckets->is_array() || !count || !sum) {
      return fail("histogram " + name + " is malformed");
    }
    const auto to_u64s = [](const json::Value& array,
                            std::vector<std::uint64_t>& out) {
      out.reserve(array.array().size());
      for (const json::Value& v : array.array()) {
        const auto u = v.as_u64();
        if (!u) return false;
        out.push_back(*u);
      }
      return true;
    };
    std::vector<std::uint64_t> bound_values;
    std::vector<std::uint64_t> bucket_values;
    if (!to_u64s(*bounds, bound_values) || !to_u64s(*buckets, bucket_values) ||
        bucket_values.size() != bound_values.size() + 1) {
      return fail("histogram " + name + " is malformed");
    }
    into.merge_histogram(
        name, obs::Histogram::from_parts(std::move(bound_values),
                                         std::move(bucket_values), *count,
                                         *sum));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

namespace {

/// Parses one JSONL line, reporting path:line on failure.
std::optional<json::Value> parse_line(std::string_view line,
                                      const std::string& path,
                                      std::size_t line_number,
                                      std::string& error) {
  std::string parse_error;
  auto value = json::Value::parse(line, &parse_error);
  if (!value) {
    error = path + ":" + std::to_string(line_number) + ": " + parse_error;
  }
  return value;
}

// The merge hot path never parses JSON generically: shard artifacts are
// written by our own canonical serializers, so a strict scanner that
// accepts exactly those bytes (and nothing else) both validates and
// extracts keys in one linear pass. Any deviation — hand-edited files,
// foreign escapes, unsorted events — drops that channel back to the
// json::Value path, which keeps the permissive semantics and the
// first-divergence diagnostics the corruption suite pins.

/// Cursor over one line with matchers for the canonical grammar.
class LineScanner {
 public:
  explicit LineScanner(std::string_view line)
      : p_(line.data()), end_(line.data() + line.size()) {}

  bool done() const { return p_ == end_; }

  bool lit(std::string_view s) {
    if (static_cast<std::size_t>(end_ - p_) < s.size() ||
        std::memcmp(p_, s.data(), s.size()) != 0) {
      return false;
    }
    p_ += s.size();
    return true;
  }

  /// Canonical u64 decimal — exactly what std::to_string emits: no sign,
  /// no leading zero, fits in 64 bits.
  bool num(std::uint64_t& out) {
    if (p_ == end_ || *p_ < '0' || *p_ > '9') return false;
    if (*p_ == '0') {
      ++p_;
      if (p_ != end_ && *p_ >= '0' && *p_ <= '9') return false;
      out = 0;
      return true;
    }
    std::uint64_t value = 0;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(*p_ - '0');
      if (value > (~std::uint64_t{0} - digit) / 10) return false;
      value = value * 10 + digit;
      ++p_;
    }
    out = value;
    return true;
  }

  bool boolean(bool& out) {
    if (lit("true")) {
      out = true;
      return true;
    }
    if (lit("false")) {
      out = false;
      return true;
    }
    return false;
  }

  /// Canonical dotted quad as Ipv4::str prints it: octets 0-255, no
  /// leading zeros.
  bool quad(std::uint32_t& out) {
    std::uint32_t ip = 0;
    for (int i = 0; i < 4; ++i) {
      if (i > 0 && !lit(".")) return false;
      std::uint64_t octet = 0;
      if (!num(octet) || octet > 255) return false;
      ip = (ip << 8) | static_cast<std::uint32_t>(octet);
    }
    out = ip;
    return true;
  }

  /// A quoted string in exactly append_json_string's form: the only
  /// escapes are \" \\ and \u00XX (lowercase hex, value < 0x20); raw
  /// control bytes never appear. Anything else re-serializes differently,
  /// so it must not take the fast path.
  bool jstr() {
    if (!lit("\"")) return false;
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return false;
        if (*p_ == '"' || *p_ == '\\') {
          ++p_;
          continue;
        }
        if (*p_ != 'u' || end_ - p_ < 5 || p_[1] != '0' || p_[2] != '0') {
          return false;
        }
        const auto hex = [](char h) {
          return h >= '0' && h <= '9'   ? h - '0'
                 : h >= 'a' && h <= 'f' ? h - 'a' + 10
                                        : -1;
        };
        const int hi = hex(p_[3]);
        const int lo = hex(p_[4]);
        if (hi < 0 || lo < 0 || hi * 16 + lo >= 0x20) return false;
        p_ += 5;
        continue;
      }
      if (c < 0x20) return false;
      ++p_;
    }
    return false;
  }

 private:
  const char* p_;
  const char* end_;
};

/// The (start, host, seq) canonical trace order.
struct TraceKey {
  std::uint64_t t = 0;
  std::uint32_t host = 0;
  std::uint32_t seq = 0;

  bool operator<(const TraceKey& o) const {
    if (t != o.t) return t < o.t;
    if (host != o.host) return host < o.host;
    return seq < o.seq;
  }
  bool operator==(const TraceKey& o) const {
    return t == o.t && host == o.host && seq == o.seq;
  }
};

/// True iff `line` is byte-for-byte a TraceBuffer::to_jsonl event line;
/// extracts its sort key. Valid-but-noncanonical JSON returns false.
bool scan_canonical_trace_line(std::string_view line, TraceKey& key) {
  LineScanner s(line);
  std::uint64_t dur = 0;
  bool has_dur = false;
  if (!s.lit("{\"t\":") || !s.num(key.t)) return false;
  if (s.lit(",\"dur\":")) {
    has_dur = true;
    if (!s.num(dur)) return false;
  }
  if (!s.lit(",\"host\":\"")) return false;
  if (!s.quad(key.host)) return false;
  std::uint64_t seq = 0;
  if (!s.lit("\",\"seq\":") || !s.num(seq) || seq > 0xffffffffULL) {
    return false;
  }
  key.seq = static_cast<std::uint32_t>(seq);
  if (!s.lit(",\"ev\":\"")) return false;
  if (s.lit("span\"")) {
    if (!has_dur || !s.lit(",\"name\":") || !s.jstr() ||
        !s.lit(",\"status\":") || !s.jstr()) {
      return false;
    }
  } else if (s.lit("send\"") || s.lit("recv\"")) {
    if (has_dur || !s.lit(",\"line\":") || !s.jstr()) return false;
  } else {
    return false;
  }
  return s.lit("}") && s.done();
}

/// Fast parse of a timeline_host_line fact; nullopt falls back to the
/// generic JSON path (the projection doesn't echo input bytes, so this
/// only needs to accept the canonical form, not prove it).
std::optional<obs::TimelineHost> scan_timeline_host_line(
    std::string_view line) {
  LineScanner s(line);
  obs::TimelineHost host;
  std::uint64_t ip = 0;
  if (s.lit("{\"k\":\"host\",\"gi\":") && s.num(host.global_index) &&
      s.lit(",\"ip\":") && s.num(ip) && ip <= 0xffffffffULL &&
      s.lit(",\"enumerated\":") && s.boolean(host.enumerated) &&
      s.lit(",\"dur\":") && s.num(host.duration_us) &&
      s.lit(",\"connected\":") && s.boolean(host.connected) &&
      s.lit(",\"ftp\":") && s.boolean(host.ftp_compliant) &&
      s.lit(",\"anon\":") && s.boolean(host.anonymous) &&
      s.lit(",\"err\":") && s.boolean(host.errored) && s.lit(",\"req\":") &&
      s.num(host.requests) && s.lit(",\"retry\":") && s.num(host.retries) &&
      s.lit("}") && s.done()) {
    host.ip = static_cast<std::uint32_t>(ip);
    return host;
  }
  return std::nullopt;
}

/// Fast parse of a timeline_scan_series_line fact; nullopt falls back.
std::optional<std::vector<obs::TimelineScanSample>> scan_scan_series_line(
    std::string_view line) {
  LineScanner s(line);
  if (!s.lit("{\"k\":\"scan\",\"samples\":[")) return std::nullopt;
  std::vector<obs::TimelineScanSample> series;
  if (!s.lit("]}")) {
    for (;;) {
      obs::TimelineScanSample sample;
      if (!s.lit("[") || !s.num(sample.boundary) || !s.lit(",") ||
          !s.num(sample.elements) || !s.lit(",") || !s.num(sample.probed) ||
          !s.lit(",") || !s.num(sample.responsive) || !s.lit(",") ||
          !s.num(sample.retransmits) || !s.lit("]")) {
        return std::nullopt;
      }
      series.push_back(sample);
      if (s.lit(",")) continue;
      if (s.lit("]}")) break;
      return std::nullopt;
    }
  }
  if (!s.done()) return std::nullopt;
  return series;
}

/// Stage walls to stderr when FTPCMERGE_TIMING is set — for chasing merge
/// regressions against the bench_process_shard gate.
class StageTimer {
 public:
  StageTimer() : enabled_(std::getenv("FTPCMERGE_TIMING") != nullptr) {}
  void mark(const char* stage) {
    if (!enabled_) return;
    const auto now = std::chrono::steady_clock::now();
    std::fprintf(stderr, "ftpcmerge: %-10s %8.3fms\n", stage,
                 std::chrono::duration<double, std::milli>(now - last_)
                     .count());
    last_ = now;
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point last_ =
      std::chrono::steady_clock::now();
};


// --- Shared reducer state ---------------------------------------------------

/// Everything the per-channel reducers need, built once after the manifest
/// gate. `owner[shard]` maps a shard id to its input-directory index.
struct MergeContext {
  const std::vector<std::string>& shard_dirs;
  const std::string& out_dir;
  const MergeOptions& options;
  const std::vector<ShardManifest>& manifests;
  const std::vector<int>& owner;
  MergeResult& result;
  StreamBudget budget;

  const ShardManifest& first() const { return manifests.front(); }
  std::uint32_t total_shards() const { return manifests.front().total_shards; }
  const ShardManifest& manifest(std::uint32_t shard) const {
    return manifests[static_cast<std::size_t>(owner[shard])];
  }
  std::string shard_path(std::uint32_t shard, const char* file) const {
    return shard_dirs[static_cast<std::size_t>(owner[shard])] + "/" + file;
  }
};

/// A streaming reducer's verdict. kFallback defers to the materializing
/// reducer, which re-reads the channel from scratch — that keeps every
/// first-divergence diagnostic the corruption suite pins in exactly one
/// place. kFail means ctx.result.error is already set (only used where the
/// streamed scan provably mirrors the materializing acceptance).
enum class StreamStatus { kOk, kFallback, kFail };

// --- Records ----------------------------------------------------------------
// Streaming shape: pass 1 validates every frame through a bounded
// FrameReader (identical acceptance to the materializing scan) and keeps a
// fixed-size sort key per record — (ip, shard, index) plus the frame's
// file location. Pass 2 re-reads the frames in canonical order and copies
// them verbatim. Peak buffered bytes are O(shards x buffer) + one max
// frame; the per-record residual is the 24-byte key, not the frame.

StreamStatus merge_records_streamed(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  struct FrameKey {
    std::uint32_t ip;
    std::uint32_t shard;
    std::uint32_t index;
    std::uint64_t offset;
    std::uint32_t size;
  };
  std::vector<FrameKey> keys;
  const std::string records_header = dataset_file_header();
  std::uint32_t max_frame = 0;
  for (std::uint32_t shard = 0; shard < ctx.total_shards(); ++shard) {
    const std::string path = ctx.shard_path(shard, kShardRecordsFile);
    FrameReader reader(&ctx.budget, ctx.options.buffer_bytes);
    if (!reader.open(path, records_header)) {
      result.error = path + ": cannot read (missing or bad FTPD header)";
      return StreamStatus::kFail;
    }
    std::uint32_t index = 0;
    for (;;) {
      const FrameReader::Status status = reader.next();
      if (status == FrameReader::Status::kFrame) {
        keys.push_back(
            {reader.ip(), shard, index, reader.offset(), reader.frame_size()});
        ++index;
        continue;
      }
      if (status == FrameReader::Status::kEof) break;
      if (status == FrameReader::Status::kTorn) {
        result.error = path + ": truncated after " + std::to_string(index) +
                       " record(s)";
        return StreamStatus::kFail;
      }
      return StreamStatus::kFallback;  // mid-file read error: re-derive
    }
    if (index != ctx.manifest(shard).records) {
      result.error = path + ": holds " + std::to_string(index) +
                     " record(s) but the manifest declares " +
                     std::to_string(ctx.manifest(shard).records);
      return StreamStatus::kFail;
    }
    if (reader.max_frame_size() > max_frame) {
      max_frame = reader.max_frame_size();
    }
  }
  // The same canonical order ShardMergeSink replays: ascending (IP, shard,
  // index). Scanned addresses are unique across shards, so a repeated IP
  // means overlapping slices — reject it.
  std::sort(keys.begin(), keys.end(),
            [](const FrameKey& a, const FrameKey& b) {
              if (a.ip != b.ip) return a.ip < b.ip;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.index < b.index;
            });
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i].ip == keys[i - 1].ip) {
      result.error = "duplicate host " + Ipv4(keys[i].ip).str() +
                     " in shard " + std::to_string(keys[i - 1].shard) +
                     " and shard " + std::to_string(keys[i].shard) +
                     " (overlapping slices?)";
      return StreamStatus::kFail;
    }
  }
  std::vector<std::unique_ptr<FrameFetcher>> fetchers(ctx.total_shards());
  for (std::uint32_t shard = 0; shard < ctx.total_shards(); ++shard) {
    fetchers[shard] = std::make_unique<FrameFetcher>();
    if (!fetchers[shard]->open(ctx.shard_path(shard, kShardRecordsFile))) {
      result.error =
          ctx.shard_path(shard, kShardRecordsFile) + ": read failed";
      return StreamStatus::kFail;
    }
  }
  BufferedWriter writer(&ctx.budget, ctx.options.buffer_bytes);
  const std::string out_path = ctx.out_dir + "/" + kShardRecordsFile;
  if (!writer.open(out_path)) {
    result.error = out_path + ": write failed";
    return StreamStatus::kFail;
  }
  writer.append(records_header);
  std::string scratch;
  ctx.budget.add(max_frame);  // the copy pass's reusable frame buffer
  for (const FrameKey& key : keys) {
    if (!fetchers[key.shard]->fetch(key.offset, key.size, scratch)) {
      result.error =
          ctx.shard_path(key.shard, kShardRecordsFile) + ": read failed";
      return StreamStatus::kFail;
    }
    writer.append(scratch);
  }
  ctx.budget.release(max_frame);
  if (!writer.close()) {
    result.error = out_path + ": write failed";
    return StreamStatus::kFail;
  }
  result.records = keys.size();
  result.frame_index_bytes = keys.size() * sizeof(FrameKey);
  return StreamStatus::kOk;
}

bool merge_records_materialized(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  // Frames are never decoded here: every frame carries an FNV-1a checksum
  // of its body, and a frame that verifies was produced by our own
  // encoder, so copying it verbatim IS the canonical re-encoding. The
  // scan mirrors DatasetReader's acceptance exactly — bad header, torn
  // frame, and checksum damage produce the same diagnostics.
  struct FrameRef {
    std::uint32_t ip;
    std::uint32_t shard;
    std::uint32_t index;
    std::string_view frame;  // length prefix + body + checksum, verbatim
  };
  std::vector<std::string> records_texts(ctx.total_shards());
  std::vector<FrameRef> frames;
  std::size_t frames_bytes = 0;
  const std::string records_header = dataset_file_header();
  for (std::uint32_t shard = 0; shard < ctx.total_shards(); ++shard) {
    const std::string path = ctx.shard_path(shard, kShardRecordsFile);
    auto text = read_file(path);
    if (!text || text->size() < records_header.size() ||
        std::memcmp(text->data(), records_header.data(),
                    records_header.size()) != 0) {
      result.error = path + ": cannot read (missing or bad FTPD header)";
      return false;
    }
    records_texts[shard] = std::move(*text);
    const std::string_view bytes = records_texts[shard];
    std::size_t cursor = records_header.size();
    std::uint32_t index = 0;
    for (;;) {
      // Fewer than 4 trailing bytes is a clean EOF, as in DatasetReader.
      if (bytes.size() - cursor < sizeof(std::uint32_t)) break;
      std::uint32_t length = 0;
      std::memcpy(&length, bytes.data() + cursor, sizeof(length));
      const std::size_t frame_size =
          sizeof(length) + length + sizeof(std::uint64_t);
      std::uint64_t checksum = 0;
      const bool intact =
          length >= sizeof(std::uint32_t) && length <= (64u << 20) &&
          bytes.size() - cursor >= frame_size &&
          (std::memcpy(&checksum,
                       bytes.data() + cursor + sizeof(length) + length,
                       sizeof(checksum)),
           checksum ==
               fnv1a64(bytes.substr(cursor + sizeof(length), length)));
      if (!intact) {
        result.error = path + ": truncated after " + std::to_string(index) +
                       " record(s)";
        return false;
      }
      std::uint32_t ip = 0;
      std::memcpy(&ip, bytes.data() + cursor + sizeof(length), sizeof(ip));
      frames.push_back({ip, shard, index, bytes.substr(cursor, frame_size)});
      frames_bytes += frame_size;
      ++index;
      cursor += frame_size;
    }
    if (index != ctx.manifest(shard).records) {
      result.error = path + ": holds " + std::to_string(index) +
                     " record(s) but the manifest declares " +
                     std::to_string(ctx.manifest(shard).records);
      return false;
    }
  }
  // The same canonical order ShardMergeSink replays: ascending (IP, shard,
  // index). Scanned addresses are unique across shards, so a repeated IP
  // means overlapping slices — reject it.
  std::sort(frames.begin(), frames.end(),
            [](const FrameRef& a, const FrameRef& b) {
              if (a.ip != b.ip) return a.ip < b.ip;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.index < b.index;
            });
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].ip == frames[i - 1].ip) {
      result.error = "duplicate host " + Ipv4(frames[i].ip).str() +
                     " in shard " + std::to_string(frames[i - 1].shard) +
                     " and shard " + std::to_string(frames[i].shard) +
                     " (overlapping slices?)";
      return false;
    }
  }
  std::string merged;
  merged.reserve(records_header.size() + frames_bytes);
  merged += records_header;
  for (const FrameRef& frame : frames) {
    merged.append(frame.frame.data(), frame.frame.size());
  }
  const std::string path = ctx.out_dir + "/" + kShardRecordsFile;
  if (!write_file(path, merged)) {
    result.error = path + ": write failed";
    return false;
  }
  result.records = frames.size();
  return true;
}

// --- Metrics ----------------------------------------------------------------
// Commutative sum in shard order. The documents are a few KB regardless of
// corpus size, so the fold reads them whole under both strategies.

bool merge_metrics_channel(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  obs::MetricsRegistry merged;
  for (std::uint32_t shard = 0; shard < ctx.total_shards(); ++shard) {
    const std::string path = ctx.shard_path(shard, kShardMetricsFile);
    const auto text = read_file(path);
    if (!text) {
      result.error = path + ": missing metrics document";
      return false;
    }
    std::string parse_error;
    const auto doc = json::Value::parse(*text, &parse_error);
    if (!doc) {
      result.error = path + ": " + parse_error;
      return false;
    }
    std::string merge_error;
    if (!merge_metrics_document(*doc, merged, &merge_error)) {
      result.error = path + ": " + merge_error;
      return false;
    }
  }
  const std::string path = ctx.out_dir + "/" + kShardMetricsFile;
  if (!write_file(path, merged.to_json())) {
    result.error = path + ": write failed";
    return false;
  }
  return true;
}

// --- Trace ------------------------------------------------------------------
// Each shard's trace.jsonl came out of TraceBuffer::to_jsonl, so its lines
// are already in canonical (t, host, seq) order and canonical bytes; hosts
// never repeat across shards. The merged file is therefore exactly a k-way
// merge of the input lines, which the streaming reducer performs holding
// one line per shard. The strict scanner proves each line canonical as it
// goes; any deviation — non-canonical bytes, out-of-order or colliding
// keys, unreadable input — abandons the stream and the materializing
// reducer re-reads the channel.

StreamStatus merge_trace_streamed(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  const std::uint32_t n = ctx.total_shards();
  // Validate shard headers by schema prefix (a shard written by another
  // build differs only in its build stamp) and write this build's stamped
  // header on the merged stream — the same bytes TraceBuffer::to_jsonl
  // emits, keeping the merge/single-process equivalence byte-exact.
  constexpr std::string_view kTraceHeaderPrefix =
      "{\"schema\":\"ftpc.trace.v1\"";
  struct TraceCursor {
    std::unique_ptr<LineReader> reader;
    std::string_view line;
    TraceKey key;
    bool live = false;
  };
  std::vector<TraceCursor> cursors(n);
  const auto advance = [](TraceCursor& cursor) {
    std::string_view line;
    const LineReader::Status status = cursor.reader->next(line);
    if (status == LineReader::Status::kEof) {
      cursor.live = false;
      return true;
    }
    if (status == LineReader::Status::kError) return false;
    TraceKey key;
    if (!scan_canonical_trace_line(line, key)) return false;
    if (cursor.live && !(cursor.key < key)) return false;  // must ascend
    cursor.line = line;
    cursor.key = key;
    cursor.live = true;
    return true;
  };
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    cursors[shard].reader = std::make_unique<LineReader>(
        &ctx.budget, ctx.options.buffer_bytes);
    std::string_view line;
    if (!cursors[shard].reader->open(ctx.shard_path(shard, kShardTraceFile)) ||
        cursors[shard].reader->next(line) != LineReader::Status::kLine ||
        line.substr(0, kTraceHeaderPrefix.size()) != kTraceHeaderPrefix ||
        !advance(cursors[shard])) {
      return StreamStatus::kFallback;
    }
  }
  BufferedWriter writer(&ctx.budget, ctx.options.buffer_bytes);
  const std::string path = ctx.out_dir + "/" + kShardTraceFile;
  if (!writer.open(path)) {
    result.error = path + ": write failed";
    return StreamStatus::kFail;
  }
  writer.append(obs::trace_header_line());
  writer.append("\n");
  for (;;) {
    int best = -1;
    for (std::uint32_t shard = 0; shard < n; ++shard) {
      if (!cursors[shard].live) continue;
      if (best < 0) {
        best = static_cast<int>(shard);
      } else if (cursors[shard].key == cursors[best].key) {
        return StreamStatus::kFallback;  // cross-shard key collision
      } else if (cursors[shard].key < cursors[best].key) {
        best = static_cast<int>(shard);
      }
    }
    if (best < 0) break;
    writer.append(cursors[best].line);
    writer.append("\n");
    if (!advance(cursors[best])) return StreamStatus::kFallback;
  }
  if (!writer.close()) {
    result.error = path + ": write failed";
    return StreamStatus::kFail;
  }
  return StreamStatus::kOk;
}

bool merge_trace_materialized(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  const std::uint32_t n = ctx.total_shards();
  std::vector<std::string> texts(n);
  std::vector<std::string> paths(n);
  std::vector<std::vector<std::string_view>> shard_lines(n);
  std::size_t trace_bytes = 0;
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    paths[shard] = ctx.shard_path(shard, kShardTraceFile);
    auto text = read_file(paths[shard]);
    if (!text) {
      result.error = paths[shard] + ": missing trace";
      return false;
    }
    trace_bytes += text->size();
    texts[shard] = std::move(*text);
    shard_lines[shard] = split_lines(texts[shard]);
    constexpr std::string_view kTraceHeaderPrefix =
        "{\"schema\":\"ftpc.trace.v1\"";
    if (shard_lines[shard].empty() ||
        shard_lines[shard][0].substr(0, kTraceHeaderPrefix.size()) !=
            kTraceHeaderPrefix) {
      result.error = paths[shard] + ":1: missing ftpc.trace.v1 header";
      return false;
    }
  }
  struct KeyedLine {
    TraceKey key;
    std::string_view line;
  };
  std::vector<std::vector<KeyedLine>> keyed(n);
  bool fast = true;
  for (std::uint32_t shard = 0; shard < n && fast; ++shard) {
    const auto& lines = shard_lines[shard];
    keyed[shard].reserve(lines.size());
    for (std::size_t i = 1; i < lines.size(); ++i) {
      TraceKey key;
      if (!scan_canonical_trace_line(lines[i], key) ||
          (!keyed[shard].empty() &&
           !(keyed[shard].back().key < key))) {
        fast = false;
        break;
      }
      keyed[shard].push_back({key, lines[i]});
    }
  }
  bool wrote_fast = false;
  if (fast) {
    std::string out_text;
    out_text.reserve(trace_bytes + 1);
    out_text += obs::trace_header_line();
    out_text.push_back('\n');
    std::vector<std::size_t> cursor(n, 0);
    for (;;) {
      int best = -1;
      for (std::uint32_t shard = 0; shard < n; ++shard) {
        if (cursor[shard] >= keyed[shard].size()) continue;
        const TraceKey& key = keyed[shard][cursor[shard]].key;
        if (best < 0) {
          best = static_cast<int>(shard);
        } else if (key == keyed[best][cursor[best]].key) {
          fast = false;  // cross-shard key collision: resort generically
          break;
        } else if (key < keyed[best][cursor[best]].key) {
          best = static_cast<int>(shard);
        }
      }
      if (!fast || best < 0) break;
      const std::string_view line = keyed[best][cursor[best]].line;
      out_text.append(line.data(), line.size());
      out_text.push_back('\n');
      ++cursor[best];
    }
    if (fast) {
      const std::string path = ctx.out_dir + "/" + kShardTraceFile;
      if (!write_file(path, out_text)) {
        result.error = path + ": write failed";
        return false;
      }
      wrote_fast = true;
    }
  }
  if (!wrote_fast) {
    obs::TraceBuffer merged;
    for (std::uint32_t shard = 0; shard < n; ++shard) {
      const auto& lines = shard_lines[shard];
      for (std::size_t i = 1; i < lines.size(); ++i) {
        const auto value =
            parse_line(lines[i], paths[shard], i + 1, result.error);
        if (!value) return false;
        const auto event = parse_trace_event(*value);
        if (!event) {
          result.error = paths[shard] + ":" + std::to_string(i + 1) +
                         ": malformed trace event";
          return false;
        }
        merged.append(*event);
      }
    }
    const std::string path = ctx.out_dir + "/" + kShardTraceFile;
    if (!write_file(path, merged.to_jsonl())) {
      result.error = path + ": write failed";
      return false;
    }
  }
  return true;
}

// --- Timeline ---------------------------------------------------------------
// The materializing path loads every host fact and calls
// obs::Timeline::project, which sorts sessions by global index and replays
// the canonical window schedule. But the fact files already store hosts in
// ascending global index (shard_slice finalize walks the slice in scan
// order), so a k-way merge of the per-shard streams IS that sorted order —
// the replay can run incrementally, keeping only the concurrency window
// and per-tick deltas, and rows can be emitted as they are computed. The
// projector below is a line-for-line restatement of Timeline::project +
// to_jsonl; the process-shard equivalence matrix pins the two byte-equal.

class StreamingTimelineProjector {
 public:
  StreamingTimelineProjector(std::uint64_t interval_us, std::uint64_t pps,
                             std::uint32_t concurrency)
      : interval_us_(interval_us),
        interval_(std::max<std::uint64_t>(1, interval_us)),
        pps_(pps),
        concurrency_(concurrency),
        cap_(std::max<std::uint32_t>(1, concurrency)) {}

  void add_scan_series(std::vector<obs::TimelineScanSample> series) {
    scan_series_.push_back(std::move(series));
  }

  /// Locks in the scan totals (t0, scan end tick). Every series must be
  /// loaded first — the replay's launch times depend on t0.
  void begin_replay() {
    for (const auto& series : scan_series_) {
      if (series.empty()) continue;
      const obs::TimelineScanSample& last = series.back();
      totals_.elements += last.elements;
      totals_.probed += last.probed;
      totals_.responsive += last.responsive;
      totals_.retransmits += last.retransmits;
    }
    t0_ = pps_ == 0 ? 0 : (totals_.probed + totals_.retransmits) *
                              1'000'000 / pps_;
    scan_end_tick_ = bucket(t0_);
    last_tick_ = scan_end_tick_;
  }

  /// Consumes one host fact; callers feed hosts in ascending global index.
  void add_host(const obs::TimelineHost& host) {
    ++hits_;
    if (!host.enumerated) return;
    ++sessions_;
    std::uint64_t launch = t0_;
    if (window_.size() >= cap_) {
      launch = window_.top();
      window_.pop();
    }
    const std::uint64_t completion = launch + host.duration_us;
    window_.push(completion);
    Delta& at_launch = deltas_[bucket(launch)];
    ++at_launch.launched;
    Delta& at_done = deltas_[bucket(completion)];
    ++at_done.done;
    if (host.connected) ++at_done.connected;
    if (host.ftp_compliant) ++at_done.ftp;
    if (host.anonymous) ++at_done.anonymous;
    if (host.errored) ++at_done.errored;
    at_done.requests += static_cast<std::int64_t>(host.requests);
    at_done.retries += static_cast<std::int64_t>(host.retries);
    last_tick_ = std::max(last_tick_, bucket(completion));
  }

  /// ftpc.tsdb.v1 header + one row per tick, streamed through `out`.
  void emit(BufferedWriter& out) const {
    const std::uint64_t ticks = last_tick_;
    // Byte-for-byte the header Timeline::to_jsonl writes, stamp included.
    std::string line = "{\"schema\":\"ftpc.tsdb.v1\"," +
                       obs::build_info_json();
    line += ",\"interval_us\":" + std::to_string(interval_us_);
    line += ",\"pps\":" + std::to_string(pps_);
    line += ",\"concurrency\":" + std::to_string(concurrency_);
    line += ",\"t0_us\":" + std::to_string(t0_);
    line += ",\"hits\":" + std::to_string(hits_);
    line += ",\"sessions\":" + std::to_string(sessions_);
    line += ",\"ticks\":" + std::to_string(ticks);
    line += "}\n";
    out.append(line);
    if (ticks == 0) return;
    struct SeriesCursor {
      const std::vector<obs::TimelineScanSample>* series;
      std::size_t next = 0;
      obs::TimelineScanSample current{};  // all-zero before the first boundary
    };
    std::vector<SeriesCursor> cursors;
    cursors.reserve(scan_series_.size());
    for (const auto& series : scan_series_) {
      cursors.push_back({&series, 0, {}});
    }
    auto flat = deltas_.begin();
    Delta cum;  // running prefix of the enumeration deltas
    const auto& names = obs::Timeline::gauge_names();
    std::array<std::uint64_t, obs::Timeline::kGaugeCount> gauges{};
    for (std::uint64_t k = 1; k <= ticks; ++k) {
      gauges.fill(0);
      if (k >= scan_end_tick_) {
        // At (and beyond) the canonical scan end, the exact merged totals.
        gauges[obs::Timeline::kScanElements] = totals_.elements;
        gauges[obs::Timeline::kScanProbed] = totals_.probed;
        gauges[obs::Timeline::kScanResponsive] = totals_.responsive;
        gauges[obs::Timeline::kScanRetransmits] = totals_.retransmits;
      } else {
        for (SeriesCursor& cursor : cursors) {
          while (cursor.next < cursor.series->size() &&
                 (*cursor.series)[cursor.next].boundary <= k) {
            cursor.current = (*cursor.series)[cursor.next++];
          }
          gauges[obs::Timeline::kScanElements] += cursor.current.elements;
          gauges[obs::Timeline::kScanProbed] += cursor.current.probed;
          gauges[obs::Timeline::kScanResponsive] += cursor.current.responsive;
          gauges[obs::Timeline::kScanRetransmits] +=
              cursor.current.retransmits;
        }
      }
      while (flat != deltas_.end() && flat->first <= k) {
        const Delta& d = flat->second;
        ++flat;
        cum.launched += d.launched;
        cum.done += d.done;
        cum.connected += d.connected;
        cum.ftp += d.ftp;
        cum.anonymous += d.anonymous;
        cum.errored += d.errored;
        cum.requests += d.requests;
        cum.retries += d.retries;
      }
      gauges[obs::Timeline::kEnumLaunched] =
          static_cast<std::uint64_t>(cum.launched);
      gauges[obs::Timeline::kEnumInFlight] =
          static_cast<std::uint64_t>(cum.launched - cum.done);
      const std::uint64_t discovered =
          k >= scan_end_tick_ ? sessions_ : 0;
      gauges[obs::Timeline::kEnumQueue] =
          discovered - static_cast<std::uint64_t>(cum.launched);
      gauges[obs::Timeline::kEnumDone] = static_cast<std::uint64_t>(cum.done);
      gauges[obs::Timeline::kFunnelConnected] =
          static_cast<std::uint64_t>(cum.connected);
      gauges[obs::Timeline::kFunnelFtp] = static_cast<std::uint64_t>(cum.ftp);
      gauges[obs::Timeline::kFunnelAnonymous] =
          static_cast<std::uint64_t>(cum.anonymous);
      gauges[obs::Timeline::kFunnelErrored] =
          static_cast<std::uint64_t>(cum.errored);
      gauges[obs::Timeline::kFtpRequests] =
          static_cast<std::uint64_t>(cum.requests);
      gauges[obs::Timeline::kRetryCommands] =
          static_cast<std::uint64_t>(cum.retries);
      line = "{\"t\":" + std::to_string(k * interval_);
      for (std::size_t i = 0; i < obs::Timeline::kGaugeCount; ++i) {
        line += ",\"";
        line += names[i];
        line += "\":" + std::to_string(gauges[i]);
      }
      line += "}\n";
      out.append(line);
    }
  }

 private:
  struct Delta {
    std::int64_t launched = 0;
    std::int64_t done = 0;
    std::int64_t connected = 0;
    std::int64_t ftp = 0;
    std::int64_t anonymous = 0;
    std::int64_t errored = 0;
    std::int64_t requests = 0;
    std::int64_t retries = 0;
  };
  struct ScanTotals {
    std::uint64_t elements = 0;
    std::uint64_t probed = 0;
    std::uint64_t responsive = 0;
    std::uint64_t retransmits = 0;
  };

  std::uint64_t bucket(std::uint64_t t) const {
    return (t + interval_ - 1) / interval_;
  }

  std::uint64_t interval_us_;
  std::uint64_t interval_;
  std::uint64_t pps_;
  std::uint32_t concurrency_;
  std::uint32_t cap_;
  std::vector<std::vector<obs::TimelineScanSample>> scan_series_;
  ScanTotals totals_;
  std::uint64_t t0_ = 0;
  std::uint64_t scan_end_tick_ = 0;
  std::uint64_t last_tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t sessions_ = 0;
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      window_;  // min-heap of completion times
  std::map<std::uint64_t, Delta> deltas_;  // tick -> event deltas, sorted
};

StreamStatus merge_timeline_streamed(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  const ShardManifest& first = ctx.first();
  const std::uint32_t n = ctx.total_shards();
  StreamingTimelineProjector projector(first.timeline_interval_us, first.pps,
                                       first.concurrency);
  struct FactCursor {
    std::unique_ptr<LineReader> reader;
    obs::TimelineHost host;
    bool live = false;       // `host` holds this shard's next unconsumed fact
    bool host_seen = false;  // ordering + layout guard
  };
  std::vector<FactCursor> cursors(n);
  const auto advance = [&projector](FactCursor& cursor) {
    for (;;) {
      std::string_view line;
      const LineReader::Status status = cursor.reader->next(line);
      if (status == LineReader::Status::kEof) {
        cursor.live = false;
        return true;
      }
      if (status == LineReader::Status::kError) return false;
      if (const auto host = scan_timeline_host_line(line)) {
        if (cursor.host_seen &&
            !(cursor.host.global_index < host->global_index)) {
          return false;  // not strictly ascending: can't k-way merge
        }
        cursor.host = *host;
        cursor.live = cursor.host_seen = true;
        return true;
      }
      if (auto series = scan_scan_series_line(line)) {
        // A series after a host fact would change t0 mid-replay; only the
        // canonical header/series/hosts layout streams.
        if (cursor.host_seen) return false;
        projector.add_scan_series(std::move(*series));
        continue;
      }
      return false;  // non-canonical fact: re-derive with diagnostics
    }
  };
  constexpr std::string_view kFactsHeader = "{\"schema\":\"ftpc.shardtl.v1\"";
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    cursors[shard].reader = std::make_unique<LineReader>(
        &ctx.budget, ctx.options.buffer_bytes);
    std::string_view line;
    if (!cursors[shard].reader->open(
            ctx.shard_path(shard, kShardTimelineFactsFile)) ||
        cursors[shard].reader->next(line) != LineReader::Status::kLine ||
        line.substr(0, kFactsHeader.size()) != kFactsHeader ||
        !advance(cursors[shard])) {
      return StreamStatus::kFallback;
    }
  }
  projector.begin_replay();
  for (;;) {
    int best = -1;
    for (std::uint32_t shard = 0; shard < n; ++shard) {
      if (!cursors[shard].live) continue;
      if (best < 0) {
        best = static_cast<int>(shard);
      } else if (cursors[shard].host.global_index ==
                 cursors[best].host.global_index) {
        // Equal global indexes would hit the materializing path's unstable
        // sort; don't try to reproduce unspecified behavior.
        return StreamStatus::kFallback;
      } else if (cursors[shard].host.global_index <
                 cursors[best].host.global_index) {
        best = static_cast<int>(shard);
      }
    }
    if (best < 0) break;
    projector.add_host(cursors[best].host);
    if (!advance(cursors[best])) return StreamStatus::kFallback;
  }
  BufferedWriter writer(&ctx.budget, ctx.options.buffer_bytes);
  const std::string path = ctx.out_dir + "/" + kShardTimelineFile;
  if (!writer.open(path)) {
    result.error = path + ": write failed";
    return StreamStatus::kFail;
  }
  projector.emit(writer);
  if (!writer.close()) {
    result.error = path + ": write failed";
    return StreamStatus::kFail;
  }
  return StreamStatus::kOk;
}

bool merge_timeline_materialized(MergeContext& ctx) {
  MergeResult& result = ctx.result;
  const ShardManifest& first = ctx.first();
  obs::TimelineOptions options;
  options.enabled = true;
  options.interval_us = first.timeline_interval_us;
  obs::Timeline merged(options, first.concurrency);
  merged.set_pps(first.pps);
  for (std::uint32_t shard = 0; shard < ctx.total_shards(); ++shard) {
    const std::string path =
        ctx.shard_path(shard, kShardTimelineFactsFile);
    const auto text = read_file(path);
    if (!text) {
      result.error = path + ": missing timeline facts";
      return false;
    }
    const auto lines = split_lines(*text);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i == 0) {
        const auto value = parse_line(lines[i], path, i + 1, result.error);
        if (!value) return false;
        const auto schema = value->str("schema");
        if (!schema || *schema != "ftpc.shardtl.v1") {
          result.error = path + ":1: missing ftpc.shardtl.v1 header";
          return false;
        }
        continue;
      }
      // Canonical fact lines take the strict scanners; anything else
      // falls through to the generic JSON path below (projection output
      // never echoes input bytes, so lenient acceptance is safe here).
      if (const auto host = scan_timeline_host_line(lines[i])) {
        merged.add_host(*host);
        continue;
      }
      if (const auto series = scan_scan_series_line(lines[i])) {
        merged.add_scan_series(*series);
        continue;
      }
      const auto value = parse_line(lines[i], path, i + 1, result.error);
      if (!value) return false;
      const auto kind = value->str("k");
      if (kind && *kind == "scan") {
        const auto series = parse_timeline_scan_series(*value);
        if (!series) {
          result.error = path + ":" + std::to_string(i + 1) +
                         ": malformed scan series";
          return false;
        }
        merged.add_scan_series(*series);
      } else if (kind && *kind == "host") {
        const auto host = parse_timeline_host(*value);
        if (!host) {
          result.error =
              path + ":" + std::to_string(i + 1) + ": malformed host fact";
          return false;
        }
        merged.add_host(*host);
      } else {
        result.error = path + ":" + std::to_string(i + 1) +
                       ": unknown timeline fact kind";
        return false;
      }
    }
  }
  const std::string path = ctx.out_dir + "/" + kShardTimelineFile;
  if (!write_file(path, merged.to_jsonl())) {
    result.error = path + ": write failed";
    return false;
  }
  return true;
}

}  // namespace

MergeResult merge_shard_artifacts(const std::vector<std::string>& shard_dirs,
                                  const std::string& out_dir) {
  return merge_shard_artifacts(shard_dirs, out_dir, MergeOptions{});
}

MergeResult merge_shard_artifacts(const std::vector<std::string>& shard_dirs,
                                  const std::string& out_dir,
                                  const MergeOptions& options) {
  MergeResult result;
  StageTimer timer;
  if (shard_dirs.empty()) {
    result.error = "no shard artifact directories given";
    return result;
  }

  // --- Manifests: the validation gate -------------------------------------
  std::vector<ShardManifest> manifests;
  manifests.reserve(shard_dirs.size());
  for (const std::string& dir : shard_dirs) {
    const std::string path = dir + "/" + kShardManifestFile;
    const auto text = read_file(path);
    if (!text) {
      result.error = path + ": missing manifest (incomplete shard artifact)";
      return result;
    }
    std::string parse_error;
    const auto manifest = ShardManifest::parse(*text, &parse_error);
    if (!manifest) {
      result.error = path + ": " + parse_error;
      return result;
    }
    manifests.push_back(*manifest);
  }
  const ShardManifest& first = manifests.front();
  if (shard_dirs.size() != first.total_shards) {
    result.error = shard_dirs.front() + "/" + kShardManifestFile +
                   ": declares " + std::to_string(first.total_shards) +
                   " shard(s) but " + std::to_string(shard_dirs.size()) +
                   " artifact dir(s) were given";
    return result;
  }
  for (std::size_t i = 1; i < manifests.size(); ++i) {
    const ShardManifest& m = manifests[i];
    const std::string path = shard_dirs[i] + "/" + kShardManifestFile;
    if (m.config_hash != first.config_hash) {
      result.error = path + ": config hash " + std::to_string(m.config_hash) +
                     " does not match " + shard_dirs.front() + " (" +
                     std::to_string(first.config_hash) + ")";
      return result;
    }
    if (m.total_shards != first.total_shards || m.seed != first.seed ||
        m.scale_shift != first.scale_shift ||
        m.has_metrics != first.has_metrics ||
        m.has_trace != first.has_trace ||
        m.has_timeline != first.has_timeline ||
        m.timeline_interval_us != first.timeline_interval_us ||
        m.pps != first.pps || m.concurrency != first.concurrency) {
      result.error = path + ": shard options do not match " +
                     shard_dirs.front();
      return result;
    }
  }
  // Shard ids must be exactly {0..N-1}.
  std::vector<int> owner(first.total_shards, -1);
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    const std::uint32_t shard = manifests[i].shard;
    if (owner[shard] >= 0) {
      result.error = shard_dirs[i] + "/" + kShardManifestFile +
                     ": duplicate shard " + std::to_string(shard) +
                     " (also in " + shard_dirs[owner[shard]] + ")";
      return result;
    }
    owner[shard] = static_cast<int>(i);
  }
  // With N dirs, N declared shards, and no duplicates, every id is present;
  // the loop above is still the source of the "missing shard" diagnostic
  // when the count check is bypassed by a duplicate + absence pair.
  for (std::uint32_t shard = 0; shard < first.total_shards; ++shard) {
    if (owner[shard] < 0) {
      result.error = "missing shard " + std::to_string(shard) + " of " +
                     std::to_string(first.total_shards);
      return result;
    }
  }

  ::mkdir(out_dir.c_str(), 0777);  // EEXIST is fine; writes catch the rest
  result.shards = first.total_shards;
  timer.mark("manifests");

  MergeContext ctx{shard_dirs, out_dir, options, manifests, owner, result};

  // Each channel tries the streaming reducer first, falling back to the
  // materializing one on any non-canonical input. The fallback re-reads
  // from scratch: slower on damaged inputs, but it keeps all acceptance
  // and diagnostics in one implementation per strategy, and the two are
  // pinned byte-equal on everything both accept.
  {
    StreamStatus status = StreamStatus::kFallback;
    if (!options.force_materialize) {
      status = merge_records_streamed(ctx);
      if (status == StreamStatus::kFail) return result;
    }
    if (status == StreamStatus::kOk) {
      result.streamed_records = true;
    } else if (!merge_records_materialized(ctx)) {
      return result;
    }
  }
  timer.mark("records");

  if (first.has_metrics) {
    if (!merge_metrics_channel(ctx)) return result;
    result.wrote_metrics = true;
  }
  timer.mark("metrics");

  if (first.has_trace) {
    StreamStatus status = StreamStatus::kFallback;
    if (!options.force_materialize) {
      status = merge_trace_streamed(ctx);
      if (status == StreamStatus::kFail) return result;
    }
    if (status == StreamStatus::kOk) {
      result.streamed_trace = true;
    } else if (!merge_trace_materialized(ctx)) {
      return result;
    }
    result.wrote_trace = true;
  }
  timer.mark("trace");

  if (first.has_timeline) {
    StreamStatus status = StreamStatus::kFallback;
    if (!options.force_materialize) {
      status = merge_timeline_streamed(ctx);
      if (status == StreamStatus::kFail) return result;
    }
    if (status == StreamStatus::kOk) {
      result.streamed_timeline = true;
    } else if (!merge_timeline_materialized(ctx)) {
      return result;
    }
    result.wrote_timeline = true;
  }
  timer.mark("timeline");

  // Health histories: carry each shard's append-only heartbeat log into
  // the merged artifact as <out>/health/shard-<k>.health.jsonl so the
  // fleet's liveness record is archivable alongside the data it produced
  // (ftpcreport renders it as the fleet-health section). The channel is
  // optional and explicitly non-deterministic — copied verbatim, never
  // merged or canonicalized, and absent histories are not an error.
  bool made_health_dir = false;
  for (std::uint32_t shard = 0; shard < first.total_shards; ++shard) {
    const std::string src =
        shard_dirs[owner[shard]] + "/" + obs::kHealthHistoryFile;
    const auto text = read_file(src);
    if (!text) continue;
    if (!made_health_dir) {
      ::mkdir((out_dir + "/health").c_str(), 0777);
      made_health_dir = true;
    }
    const std::string dst = out_dir + "/health/shard-" +
                            std::to_string(shard) + ".health.jsonl";
    if (!write_file(dst, *text)) {
      result.error = dst + ": write failed";
      return result;
    }
    ++result.health_histories;
  }
  timer.mark("health");

  result.peak_stream_bytes = ctx.budget.peak();
  result.ok = true;
  return result;
}

}  // namespace ftpc::core
