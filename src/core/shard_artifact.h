// Cross-process shard artifacts (ftpc.shard.v1) and their reducer.
//
// A process-level shard run (`ftpcensus census --shard-id k/N`, implemented
// by core/shard_slice.h) emits one self-contained artifact directory:
//
//   manifest.json        ftpc.shard.v1 — config hash, slice bounds, totals.
//                        Written LAST: its presence marks completion.
//   records.ftpd         this shard's host reports (FTPD framing, in the
//                        shard's deterministic completion order)
//   metrics.json         ftpc.metrics.v1 — this shard's metrics delta
//   trace.jsonl          ftpc.trace.v1 — this shard's trace events
//   timeline.jsonl       ftpc.tsdb.v1 — this shard's facts, projected
//   timeline_facts.jsonl ftpc.shardtl.v1 — the raw split-invariant facts
//                        (boundary series + per-host outcomes) the merge
//                        needs; the projected timeline.jsonl cannot be
//                        summed across shards, the facts can
//   journal.jsonl        ftpc.shardjournal.v1 — segment-by-segment replay
//                        log backing checkpoint/resume (shard_slice.h)
//   checkpoint.json      ftpc.ckpt.v1 — last committed cursor, pure in
//                        (config, global element boundary)
//
// merge_shard_artifacts() reduces N such directories into byte-identical
// copies of the single-process artifacts — the cross-process extension of
// the in-process split-invariance contract (see DESIGN.md). The reduction
// is the same one ShardedCensus applies in memory: records sort by unique
// IP, metrics sum, trace events concatenate then canonicalize, timeline
// facts concatenate then project.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "core/census.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace ftpc::core {

// File names inside a shard artifact directory.
inline constexpr const char* kShardManifestFile = "manifest.json";
inline constexpr const char* kShardRecordsFile = "records.ftpd";
inline constexpr const char* kShardMetricsFile = "metrics.json";
inline constexpr const char* kShardTraceFile = "trace.jsonl";
inline constexpr const char* kShardTimelineFile = "timeline.jsonl";
inline constexpr const char* kShardTimelineFactsFile = "timeline_facts.jsonl";
inline constexpr const char* kShardJournalFile = "journal.jsonl";
inline constexpr const char* kShardCheckpointFile = "checkpoint.json";

/// FNV-1a fingerprint of every determinism-relevant CensusConfig field
/// (seed, scale, enumerator options, chaos profile, channel options).
/// Deliberately EXCLUDES the execution layout — shards, threads,
/// checkpoint cadence — so all N shards of one logical census share one
/// hash and the merge can reject mixed-config artifact sets.
std::uint64_t census_config_fingerprint(const CensusConfig& config);

/// manifest.json — the shard's completion record.
struct ShardManifest {
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
  std::uint64_t seed = 0;
  unsigned scale_shift = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t records = 0;  // host reports in records.ftpd
  scan::ScanStats scan;       // this shard's slice totals
  std::uint64_t hosts_enumerated = 0;
  std::uint64_t ftp_compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t sessions_errored = 0;
  bool has_metrics = false;
  bool has_trace = false;
  bool has_timeline = false;
  std::uint64_t timeline_interval_us = 0;
  std::uint64_t pps = 0;
  std::uint32_t concurrency = 0;

  std::string to_json() const;
  static std::optional<ShardManifest> parse(std::string_view text,
                                            std::string* error = nullptr);
};

/// checkpoint.json — ftpc.ckpt.v1. Every field is a pure function of
/// (CensusConfig, boundary_element): the global element boundary fixes the
/// shard-local consumed count, the consumed count fixes the counters, and
/// the per-host purity of reports fixes the committed records bytes. The
/// checkpoint cadence is deliberately NOT part of the state — two runs
/// checkpointing every I and every 2I elements write byte-identical
/// checkpoints at their common boundaries (checkpoint_resume_test pins
/// this).
struct ShardCheckpoint {
  std::uint64_t config_hash = 0;
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
  std::uint64_t boundary_element = 0;   // global element index committed
  std::uint64_t elements_consumed = 0;  // shard-local
  std::uint64_t next_boundary = 1;      // timeline tick cursor
  scan::ScanStats scan;
  std::uint64_t hosts_enumerated = 0;
  std::uint64_t ftp_compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t sessions_errored = 0;
  std::uint64_t records_count = 0;
  std::uint64_t records_bytes = 0;  // committed records.ftpd size, header incl.

  std::string to_json() const;
  static std::optional<ShardCheckpoint> parse(std::string_view text,
                                              std::string* error = nullptr);
};

// --- Fact line codecs (journal + timeline_facts) ---------------------------
// One-line JSON codecs for the split-invariant facts. Writers are
// canonical (fixed key order, integers only) so equal facts give equal
// bytes; parsers accept exactly what the writers emit.

std::string timeline_scan_series_line(
    const std::vector<obs::TimelineScanSample>& series);
std::optional<std::vector<obs::TimelineScanSample>> parse_timeline_scan_series(
    const json::Value& line);

std::string timeline_host_line(const obs::TimelineHost& host);
std::optional<obs::TimelineHost> parse_timeline_host(const json::Value& line);

/// trace.jsonl event line -> TraceEvent (the inverse of
/// obs::TraceBuffer::to_jsonl's per-event rendering, which is lossless:
/// timestamps are session-relative integers and ports are already
/// normalized at record time).
std::optional<obs::TraceEvent> parse_trace_event(const json::Value& line);

/// One journal line for a trace event: the to_jsonl rendering plus a
/// leading "k":"trace" tag. parse_trace_event accepts both shapes.
std::string trace_event_line(const obs::TraceEvent& event);

/// ftpc.metrics.v1 document -> registry merge. Returns false (with a
/// diagnostic) on schema or shape errors.
bool merge_metrics_document(const json::Value& doc,
                            obs::MetricsRegistry& into, std::string* error);

// --- Merge -----------------------------------------------------------------

/// Reduction strategy knobs. The default is the streaming reducer: every
/// channel is consumed through bounded per-shard buffers (core/
/// shard_stream.h) so peak buffered bytes are O(shard count x buffer),
/// independent of corpus size. Canonical artifacts — the only thing our
/// own writers produce — always stream; any non-canonical input silently
/// drops that channel to the materializing path, which keeps the
/// permissive semantics and the first-divergence diagnostics the
/// corruption suite pins. Both strategies are byte-identical on every
/// input they both accept (process_shard_test compares them exhaustively).
struct MergeOptions {
  /// Per-stream chunk size. Lines/frames larger than this spill (and are
  /// accounted); the value changes memory and syscall counts, never bytes.
  std::size_t buffer_bytes = 1 << 20;
  /// Force the legacy whole-file reducer (ftpcmerge --materialize). The
  /// equivalence tests and the bench use this as the reference path.
  bool force_materialize = false;
};

struct MergeResult {
  bool ok = false;
  std::string error;  // first-divergence diagnostic (file + position)
  std::uint64_t shards = 0;
  std::uint64_t records = 0;
  bool wrote_metrics = false;
  bool wrote_trace = false;
  bool wrote_timeline = false;
  /// Shard health histories carried into <out>/health/ (see obs/health.h).
  /// Optional channel: shards run without --heartbeat-interval contribute
  /// nothing and that is not an error.
  std::uint64_t health_histories = 0;
  /// Which channels took the streaming reducer (false after a fallback or
  /// under force_materialize).
  bool streamed_records = false;
  bool streamed_trace = false;
  bool streamed_timeline = false;
  /// High-water mark of live stream-buffer bytes (StreamBudget). This is
  /// the merge's bounded footprint: flat in corpus size at a fixed shard
  /// count and buffer size. Zero when nothing streamed.
  std::uint64_t peak_stream_bytes = 0;
  /// Bytes of the records sort index (a fixed-size key per record — the
  /// one per-record residual the streaming reducer keeps; ~1-2% of the
  /// frame bytes it no longer holds).
  std::uint64_t frame_index_bytes = 0;
};

/// Validates `shard_dirs` as one complete ftpc.shard.v1 set (N distinct
/// shards 0..N-1 of one config hash) and writes the merged single-process
/// artifacts into `out_dir` (created if missing): records.ftpd, and — for
/// each channel the manifests declare — metrics.json, trace.jsonl,
/// timeline.jsonl. On any validation failure (missing/duplicate shard,
/// config-hash mismatch, truncated records, garbled JSON) returns ok=false
/// with a diagnostic naming the first offending file.
MergeResult merge_shard_artifacts(const std::vector<std::string>& shard_dirs,
                                  const std::string& out_dir,
                                  const MergeOptions& options);
MergeResult merge_shard_artifacts(const std::vector<std::string>& shard_dirs,
                                  const std::string& out_dir);

}  // namespace ftpc::core
