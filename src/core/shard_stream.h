// Bounded-buffer I/O primitives for the streaming shard-artifact merge.
//
// merge_shard_artifacts (core/shard_artifact.h) historically materialized
// every input channel — all N records files, all N trace files, all N
// timeline fact files — before reducing them, so its peak RSS was
// O(corpus). The readers and writer here replace those whole-file loads
// with fixed-size chunk buffers so the merge's buffered footprint is
// O(shard count x buffer_bytes) regardless of corpus size:
//
//   LineReader    JSONL lines through one chunk buffer; a line longer than
//                 the chunk spills into a growable side buffer (accounted)
//                 that is reused across lines.
//   FrameReader   FTPD record frames: header check plus per-frame length /
//                 checksum validation with file offsets, mirroring the
//                 materializing scan's acceptance exactly.
//   FrameFetcher  random-access re-read of validated frames for the sorted
//                 copy pass (seek + read into a reusable scratch buffer).
//   BufferedWriter output coalescing with an explicit error state.
//
// Every buffer registers with a StreamBudget, whose high-water mark is the
// merge's reportable peak (MergeResult::peak_stream_bytes) — the number
// bench_merge_stream gates on. Streams use unbuffered stdio so the budget
// is the buffering, not an understatement of it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace ftpc::core {

/// High-water accounting for the live buffer bytes of one merge.
class StreamBudget {
 public:
  void add(std::uint64_t bytes) {
    live_ += bytes;
    if (live_ > peak_) peak_ = live_;
  }
  void release(std::uint64_t bytes) {
    live_ = bytes > live_ ? 0 : live_ - bytes;
  }
  std::uint64_t live() const noexcept { return live_; }
  std::uint64_t peak() const noexcept { return peak_; }

 private:
  std::uint64_t live_ = 0;
  std::uint64_t peak_ = 0;
};

/// Incremental JSONL reader. next() yields lines without their '\n'; the
/// returned view stays valid until the next call on the same reader (the
/// k-way merges hold one current line per shard). A final line without a
/// terminating newline is yielded as a line, matching split_lines().
class LineReader {
 public:
  enum class Status { kLine, kEof, kError };

  LineReader(StreamBudget* budget, std::size_t chunk_bytes);
  ~LineReader();
  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  bool open(const std::string& path);
  Status next(std::string_view& line);

 private:
  StreamBudget* budget_;
  std::size_t chunk_bytes_;
  std::FILE* file_ = nullptr;
  std::string chunk_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::string spill_;  // lines crossing a chunk boundary
  std::uint64_t accounted_ = 0;
  bool eof_ = false;
  bool error_ = false;
};

/// Incremental FTPD frame scanner. open() validates the dataset header;
/// next() validates one frame (length bounds, trailing FNV-1a checksum)
/// and exposes its IP, file offset and size — everything the sorted copy
/// pass needs without keeping the bytes. Acceptance is byte-for-byte the
/// materializing scan's: fewer than 4 trailing bytes is a clean kEof, any
/// other damage is kTorn.
class FrameReader {
 public:
  enum class Status { kFrame, kEof, kTorn, kError };

  FrameReader(StreamBudget* budget, std::size_t chunk_bytes);
  ~FrameReader();
  FrameReader(const FrameReader&) = delete;
  FrameReader& operator=(const FrameReader&) = delete;

  bool open(const std::string& path, std::string_view expected_header);
  Status next();

  std::uint32_t ip() const noexcept { return ip_; }
  /// File offset of the frame's length prefix.
  std::uint64_t offset() const noexcept { return frame_offset_; }
  /// Whole frame: length prefix + body + checksum.
  std::uint32_t frame_size() const noexcept { return frame_size_; }
  std::uint32_t max_frame_size() const noexcept { return max_frame_size_; }

 private:
  bool ensure(std::size_t need);

  StreamBudget* budget_;
  std::size_t chunk_bytes_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  std::uint64_t base_offset_ = 0;  // file offset of buffer_[0]
  std::uint64_t accounted_ = 0;
  bool eof_ = false;
  bool error_ = false;
  std::uint32_t ip_ = 0;
  std::uint64_t frame_offset_ = 0;
  std::uint32_t frame_size_ = 0;
  std::uint32_t max_frame_size_ = 0;
};

/// Seek-and-read access to frames a FrameReader already validated.
class FrameFetcher {
 public:
  FrameFetcher() = default;
  ~FrameFetcher();
  FrameFetcher(const FrameFetcher&) = delete;
  FrameFetcher& operator=(const FrameFetcher&) = delete;

  bool open(const std::string& path);
  /// Reads [offset, offset+size) into `out` (resized to fit).
  bool fetch(std::uint64_t offset, std::uint32_t size, std::string& out);

 private:
  std::FILE* file_ = nullptr;
};

/// Coalescing output writer. Write errors latch: append() keeps accepting
/// bytes after a failure and close() reports it once.
class BufferedWriter {
 public:
  BufferedWriter(StreamBudget* budget, std::size_t buffer_bytes);
  ~BufferedWriter();
  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  bool open(const std::string& path);
  void append(std::string_view bytes);
  /// Flushes and closes; true iff every byte reached the file.
  bool close();

 private:
  bool flush();

  StreamBudget* budget_;
  std::size_t buffer_bytes_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  bool error_ = false;
};

}  // namespace ftpc::core
