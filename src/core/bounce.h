// The PORT-bounce prober (§VII.B).
//
// For each anonymous FTP server, the prober logs in, records the PASV
// address (NAT detection), then sends a PORT command naming a third-party
// address the prober controls and asks for a listing. A server that
// accepts the command *and* dials the third party fails PORT validation —
// the classic FTP bounce primitive (CERT CA-1997-27).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/ipv4.h"
#include "ftp/client.h"
#include "sim/network.h"

namespace ftpc::core {

struct BounceProbeResult {
  Ipv4 ip;
  bool login_ok = false;
  /// The server's 227 address differed from its control address.
  std::optional<Ipv4> pasv_ip;
  /// The PORT command naming our third-party address drew a 2xx.
  bool port_accepted = false;
  /// The server actually connected to the third-party address.
  bool connection_observed = false;
};

struct BounceProberConfig {
  Ipv4 client_ip{141, 212, 120, 31};
  /// The "third party" the server must not be allowed to reach.
  Ipv4 third_party_ip{141, 212, 121, 99};
  std::uint16_t third_party_port = 47000;
  std::uint32_t concurrency = 64;
  sim::SimTime verdict_wait = 5 * sim::kSecond;
};

class BounceProber {
 public:
  BounceProber(sim::Network& network, BounceProberConfig config);

  /// Probes every target; returns one result per target (same order not
  /// guaranteed). Drives the event loop to completion.
  std::vector<BounceProbeResult> run(const std::vector<std::uint32_t>& targets);

 private:
  sim::Network& network_;
  BounceProberConfig config_;
};

}  // namespace ftpc::core
