// The census pipeline: ZMap host discovery followed by a concurrent
// enumeration sweep — the paper's §III data-collection methodology as one
// callable unit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/enumerator.h"
#include "core/records.h"
#include "net/internet.h"
#include "scan/scanner.h"
#include "sim/network.h"

namespace ftpc::core {

struct CensusConfig {
  std::uint64_t seed = 1;
  /// Scan 1/2^scale_shift of the IPv4 space (see DESIGN.md on scaling).
  unsigned scale_shift = 0;
  /// Concurrent enumeration sessions, "spread across a large number of
  /// widely dispersed hosts" (§III.A).
  std::uint32_t concurrency = 64;
  /// Client addresses rotate through this /24.
  Ipv4 client_net{141, 212, 120, 0};
  EnumeratorOptions enumerator;
  /// Debug cap on enumerated hosts (0 = all discovered hosts).
  std::uint64_t max_hosts = 0;
};

struct CensusStats {
  scan::ScanStats scan;
  std::uint64_t hosts_enumerated = 0;
  std::uint64_t ftp_compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t sessions_errored = 0;  // died before completing cleanly
  sim::SimTime virtual_duration = 0;
};

/// Runs the full pipeline synchronously (driving the event loop until all
/// sessions complete). Reports stream into `sink`.
class Census {
 public:
  Census(sim::Network& network, CensusConfig config);

  CensusStats run(RecordSink& sink);

 private:
  sim::Network& network_;
  CensusConfig config_;
};

}  // namespace ftpc::core
