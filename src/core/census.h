// The census pipeline: ZMap host discovery followed by a concurrent
// enumeration sweep — the paper's §III data-collection methodology as one
// callable unit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/enumerator.h"
#include "core/records.h"
#include "net/internet.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "obs/prof.h"
#include "obs/progress.h"
#include "obs/timeline.h"
#include "scan/scanner.h"
#include "sim/chaos.h"
#include "sim/network.h"

namespace ftpc::core {

struct CensusConfig {
  std::uint64_t seed = 1;
  /// Scan 1/2^scale_shift of the IPv4 space (see DESIGN.md on scaling).
  unsigned scale_shift = 0;
  /// Concurrent enumeration sessions, "spread across a large number of
  /// widely dispersed hosts" (§III.A).
  std::uint32_t concurrency = 64;
  /// Client addresses are drawn from this /24, assigned per target by a
  /// pure hash of the target address (so shard decomposition cannot change
  /// which client contacts which host).
  Ipv4 client_net{141, 212, 120, 0};
  EnumeratorOptions enumerator;
  /// SYN retransmit budget per scanned address (scan::ScanConfig).
  std::uint32_t probe_retries = 0;
  /// Chaos engineering (sim::chaos): when enabled, each shard attaches a
  /// private ChaosEngine with this profile for the duration of its run.
  /// Fault plans are a pure hash of (chaos_seed, ip) — never shared RNG
  /// state — so chaos composes with the split-invariance contract.
  bool chaos_enabled = false;
  sim::ChaosProfile chaos;
  /// Seed for the fault-plan hash; 0 = derive from `seed`.
  std::uint64_t chaos_seed = 0;
  /// Debug cap on enumerated hosts (0 = all discovered hosts). Applies per
  /// shard; incompatible with the sharded-vs-sequential equivalence
  /// contract, so leave it 0 when shards > 1.
  std::uint64_t max_hosts = 0;
  /// Disjoint address-space partitions to census (see ShardedCensus).
  std::uint32_t shards = 1;
  /// Worker threads executing those shards (0 = hardware concurrency).
  std::uint32_t threads = 1;
  /// Record deterministic metrics (funnel, net/ftp/enum counters) into
  /// CensusStats::metrics. Off = zero instrumentation cost.
  bool collect_metrics = true;
  /// Deterministic trace spans + wire transcripts into CensusStats::trace
  /// (see obs/trace.h). Disabled costs one null check per probe/session.
  obs::TraceOptions trace;
  /// Optional live progress counters, bumped as hosts finish (display
  /// only; never feeds the deterministic metrics). May be shared across
  /// shards — the fields are atomics.
  obs::ProgressCounters* progress = nullptr;
  /// Deterministic timeline telemetry (obs/timeline.h): sim-time gauge
  /// snapshots into CensusStats::timeline, byte-identical across shard
  /// and thread splits. Off = one null check per probe/session.
  obs::TimelineOptions timeline;
  /// Perf plane (obs/perf.h): real wall/CPU stage attribution and a
  /// per-shard load-skew report into CensusStats::perf. Display/tuning
  /// only — explicitly exempt from the byte-identity contract.
  bool perf_enabled = false;
  /// Profiling plane (obs/prof.h): a hierarchical scope tree under the
  /// perf stages plus subsystem telemetry counters, merged into
  /// CensusStats::prof. Wall-clock data, exempt from byte identity like
  /// perf; off = one null check per guarded scope.
  bool prof_enabled = false;
  /// Health plane (obs/health.h): relaxed liveness gauges the heartbeat
  /// thread snapshots. Store-only from the census side; like perf and
  /// progress, never feeds a deterministic artifact. May be shared across
  /// shards — the fields are atomics.
  obs::HealthState* health = nullptr;
};

struct CensusStats {
  scan::ScanStats scan;
  std::uint64_t hosts_enumerated = 0;
  std::uint64_t ftp_compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t sessions_errored = 0;  // died before completing cleanly
  /// Per shard: that shard's simulated wall clock. Merged: the slowest
  /// shard (shards run concurrently in the simulated world too).
  sim::SimTime virtual_duration = 0;
  std::uint32_t shards_run = 1;
  /// Deterministic observability counters/histograms (funnel accounting,
  /// net/ftp/enum instrumentation). Every entry is a per-host-pure
  /// quantity or an exact shard partition, so the merged registry — and
  /// its JSON — is byte-identical for every (shards, threads) split.
  /// Deliberately excludes virtual_duration, which is shard-dependent.
  obs::MetricsRegistry metrics;
  /// Deterministic trace events (spans + wire transcript). Timestamps are
  /// session-relative and ports are normalized, so after canonicalize()
  /// the merged buffer is byte-identical across shard/thread splits.
  obs::TraceBuffer trace;
  /// Deterministic timeline facts (scan series + per-host outcomes). The
  /// projection/export (to_jsonl) is byte-identical across splits because
  /// every recorded fact is either an exact shard partition (scan series)
  /// or a per-host-pure quantity (session outcomes).
  obs::Timeline timeline;
  /// Perf-plane report (ftpc.perf.v1) — real seconds, shard layout, load
  /// skew. NOT deterministic; never feeds a deterministic artifact.
  obs::PerfReport perf;
  /// Profiling-plane report (ftpc.prof.v1) — the merged scope tree and
  /// telemetry counters. NOT deterministic, same contract as perf.
  obs::ProfReport prof;

  /// Folds another shard's counters into this one. Pure sums except
  /// virtual_duration (max), so the merged value is independent of merge
  /// order up to the commutativity of +/max — i.e. fully deterministic.
  void merge_from(const CensusStats& other) {
    scan.merge_from(other.scan);
    hosts_enumerated += other.hosts_enumerated;
    ftp_compliant += other.ftp_compliant;
    anonymous += other.anonymous;
    sessions_errored += other.sessions_errored;
    virtual_duration = std::max(virtual_duration, other.virtual_duration);
    shards_run += other.shards_run;
    metrics.merge_from(other.metrics);
    trace.merge_from(other.trace);
    timeline.merge_from(other.timeline);
    perf.merge_from(other.perf);
    prof.merge_from(other.prof);
  }
};

/// Drives one enumeration window over `hits` to completion: launches a
/// session per hit through a fixed window of `config.concurrency`, each
/// completion starting the next host; outcomes accumulate into `stats` /
/// `metrics` / `config.progress` and reports stream into `sink`. Shared by
/// Census::run_shard and the checkpointed slice runner (shard_slice.h) —
/// per-host reports are pure in (seed, target), so driving the hits in one
/// window or several consecutive ones yields identical per-host outcomes.
void drive_enumeration_window(sim::Network& network,
                              const CensusConfig& config,
                              const std::vector<std::uint32_t>& hits,
                              CensusStats& stats,
                              obs::MetricsRegistry* metrics, RecordSink& sink,
                              obs::PerfCollector* perf);

/// Runs the full pipeline synchronously (driving the event loop until all
/// sessions complete). Reports stream into `sink`.
class Census {
 public:
  Census(sim::Network& network, CensusConfig config);

  CensusStats run(RecordSink& sink);

  /// Runs this census instance as shard `shard` of `total_shards`: scans
  /// only that shard's slice of the address permutation and enumerates its
  /// hits. `run(sink)` is shard 0 of 1. The caller provides one private
  /// network (and event loop) per shard; ShardedCensus wraps the
  /// multi-shard orchestration.
  CensusStats run_shard(RecordSink& sink, std::uint32_t shard,
                        std::uint32_t total_shards);

 private:
  sim::Network& network_;
  CensusConfig config_;
};

}  // namespace ftpc::core
