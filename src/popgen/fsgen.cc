#include "popgen/fsgen.h"

#include <cstdio>
#include <string>

#include "common/datetime.h"
#include "common/rng.h"

namespace ftpc::popgen {

namespace {

// Virtual "now" for generated content: the paper's scan window.
constexpr std::int64_t kScanTime = 1434672000;  // 2015-06-19 00:00:00 UTC

class FsBuilder {
 public:
  explicit FsBuilder(const FsPlan& plan)
      : plan_(plan),
        rng_(derive_seed(plan.seed, "fsgen")),
        fs_(std::make_shared<vfs::Vfs>()) {}

  std::shared_ptr<vfs::Vfs> build() {
    switch (plan_.fs_template) {
      case FsTemplate::kEmptyShare:
        build_empty_share();
        break;
      case FsTemplate::kHostingWebroot:
        build_hosting_webroot();
        break;
      case FsTemplate::kNasPersonal:
        build_nas_personal();
        break;
      case FsTemplate::kRouterUsbShare:
        build_router_share();
        break;
      case FsTemplate::kPrinterScans:
        build_printer_scans();
        break;
      case FsTemplate::kGenericMirror:
        build_generic_mirror();
        break;
      case FsTemplate::kOsRoot:
        break;  // handled by the os_root flag below
    }

    if (plan_.os_root) add_os_root();
    if (plan_.photos) add_photo_library("/");
    if (plan_.media) add_media_library("/");
    if (plan_.documents) add_documents("/");
    if (plan_.web_backup) add_web_backup("/backup");
    if (plan_.scripting) add_scripting_source();
    add_sensitive_files();
    if (plan_.writable) add_upload_area();
    if (plan_.writable_evidence || plan_.campaign_mask != 0) {
      add_malicious_artifacts();
    }
    if (plan_.has_robots) add_robots();
    return std::move(fs_);
  }

 private:
  // -- primitives -----------------------------------------------------------

  std::int64_t random_mtime() {
    // 2009-01-01 .. scan time.
    return static_cast<std::int64_t>(
        rng_.next_in(1230768000, static_cast<std::uint64_t>(kScanTime)));
  }

  void dir(const std::string& path, std::uint16_t mode = 0755) {
    (void)fs_->mkdir(path, vfs::Mode{mode}, random_mtime());
  }

  void file(const std::string& path, std::uint64_t lo, std::uint64_t hi,
            std::uint16_t mode = 0644, std::string content = {}) {
    vfs::FileAttrs attrs;
    attrs.size = rng_.next_in(lo, hi);
    attrs.mode = vfs::Mode{mode};
    attrs.mtime = random_mtime();
    attrs.content = std::move(content);
    (void)fs_->add_file(path, std::move(attrs));
  }

  std::uint64_t scaled(std::uint64_t n) {
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(n) * plan_.size_scale);
    return v == 0 ? 1 : v;
  }

  std::string seq(const char* fmt, std::uint64_t i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(i));
    return buf;
  }

  // -- templates ------------------------------------------------------------

  void build_empty_share() {
    if (!plan_.exposes_data) {
      if (rng_.chance(0.5)) dir("/share");
      return;
    }
    dir("/share");
    const std::uint64_t n = rng_.next_in(1, 6);
    for (std::uint64_t i = 0; i < n; ++i) {
      file("/share/" + seq("file%03llu.dat", i), 1024, 1 << 20);
    }
  }

  void build_hosting_webroot() {
    if (!plan_.exposes_data) {
      // The common case on shared hosting: login works, docroot is empty
      // or permission-blocked.
      dir("/public_html", rng_.chance(0.5) ? 0750 : 0755);
      return;
    }
    // A handful of vhost docroots, each with an index and assets. The
    // paper found index.html to be the single most common file (~20
    // instances per hosting server that exposes anything).
    const std::uint64_t vhosts = rng_.next_in(2, 8);
    for (std::uint64_t v = 0; v < vhosts; ++v) {
      const std::string root =
          v == 0 ? "/public_html" : seq("/domains/site%02llu", v);
      dir(root);
      file(root + "/index.html", 2048, 65536);
      const std::uint64_t pages = rng_.next_in(2, 12);
      for (std::uint64_t p = 0; p < pages; ++p) {
        file(root + seq("/page%02llu.html", p), 1024, 32768);
      }
      const std::uint64_t images = rng_.next_in(2, 20);
      dir(root + "/images");
      for (std::uint64_t i = 0; i < images; ++i) {
        file(root + "/images/" + seq("img%03llu.gif", i), 1024, 200000);
      }
    }
  }

  void build_nas_personal() {
    if (!plan_.exposes_data) {
      dir("/Public");
      return;
    }
    dir("/Public");
    dir("/Family", 0777);
    const std::uint64_t n = rng_.next_in(3, 25);
    for (std::uint64_t i = 0; i < n; ++i) {
      file("/Public/" + seq("backup-%03llu.bak", i), 40960, 4 << 20);
    }
  }

  void build_router_share() {
    if (!plan_.exposes_data) {
      dir("/sda1");
      return;
    }
    dir("/sda1");
    const std::uint64_t blobs = rng_.next_in(5, 60);
    for (std::uint64_t i = 0; i < blobs; ++i) {
      const bool zip = rng_.chance(0.5);
      file("/sda1/" + seq(zip ? "backup-%03llu.zip" : "backup-%03llu.img", i),
           1 << 20, 200 << 20);
    }
  }

  void build_printer_scans() {
    if (!plan_.exposes_data) {
      dir("/scans");
      return;
    }
    dir("/scans");
    // Scan-to-FTP output: each job lands as PDF or JPEG.
    const std::uint64_t jobs = scaled(rng_.next_in(40, 4000));
    std::uint64_t dir_index = 0;
    for (std::uint64_t i = 0; i < jobs; ++i) {
      if (i % 500 == 0 && i > 0) ++dir_index;
      const std::string base =
          dir_index == 0 ? "/scans" : seq("/scans/archive%02llu", dir_index);
      if (i % 500 == 0 && dir_index > 0) dir(base);
      const bool pdf = rng_.chance(0.07);
      file(base + seq(pdf ? "/scan_2015%04llu.pdf" : "/scan_2015%04llu.jpg",
                      i),
           200000, 9 << 20);
    }
  }

  void build_generic_mirror() {
    if (!plan_.exposes_data) {
      if (rng_.chance(0.4)) dir("/pub");
      return;
    }
    dir("/pub");
    // Flat-ish mirror: heavy-tailed file count, moderate directory count.
    std::uint64_t files = plan_.huge_tree
                              ? rng_.next_in(8'000, 60'000)
                              : (rng_.chance(0.15)
                                     ? rng_.next_in(2'000, 12'000)
                                     : rng_.next_in(40, 800));
    files = scaled(files);
    const std::uint64_t dirs =
        plan_.huge_tree ? rng_.next_in(500, 2'000)
                        : std::max<std::uint64_t>(1, files / 400);
    static constexpr const char* kExts[] = {"tar.gz", "zip", "iso", "txt",
                                            "rpm",    "deb", "pdf", "html"};
    for (std::uint64_t d = 0; d < dirs; ++d) {
      const std::string base =
          d == 0 ? "/pub" : "/pub/" + seq("dist-%04llu", d);
      if (d > 0) dir(base);
      const std::uint64_t here = files / dirs + (d == 0 ? files % dirs : 0);
      for (std::uint64_t i = 0; i < here; ++i) {
        const char* ext = kExts[rng_.next_below(std::size(kExts))];
        file(base + "/" + seq("pkg-%05llu.", i) + ext, 4096, 600 << 20);
      }
    }
    file("/welcome.msg", 128, 2048);
  }

  // -- cross-cutting components ---------------------------------------------

  void add_photo_library(const std::string& under) {
    // Camera-default names in event-labelled directories: the "intimate
    // glimpse into users' personal lives" of §V.A.
    static constexpr const char* kEvents[] = {
        "Wedding",  "Family-Reunion", "Vacation-2014", "Birthday-Party",
        "Holidays", "Kids",           "Camping-Trip",  "Graduation"};
    const std::string root = under == "/" ? "/photos" : under + "/photos";
    dir(root);
    std::uint64_t photos = scaled(rng_.chance(0.2)
                                      ? rng_.next_in(1'200, 3'200)
                                      : rng_.next_in(80, 1'100));
    std::uint64_t emitted = 0;
    std::uint64_t event_idx = 0;
    while (emitted < photos) {
      const std::string event =
          root + "/" + kEvents[event_idx % std::size(kEvents)] +
          (event_idx >= std::size(kEvents) ? seq("-%llu", event_idx) : "");
      dir(event);
      const std::uint64_t here =
          std::min<std::uint64_t>(photos - emitted, rng_.next_in(40, 220));
      const bool canon = rng_.chance(0.5);
      for (std::uint64_t i = 0; i < here; ++i) {
        file(event + "/" +
                 seq(canon ? "IMG_%04llu.JPG" : "DSC_%04llu.jpg",
                     emitted + i),
             1 << 20, 9 << 20);
      }
      // Consumer cameras sprinkle short video clips among the stills.
      if (rng_.chance(0.12)) {
        file(event + "/" + seq("MVI_%04llu.mp4", emitted), 20 << 20,
             300 << 20);
      }
      emitted += here;
      ++event_idx;
    }
  }

  void add_media_library(const std::string& under) {
    const std::string music =
        under == "/" ? "/music" : under + "/music";
    dir(music);
    const std::uint64_t tracks = scaled(rng_.next_in(150, 900));
    std::uint64_t emitted = 0;
    std::uint64_t artist = 0;
    while (emitted < tracks) {
      const std::string adir = music + "/" + seq("Artist-%02llu", artist);
      dir(adir);
      const std::uint64_t here =
          std::min<std::uint64_t>(tracks - emitted, rng_.next_in(8, 30));
      for (std::uint64_t i = 0; i < here; ++i) {
        file(adir + "/" + seq("%02llu-track.mp3", i), 3 << 20, 12 << 20);
      }
      emitted += here;
      ++artist;
    }
    const std::string movies =
        under == "/" ? "/movies" : under + "/movies";
    dir(movies);
    const std::uint64_t films = scaled(rng_.next_in(100, 500));
    for (std::uint64_t i = 0; i < films; ++i) {
      const bool avi = rng_.chance(0.70);
      file(movies + "/" + seq(avi ? "movie-%03llu.avi" : "movie-%03llu.mp4",
                              i),
           300 << 20, 1400ull << 20);
    }
  }

  void add_documents(const std::string& under) {
    const std::string docs =
        under == "/" ? "/documents" : under + "/documents";
    dir(docs);
    const std::uint64_t n = scaled(rng_.next_in(40, 260));
    for (std::uint64_t i = 0; i < n; ++i) {
      const double r = rng_.next_double();
      const char* fmt = r < 0.50   ? "report-%03llu.doc"
                        : r < 0.80 ? "statement-%03llu.pdf"
                                   : "archive-%03llu.zip";
      file(docs + "/" + seq(fmt, i), 20480, 8 << 20);
    }
  }

  void add_web_backup(const std::string& under) {
    dir(under);
    const std::uint64_t pages = scaled(rng_.next_in(30, 120));
    for (std::uint64_t i = 0; i < pages; ++i) {
      file(under + "/" + seq("page-%03llu.html", i), 2048, 65536);
    }
    dir(under + "/assets");
    const std::uint64_t assets = scaled(rng_.next_in(100, 420));
    for (std::uint64_t i = 0; i < assets; ++i) {
      const bool gif = rng_.chance(0.6);
      file(under + "/assets/" + seq(gif ? "asset-%03llu.gif"
                                        : "asset-%03llu.png",
                                    i),
           1024, 400000);
    }
  }

  void add_scripting_source() {
    // Server-side source: 10.2M files over 32K servers (~320/server),
    // .htaccess on ~14% of them (189.4K files over 4.5K servers).
    const std::string root =
        fs_->lookup("/public_html") != nullptr ? "/public_html" : "/www";
    dir(root);
    const std::uint64_t scripts = scaled(rng_.next_in(60, 600));
    const std::uint64_t dirs = std::max<std::uint64_t>(1, scripts / 12);
    for (std::uint64_t d = 0; d < dirs; ++d) {
      const std::string base =
          d == 0 ? root : root + "/" + seq("app%02llu", d);
      if (d > 0) dir(base);
      const std::uint64_t here = scripts / dirs;
      for (std::uint64_t i = 0; i < here; ++i) {
        file(base + "/" + seq("module-%03llu.php", i), 1024, 120000);
      }
      if (plan_.htaccess) {
        file(base + "/.htaccess", 64, 2048, 0644,
             "RewriteEngine On\nRewriteRule ^(.*)$ index.php [QSA,L]\n");
      }
    }
    // Inline secrets: the wp-config-style file with API keys (§V.A).
    file(root + "/wp-config.php", 2048, 4096, 0644,
         "<?php define('DB_PASSWORD', 'hunter2');\n"
         "define('API_KEY', 'AKIASIMULATEDSECRET');\n");
  }

  void add_os_root() {
    switch (plan_.os_root_kind) {
      case 0: {  // Linux
        for (const char* d : {"/bin", "/boot", "/etc", "/var", "/usr",
                              "/home"}) {
          dir(d);
        }
        file("/etc/hostname", 8, 64);
        file("/etc/passwd", 1024, 4096);
        file("/bin/busybox", 1 << 20, 2 << 20, 0755);
        file("/boot/vmlinuz", 2 << 20, 8 << 20);
        // Most exposed roots do NOT leak /etc/shadow through FTP (the 590
        // shadow servers of Table IX are tracked separately).
        if (rng_.chance(0.05)) {
          file("/etc/shadow", 512, 2048, 0600);
        }
        break;
      }
      case 1: {  // Windows
        for (const char* d :
             {"/Windows", "/Program Files", "/Users",
              "/Documents and Settings"}) {
          dir(d);
        }
        file("/Windows/explorer.exe", 1 << 20, 4 << 20);
        file("/Users/Public/desktop.ini", 128, 512);
        break;
      }
      default: {  // OS X
        for (const char* d :
             {"/Applications", "/Library", "/Users", "/bin", "/var"}) {
          dir(d);
        }
        file("/Users/shared/.DS_Store", 4096, 16384);
        break;
      }
    }
  }

  void add_sensitive_files() {
    const std::uint32_t mask = plan_.sensitive_mask;
    if (mask == 0) return;
    auto has = [mask](SensitiveKind k) { return (mask & bit(k)) != 0; };

    if (has(SensitiveKind::kTurboTax)) {
      // ~17.6 files per affected server (Table IX), nearly all readable.
      dir("/documents/taxes");
      const std::uint64_t n = rng_.next_in(6, 30);
      for (std::uint64_t y = 0; y < n; ++y) {
        file("/documents/taxes/" + seq("TurboTax-export-%llu.txf", y), 8192,
             262144, rng_.chance(0.995) ? 0644 : 0600);
      }
    }
    if (has(SensitiveKind::kQuicken)) {
      dir("/documents/finance");
      const std::uint64_t n = rng_.next_in(6, 30);
      for (std::uint64_t i = 0; i < n; ++i) {
        file("/documents/finance/" + seq("household-%llu.qdf", i), 65536,
             4 << 20, rng_.chance(0.995) ? 0644 : 0600);
      }
    }
    if (has(SensitiveKind::kKeePass)) {
      const std::uint64_t n = rng_.next_in(3, 15);
      dir("/documents");
      for (std::uint64_t i = 0; i < n; ++i) {
        file("/documents/" + seq("passwords-%llu.kdbx", i), 4096, 262144,
             rng_.chance(0.97) ? 0644 : 0600);
      }
    }
    if (has(SensitiveKind::kOnePassword)) {
      dir("/documents");
      file("/documents/1Password.agilekeychain", 65536, 1 << 20,
           rng_.chance(0.95) ? 0644 : 0600);
      if (rng_.chance(0.5)) {
        file("/documents/1Password-backup.agilekeychain_zip", 65536, 1 << 20);
      }
    }
    if (has(SensitiveKind::kSshHostKey)) {
      // SSH host keys ride along with config backups; ~90% keep their
      // restrictive 0600 bits (Table IX: 1,427 of 1,597 non-readable).
      dir("/backup/etc/ssh");
      const std::uint64_t n = rng_.next_in(1, 3);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint16_t mode = rng_.chance(0.90) ? 0600 : 0644;
        file("/backup/etc/ssh/" + seq("ssh_host_rsa_key.%llu", i), 1024,
             4096, mode);
        file("/backup/etc/ssh/" + seq("ssh_host_rsa_key.%llu.pub", i), 256,
             1024);
      }
    }
    if (has(SensitiveKind::kPuttyKey)) {
      dir("/documents/keys");
      const std::uint64_t n = rng_.next_in(1, 3);
      for (std::uint64_t i = 0; i < n; ++i) {
        file("/documents/keys/" + seq("server-login-%llu.ppk", i), 1024,
             4096, rng_.chance(0.80) ? 0644 : 0600);
      }
    }
    if (has(SensitiveKind::kPrivPem)) {
      dir("/backup/certs");
      const std::uint64_t n = rng_.next_in(1, 4);
      for (std::uint64_t i = 0; i < n; ++i) {
        file("/backup/certs/" + seq("server-%llu-priv.pem", i), 1024, 8192,
             rng_.chance(0.95) ? 0644 : 0600);
      }
    }
    if (has(SensitiveKind::kShadow)) {
      // Unix password databases in config backups; about two-thirds keep
      // root-only bits (Table IX: 473 of 718).
      dir("/backup/etc");
      file("/backup/etc/shadow", 512, 4096,
           rng_.chance(0.66) ? 0600 : 0644);
      if (rng_.chance(0.15)) {
        file("/backup/etc/shadow.bak", 512, 4096, 0644);
      }
    }
    if (has(SensitiveKind::kPst)) {
      // Outlook mailboxes: ~5 per affected server; one outlier company
      // backup held 688 (§V.A).
      dir("/mail-archive");
      const std::uint64_t n =
          rng_.chance(0.004) ? 688 : rng_.next_in(1, 10);
      for (std::uint64_t i = 0; i < n; ++i) {
        file("/mail-archive/" + seq("mailbox-%03llu.pst", i), 10 << 20,
             900 << 20, rng_.chance(0.98) ? 0644 : 0600);
      }
    }
  }

  void add_upload_area() {
    dir("/incoming", 0777);
  }

  void add_malicious_artifacts() {
    const std::uint32_t mask = plan_.campaign_mask;
    auto has = [mask](Campaign c) { return (mask & bit(c)) != 0; };

    if (plan_.writable_evidence) {
      // At least one probe artifact marks the server as world-writable for
      // the reference-set detector (§VI.A).
      if (has(Campaign::kProbeW0t) || mask == 0) {
        file("/incoming/w0000000t.txt", 0, 0, 0666, "Anonymous");
        if (rng_.chance(0.3)) {
          file("/incoming/w0000000t.php", 0, 0, 0666, "Anonymous");
        }
        // The rename-on-conflict trail of repeated probing.
        if (rng_.chance(0.35)) {
          file("/incoming/w0000000t.txt.1", 0, 0, 0666, "Anonymous");
        }
        if (rng_.chance(0.15)) {
          file("/incoming/w0000000t.txt.2", 0, 0, 0666, "Anonymous");
        }
      }
      if (has(Campaign::kProbeSjutd)) {
        file("/incoming/sjutd.txt", 0, 0, 0666, "test");
      }
      if (has(Campaign::kProbeHello)) {
        file("/incoming/hello.world.txt", 0, 0, 0666,
             "aGVsbG8gd29ybGQ=");  // small base64 blob, as observed
      }
    }

    if (has(Campaign::kFtpchk3)) {
      // Stages 1-3 of the four-stage campaign (§VI.B).
      file("/incoming/ftpchk3.txt", 0, 0, 0666, "ftpchk3");
      if (rng_.chance(0.7)) {
        file("/incoming/ftpchk3.php", 0, 0, 0666, "<?php echo 'OK'; ?>");
      }
      if (rng_.chance(0.4)) {
        file("/ftpchk3.php", 0, 0, 0666,
             "<?php echo phpversion(); print_r(get_loaded_extensions());");
      }
    }
    if (has(Campaign::kHolyBible)) {
      file("/Holy-Bible.html", 0, 0, 0666,
           "<html><!-- holy bible seo tag --></html>");
      if (rng_.chance(0.6)) {
        file("/index.php", 0, 0, 0666,
             "<?php /* injected href farm */ ?>");
      }
    }
    if (has(Campaign::kDdosHistory)) {
      file("/history.php", 0, 0, 0666,
           "<?php $t=$_GET['t'];$p=$_GET['p'];$l=$_GET['l'];"
           "/* 65kB UDP flood loop */ ?>");
    }
    if (has(Campaign::kDdosPhz)) {
      file("/phzLtoxn.php", 0, 0, 0666,
           "<?php /* UDP flood: host,port,time from GET */ ?>");
    }
    if (has(Campaign::kRat)) {
      // Sprayed across the tree hoping to land inside a web root.
      const std::uint64_t copies = rng_.next_in(3, 14);
      for (std::uint64_t i = 0; i < copies; ++i) {
        const std::string where =
            i == 0 ? "/x.php"
                   : "/" + seq("dir%02llu", i) + "/x.php";
        if (i > 0) dir("/" + seq("dir%02llu", i), 0777);
        file(where, 0, 0, 0666, "<?php eval($_POST[5]);?>");
      }
    }
    if (has(Campaign::kCrackFlier)) {
      file("/incoming/keygen-service.pdf", 20480, 200000, 0666,
           "We make keygens and dongle emulators. Bitmessage us. $300/$500");
      if (rng_.chance(0.6)) {
        file("/incoming/keygen-service.ps", 20480, 200000, 0666,
             "%!PS cracking service flier");
      }
    }
    if (has(Campaign::kWarez)) {
      // Date-stamped transport directories, frequently already emptied.
      const std::uint64_t n = rng_.next_in(1, 6);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::int64_t when =
            kScanTime - static_cast<std::int64_t>(
                            rng_.next_in(0, 300 * 86400ull));
        const CivilDateTime c = civil_from_unix(when);
        char name[32];
        std::snprintf(name, sizeof(name), "%02d%02d%02d%02d%02d%02dp",
                      c.year % 100, c.month, c.day, c.hour, c.minute,
                      c.second);
        const std::string base = std::string("/incoming/") + name;
        dir(base, 0777);
        if (rng_.chance(0.30)) {
          const std::uint64_t files = rng_.next_in(1, 20);
          for (std::uint64_t f = 0; f < files; ++f) {
            file(base + "/" + seq("release-%02llu.rar", f), 50 << 20,
                 700ull << 20, 0666);
          }
        }
      }
    }
  }

  void add_robots() {
    std::string content;
    if (plan_.robots_full_exclusion) {
      content = "User-agent: *\nDisallow: /\n";
    } else {
      content = "User-agent: *\nDisallow: /private/\nDisallow: /tmp/\n";
      dir("/private");
      file("/private/secret-notes.txt", 1024, 8192);
    }
    file("/robots.txt", 0, 0, 0644, std::move(content));
  }

  const FsPlan& plan_;
  Xoshiro256ss rng_;
  std::shared_ptr<vfs::Vfs> fs_;
};

}  // namespace

std::shared_ptr<vfs::Vfs> build_filesystem(const FsPlan& plan) {
  return FsBuilder(plan).build();
}

}  // namespace ftpc::popgen
