// The population calibration: every paper-derived rate in one place.
//
// build_calibration() produces the full synthetic-Internet specification:
// the AS list (Table VI's top-10 verbatim, a heavy-tailed head/middle/tail
// for Figure 1 and Table III), per-AS device-mix profiles, and per-AS
// overrides (anonymous rate, FTPS rate, provider certificate CN).
//
// The "residual" profile is solved numerically: after head ASes consume
// their share of each device template, whatever remains of each template's
// global target (Tables II, IV, V, VII and the software totals behind
// Table XI) is spread across the middle and tail ASes. This keeps the
// global marginals pinned to the paper while letting individual ASes look
// like real networks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/as_table.h"

namespace ftpc::popgen {

struct Profile {
  std::string name;
  /// (device template key, unnormalized weight) pairs.
  std::vector<std::pair<std::string, double>> mix;
};

struct AsSpec {
  std::uint32_t asn = 0;
  std::string name;
  net::AsType type = net::AsType::kOther;
  std::uint64_t advertised = 0;  // addresses this AS announces
  std::uint64_t ftp_target = 0;  // expected FTP servers in this AS
  std::uint32_t profile = 0;     // index into Calibration::profiles

  /// Overrides applied to every host materialized in this AS.
  std::optional<double> anon_override;
  std::optional<double> ftps_override;
  /// CN for hosts whose template uses CertPolicy::kProviderWildcard.
  std::string provider_cert_cn;
  bool provider_cert_trusted = true;
};

struct Calibration {
  std::vector<Profile> profiles;
  std::vector<AsSpec> ases;

  /// P(host has FTP on port 21) for an address inside AS `i`.
  double ftp_density(std::uint32_t as_index) const {
    const AsSpec& as_spec = ases[as_index];
    if (as_spec.advertised == 0) return 0.0;
    return static_cast<double>(as_spec.ftp_target) /
           static_cast<double>(as_spec.advertised);
  }

  std::uint64_t total_ftp_target() const;
  std::uint64_t total_advertised() const;
};

/// Builds the calibrated population spec. Deterministic in `seed` (the seed
/// shapes only the synthetic middle/tail AS sizes, not the paper-derived
/// head).
Calibration build_calibration(std::uint64_t seed);

/// Lays the calibration's ASes out over the non-reserved IPv4 space.
net::AsTable build_as_table(const Calibration& calibration);

}  // namespace ftpc::popgen
