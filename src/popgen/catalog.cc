#include "popgen/catalog.h"

#include <cassert>
#include <unordered_map>

namespace ftpc::popgen {

std::string_view device_class_name(DeviceClass c) noexcept {
  switch (c) {
    case DeviceClass::kGenericServer:
      return "Generic Server";
    case DeviceClass::kHostedServer:
      return "Hosted Server";
    case DeviceClass::kNas:
      return "NAS";
    case DeviceClass::kHomeRouter:
      return "Home Router";
    case DeviceClass::kPrinter:
      return "Printer";
    case DeviceClass::kProviderCpe:
      return "Provider CPE";
    case DeviceClass::kOtherEmbedded:
      return "Other Embedded";
    case DeviceClass::kUnknown:
      return "Unknown";
  }
  return "?";
}

namespace {

// Shorthand builders keep the table below readable.
DeviceTemplate software(std::string key, std::string display,
                        std::string impl, std::string banner,
                        std::vector<VersionChoice> versions) {
  DeviceTemplate t;
  t.key = std::move(key);
  t.display_name = std::move(display);
  t.device_class = DeviceClass::kGenericServer;
  t.implementation = std::move(impl);
  t.banner = std::move(banner);
  t.versions = std::move(versions);
  return t;
}

DeviceTemplate device(std::string key, std::string display, DeviceClass cls,
                      std::string banner, double anon_p) {
  DeviceTemplate t;
  t.key = std::move(key);
  t.display_name = std::move(display);
  t.device_class = cls;
  t.banner = std::move(banner);
  t.anon_probability = anon_p;
  return t;
}

std::vector<DeviceTemplate> build_catalog() {
  std::vector<DeviceTemplate> out;

  // =========================================================================
  // Generic server software. Version weights are calibrated so that, at the
  // population sizes set in calibration.cc, the CVE-vulnerable version
  // counts reproduce Table XI.
  // =========================================================================
  {
    // ProFTPD: ~1.4M generic + ~0.4M Plesk-hosted (below) = 1.8M total.
    // Table XI: CVE-2015-3306 300,931 (1.3.5); CVE-2012-6095 1,098,629
    // (<= 1.3.4d); CVE-2011-4130/-1137 646,072 (<= 1.3.3g);
    // CVE-2013-4359 24,420 (1.3.4d).
    auto t = software(
        "proftpd", "ProFTPD", "ProFTPD",
        "220 ProFTPD {version} Server (ProFTPD Default Installation) [{ip}]",
        {{"1.3.5", 0.1672}, {"1.3.5a", 0.2219}, {"1.3.4a", 0.2378},
         {"1.3.4d", 0.0136}, {"1.3.3g", 0.3595}});
    t.anon_probability = 0.140;
    t.writable_given_anon = 0.028;
    t.ftps_probability = 0.28;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.18;
    t.port_validation_failure = 0.012;
    t.fs_template = FsTemplate::kGenericMirror;
    t.feat_lines = {"LANG en-US", "MDTM", "MFMT", "SIZE", "AUTH TLS"};
    out.push_back(std::move(t));
  }
  {
    // vsftpd: 1.45M. Table XI: CVE-2015-1419 658,767 (<= 3.0.2);
    // CVE-2011-0762 125,090 (<= 2.3.2).
    auto t = software("vsftpd", "vsftpd", "vsFTPd",
                      "220 (vsFTPd {version})",
                      {{"2.0.5", 0.0431}, {"2.3.2", 0.0432},
                       {"2.3.5", 0.1840}, {"3.0.2", 0.1841},
                       {"3.0.3", 0.5456}});
    t.anon_probability = 0.125;
    t.writable_given_anon = 0.025;
    t.ftps_probability = 0.19;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.12;
    t.port_validation_failure = 0.004;
    t.user_styles.reject_in_331 = 0.06;  // 331-text rejection quirk
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // FileZilla Server: 409K. Every release from 2003 to May 2015 fails
    // PORT validation; 0.9.41 dominates the 2015 population.
    auto t = software("filezilla", "FileZilla Server", "FileZilla",
                      "220-FileZilla Server version {version} beta\n"
                      "220 written by Tim Kosse (Tim.Kosse@gmx.de)",
                      {{"0.9.41", 0.94}, {"0.9.53", 0.06}});
    t.syst_reply = "UNIX emulated by FileZilla";
    t.anon_probability = 0.022;
    t.writable_given_anon = 0.045;
    t.port_validation_failure = 0.94;
    t.ftps_probability = 0.14;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.05;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // Serv-U: 400K; CVE-2011-4800 244,060 (<= 11.1.0.5). Ships a default
    // "ftp.Serv-U.com" certificate (Table XII row 6).
    auto t = software("servu", "Serv-U", "Serv-U",
                      "220 Serv-U FTP Server v{version} ready for new user",
                      {{"11.1.0.3", 0.6102}, {"15.1.2", 0.3898}});
    t.listing_format = vfs::ListingFormat::kWindows;
    t.syst_reply = "UNIX Type: L8";
    t.anon_probability = 0.029;
    t.writable_given_anon = 0.032;
    t.ftps_probability = 0.0655;
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "ftp.Serv-U.com";
    t.cert_trusted = false;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // Microsoft IIS FTP: 900K, Windows listing, no version in banner.
    auto t = software("msftp", "Microsoft FTP Service", "",
                      "220 Microsoft FTP Service", {});
    t.listing_format = vfs::ListingFormat::kWindows;
    t.syst_reply = "Windows_NT";
    t.anon_probability = 0.080;
    t.writable_given_anon = 0.035;
    t.ftps_probability = 0.16;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.18;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // Pure-FTPd (generic, version hidden): 600K. The approval-gated
    // anonymous-upload behaviour (§VI.A) is a Pure-FTPd trademark.
    auto t = software(
        "pureftpd", "Pure-FTPd", "Pure-FTPd",
        "220---------- Welcome to Pure-FTPd [privsep] [TLS] ----------\n"
        "220 You will be disconnected after 15 minutes of inactivity.",
        {});
    t.anon_probability = 0.115;
    t.writable_given_anon = 0.032;
    t.uploads_need_approval_given_writable = 0.90;
    t.ftps_probability = 0.42;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.10;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // Pre-2011 Pure-FTPd still showing a version: the 3.3K servers behind
    // Table XI's CVE-2011-1575 / CVE-2011-0418 rows.
    auto t = software("pureftpd-old", "Pure-FTPd (old)", "Pure-FTPd",
                      "220 Welcome to Pure-FTPd {version}",
                      {{"1.0.29", 0.9988}, {"1.0.21", 0.0012}});
    t.anon_probability = 0.18;
    t.writable_given_anon = 0.03;
    t.uploads_need_approval_given_writable = 0.90;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // wu-ftpd: the fossil record; public mirrors, high anonymous rate.
    auto t = software("wuftpd", "wu-ftpd", "wu-ftpd",
                      "220 {ip} FTP server (Version wu-2.6.2(1)) ready.",
                      {});
    t.anon_probability = 0.190;
    t.writable_given_anon = 0.045;
    t.port_validation_failure = 0.35;  // ancient builds predate validation
    t.user_styles.need_virtual_host = 0.08;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // Misc commercial servers lumped under one recognizable banner.
    auto t = software("g6ftp", "Gene6 FTP Server", "",
                      "220 Gene6 FTP Server v3.10.0 ready", {});
    t.listing_format = vfs::ListingFormat::kWindows;
    t.syst_reply = "Windows_NT";
    t.anon_probability = 0.140;
    t.writable_given_anon = 0.030;
    t.ftps_probability = 0.14;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.05;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Shared-hosting fingerprints (Table II "Hosted Server").
  // =========================================================================
  {
    auto t = software(
        "hosted-cpanel", "cPanel hosting (Pure-FTPd)", "Pure-FTPd",
        "220---------- Welcome to Pure-FTPd [cPanel] ----------\n"
        "220 This is a private system - No anonymous login", {});
    t.device_class = DeviceClass::kHostedServer;
    t.anon_probability = 0.012;
    t.writable_given_anon = 0.008;
    t.uploads_need_approval_given_writable = 0.90;
    t.ftps_probability = 0.80;
    t.cert_policy = CertPolicy::kProviderWildcard;
    t.fs_template = FsTemplate::kHostingWebroot;
    out.push_back(std::move(t));
  }
  {
    auto t = software("hosted-plesk", "Plesk hosting (ProFTPD)", "ProFTPD",
                      "220 ProFTPD {version} Server (ProFTPD - Plesk) [{ip}]",
                      {{"1.3.5", 0.1672}, {"1.3.5a", 0.2219},
                       {"1.3.4a", 0.2378}, {"1.3.4d", 0.0136},
                       {"1.3.3g", 0.3595}});
    t.device_class = DeviceClass::kHostedServer;
    t.anon_probability = 0.012;
    t.writable_given_anon = 0.008;
    t.ftps_probability = 0.80;
    t.cert_policy = CertPolicy::kProviderWildcard;
    t.fs_template = FsTemplate::kHostingWebroot;
    out.push_back(std::move(t));
  }
  {
    // home.pl's in-house service: anonymous by default and blind to PORT
    // arguments — the source of 71.5% of all bounce-vulnerable servers.
    auto t = software("hosted-homepl", "home.pl hosting", "",
                      "220 home.pl FTP server ready", {});
    t.device_class = DeviceClass::kHostedServer;
    t.anon_probability = 0.7544;
    t.writable_given_anon = 0.004;
    t.port_validation_failure = 0.992;
    t.ftps_probability = 0.92;
    t.cert_policy = CertPolicy::kProviderWildcard;
    t.user_styles.immediate230 = 1.0;
    t.user_styles.standard = 0.0;
    t.fs_template = FsTemplate::kHostingWebroot;
    out.push_back(std::move(t));
  }
  {
    auto t = software("hosted-generic", "Shared hosting FTP", "",
                      "220 Shared hosting FTP service ready.", {});
    t.device_class = DeviceClass::kHostedServer;
    t.anon_probability = 0.012;
    t.writable_given_anon = 0.008;
    t.ftps_probability = 0.75;
    t.cert_policy = CertPolicy::kProviderWildcard;
    t.fs_template = FsTemplate::kHostingWebroot;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Consumer NAS devices (Tables VII, XIII).
  // =========================================================================
  {
    auto t = device("qnap-nas", "QNAP Turbo NAS", DeviceClass::kNas,
                    "220 NASFTPD Turbo station 1.3.2e Server (ProFTPD) [{ip}]",
                    0.0284);
    t.writable_given_anon = 0.030;
    t.nat_probability = 0.30;
    t.ftps_probability = 0.2056;  // 11,236 + 615 of 57,655
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "QNAP NAS (#1)";
    t.cert_cn_alt = "QNAP NAS (#2)";
    t.cert_alt_probability = 0.052;
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("synology-nas", "Synology NAS devices", DeviceClass::kNas,
                    "220 Synology DiskStation FTP server ready.", 0.0682);
    t.writable_given_anon = 0.028;
    t.nat_probability = 0.28;
    t.ftps_probability = 0.10;
    t.cert_policy = CertPolicy::kPerHost;
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("buffalo-nas", "Buffalo NAS storage", DeviceClass::kNas,
                    "220 Buffalo LinkStation FTP server ready.", 0.3932);
    t.writable_given_anon = 0.045;
    t.nat_probability = 0.32;
    t.ftps_probability = 0.3265;  // 7,365 of 22,558
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "Buffalo NAS";
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("zyxel-nas", "ZyXEL/MitraStar NAS", DeviceClass::kNas,
                    "220 NSA-320 FTP server ready. (ZyXEL/MitraStar)",
                    0.0328);
    t.writable_given_anon = 0.030;
    t.nat_probability = 0.25;
    t.ftps_probability = 0.0;  // the shared "ZyXEL Unk" cert rides on CPE
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("lacie-nas", "LaCie storage", DeviceClass::kNas,
                    "220 LaCie CloudBox FTP Server ready.", 0.6404);
    t.writable_given_anon = 0.040;
    t.nat_probability = 0.38;
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("seagate-nas", "Seagate Storage devices",
                    DeviceClass::kNas,
                    "220 Seagate Central Shared Storage FTP server", 0.9444);
    t.writable_given_anon = 0.060;
    t.nat_probability = 0.30;
    // The Exploit4Arab advisory the honeypots saw exercised: no root
    // password on the stock firmware.
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("lge-nas", "LGE NAS", DeviceClass::kNas,
                    "220 LG Network Storage FTP server ready.", 0.012);
    t.ftps_probability = 0.69;  // 6,220 of ~9K ship the baked-in cert
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "LGE NAS";
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("axentra-nas", "Axentra HipServ", DeviceClass::kNas,
                    "220 Axentra HipServ FTP ready.", 0.015);
    t.ftps_probability = 0.72;
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "Axentra HipServ";
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("asustor-nas", "AsusTor NAS", DeviceClass::kNas,
                    "220 ASUSTOR FTP server ready.", 0.020);
    t.ftps_probability = 0.30;
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "AsusTor NAS";
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }
  {
    auto t = device("other-nas", "Network Storage (misc)", DeviceClass::kNas,
                    "220 Network Storage FTP server ready.", 0.014);
    t.writable_given_anon = 0.030;
    t.nat_probability = 0.30;
    t.fs_template = FsTemplate::kNasPersonal;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Consumer routers.
  // =========================================================================
  {
    // ASUS smart routers: for a time anonymous access auto-enabled for any
    // attached USB drive (§V.B).
    auto t = device("asus-router", "ASUS wireless routers",
                    DeviceClass::kHomeRouter,
                    "220 Welcome to ASUS wireless router FTP service.",
                    0.1113);
    t.writable_given_anon = 0.070;
    t.nat_probability = 0.05;  // routers sit on the edge themselves
    t.port_validation_failure = 0.10;
    t.fs_template = FsTemplate::kRouterUsbShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("linksys-router", "Linksys Wifi Routers",
                    DeviceClass::kHomeRouter,
                    "220 Linksys Smart Wi-Fi FTP server ready.", 0.2872);
    t.writable_given_anon = 0.045;
    t.fs_template = FsTemplate::kRouterUsbShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("other-router", "Smart router (misc)",
                    DeviceClass::kHomeRouter,
                    "220 Wireless router USB storage FTP ready.", 0.0565);
    t.writable_given_anon = 0.045;
    t.fs_template = FsTemplate::kRouterUsbShare;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Printers: scan-to-FTP boxes that ship with anonymous access enabled —
  // the >90% anonymous rates of Table VII.
  // =========================================================================
  {
    auto t = device("ricoh-printer", "RICOH Printers", DeviceClass::kPrinter,
                    "220 Ricoh Aficio MP C3003 FTP server (RICOH Network "
                    "Printer)",
                    0.8747);
    t.writable_given_anon = 0.012;
    t.fs_template = FsTemplate::kPrinterScans;
    out.push_back(std::move(t));
  }
  {
    auto t = device("lexmark-printer", "Lexmark Printers",
                    DeviceClass::kPrinter,
                    "220 Lexmark MarkNet FTP Server ready.", 0.9969);
    t.writable_given_anon = 0.012;
    t.fs_template = FsTemplate::kPrinterScans;
    out.push_back(std::move(t));
  }
  {
    auto t = device("xerox-printer", "Xerox Printers", DeviceClass::kPrinter,
                    "220 Xerox WorkCentre FTP service ready.", 0.9284);
    t.writable_given_anon = 0.012;
    t.fs_template = FsTemplate::kPrinterScans;
    out.push_back(std::move(t));
  }
  {
    auto t = device("dell-printer", "Dell Printers", DeviceClass::kPrinter,
                    "220 Dell Laser MFP FTP Server ready.", 0.9843);
    t.writable_given_anon = 0.012;
    t.fs_template = FsTemplate::kPrinterScans;
    out.push_back(std::move(t));
  }
  {
    auto t = device("other-printer", "Network printer (misc)",
                    DeviceClass::kPrinter,
                    "220 Network printer FTP service ready (scan-to-FTP).",
                    0.9903);
    t.writable_given_anon = 0.010;
    t.fs_template = FsTemplate::kPrinterScans;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Provider-deployed CPE (Table V): FTP on, anonymous (almost) never.
  // =========================================================================
  {
    auto t = device("fritzbox", "FRITZ!Box DSL modem",
                    DeviceClass::kProviderCpe,
                    "220 FRITZ!Box7490 FTP server ready.", 0.000321);
    t.nat_probability = 0.55;
    t.banner_forbids_anon_given_no_anon = 0.10;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("zyxel-dsl", "ZyXEL DSL Modem", DeviceClass::kProviderCpe,
                    "220 ZyXEL P-660HN FTP version 1.0 ready", 0.000034);
    t.nat_probability = 0.50;
    t.ftps_probability = 0.286;  // the "ZyXEL Unk" shared cert, 8,402 units
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "ZyXEL Unk";
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("axis", "AXIS Physical Security Device",
                    DeviceClass::kProviderCpe,
                    "220 AXIS P3301 Network Camera ready.", 0.0029);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("zte-wimax", "ZTE WiMax Router", DeviceClass::kProviderCpe,
                    "220 ZTE WiMax CPE FTP server ready.", 0.0);
    t.nat_probability = 0.45;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("speedport", "Speedport DSL Modem",
                    DeviceClass::kProviderCpe,
                    "220 Speedport W724V FTP server ready.", 0.0);
    t.nat_probability = 0.50;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("dreambox", "Dreambox Set-top Box",
                    DeviceClass::kProviderCpe,
                    "220 Dreambox DM800 dreambox FTP server ready.", 0.0);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("zyxel-usg", "ZyXEL Unified Security Gateway",
                    DeviceClass::kProviderCpe,
                    "220 ZyXEL USG-60 FTP Server ready.", 0.0);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("alcatel", "Alcatel Router", DeviceClass::kProviderCpe,
                    "220 Alcatel-Lucent CellPipe FTP server ready.", 0.0);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("draytek", "DrayTek Network Devices",
                    DeviceClass::kProviderCpe,
                    "220 DrayTek Vigor FTP server ready.", 0.0);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Other embedded devices (the bulk of Table II's Embedded row).
  // =========================================================================
  {
    auto t = device("lutron", "Lutron HomeWorks Processor",
                    DeviceClass::kOtherEmbedded,
                    "220 Lutron HomeWorks Processor FTP server ready.",
                    0.9970);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("symon", "Symon Media Player", DeviceClass::kOtherEmbedded,
                    "220 Symon Media Player FTP ready.", 0.02);
    t.ftps_probability = 0.61;
    t.cert_policy = CertPolicy::kSharedDevice;
    t.cert_cn = "Symon Media Player";
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("settop", "Set-top box (misc)", DeviceClass::kOtherEmbedded,
                    "220 STB embedded FTP daemon ready.", 0.0052);
    t.nat_probability = 0.38;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("ipcam", "IP camera (misc)", DeviceClass::kOtherEmbedded,
                    "220 IP Camera embedded FTP server ready.", 0.0058);
    t.nat_probability = 0.42;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("dvr", "DVR (misc)", DeviceClass::kOtherEmbedded,
                    "220 DVR embedded FTP Service ready.", 0.0055);
    t.nat_probability = 0.42;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }
  {
    auto t = device("mediaplayer", "Media player (misc)",
                    DeviceClass::kOtherEmbedded,
                    "220 Embedded media device FTP ready.", 0.0050);
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }

  // =========================================================================
  // Unidentifiable banners (Table II "Unknown").
  // =========================================================================
  {
    auto t = device("unknown-a", "Unknown", DeviceClass::kUnknown,
                    "220 FTP server ready.", 0.024);
    t.writable_given_anon = 0.035;
    t.port_validation_failure = 0.02;
    t.ftps_probability = 0.15;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.10;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    auto t = device("unknown-b", "Unknown", DeviceClass::kUnknown,
                    "220 Service ready for new user.", 0.024);
    t.writable_given_anon = 0.035;
    t.nat_probability = 0.12;
    t.ftps_probability = 0.15;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.10;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    auto t = device("unknown-c", "Unknown", DeviceClass::kUnknown,
                    "220 Welcome to FTP service.", 0.024);
    t.writable_given_anon = 0.035;
    t.listing_format = vfs::ListingFormat::kWindows;
    t.ftps_probability = 0.15;
    t.cert_policy = CertPolicy::kPerHost;
    t.cert_trusted_p = 0.10;
    t.fs_template = FsTemplate::kGenericMirror;
    out.push_back(std::move(t));
  }
  {
    // Ramnit-infected victims expose the botnet's built-in server: banner
    // "220 220 RMNetwork FTP", never anonymous (§VI.C).
    auto t = device("ramnit", "Ramnit RMNetwork", DeviceClass::kUnknown,
                    "220 220 RMNetwork FTP", 0.0);
    t.user_styles.standard = 0.0;
    t.user_styles.reject_530 = 1.0;
    t.fs_template = FsTemplate::kEmptyShare;
    out.push_back(std::move(t));
  }

  return out;
}

}  // namespace

const std::vector<DeviceTemplate>& device_catalog() {
  static const std::vector<DeviceTemplate> catalog = build_catalog();
  return catalog;
}

std::size_t template_index(std::string_view key) {
  static const std::unordered_map<std::string_view, std::size_t> index = [] {
    std::unordered_map<std::string_view, std::size_t> map;
    const auto& catalog = device_catalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      map.emplace(catalog[i].key, i);
    }
    return map;
  }();
  const auto it = index.find(key);
  assert(it != index.end() && "unknown device template key");
  return it->second;
}

const VersionChoice& pick_version(const DeviceTemplate& tmpl,
                                  double uniform01) {
  assert(!tmpl.versions.empty());
  double total = 0.0;
  for (const auto& v : tmpl.versions) total += v.weight;
  double r = uniform01 * total;
  for (const auto& v : tmpl.versions) {
    if (r < v.weight) return v;
    r -= v.weight;
  }
  return tmpl.versions.back();
}

}  // namespace ftpc::popgen
