#include "popgen/calibration.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/ipv4.h"
#include "common/log.h"
#include "common/rng.h"
#include "popgen/catalog.h"

namespace ftpc::popgen {

std::uint64_t Calibration::total_ftp_target() const {
  std::uint64_t total = 0;
  for (const AsSpec& as_spec : ases) total += as_spec.ftp_target;
  return total;
}

std::uint64_t Calibration::total_advertised() const {
  std::uint64_t total = 0;
  for (const AsSpec& as_spec : ases) total += as_spec.advertised;
  return total;
}

namespace {

// ---------------------------------------------------------------------------
// Global per-template population targets (full IPv4 scale).
//
// Generic software totals are chosen so the class sums match Table II and
// the version mixes in catalog.cc reproduce Table XI; device totals are the
// literal Tables IV, V, VII counts (plus catch-all fillers closing each
// class's gap to Table II).
// ---------------------------------------------------------------------------
const std::vector<std::pair<const char*, std::uint64_t>>& template_targets() {
  static const std::vector<std::pair<const char*, std::uint64_t>> targets = {
      // Generic servers: sum 5,957,969 (Table II).
      {"proftpd", 1'400'000},
      {"vsftpd", 1'450'000},
      {"filezilla", 409'000},   // §VII.B: "409K Filezilla implementations"
      {"servu", 400'000},
      {"msftp", 900'000},
      {"pureftpd", 600'000},
      {"pureftpd-old", 3'309},  // Table XI Pure-FTPd rows
      {"wuftpd", 200'000},
      {"g6ftp", 595'660},

      // Hosted servers: sum 1,795,596 (Table II). home.pl's own share is
      // pinned to its AS below.
      {"hosted-cpanel", 900'000},
      {"hosted-plesk", 400'000},
      {"hosted-homepl", 136'765},  // == home.pl AS FTP count (Table VI)
      {"hosted-generic", 358'831},

      // NAS (Table IV total 198,381; named rows from Tables VII/XIII).
      {"qnap-nas", 57'655},
      {"synology-nas", 43'159},
      {"buffalo-nas", 22'558},
      {"zyxel-nas", 9'456},
      {"lacie-nas", 4'558},
      {"seagate-nas", 629},
      {"lge-nas", 9'000},
      {"axentra-nas", 4'100},
      {"asustor-nas", 1'200},
      {"other-nas", 46'066},

      // Home routers (Table IV total 59,944).
      {"asus-router", 52'938},
      {"linksys-router", 2'174},
      {"other-router", 4'832},

      // Printers (Table IV total 62,567).
      {"ricoh-printer", 8'696},
      {"lexmark-printer", 3'908},
      {"xerox-printer", 3'130},
      {"dell-printer", 2'555},
      {"other-printer", 44'278},

      // Provider CPE (Table V, sum 268,626).
      {"fritzbox", 152'520},
      {"zyxel-dsl", 29'376},
      {"axis", 20'002},
      {"zte-wimax", 14'245},
      {"speedport", 13'677},
      {"dreambox", 12'298},
      {"zyxel-usg", 11'964},
      {"alcatel", 10'383},
      {"draytek", 4'161},

      // Other embedded: closes the Table II Embedded row to 1,786,656.
      {"lutron", 1'006},
      {"symon", 1'000},
      {"settop", 400'000},
      {"ipcam", 420'000},
      {"dvr", 250'000},
      {"mediaplayer", 125'132},

      // Unknown (Table II: 4,249,417), incl. the 1,051 Ramnit banners.
      {"unknown-a", 1'700'000},
      {"unknown-b", 1'400'000},
      {"unknown-c", 1'148'366},
      {"ramnit", 1'051},
  };
  return targets;
}

// Profile indices, kept in sync with the construction order below.
enum ProfileId : std::uint32_t {
  kProfHostingMajor = 0,
  kProfHomePl,
  kProfGenericDc,
  kProfIspMixed,
  kProfIspCpeDt,
  kProfIspCpeMixed,
  kProfAcademic,
  kProfResidual,  // computed numerically; must stay last
};

std::vector<Profile> base_profiles() {
  std::vector<Profile> profiles(kProfResidual + 1);
  profiles[kProfHostingMajor] = Profile{
      "hosting-major",
      {{"hosted-cpanel", 0.225}, {"hosted-plesk", 0.100},
       {"hosted-generic", 0.090}, {"pureftpd", 0.095}, {"proftpd", 0.115},
       {"vsftpd", 0.095}, {"filezilla", 0.018}, {"msftp", 0.055},
       {"g6ftp", 0.045}, {"unknown-a", 0.075}, {"unknown-b", 0.055},
       {"unknown-c", 0.032}}};
  profiles[kProfHomePl] = Profile{"homepl", {{"hosted-homepl", 1.0}}};
  profiles[kProfGenericDc] = Profile{
      "generic-dc",
      {{"proftpd", 0.22}, {"vsftpd", 0.22}, {"msftp", 0.13},
       {"pureftpd", 0.08}, {"filezilla", 0.05}, {"servu", 0.05},
       {"g6ftp", 0.05}, {"unknown-a", 0.10}, {"unknown-b", 0.10}}};
  profiles[kProfIspMixed] = Profile{
      "isp-mixed",
      {{"proftpd", 0.075}, {"vsftpd", 0.085}, {"msftp", 0.055},
       {"filezilla", 0.030}, {"servu", 0.030}, {"unknown-a", 0.160},
       {"unknown-b", 0.130}, {"unknown-c", 0.110}, {"settop", 0.090},
       {"ipcam", 0.085}, {"dvr", 0.055}, {"mediaplayer", 0.025},
       {"other-nas", 0.010}, {"qnap-nas", 0.012}, {"synology-nas", 0.009},
       {"asus-router", 0.012}, {"other-printer", 0.012},
       {"ricoh-printer", 0.002}, {"g6ftp", 0.048}}};
  profiles[kProfIspCpeDt] = Profile{
      "isp-cpe-dt",
      {{"fritzbox", 0.870}, {"speedport", 0.078}, {"unknown-a", 0.030},
       {"vsftpd", 0.022}}};
  profiles[kProfIspCpeMixed] = Profile{
      "isp-cpe-mixed",
      {{"zyxel-dsl", 0.0112}, {"axis", 0.0077}, {"zte-wimax", 0.0054},
       {"dreambox", 0.0047}, {"zyxel-usg", 0.0046}, {"alcatel", 0.0040},
       {"draytek", 0.0016}, {"settop", 0.0650}, {"ipcam", 0.0700},
       {"dvr", 0.0500}, {"unknown-a", 0.2000}, {"unknown-b", 0.1600},
       {"unknown-c", 0.1200}, {"vsftpd", 0.0900}, {"proftpd", 0.0700},
       {"msftp", 0.0500}, {"qnap-nas", 0.0120}, {"asus-router", 0.0140},
       {"other-printer", 0.0130}, {"buffalo-nas", 0.0048},
       {"synology-nas", 0.0090}, {"other-nas", 0.0070}}};
  profiles[kProfAcademic] = Profile{
      "academic",
      {{"wuftpd", 0.25}, {"proftpd", 0.33}, {"vsftpd", 0.22},
       {"unknown-a", 0.20}}};
  profiles[kProfResidual] = Profile{"residual", {}};  // filled below
  return profiles;
}

void normalize(Profile& profile) {
  double total = 0.0;
  for (const auto& [key, w] : profile.mix) total += w;
  assert(total > 0.0);
  for (auto& [key, w] : profile.mix) w /= total;
}

}  // namespace

Calibration build_calibration(std::uint64_t seed) {
  Calibration cal;
  cal.profiles = base_profiles();
  for (std::size_t i = 0; i + 1 < cal.profiles.size(); ++i) {
    if (!cal.profiles[i].mix.empty()) normalize(cal.profiles[i]);
  }

  auto& ases = cal.ases;
  std::uint32_t next_asn = 60000;  // synthetic ASNs live in a high range

  // -------------------------------------------------------------------------
  // Bespoke head: Table VI's top-10 by anonymous servers (advertised + FTP
  // counts are the paper's), plus the providers behind Table XII's top
  // certificates and Deutsche Telekom's FRITZ!Box fleet (Table V).
  // -------------------------------------------------------------------------
  auto bespoke = [&](std::uint32_t asn, std::string name, net::AsType type,
                     std::uint64_t advertised, std::uint64_t ftp,
                     std::uint32_t profile, std::optional<double> anon,
                     std::optional<double> ftps, std::string cert_cn,
                     bool cert_trusted = true) {
    ases.push_back(AsSpec{.asn = asn,
                          .name = std::move(name),
                          .type = type,
                          .advertised = advertised,
                          .ftp_target = ftp,
                          .profile = profile,
                          .anon_override = anon,
                          .ftps_override = ftps,
                          .provider_cert_cn = std::move(cert_cn),
                          .provider_cert_trusted = cert_trusted});
  };

  using net::AsType;
  bespoke(12824, "home.pl S.A.", AsType::kHosting, 205'312, 136'765,
          kProfHomePl, 0.7544, 0.9154, "*.home.pl");
  bespoke(46606, "Unified Layer", AsType::kHosting, 516'864, 246'470,
          kProfHostingMajor, 0.1796, 0.2434, "*.bluehost.com");
  bespoke(2914, "NTT America, Inc.", AsType::kHosting, 7'880'192, 298'468,
          kProfGenericDc, 0.1208, std::nullopt, "");
  bespoke(20013, "CyrusOne LLC", AsType::kHosting, 111'360, 64'790,
          kProfHostingMajor, 0.4750, std::nullopt, "");
  bespoke(40676, "Psychz Networks", AsType::kHosting, 641'024, 64'233,
          kProfHostingMajor, 0.4282, std::nullopt, "");
  bespoke(34011, "domainfactory GmbH", AsType::kHosting, 93'440, 21'153,
          kProfHostingMajor, 0.9019, 0.915, "ispgateway.de",
          /*cert_trusted=*/false);
  bespoke(4134, "Chinanet", AsType::kIsp, 120'757'504, 464'384, kProfIspMixed,
          0.0409, std::nullopt, "");
  bespoke(18978, "Enzu Inc", AsType::kHosting, 727'808, 73'541,
          kProfHostingMajor, 0.2381, std::nullopt, "");
  bespoke(18779, "EGIHosting", AsType::kHosting, 1'890'304, 27'804,
          kProfHostingMajor, 0.5873, std::nullopt, "");
  bespoke(4766, "Korea Telecom", AsType::kIsp, 53'733'632, 211'479,
          kProfIspMixed, 0.0767, std::nullopt, "");

  // Table XII certificate providers not in the anonymous top-10.
  bespoke(next_asn++, "OpenTransfer (EIG)", AsType::kHosting, 900'000,
          230'000, kProfHostingMajor, 0.020, 0.8408, "*.opentransfer.com");
  bespoke(next_asn++, "SecureSites Hosting", AsType::kHosting, 500'000,
          160'000, kProfHostingMajor, 0.020, 0.8431, "*.securesites.com");
  bespoke(next_asn++, "BizMW Hosting", AsType::kHosting, 120'000, 31'000,
          kProfHostingMajor, 0.030, 0.8443, "*.bizmw.com");
  bespoke(next_asn++, "TurnKey Webspace", AsType::kHosting, 100'000, 26'200,
          kProfHostingMajor, 0.030, 0.8425, "*.turnkeywebspace.com");
  bespoke(next_asn++, "Sakura Internet", AsType::kHosting, 110'000, 20'800,
          kProfHostingMajor, 0.030, 0.8411, "*.sakura.ne.jp");

  // Deutsche Telekom's CPE fleet: ~150K FRITZ!Boxes, essentially no
  // anonymous access (Table V).
  bespoke(3320, "Deutsche Telekom AG", AsType::kIsp, 33'000'000, 175'000,
          kProfIspCpeDt, std::nullopt, std::nullopt, "");

  // -------------------------------------------------------------------------
  // Synthetic head: with the bespoke ASes above this brings the head to 78
  // ASes holding 50% of all FTP servers (Table III, Figure 1). Type split
  // per Table III: 50 hosting, 25 ISP, 3 academic.
  // -------------------------------------------------------------------------
  Xoshiro256ss rng(derive_seed(seed, "calibration-ases"));

  // 34 synthetic hosting ASes (plus 16 bespoke = 50 head hosting ASes),
  // declining sizes, anonymous rate declining 22% -> 4% so the anonymous
  // CDF reaches 50% around 42 ASes (Figure 1).
  for (int i = 0; i < 34; ++i) {
    const auto ftp = static_cast<std::uint64_t>(
        150'000.0 * std::pow(0.955, i));
    const double anon = 0.10 * std::pow(0.93, i) + 0.02;
    // Two in five of the smaller providers never bought a CA-signed
    // wildcard — their shared certificate is self-signed (cf. Table XII's
    // ispgateway.de row).
    bespoke(next_asn++, "HostCo-" + std::to_string(i + 1), AsType::kHosting,
            static_cast<std::uint64_t>(ftp / 0.35), ftp, kProfHostingMajor,
            anon, 0.17, "*.hostco-" + std::to_string(i + 1) + ".net",
            /*cert_trusted=*/i % 5 >= 2);
  }
  // 23 synthetic ISP head ASes carrying the non-DT CPE fleets (+ Chinanet
  // and Korea Telecom above = 25 head ISP ASes).
  for (int i = 0; i < 23; ++i) {
    const auto ftp = static_cast<std::uint64_t>(
        150'000.0 * std::pow(0.94, i));
    bespoke(next_asn++, "Telecom-" + std::to_string(i + 1), AsType::kIsp,
            static_cast<std::uint64_t>(ftp / 0.006), ftp, kProfIspCpeMixed,
            std::nullopt, std::nullopt, "");
  }
  // 3 academic networks (Table III).
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t ftp = 80'000 - 10'000 * i;
    bespoke(next_asn++, "University-" + std::to_string(i + 1),
            AsType::kAcademic, static_cast<std::uint64_t>(ftp / 0.02), ftp,
            kProfAcademic, 0.12, std::nullopt, "");
  }

  // -------------------------------------------------------------------------
  // Middle: 700 medium networks.
  // -------------------------------------------------------------------------
  for (int i = 0; i < 700; ++i) {
    const std::uint64_t ftp = 1'500 + rng.pareto(1.2, 600, 12'000);
    const AsType type = i % 5 < 2   ? AsType::kHosting
                        : i % 5 < 4 ? AsType::kIsp
                                    : AsType::kOther;
    const double density = type == AsType::kHosting ? 0.08 : 0.008;
    bespoke(next_asn++, "MidNet-" + std::to_string(i + 1), type,
            static_cast<std::uint64_t>(ftp / density), ftp, kProfResidual,
            std::nullopt, std::nullopt, "");
  }

  // -------------------------------------------------------------------------
  // Tail: ~33.9K small networks. Their advertised space absorbs whatever
  // public IPv4 space the head and middle did not claim, so the scan covers
  // the paper's 3.68B addresses.
  // -------------------------------------------------------------------------
  const std::uint64_t ftp_so_far = cal.total_ftp_target();
  const std::uint64_t ftp_total_target = 13'789'641;
  const std::uint64_t tail_ftp =
      ftp_total_target > ftp_so_far ? ftp_total_target - ftp_so_far : 0;
  const int tail_count = 34'700 - static_cast<int>(ases.size());
  assert(tail_count > 30'000);

  std::vector<std::uint64_t> tail_sizes(tail_count);
  std::uint64_t tail_sum = 0;
  for (auto& size : tail_sizes) {
    size = rng.pareto(1.05, 8, 3'000);
    tail_sum += size;
  }
  // Rescale tail FTP counts to land exactly on the global target.
  const std::uint64_t advertised_so_far = cal.total_advertised();
  const std::uint64_t public_space = public_ipv4_count();
  assert(advertised_so_far < public_space);
  const std::uint64_t tail_space = public_space - advertised_so_far;
  // Pre-compute each tail AS's FTP share so the space allocator can reserve
  // a minimum footprint (4 addresses per server) for the ASes still to come.
  std::vector<std::uint64_t> tail_ftp_counts(tail_count);
  {
    std::uint64_t assigned = 0;
    for (int i = 0; i < tail_count; ++i) {
      std::uint64_t ftp =
          i + 1 == tail_count
              ? (tail_ftp - assigned)
              : static_cast<std::uint64_t>(static_cast<double>(tail_sizes[i]) *
                                           tail_ftp / tail_sum);
      if (ftp == 0) ftp = 1;
      tail_ftp_counts[i] = ftp;
      assigned += ftp;
    }
  }
  std::uint64_t ftp_still_needed = 0;
  for (const std::uint64_t f : tail_ftp_counts) ftp_still_needed += f;

  std::uint64_t space_left = tail_space;
  for (int i = 0; i < tail_count; ++i) {
    const bool last = i + 1 == tail_count;
    const std::uint64_t ftp = tail_ftp_counts[i];
    ftp_still_needed -= ftp;
    std::uint64_t advertised =
        last ? space_left
             : static_cast<std::uint64_t>(static_cast<double>(tail_sizes[i]) *
                                          tail_space / tail_sum);
    if (advertised < ftp * 4) advertised = ftp * 4;
    // Never starve the ASes still to come of their minimum footprint.
    const std::uint64_t reserve = ftp_still_needed * 4;
    if (advertised + reserve > space_left) {
      advertised = space_left > reserve ? space_left - reserve : ftp * 4;
    }
    space_left -= std::min(advertised, space_left);
    const AsType type = i % 7 == 0 ? AsType::kHosting
                        : i % 7 < 5 ? AsType::kIsp
                                    : AsType::kOther;
    bespoke(next_asn++, "TailNet-" + std::to_string(i + 1), type, advertised,
            ftp, kProfResidual, std::nullopt, std::nullopt, "");
  }

  // -------------------------------------------------------------------------
  // Solve the residual profile: global template target minus what the
  // named-profile ASes consume, spread over the residual-profile FTP mass.
  // -------------------------------------------------------------------------
  std::unordered_map<std::string, double> residual;
  for (const auto& [key, target] : template_targets()) {
    residual[key] = static_cast<double>(target);
  }
  double residual_mass = 0.0;
  for (const AsSpec& as_spec : ases) {
    if (as_spec.profile == kProfResidual) {
      residual_mass += static_cast<double>(as_spec.ftp_target);
      continue;
    }
    for (const auto& [key, weight] : cal.profiles[as_spec.profile].mix) {
      residual[key] -= weight * static_cast<double>(as_spec.ftp_target);
    }
  }
  Profile& residual_profile = cal.profiles[kProfResidual];
  double clamped = 0.0;
  for (const auto& [key, target] : template_targets()) {
    const double remaining = residual[key];
    if (remaining <= 0.0) {
      clamped += -remaining;
      continue;
    }
    residual_profile.mix.emplace_back(key, remaining);
  }
  if (clamped > 1000.0) {
    log_warn() << "calibration: named profiles over-consume "
               << static_cast<std::uint64_t>(clamped)
               << " hosts relative to global template targets";
  }
  normalize(residual_profile);

  return cal;
}

net::AsTable build_as_table(const Calibration& calibration) {
  // Free (non-reserved) address ranges: the complement of the reserved set.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> free_ranges;
  {
    std::uint64_t cursor = 0;
    for (const IpRange& reserved : reserved_ranges()) {
      if (cursor < reserved.first) {
        free_ranges.emplace_back(static_cast<std::uint32_t>(cursor),
                                 reserved.first - 1);
      }
      cursor = std::uint64_t{reserved.last} + 1;
    }
    if (cursor < (std::uint64_t{1} << 32)) {
      free_ranges.emplace_back(static_cast<std::uint32_t>(cursor),
                               0xffffffffu);
    }
  }

  std::vector<net::AsInfo> infos;
  infos.reserve(calibration.ases.size());
  for (const AsSpec& as_spec : calibration.ases) {
    infos.push_back(net::AsInfo{
        .asn = as_spec.asn,
        .name = as_spec.name,
        .type = as_spec.type,
        .ips_advertised = as_spec.advertised,
        .profile = static_cast<std::uint16_t>(as_spec.profile),
    });
  }

  std::vector<net::AsTable::Allocation> allocations;
  std::size_t range_idx = 0;
  std::uint64_t range_pos =
      free_ranges.empty() ? 0 : free_ranges[0].first;
  for (std::uint32_t as_index = 0; as_index < calibration.ases.size();
       ++as_index) {
    std::uint64_t remaining = calibration.ases[as_index].advertised;
    while (remaining > 0 && range_idx < free_ranges.size()) {
      const auto [first, last] = free_ranges[range_idx];
      const std::uint64_t available = std::uint64_t{last} - range_pos + 1;
      const std::uint64_t take = std::min(remaining, available);
      allocations.push_back(net::AsTable::Allocation{
          .first = static_cast<std::uint32_t>(range_pos),
          .last = static_cast<std::uint32_t>(range_pos + take - 1),
          .as_index = as_index,
      });
      remaining -= take;
      range_pos += take;
      if (range_pos > last) {
        ++range_idx;
        if (range_idx < free_ranges.size()) {
          range_pos = free_ranges[range_idx].first;
        }
      }
    }
    if (remaining > 0) {
      log_warn() << "as table: ran out of address space at AS "
                 << calibration.ases[as_index].name;
      break;
    }
  }

  return net::AsTable(std::move(infos), std::move(allocations));
}

}  // namespace ftpc::popgen
