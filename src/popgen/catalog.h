// The device & implementation catalog.
//
// Every simulated FTP host instantiates one DeviceTemplate: a software
// implementation (ProFTPD 1.3.5, vsftpd 3.0.2, ...) or an embedded device
// (QNAP Turbo NAS, FRITZ!Box, Lexmark printer, ...). Templates carry the
// banner/fingerprint surface the analysis pipeline must recognize, the
// per-device probabilities (anonymous enabled, FTPS, world-writable,
// PORT-validation bug, NAT), the version mix that drives the CVE analysis
// (Table XI), and the filesystem template that drives the exposure analysis
// (Tables VIII-X).
//
// Population *rates* (which template appears where, and how often) live in
// calibration.cc; this file is about what each template looks like.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ftpd/personality.h"
#include "vfs/listing.h"

namespace ftpc::popgen {

/// Coarse device classes. Tables II, IV and X aggregate over these.
enum class DeviceClass {
  kGenericServer,   // recognizable standalone server software
  kHostedServer,    // shared-hosting fingerprint (cPanel/Plesk-style)
  kNas,             // consumer NAS appliance
  kHomeRouter,      // consumer "smart" router
  kPrinter,         // network printer
  kProviderCpe,     // ISP-deployed modem/CPE
  kOtherEmbedded,   // set-top boxes, cameras, misc appliances
  kUnknown,         // no identifiable banner
};

std::string_view device_class_name(DeviceClass c) noexcept;

/// Which filesystem builder populates the host (see fsgen.h).
enum class FsTemplate {
  kEmptyShare,       // configured but nothing exposed (the 76% majority)
  kHostingWebroot,   // per-site docroots: index.html, PHP, .htaccess
  kNasPersonal,      // personal data: photos, media, documents
  kRouterUsbShare,   // USB disk behind a smart router
  kPrinterScans,     // scan-to-FTP output directory
  kGenericMirror,    // public mirror / pub directory
  kOsRoot,           // full filesystem root exposed
};

/// How the host's FTPS certificate is chosen.
enum class CertPolicy {
  kNone,              // no FTPS
  kProviderWildcard,  // shared browser-trusted wildcard from the AS owner
  kSharedDevice,      // identical cert+key baked into every device unit
  kPerHost,           // per-host cert: trusted w.p. cert_trusted_p, else
                      // self-signed (CN frequently "localhost")
};

/// One version of an implementation, with its deployment weight. Version
/// strings are what the CVE matcher (Table XI) keys on.
struct VersionChoice {
  std::string version;
  double weight = 1.0;
};

/// Relative weights of the USER-reply quirks a template exhibits.
struct UserStyleWeights {
  double standard = 1.0;
  double immediate230 = 0.0;
  double reject_in_331 = 0.0;
  double need_virtual_host = 0.0;
  double ftps_required = 0.0;
  double reject_530 = 0.0;
};

struct DeviceTemplate {
  std::string key;           // stable identifier, e.g. "qnap-nas"
  std::string display_name;  // the paper's label, e.g. "QNAP Turbo NAS"
  DeviceClass device_class = DeviceClass::kUnknown;

  /// Implementation family for CVE matching ("ProFTPD", "vsftpd", ...).
  /// Empty when the banner does not identify software.
  std::string implementation;
  /// Banner template: "{version}" expands to the drawn version, "{ip}" to
  /// the believed address (ftpd expands the latter).
  std::string banner;
  std::vector<VersionChoice> versions;

  std::string syst_reply = "UNIX Type: L8";
  std::vector<std::string> feat_lines{"PASV", "SIZE", "MDTM"};
  vfs::ListingFormat listing_format = vfs::ListingFormat::kUnix;

  /// Probabilities (evaluated per host with its deterministic RNG).
  double anon_probability = 0.0;
  double writable_given_anon = 0.0;
  double uploads_need_approval_given_writable = 0.0;
  double port_validation_failure = 0.0;  // P(accepts third-party PORT)
  double nat_probability = 0.0;          // P(believes an RFC1918 address)
  double ftps_probability = 0.0;
  double ftps_required_given_ftps = 0.0;
  double banner_forbids_anon_given_no_anon = 0.0;
  UserStyleWeights user_styles;

  CertPolicy cert_policy = CertPolicy::kNone;
  /// CN of the shared device certificate (Table XIII) when policy is
  /// kSharedDevice.
  std::string cert_cn;
  bool cert_trusted = false;
  /// Optional second shared-cert generation (e.g. QNAP ships two).
  std::string cert_cn_alt;
  double cert_alt_probability = 0.0;
  /// For kPerHost: probability the per-host cert is browser-trusted.
  double cert_trusted_p = 0.0;

  FsTemplate fs_template = FsTemplate::kEmptyShare;
  /// Scales the generated filesystem size (1.0 = class default).
  double fs_scale = 1.0;
};

/// The full catalog, indexed by dense id. Stable across runs.
const std::vector<DeviceTemplate>& device_catalog();

/// Index of a template by key; asserts the key exists.
std::size_t template_index(std::string_view key);

/// Sum of weights helper for version selection.
const VersionChoice& pick_version(const DeviceTemplate& tmpl,
                                  double uniform01);

}  // namespace ftpc::popgen
