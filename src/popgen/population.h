// The synthetic Internet population: a pure function from IPv4 address to
// host configuration, evaluated lazily.
//
// No host exists until something connects to it. Membership ("does this
// address answer on TCP/21?") is a SipHash draw against the owning AS's
// calibrated FTP density, so the ZMap-style scanner can probe tens of
// millions of addresses cheaply; the full host (personality + filesystem
// plan) is derived from the same per-address seed when the enumerator
// actually connects.
//
// Besides FTP servers, the population includes "junk" port-21 responders
// (the gap between Table I's 21.8M open ports and 13.8M FTP banners) and a
// deterministic HTTP co-deployment profile standing in for the paper's
// Censys HTTP dataset (§VI.B).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/ipv4.h"
#include "common/rng.h"
#include "ftpd/personality.h"
#include "net/as_table.h"
#include "net/internet.h"
#include "popgen/calibration.h"
#include "popgen/fsgen.h"

namespace ftpc::popgen {

/// Ground truth for one host. Tests and the EXPERIMENTS comparison use
/// this; the measurement pipeline itself only ever sees the wire.
struct HostConfig {
  Ipv4 ip;
  std::uint32_t as_index = 0;
  std::size_t template_id = 0;
  std::shared_ptr<const ftpd::Personality> personality;
  FsPlan fs_plan;
};

/// Stand-in for the Censys HTTP scan the paper joined against (§VI.B).
struct HttpProfile {
  bool has_http = false;
  enum class PoweredBy { kNone, kPhp, kAspNet } powered_by = PoweredBy::kNone;
};

class SyntheticPopulation : public net::PopulationModel {
 public:
  explicit SyntheticPopulation(std::uint64_t seed);

  // net::PopulationModel ------------------------------------------------------
  bool port_open(Ipv4 ip, std::uint16_t port) const override;
  std::unique_ptr<net::HostModel> materialize(Ipv4 ip) override;

  // Pure membership functions -------------------------------------------------
  /// True iff `ip` runs an FTP-compliant server on TCP/21.
  bool has_ftp(Ipv4 ip) const;
  /// True iff `ip` answers on TCP/21 without speaking FTP.
  bool has_junk_listener(Ipv4 ip) const;

  /// Full deterministic host configuration; nullopt if no FTP host at `ip`.
  std::optional<HostConfig> host_config(Ipv4 ip) const;

  /// The simulated Censys join: HTTP presence and X-Powered-By signal.
  HttpProfile http_profile(Ipv4 ip) const;

  const net::AsTable& as_table() const noexcept { return as_table_; }
  const Calibration& calibration() const noexcept { return calibration_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  friend class PopulationTestPeer;

  std::uint64_t host_seed(Ipv4 ip) const;
  std::shared_ptr<const ftpd::Personality> build_personality(
      Ipv4 ip, std::uint32_t as_index, std::size_t template_id,
      Xoshiro256ss& rng) const;
  FsPlan build_fs_plan(Ipv4 ip, std::size_t template_id,
                       const ftpd::Personality& personality,
                       Xoshiro256ss& rng) const;

  std::uint64_t seed_;
  Calibration calibration_;
  net::AsTable as_table_;
  std::uint64_t sip_k0_, sip_k1_;    // FTP membership draw
  std::uint64_t junk_k0_, junk_k1_;  // junk-listener draw
  double junk_density_;
};

}  // namespace ftpc::popgen
