#include "popgen/population.h"

#include <cassert>

#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"
#include "ftpd/server.h"
#include "popgen/catalog.h"

namespace ftpc::popgen {

namespace {

// ---------------------------------------------------------------------------
// Per-class exposure rates (probability that an *anonymous* host of the
// class exposes each content kind). Derived from Tables VIII-X and §V as
// documented in DESIGN.md; Table X's row distributions emerge from these
// conditionals multiplied by the class anonymous populations.
// ---------------------------------------------------------------------------
struct ExposureRates {
  double base_share;  // plain (non-special) data exposure
  double photos;
  double media;
  double documents;
  double web_backup;
  double sensitive;
  double os_root;
  double scripting;
};

ExposureRates exposure_rates(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kGenericServer:
      return {.base_share = 0.240, .photos = 0.0097, .media = 0.004,
              .documents = 0.010, .web_backup = 0.004, .sensitive = 0.00168,
              .os_root = 0.00095, .scripting = 0.0329};
    case DeviceClass::kHostedServer:
      return {.base_share = 0.138, .photos = 0.0030, .media = 0.001,
              .documents = 0.004, .web_backup = 0.010, .sensitive = 0.00003,
              .os_root = 0.0, .scripting = 0.0064};
    case DeviceClass::kNas:
      return {.base_share = 0.400, .photos = 0.1160, .media = 0.250,
              .documents = 0.200, .web_backup = 0.280, .sensitive = 0.01760,
              .os_root = 0.00180, .scripting = 0.0307};
    case DeviceClass::kHomeRouter:
      return {.base_share = 0.200, .photos = 0.2880, .media = 0.060,
              .documents = 0.060, .web_backup = 0.020, .sensitive = 0.13400,
              .os_root = 0.00900, .scripting = 0.1540};
    case DeviceClass::kPrinter:
      return {.base_share = 0.100, .photos = 0.0, .media = 0.0,
              .documents = 0.0, .web_backup = 0.0, .sensitive = 0.0,
              .os_root = 0.0, .scripting = 0.0};
    case DeviceClass::kProviderCpe:
      return {.base_share = 0.020, .photos = 0.0, .media = 0.0,
              .documents = 0.0, .web_backup = 0.0, .sensitive = 0.0,
              .os_root = 0.0, .scripting = 0.0};
    case DeviceClass::kOtherEmbedded:
      return {.base_share = 0.100, .photos = 0.0002, .media = 0.002,
              .documents = 0.002, .web_backup = 0.0, .sensitive = 0.00012,
              .os_root = 0.0, .scripting = 0.0110};
    case DeviceClass::kUnknown:
      return {.base_share = 0.100, .photos = 0.0369, .media = 0.012,
              .documents = 0.020, .web_backup = 0.008, .sensitive = 0.01350,
              .os_root = 0.02500, .scripting = 0.0349};
  }
  return {};
}

// Relative server counts of Table IX, used to pick which sensitive kinds a
// sensitive host carries.
struct SensitiveWeight {
  SensitiveKind kind;
  double weight;
};
constexpr SensitiveWeight kSensitiveWeights[] = {
    {SensitiveKind::kPst, 2419},      {SensitiveKind::kSshHostKey, 819},
    {SensitiveKind::kPrivPem, 701},   {SensitiveKind::kShadow, 590},
    {SensitiveKind::kTurboTax, 464},  {SensitiveKind::kQuicken, 440},
    {SensitiveKind::kKeePass, 210},   {SensitiveKind::kPuttyKey, 82},
    {SensitiveKind::kOnePassword, 11},
};

// Campaign presence rates conditioned on "world-writable with probe
// evidence" (the ~19.4K detected servers), scaled from §VI's counts.
struct CampaignRate {
  Campaign campaign;
  double p;
};
constexpr CampaignRate kCampaignRates[] = {
    {Campaign::kProbeW0t, 0.75},    {Campaign::kProbeSjutd, 0.25},
    {Campaign::kProbeHello, 0.35},  {Campaign::kFtpchk3, 0.065},
    {Campaign::kHolyBible, 0.032},  {Campaign::kDdosHistory, 0.055},
    {Campaign::kDdosPhz, 0.037},    {Campaign::kRat, 0.037},
    {Campaign::kCrackFlier, 0.108}, {Campaign::kWarez, 0.250},
};

/// A port-21 listener that is not an FTP server: sends a non-FTP banner (or
/// nothing) and drops the connection. Accounts for Table I's gap between
/// "open port 21" and "FTP servers".
class JunkHost : public net::HostModel {
 public:
  JunkHost(Ipv4 ip, int flavor) : ip_(ip), flavor_(flavor) {}

  void attach(sim::Network& network) override {
    network.listen(ip_, 21, [flavor = flavor_](
                               std::shared_ptr<sim::Connection> conn) {
      switch (flavor) {
        case 0:
          conn->send("SSH-2.0-dropbear_2014.63\r\n");
          conn->close();
          break;
        case 1:
          conn->send("\xff\xfb\x03\xff\xfb\x01login: ");  // telnet-ish
          conn->close();
          break;
        default:
          // Accepts and hangs silently; the enumerator's banner timeout
          // classifies it as non-FTP.
          break;
      }
    });
  }

  void detach(sim::Network& network) override {
    network.stop_listening(ip_, 21);
  }

 private:
  Ipv4 ip_;
  int flavor_;
};

class PopulatedHost : public net::HostModel {
 public:
  explicit PopulatedHost(std::shared_ptr<ftpd::FtpServer> server)
      : server_(std::move(server)) {}

  void attach(sim::Network& network) override { server_->attach(network); }
  void detach(sim::Network& network) override { server_->detach(network); }

 private:
  std::shared_ptr<ftpd::FtpServer> server_;
};

}  // namespace

SyntheticPopulation::SyntheticPopulation(std::uint64_t seed)
    : seed_(seed),
      calibration_(build_calibration(seed)),
      as_table_(build_as_table(calibration_)),
      sip_k0_(derive_seed(seed, "ftp-membership-k0")),
      sip_k1_(derive_seed(seed, "ftp-membership-k1")),
      junk_k0_(derive_seed(seed, "junk-k0")),
      junk_k1_(derive_seed(seed, "junk-k1")) {
  // Table I: 21,832,903 open ports vs 13,789,641 FTP servers. The gap is
  // spread uniformly over allocated space.
  const double gap = 21'832'903.0 - 13'789'641.0;
  junk_density_ = gap / static_cast<double>(as_table_.allocated_addresses());
}

std::uint64_t SyntheticPopulation::host_seed(Ipv4 ip) const {
  return derive_seed(derive_seed(seed_, "host"), ip.value());
}

bool SyntheticPopulation::has_ftp(Ipv4 ip) const {
  const auto as_index = as_table_.as_index_of(ip);
  if (!as_index) return false;
  const double density = calibration_.ftp_density(*as_index);
  if (density <= 0.0) return false;
  const std::uint64_t h = siphash24_u64(sip_k0_, sip_k1_, ip.value());
  return static_cast<double>(h) < density * 18446744073709551616.0;
}

bool SyntheticPopulation::has_junk_listener(Ipv4 ip) const {
  if (!as_table_.as_index_of(ip)) return false;
  const std::uint64_t h = siphash24_u64(junk_k0_, junk_k1_, ip.value());
  return static_cast<double>(h) < junk_density_ * 18446744073709551616.0;
}

bool SyntheticPopulation::port_open(Ipv4 ip, std::uint16_t port) const {
  if (port != 21) return false;
  return has_ftp(ip) || has_junk_listener(ip);
}

std::optional<HostConfig> SyntheticPopulation::host_config(Ipv4 ip) const {
  if (!has_ftp(ip)) return std::nullopt;
  const std::uint32_t as_index = *as_table_.as_index_of(ip);
  const AsSpec& as_spec = calibration_.ases[as_index];
  const Profile& profile = calibration_.profiles[as_spec.profile];

  Xoshiro256ss rng(host_seed(ip));

  // Pick the device template from the AS profile's mixture.
  double r = rng.next_double();
  std::size_t template_id = template_index(profile.mix.back().first);
  for (const auto& [key, weight] : profile.mix) {
    if (r < weight) {
      template_id = template_index(key);
      break;
    }
    r -= weight;
  }

  HostConfig config;
  config.ip = ip;
  config.as_index = as_index;
  config.template_id = template_id;
  config.personality = build_personality(ip, as_index, template_id, rng);
  config.fs_plan =
      build_fs_plan(ip, template_id, *config.personality, rng);
  return config;
}

std::shared_ptr<const ftpd::Personality>
SyntheticPopulation::build_personality(Ipv4 ip, std::uint32_t as_index,
                                       std::size_t template_id,
                                       Xoshiro256ss& rng) const {
  const DeviceTemplate& tmpl = device_catalog()[template_id];
  const AsSpec& as_spec = calibration_.ases[as_index];

  auto p = std::make_shared<ftpd::Personality>();
  p->implementation = tmpl.implementation.empty() ? tmpl.display_name
                                                  : tmpl.implementation;
  p->syst_reply = tmpl.syst_reply;
  p->feat_lines = tmpl.feat_lines;
  p->listing_format = tmpl.listing_format;

  // Version + banner.
  std::string banner = tmpl.banner;
  if (!tmpl.versions.empty()) {
    const VersionChoice& version = pick_version(tmpl, rng.next_double());
    p->version = version.version;
    const std::size_t pos = banner.find("{version}");
    if (pos != std::string::npos) {
      banner.replace(pos, 9, version.version);
    }
  }
  p->banner = std::move(banner);

  // Login policy.
  const double anon_p = as_spec.anon_override.value_or(tmpl.anon_probability);
  p->allow_anonymous = rng.chance(anon_p);
  {
    const UserStyleWeights& w = tmpl.user_styles;
    const double total = w.standard + w.immediate230 + w.reject_in_331 +
                         w.need_virtual_host + w.ftps_required + w.reject_530;
    double pick = rng.next_double() * (total > 0 ? total : 1.0);
    using Style = ftpd::UserReplyStyle;
    auto take = [&pick](double weight) {
      if (pick < weight) return true;
      pick -= weight;
      return false;
    };
    if (take(w.standard)) {
      p->user_reply_style = Style::kStandard;
    } else if (take(w.immediate230)) {
      p->user_reply_style = Style::kImmediate230;
    } else if (take(w.reject_in_331)) {
      p->user_reply_style = Style::kRejectIn331;
    } else if (take(w.need_virtual_host)) {
      p->user_reply_style = Style::kNeedVirtualHost;
    } else if (take(w.ftps_required)) {
      p->user_reply_style = Style::kFtpsRequiredIn331;
    } else {
      p->user_reply_style = Style::kReject530;
    }
    // Servers that disallow anonymous logins mostly say so with a 530 (or
    // advertise it in the banner).
    if (!p->allow_anonymous &&
        p->user_reply_style == Style::kStandard && rng.chance(0.5)) {
      p->user_reply_style = Style::kReject530;
    }
    // The rejection styles only make sense on servers that actually reject;
    // an anonymous-enabled host drawing one falls back to the normal flow.
    if (p->allow_anonymous && (p->user_reply_style == Style::kRejectIn331 ||
                               p->user_reply_style == Style::kReject530)) {
      p->user_reply_style = Style::kStandard;
    }
  }
  if (!p->allow_anonymous) {
    p->banner_forbids_anonymous =
        rng.chance(tmpl.banner_forbids_anon_given_no_anon);
  }

  // Write policy.
  if (p->allow_anonymous && rng.chance(tmpl.writable_given_anon)) {
    p->anonymous_writable = true;
    p->uploads_need_approval =
        rng.chance(tmpl.uploads_need_approval_given_writable);
    const double conflict = rng.next_double();
    p->upload_conflict = conflict < 0.60
                             ? ftpd::UploadConflictPolicy::kRenameWithSuffix
                         : conflict < 0.90
                             ? ftpd::UploadConflictPolicy::kOverwrite
                             : ftpd::UploadConflictPolicy::kRefuse;
    p->allow_anonymous_delete = rng.chance(0.5);
    p->allow_anonymous_mkd = true;
  }

  // PORT validation.
  p->validate_port_ip = !rng.chance(tmpl.port_validation_failure);

  // NAT.
  if (rng.chance(tmpl.nat_probability)) {
    const bool ten = rng.chance(0.35);
    p->internal_ip =
        ten ? Ipv4(10, static_cast<std::uint8_t>(rng.next_below(256)),
                   static_cast<std::uint8_t>(rng.next_below(256)),
                   static_cast<std::uint8_t>(rng.next_in(2, 250)))
            : Ipv4(192, 168, static_cast<std::uint8_t>(rng.next_below(256)),
                   static_cast<std::uint8_t>(rng.next_in(2, 250)));
  }

  // FTPS.
  const double ftps_p = as_spec.ftps_override.value_or(tmpl.ftps_probability);
  if (rng.chance(ftps_p)) {
    p->supports_ftps = true;
    // §IX: fewer than 85K of 3.4M FTPS servers require TLS before login.
    p->requires_ftps_before_login = rng.chance(0.024);

    ftp::Certificate cert;
    switch (tmpl.cert_policy) {
      case CertPolicy::kProviderWildcard: {
        const std::string cn = !as_spec.provider_cert_cn.empty()
                                   ? as_spec.provider_cert_cn
                                   : "*.as" + std::to_string(as_spec.asn) +
                                         ".example.net";
        cert.subject_cn = cn;
        cert.browser_trusted = as_spec.provider_cert_trusted;
        cert.issuer_cn = cert.browser_trusted ? "SimTrust CA" : cn;
        cert.key_id = fnv1a64(cn);
        cert.serial = fnv1a64(cn) ^ 0x5a5a;
        break;
      }
      case CertPolicy::kSharedDevice: {
        const bool alt = tmpl.cert_alt_probability > 0.0 &&
                         rng.chance(tmpl.cert_alt_probability);
        const std::string& cn = alt ? tmpl.cert_cn_alt : tmpl.cert_cn;
        cert.subject_cn = cn;
        cert.browser_trusted = tmpl.cert_trusted;
        cert.issuer_cn = cert.browser_trusted ? "SimTrust CA" : cn;
        cert.key_id = fnv1a64(cn);  // one key in every unit shipped
        cert.serial = fnv1a64(cn) ^ 0xdead;
        break;
      }
      case CertPolicy::kPerHost:
      case CertPolicy::kNone: {
        // On shared hosting, even stock daemons usually serve the
        // provider's wildcard certificate — the big reason the paper found
        // only 793K distinct certs across 3.4M FTPS servers.
        if (calibration_.ases[as_index].type == net::AsType::kHosting &&
            rng.chance(0.85)) {
          const std::string cn = !as_spec.provider_cert_cn.empty()
                                     ? as_spec.provider_cert_cn
                                     : "*.as" + std::to_string(as_spec.asn) +
                                           ".example.net";
          cert.subject_cn = cn;
          cert.browser_trusted = as_spec.provider_cert_trusted;
          cert.issuer_cn = cert.browser_trusted ? "SimTrust CA" : cn;
          cert.key_id = fnv1a64(cn);
          cert.serial = fnv1a64(cn) ^ 0x5a5a;
          break;
        }
        const bool trusted = rng.chance(tmpl.cert_trusted_p);
        if (trusted) {
          cert.subject_cn = "ftp-" + std::to_string(ip.value() % 100000) +
                            ".hosted.example.com";
          cert.issuer_cn = "SimTrust CA";
          cert.browser_trusted = true;
          cert.key_id = derive_seed(ip.value(), "per-host-key");
          cert.serial = derive_seed(ip.value(), "per-host-serial");
        } else if (rng.chance(0.65)) {
          // Cloned VM images and distro "snakeoil" defaults: the same
          // self-signed certificate appears on thousands of hosts (cf.
          // Heninger et al.'s weak-key results the paper cites). A small
          // pool of distinct certs covers most of the self-signed mass.
          const std::uint64_t pool =
              siphash24_u64(seed_, 0x536e616b65ULL, ip.value()) % 256;
          cert.subject_cn = "ftpd-default-" + std::to_string(pool) + ".local";
          cert.issuer_cn = cert.subject_cn;
          cert.browser_trusted = false;
          cert.key_id = derive_seed(pool, "snakeoil-key");
          cert.serial = derive_seed(pool, "snakeoil-serial");
        } else {
          // Locally generated: "localhost" is the classic default CN.
          cert.subject_cn = rng.chance(0.11) ? "localhost" : ip.str();
          cert.issuer_cn = cert.subject_cn;
          cert.browser_trusted = false;
          cert.key_id = derive_seed(ip.value(), "per-host-key");
          cert.serial = derive_seed(ip.value(), "per-host-serial");
        }
        break;
      }
    }
    p->certificate = std::move(cert);
    p->feat_lines.push_back("AUTH TLS");
  }

  // A small fraction of servers drop chatty clients mid-session; the
  // enumerator must treat that as refusal of service.
  if (rng.chance(0.02)) {
    p->max_commands_per_session = static_cast<std::uint32_t>(
        rng.next_in(25, 120));
  }

  // Stock Seagate firmware famously has a password-less root account (the
  // honeypots saw it exploited).
  if (tmpl.key == "seagate-nas") {
    p->valid_credentials.emplace_back("root", "");
  }
  return p;
}

FsPlan SyntheticPopulation::build_fs_plan(
    Ipv4 ip, std::size_t template_id, const ftpd::Personality& personality,
    Xoshiro256ss& rng) const {
  const DeviceTemplate& tmpl = device_catalog()[template_id];
  FsPlan plan;
  plan.seed = derive_seed(host_seed(ip), "fs");
  plan.device_class = tmpl.device_class;
  plan.fs_template = tmpl.fs_template;
  plan.listing_format = tmpl.listing_format;

  if (!personality.allow_anonymous) {
    // Never traversed anonymously; keep it trivial.
    return plan;
  }

  const ExposureRates rates = exposure_rates(tmpl.device_class);
  plan.photos = rng.chance(rates.photos);
  plan.media = rng.chance(rates.media);
  plan.documents = rng.chance(rates.documents);
  plan.web_backup = rng.chance(rates.web_backup);
  plan.scripting = rng.chance(rates.scripting);
  if (plan.scripting) plan.htaccess = rng.chance(0.14);
  plan.os_root = rng.chance(rates.os_root);
  if (plan.os_root) {
    // §V.A: 3,858 Linux, 825 Windows, 15 OS X.
    const double r = rng.next_double();
    plan.os_root_kind = r < 0.8213 ? 0 : (r < 0.9968 ? 1 : 2);
  }
  if (rng.chance(rates.sensitive)) {
    double total = 0.0;
    for (const auto& [kind, weight] : kSensitiveWeights) total += weight;
    // A sensitive host carries one kind, sometimes several (office-wide
    // backups mix mailboxes, keys and finance files).
    const int kinds = rng.chance(0.12) ? 2 : 1;
    for (int k = 0; k < kinds; ++k) {
      double pick = rng.next_double() * total;
      for (const auto& [kind, weight] : kSensitiveWeights) {
        if (pick < weight) {
          plan.sensitive_mask |= bit(kind);
          break;
        }
        pick -= weight;
      }
    }
  }

  plan.exposes_data = plan.photos || plan.media || plan.documents ||
                      plan.web_backup || plan.scripting || plan.os_root ||
                      plan.sensitive_mask != 0 ||
                      rng.chance(rates.base_share);
  // §IV: 26.7K servers (about 10% of those exposing data) have trees too
  // large for the 500-request budget.
  plan.huge_tree = plan.exposes_data && rng.chance(0.10);

  plan.writable = personality.anonymous_writable;
  if (plan.writable) {
    plan.exposes_data = true;  // the upload area itself is visible
    // §VI.A is explicit that the reference-set method is a lower bound:
    // only ~65% of writable servers carry probe/campaign evidence.
    plan.writable_evidence = rng.chance(0.65);
    if (plan.writable_evidence) {
      for (const auto& [campaign, p] : kCampaignRates) {
        if (rng.chance(p)) plan.campaign_mask |= bit(campaign);
      }
    } else if (rng.chance(0.048)) {
      // Holy-Bible also shows up where no probe evidence survived
      // (§VI.B: only 55.35% co-occur with the reference set).
      plan.campaign_mask |= bit(Campaign::kHolyBible);
    }
  }

  // robots.txt on ~1% of anonymous servers; half of those exclude all.
  plan.has_robots = rng.chance(0.0101);
  if (plan.has_robots) {
    plan.robots_full_exclusion = rng.chance(0.52);
    plan.exposes_data = true;  // robots.txt itself is data
  }
  return plan;
}

std::unique_ptr<net::HostModel> SyntheticPopulation::materialize(Ipv4 ip) {
  if (has_ftp(ip)) {
    auto config = host_config(ip);
    assert(config.has_value());
    const FsPlan plan = config->fs_plan;
    auto filesystem = std::make_shared<ftpd::LazyFilesystem>(
        [plan] { return build_filesystem(plan); });
    auto server = std::make_shared<ftpd::FtpServer>(
        ip, config->personality, std::move(filesystem));
    return std::make_unique<PopulatedHost>(std::move(server));
  }
  if (has_junk_listener(ip)) {
    return std::make_unique<JunkHost>(
        ip, static_cast<int>(siphash24_u64(junk_k1_, junk_k0_, ip.value()) %
                             3));
  }
  return nullptr;
}

HttpProfile SyntheticPopulation::http_profile(Ipv4 ip) const {
  // §VI.B: 9.0M of 13.8M FTP hosts co-run HTTP (65.27%); 2.1M of those
  // advertise PHP or ASP.NET via X-Powered-By (15.01% of FTP hosts).
  const auto config_seed = derive_seed(host_seed(ip), "http");
  Xoshiro256ss rng(config_seed);
  const auto config = host_config(ip);
  HttpProfile profile;
  if (!config) return profile;
  const DeviceClass cls = device_catalog()[config->template_id].device_class;
  double http_p = 0.0, script_p = 0.0, asp_share = 0.2;
  switch (cls) {
    case DeviceClass::kHostedServer:
      http_p = 0.99;
      script_p = 0.62;
      asp_share = 0.12;
      break;
    case DeviceClass::kGenericServer:
      http_p = 0.70;
      script_p = 0.11;
      asp_share = 0.30;
      break;
    case DeviceClass::kUnknown:
      http_p = 0.55;
      script_p = 0.05;
      break;
    case DeviceClass::kNas:
      http_p = 0.50;
      script_p = 0.08;
      asp_share = 0.0;
      break;
    case DeviceClass::kHomeRouter:
      http_p = 0.40;
      script_p = 0.02;
      asp_share = 0.0;
      break;
    case DeviceClass::kPrinter:
      http_p = 0.80;
      break;
    case DeviceClass::kProviderCpe:
      http_p = 0.70;
      break;
    case DeviceClass::kOtherEmbedded:
      http_p = 0.50;
      script_p = 0.01;
      break;
  }
  profile.has_http = rng.chance(http_p);
  if (profile.has_http && rng.chance(script_p / std::max(http_p, 1e-9))) {
    profile.powered_by = rng.chance(asp_share)
                             ? HttpProfile::PoweredBy::kAspNet
                             : HttpProfile::PoweredBy::kPhp;
  }
  return profile;
}

}  // namespace ftpc::popgen
