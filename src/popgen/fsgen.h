// Filesystem generation: what an anonymous visitor sees on each host.
//
// The generator reproduces the paper's exposure landscape:
//   - Table VIII's extension mix on SOHO devices (photo libraries, media
//     collections, scan-to-FTP output, office documents),
//   - Table IX's sensitive files with realistic permission bits (SSH host
//     keys mostly 0600, tax exports world-readable, ...),
//   - §V's OS-root exposures and web-source trees,
//   - §VI's malicious artifacts on world-writable servers (write-probe
//     files, ftpchk3 stages, Holy-Bible SEO, DDoS PHP, RATs, piracy
//     fliers, WaReZ date-stamped directories).
#pragma once

#include <cstdint>
#include <memory>

#include "popgen/catalog.h"
#include "vfs/vfs.h"

namespace ftpc::popgen {

/// Sensitive-file classes of Table IX (bit positions for FsPlan masks).
enum class SensitiveKind : std::uint32_t {
  kTurboTax = 0,
  kQuicken,
  kKeePass,
  kOnePassword,
  kSshHostKey,
  kPuttyKey,
  kPrivPem,
  kShadow,
  kPst,
  kCount,
};

/// Malicious campaigns of §VI (bit positions for FsPlan masks).
enum class Campaign : std::uint32_t {
  kProbeW0t = 0,     // w0000000t.txt / w0000000t.php
  kProbeSjutd,       // sjutd.txt
  kProbeHello,       // hello.world.txt
  kFtpchk3,          // ftpchk3.txt / ftpchk3.php (multi-stage)
  kHolyBible,        // Holy-Bible.html SEO campaign
  kDdosHistory,      // history.php UDP flooder
  kDdosPhz,          // phzLtoxn.php UDP flooder
  kRat,              // "<?php eval($_POST[5]);?>" shells
  kCrackFlier,       // keygen/dongle-emulator advertising fliers
  kWarez,            // YYMMDDHHMMSS+"p" transport directories
  kCount,
};

/// Everything build_filesystem() needs; drawn deterministically per host by
/// the population model.
struct FsPlan {
  std::uint64_t seed = 0;
  DeviceClass device_class = DeviceClass::kUnknown;
  FsTemplate fs_template = FsTemplate::kEmptyShare;
  vfs::ListingFormat listing_format = vfs::ListingFormat::kUnix;

  bool exposes_data = false;  // if false, at most empty directories
  bool photos = false;        // personal photo library
  bool media = false;         // music/video collection
  bool documents = false;     // office docs / backups
  bool web_backup = false;    // html/png/gif site backup (NAS "web station")
  bool scripting = false;     // server-side source exposure (§V)
  bool htaccess = false;      // .htaccess files among the source
  bool os_root = false;
  int os_root_kind = 0;       // 0=Linux, 1=Windows, 2=OS X
  bool huge_tree = false;     // needs >500 requests to traverse fully
  std::uint32_t sensitive_mask = 0;  // bits of SensitiveKind
  std::uint32_t campaign_mask = 0;   // bits of Campaign
  bool writable = false;             // anonymous STOR accepted
  bool writable_evidence = false;    // probe/campaign files present
  bool has_robots = false;
  bool robots_full_exclusion = false;
  double size_scale = 1.0;
};

constexpr std::uint32_t bit(SensitiveKind k) {
  return 1u << static_cast<std::uint32_t>(k);
}
constexpr std::uint32_t bit(Campaign c) {
  return 1u << static_cast<std::uint32_t>(c);
}

/// Builds the host filesystem described by `plan`. Deterministic in
/// plan.seed.
std::shared_ptr<vfs::Vfs> build_filesystem(const FsPlan& plan);

}  // namespace ftpc::popgen
