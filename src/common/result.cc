#include "common/result.h"

namespace ftpc {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kConnectionRefused:
      return "connection_refused";
    case ErrorCode::kConnectionReset:
      return "connection_reset";
    case ErrorCode::kProtocolError:
      return "protocol_error";
    case ErrorCode::kPermissionDenied:
      return "permission_denied";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kLimitExceeded:
      return "limit_exceeded";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace ftpc
