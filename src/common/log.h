// Minimal leveled logger. Defaults to warnings-and-up on stderr so that
// library users, tests, and benches stay quiet unless something matters.
#pragma once

#include <sstream>
#include <string>

namespace ftpc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one log line (used by the LOG() style helpers below).
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// RAII line builder: accumulates via operator<< and emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace ftpc
