#include "common/rng.h"

#include <cmath>

#include "common/hash.h"

namespace ftpc {

std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return split_mix64(state);
}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) noexcept {
  return mix64(seed ^ fnv1a64(label));
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t n) noexcept {
  return mix64(seed ^ mix64(n ^ 0xa5a5a5a5a5a5a5a5ULL));
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = split_mix64(sm);
}

std::uint64_t Xoshiro256ss::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift; for our use (bounds << 2^64) the modulo bias of
  // the plain variant is far below statistical noise in any experiment.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(next()) * bound;
  return static_cast<std::uint64_t>(product >> 64);
}

std::uint64_t Xoshiro256ss::next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Xoshiro256ss::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256ss::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Xoshiro256ss::pareto(double alpha, std::uint64_t xmin,
                                   std::uint64_t cap) noexcept {
  // Inverse-CDF sampling of a Pareto(alpha, xmin), truncated at cap.
  const double u = 1.0 - next_double();  // in (0, 1]
  const double x = static_cast<double>(xmin) / std::pow(u, 1.0 / alpha);
  if (x >= static_cast<double>(cap)) return cap;
  const auto v = static_cast<std::uint64_t>(x);
  return v < xmin ? xmin : v;
}

std::size_t pick_cumulative(Xoshiro256ss& rng, const double* cumulative,
                            std::size_t n) noexcept {
  const double total = cumulative[n - 1];
  const double r = rng.next_double() * total;
  // Linear scan: distributions here are short (device catalogs, AS types).
  for (std::size_t i = 0; i < n; ++i) {
    if (r < cumulative[i]) return i;
  }
  return n - 1;
}

}  // namespace ftpc
