// IPv4 address representation and classification.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace ftpc {

/// An IPv4 address stored in host byte order ("a.b.c.d" has `a` in the most
/// significant byte). Value type, totally ordered.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad rendering, e.g. "141.212.120.1".
  std::string str() const;

  /// Parses a dotted quad. Rejects out-of-range octets, empty parts, and
  /// trailing garbage. Returns nullopt on malformed input.
  static std::optional<Ipv4> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4, Ipv4) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix (network address + prefix length). The network address is
/// canonicalized (host bits cleared).
struct Cidr {
  Ipv4 network;
  std::uint8_t prefix_len = 0;

  constexpr std::uint32_t first() const noexcept { return network.value(); }
  constexpr std::uint32_t last() const noexcept {
    return network.value() | (prefix_len == 0 ? 0xffffffffu
                                              : (0xffffffffu >> prefix_len));
  }
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - prefix_len);
  }
  constexpr bool contains(Ipv4 ip) const noexcept {
    return ip.value() >= first() && ip.value() <= last();
  }

  std::string str() const;
  static std::optional<Cidr> parse(std::string_view text);
};

/// True for addresses a public Internet scan must never target: RFC 1918
/// private space, loopback, link-local, multicast, class E, 0.0.0.0/8,
/// 100.64/10 (CGN), 192.0.2.0/24 etc. Mirrors the ZMap default blocklist.
bool is_reserved(Ipv4 ip) noexcept;

/// True for RFC 1918 private addresses only (10/8, 172.16/12, 192.168/16).
/// The paper uses these to spot NAT'd devices that leak internal addresses.
bool is_private(Ipv4 ip) noexcept;

/// Number of non-reserved ("publicly scannable") IPv4 addresses. The paper
/// scanned 3,684,755,175 of them; our reserved set yields a close figure.
std::uint64_t public_ipv4_count() noexcept;

/// An inclusive address range [first, last] in host byte order.
struct IpRange {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
};

/// The reserved ranges behind is_reserved(), sorted and disjoint.
std::span<const IpRange> reserved_ranges() noexcept;

}  // namespace ftpc
