// Plain-text table renderer used by the bench harness to print paper-style
// tables (aligned columns, optional title and footnote).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ftpc {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Builds and renders an aligned text table.
///
///   TextTable t("TABLE I. General metrics");
///   t.set_header({"Metric", "Count"});
///   t.add_row({"IPs scanned", "3,684,755,175"});
///   std::cout << t.render();
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void set_alignments(std::vector<Align> alignments);
  void add_row(std::vector<std::string> row);
  void add_separator();
  void set_footnote(std::string footnote) { footnote_ = std::move(footnote); }

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table; every line ends with '\n'.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::string footnote_;
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace ftpc
