#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace ftpc {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
char lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32) : c;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

bool istarts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool contains(std::string_view s, std::string_view needle) noexcept {
  return s.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view s, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (s.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= s.size(); ++i) {
    if (iequals(s.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [next, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || next != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string with_commas(std::uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string percent(double numerator, double denominator) {
  if (denominator == 0.0) return "n/a";
  const double pct = 100.0 * numerator / denominator;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
  return buf;
}

std::string file_extension(std::string_view path) {
  const std::string_view base = basename(path);
  const std::size_t dot = base.rfind('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == base.size()) {
    return "";
  }
  return to_lower(base.substr(dot + 1));
}

std::string_view basename(std::string_view path) noexcept {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace ftpc
