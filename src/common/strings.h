// Small string utilities shared across modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ftpc {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive prefix test.
bool istarts_with(std::string_view s, std::string_view prefix) noexcept;

/// Case-sensitive substring test (s contains needle).
bool contains(std::string_view s, std::string_view needle) noexcept;

/// Case-insensitive substring test.
bool icontains(std::string_view s, std::string_view needle) noexcept;

/// Splits on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Parses a non-negative decimal integer; rejects garbage and overflow.
std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;

/// Formats `count` with thousands separators: 13789641 -> "13,789,641".
std::string with_commas(std::uint64_t count);

/// Formats a ratio as a percentage with two decimals: "12.74%".
std::string percent(double numerator, double denominator);

/// File extension (lower-cased, without dot) of a path's last component,
/// or "" if none: "a/B.Tar.GZ" -> "gz", "a/Makefile" -> "".
std::string file_extension(std::string_view path);

/// Last path component: "a/b/c.txt" -> "c.txt"; "/" -> "".
std::string_view basename(std::string_view path) noexcept;

}  // namespace ftpc
