#include "common/hash.h"

#include <cstring>

namespace ftpc {

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);  // little-endian hosts only (x86-64/aarch64)
  return v;
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() noexcept {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                        std::span<const std::uint8_t> data) noexcept {
  SipState s{
      .v0 = 0x736f6d6570736575ULL ^ k0,
      .v1 = 0x646f72616e646f6dULL ^ k1,
      .v2 = 0x6c7967656e657261ULL ^ k0,
      .v3 = 0x7465646279746573ULL ^ k1,
  };

  const std::size_t n = data.size();
  const std::uint8_t* p = data.data();
  const std::size_t full = n & ~std::size_t{7};

  for (std::size_t i = 0; i < full; i += 8) {
    const std::uint64_t m = load_le64(p + i);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(n) << 56;
  for (std::size_t i = full; i < n; ++i) {
    last |= static_cast<std::uint64_t>(p[i]) << (8 * (i - full));
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24_u64(std::uint64_t k0, std::uint64_t k1,
                            std::uint64_t value) noexcept {
  std::uint8_t buf[8];
  std::memcpy(buf, &value, 8);
  return siphash24(k0, k1, buf);
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int b) noexcept {
  return (x >> b) | (x << (32 - b));
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

Sha256::Sha256() noexcept
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffered_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffered_);
  }
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256Digest Sha256::finish() noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(len_be, 8));

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest.bytes[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest.bytes[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest.bytes[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest.bytes[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha256Digest sha256(std::string_view data) noexcept {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finish();
}

std::string Sha256Digest::hex() const {
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string Sha256Digest::fingerprint() const {
  std::string out;
  out.reserve(95);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i > 0) out.push_back(':');
    const char lo = kHexDigits[bytes[i] & 0xf];
    const char hi = kHexDigits[bytes[i] >> 4];
    out.push_back(hi >= 'a' ? static_cast<char>(hi - 32) : hi);
    out.push_back(lo >= 'a' ? static_cast<char>(lo - 32) : lo);
  }
  return out;
}

}  // namespace ftpc
