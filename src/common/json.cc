#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace ftpc::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::optional<std::uint64_t> Value::u64(std::string_view key) const noexcept {
  const Value* member = find(key);
  return member != nullptr ? member->as_u64() : std::nullopt;
}

std::optional<std::string_view> Value::str(std::string_view key) const noexcept {
  const Value* member = find(key);
  if (member == nullptr || !member->is_string()) return std::nullopt;
  return std::string_view(member->as_string());
}

namespace {
constexpr int kMaxDepth = 64;
}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value value;
    if (!parse_value(value, 0)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair: combine when a low surrogate follows.
          if (cp >= 0xd800 && cp <= 0xdbff &&
              text_.substr(pos_, 2) == "\\u") {
            const std::size_t rewind = pos_;
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low >= 0xdc00 && low <= 0xdfff) {
              cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
            } else {
              pos_ = rewind;  // lone high surrogate; emit as-is
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t begin = pos_;
    bool negative = false;
    bool fractional = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == begin + (negative ? 1 : 0)) return fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      fractional = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fractional = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    out.type_ = Value::Type::kNumber;
    out.double_ = std::strtod(token.c_str(), nullptr);
    out.integral_ = false;
    if (!negative && !fractional) {
      // Exact u64 path: reject on overflow rather than rounding.
      std::uint64_t value = 0;
      bool overflow = false;
      for (const char digit : token) {
        const auto d = static_cast<std::uint64_t>(digit - '0');
        if (value > (~std::uint64_t{0} - d) / 10) {
          overflow = true;
          break;
        }
        value = value * 10 + d;
      }
      if (!overflow) {
        out.integral_ = true;
        out.u64_ = value;
      }
    }
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.type_ = Value::Type::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':' in object");
          }
          ++pos_;
          Value member;
          if (!parse_value(member, depth + 1)) return false;
          out.object_.insert_or_assign(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        out.type_ = Value::Type::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          Value element;
          if (!parse_value(element, depth + 1)) return false;
          out.array_.push_back(std::move(element));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '"':
        out.type_ = Value::Type::kString;
        return parse_string(out.string_);
      case 't':
        out.type_ = Value::Type::kBool;
        out.bool_ = true;
        return literal("true");
      case 'f':
        out.type_ = Value::Type::kBool;
        out.bool_ = false;
        return literal("false");
      case 'n':
        out.type_ = Value::Type::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ftpc::json
