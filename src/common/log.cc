#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace ftpc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace ftpc
