// Hashing primitives: FNV-1a, SipHash-2-4, and SHA-256.
//
// FNV-1a is used for cheap domain separation; SipHash-2-4 keys the lazy
// host-materialization function (ip -> profile) so population membership is
// both deterministic and statistically uniform; SHA-256 fingerprints
// simulated X.509 certificates exactly the way a real study would.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ftpc {

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// SipHash-2-4 with a 128-bit key given as two 64-bit halves.
std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                        std::span<const std::uint8_t> data) noexcept;

/// Convenience: SipHash-2-4 of a little-endian encoded 64-bit value.
std::uint64_t siphash24_u64(std::uint64_t k0, std::uint64_t k1,
                            std::uint64_t value) noexcept;

/// SHA-256 digest.
struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  /// Lower-case hex rendering ("e3b0c442...").
  std::string hex() const;

  /// Colon-separated upper-case fingerprint form ("E3:B0:C4:...").
  std::string fingerprint() const;

  friend bool operator==(const Sha256Digest&, const Sha256Digest&) = default;
};

/// One-shot SHA-256 of `data`.
Sha256Digest sha256(std::string_view data) noexcept;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256() noexcept;
  void update(std::string_view data) noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  Sha256Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ftpc
