// Deterministic pseudo-random number generation.
//
// Every stochastic decision in ftpcensus flows through these generators so
// that a single 64-bit seed reproduces an entire study: the AS table, the
// host population, each host's filesystem, and each attacker's behaviour.
//
// Two generators are provided:
//  - SplitMix64: stateless-ish stream generator, used for seed derivation.
//  - Xoshiro256ss: the workhorse generator (xoshiro256**), used everywhere
//    a stream of numbers is needed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ftpc {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Useful on its own for seed sequencing (it is an excellent mixer).
std::uint64_t split_mix64(std::uint64_t& state) noexcept;

/// Mixes `value` through one SplitMix64 round without carrying state.
/// Used to derive independent sub-seeds from (seed, label) pairs.
std::uint64_t mix64(std::uint64_t value) noexcept;

/// Derives a sub-seed from a parent seed and a domain-separation label.
/// Different labels yield statistically independent streams.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) noexcept;

/// Derives a sub-seed from a parent seed and a numeric discriminator.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t n) noexcept;

/// xoshiro256** 1.0 by Blackman & Vigna. Fast, high quality, 256-bit state.
class Xoshiro256ss {
 public:
  /// Seeds the state via SplitMix64 so any 64-bit seed (including 0) is safe.
  explicit Xoshiro256ss(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method; bias is negligible for our bounds.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric-ish heavy-tail sample: Pareto with shape `alpha`, min `xmin`,
  /// truncated at `cap`. Used for file counts and AS sizes.
  std::uint64_t pareto(double alpha, std::uint64_t xmin,
                       std::uint64_t cap) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Picks an index from a discrete distribution given cumulative weights.
/// `cumulative` must be non-empty and non-decreasing with a positive final
/// value. Returns an index in [0, cumulative.size()).
std::size_t pick_cumulative(Xoshiro256ss& rng, const double* cumulative,
                            std::size_t n) noexcept;

}  // namespace ftpc
