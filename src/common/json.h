// Minimal JSON document parser for the cross-process artifact formats.
//
// The shard artifact machinery (core/shard_artifact.h) has to read back
// what the observability exporters wrote: manifests, checkpoints, journal
// lines, metrics documents, trace events, timeline facts. Those writers
// emit a narrow, canonical subset of JSON (objects, arrays, strings with
// standard escapes, unsigned integers, the occasional double), and this
// parser accepts exactly standard JSON — a superset of what we write — so
// hand-edited or corrupted inputs fail loudly instead of half-parsing.
//
// Deliberately tiny: no DOM mutation, no serialization (each schema owns
// its canonical writer), objects as sorted maps, numbers kept in both u64
// and double forms so exact integer round-trips never pass through a
// double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ftpc::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const noexcept { return bool_; }
  /// Exact unsigned value; nullopt for negatives, fractions, or non-numbers.
  std::optional<std::uint64_t> as_u64() const noexcept {
    if (type_ != Type::kNumber || !integral_) return std::nullopt;
    return u64_;
  }
  double as_double() const noexcept { return double_; }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<Value>& array() const noexcept { return array_; }
  const std::map<std::string, Value>& object() const noexcept {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const noexcept;

  /// Convenience: the u64 member `key`, or nullopt when absent/mistyped.
  std::optional<std::uint64_t> u64(std::string_view key) const noexcept;
  /// Convenience: the string member `key`, or nullopt when absent/mistyped.
  std::optional<std::string_view> str(std::string_view key) const noexcept;

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). On failure returns nullopt and, when
  /// `error` is non-null, stores a one-line diagnostic with a byte offset.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  bool integral_ = false;      // number fits exactly in u64_
  std::uint64_t u64_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

}  // namespace ftpc::json
