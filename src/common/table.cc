#include "common/table.h"

#include <algorithm>

namespace ftpc {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::set_alignments(std::vector<Align> alignments) {
  alignments_ = std::move(alignments);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{.cells = std::move(row), .separator = false});
}

void TextTable::add_separator() {
  rows_.push_back(Row{.cells = {}, .separator = true});
}

std::string TextTable::render() const {
  // Column widths.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const Row& row : rows_) {
    if (!row.separator) grow(row.cells);
  }

  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  if (total >= 2) total -= 2;

  std::string out;
  auto rule = [&out, total](char c) {
    out.append(total, c);
    out.push_back('\n');
  };

  if (!title_.empty()) {
    out += title_;
    out.push_back('\n');
  }
  rule('=');

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const Align align =
          i < alignments_.size() ? alignments_[i] : Align::kLeft;
      const std::size_t pad = widths[i] - cell.size();
      if (align == Align::kRight) out.append(pad, ' ');
      out += cell;
      if (i + 1 < widths.size()) {
        if (align == Align::kLeft) out.append(pad, ' ');
        out += "  ";
      }
    }
    // Trim trailing spaces from left-aligned last columns.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };

  if (!header_.empty()) {
    emit(header_);
    rule('-');
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      rule('-');
    } else {
      emit(row.cells);
    }
  }
  rule('=');
  if (!footnote_.empty()) {
    out += footnote_;
    out.push_back('\n');
  }
  return out;
}

}  // namespace ftpc
