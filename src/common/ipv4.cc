#include "common/ipv4.h"

#include <charconv>

namespace ftpc {

std::string Ipv4::str() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros like "01" to avoid octal ambiguity.
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4(value);
}

std::string Cidr::str() const {
  return network.str() + "/" + std::to_string(prefix_len);
}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = Ipv4::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  unsigned len = 0;
  const auto rest = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), len);
  if (ec != std::errc{} || next != rest.data() + rest.size() || len > 32) {
    return std::nullopt;
  }
  const std::uint32_t mask =
      len == 0 ? 0 : (0xffffffffu << (32 - len));
  return Cidr{Ipv4(ip->value() & mask), static_cast<std::uint8_t>(len)};
}

namespace {

// The reserved set below mirrors the ZMap default blocklist (RFC 6890
// special-purpose registries) plus multicast and class E.
using Range = IpRange;

constexpr std::uint32_t ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                           std::uint8_t d) {
  return (std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
         (std::uint32_t{c} << 8) | std::uint32_t{d};
}

constexpr Range kReserved[] = {
    {ip(0, 0, 0, 0), ip(0, 255, 255, 255)},          // 0.0.0.0/8
    {ip(10, 0, 0, 0), ip(10, 255, 255, 255)},        // 10/8 private
    {ip(100, 64, 0, 0), ip(100, 127, 255, 255)},     // 100.64/10 CGN
    {ip(127, 0, 0, 0), ip(127, 255, 255, 255)},      // loopback
    {ip(169, 254, 0, 0), ip(169, 254, 255, 255)},    // link-local
    {ip(172, 16, 0, 0), ip(172, 31, 255, 255)},      // 172.16/12 private
    {ip(192, 0, 0, 0), ip(192, 0, 0, 255)},          // IETF protocol
    {ip(192, 0, 2, 0), ip(192, 0, 2, 255)},          // TEST-NET-1
    {ip(192, 88, 99, 0), ip(192, 88, 99, 255)},      // 6to4 relay
    {ip(192, 168, 0, 0), ip(192, 168, 255, 255)},    // 192.168/16 private
    {ip(198, 18, 0, 0), ip(198, 19, 255, 255)},      // benchmarking
    {ip(198, 51, 100, 0), ip(198, 51, 100, 255)},    // TEST-NET-2
    {ip(203, 0, 113, 0), ip(203, 0, 113, 255)},      // TEST-NET-3
    {ip(224, 0, 0, 0), ip(255, 255, 255, 255)},      // multicast + class E
};

}  // namespace

bool is_reserved(Ipv4 addr) noexcept {
  const std::uint32_t v = addr.value();
  for (const auto& range : kReserved) {
    if (v >= range.first && v <= range.last) return true;
  }
  return false;
}

bool is_private(Ipv4 addr) noexcept {
  const std::uint32_t v = addr.value();
  return (v >= ip(10, 0, 0, 0) && v <= ip(10, 255, 255, 255)) ||
         (v >= ip(172, 16, 0, 0) && v <= ip(172, 31, 255, 255)) ||
         (v >= ip(192, 168, 0, 0) && v <= ip(192, 168, 255, 255));
}

std::span<const IpRange> reserved_ranges() noexcept { return kReserved; }

std::uint64_t public_ipv4_count() noexcept {
  std::uint64_t reserved = 0;
  for (const auto& range : kReserved) {
    reserved += std::uint64_t{range.last} - range.first + 1;
  }
  return (std::uint64_t{1} << 32) - reserved;
}

}  // namespace ftpc
