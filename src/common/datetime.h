// Civil date/time math (proleptic Gregorian), independent of the C runtime
// so virtual timestamps format identically everywhere.
#pragma once

#include <cstdint>
#include <string>

namespace ftpc {

struct CivilDateTime {
  int year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31
  int hour = 0;
  int minute = 0;
  int second = 0;
};

/// Converts Unix seconds to a civil UTC date/time.
CivilDateTime civil_from_unix(std::int64_t unix_seconds) noexcept;

/// Converts a civil UTC date/time to Unix seconds.
std::int64_t unix_from_civil(const CivilDateTime& c) noexcept;

/// "Jun", "Dec", ... (1-based month).
const char* month_abbrev(int month) noexcept;

/// `ls -l` style date column: "Jun 18  2015" if not `current_year`, else
/// "Jun 18 09:42".
std::string ls_date(std::int64_t mtime_unix, int current_year);

/// Windows DIR style: "06-18-15  09:42AM".
std::string dir_date(std::int64_t mtime_unix);

}  // namespace ftpc
