#include "common/datetime.h"

#include <cstdio>

namespace ftpc {

namespace {

// Days-from-civil / civil-from-days after Howard Hinnant's algorithms.
std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yr = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yr + (m <= 2));
}

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

CivilDateTime civil_from_unix(std::int64_t unix_seconds) noexcept {
  std::int64_t days = unix_seconds / 86400;
  std::int64_t rem = unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilDateTime c;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / 3600);
  c.minute = static_cast<int>((rem % 3600) / 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

std::int64_t unix_from_civil(const CivilDateTime& c) noexcept {
  return days_from_civil(c.year, c.month, c.day) * 86400 + c.hour * 3600 +
         c.minute * 60 + c.second;
}

const char* month_abbrev(int month) noexcept {
  if (month < 1 || month > 12) return "???";
  return kMonths[month - 1];
}

std::string ls_date(std::int64_t mtime_unix, int current_year) {
  const CivilDateTime c = civil_from_unix(mtime_unix);
  char buf[32];
  if (c.year == current_year) {
    std::snprintf(buf, sizeof(buf), "%s %2d %02d:%02d", month_abbrev(c.month),
                  c.day, c.hour, c.minute);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %2d  %d", month_abbrev(c.month), c.day,
                  c.year);
  }
  return buf;
}

std::string dir_date(std::int64_t mtime_unix) {
  const CivilDateTime c = civil_from_unix(mtime_unix);
  const int hour12 = c.hour % 12 == 0 ? 12 : c.hour % 12;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d-%02d-%02d  %02d:%02d%s", c.month,
                c.day, c.year % 100, hour12, c.minute,
                c.hour < 12 ? "AM" : "PM");
  return buf;
}

}  // namespace ftpc
