// Lightweight Status / Result<T> error handling.
//
// Recoverable conditions (network resets, protocol violations by remote
// peers, malformed data) are returned as values; assertions guard
// programmer errors. No exceptions cross module boundaries.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ftpc {

/// Coarse error taxonomy shared by all modules.
enum class ErrorCode {
  kOk = 0,
  kTimeout,           // peer did not respond in time
  kConnectionRefused, // no listener on (ip, port)
  kConnectionReset,   // peer or network dropped the connection mid-stream
  kProtocolError,     // peer sent something we could not parse
  kPermissionDenied,  // authenticated action refused by the peer
  kNotFound,          // path / object does not exist
  kLimitExceeded,     // request cap, size cap, or rate cap hit
  kInvalidArgument,   // caller-supplied value out of contract
  kUnavailable,       // service exists but refuses to serve (e.g. banner-only)
  kInternal,          // bug-adjacent: should not happen in a healthy run
};

/// Human-readable name for an ErrorCode ("timeout", "protocol_error", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// A status: OK or (code, message).
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status ok() noexcept { return Status(); }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "timeout: no banner within 10s" or "ok".
  std::string str() const {
    if (is_ok()) return "ok";
    std::string out{error_code_name(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// A value or a Status. Accessing the value of a failed Result is a
/// programmer error (asserted).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : storage_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(storage_).is_ok() &&
           "Result must not be constructed from an OK status");
  }
  Result(ErrorCode code, std::string message)
      : storage_(Status(code, std::move(message))) {}

  bool is_ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return is_ok(); }

  ErrorCode code() const noexcept {
    return is_ok() ? ErrorCode::kOk : std::get<Status>(storage_).code();
  }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(storage_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(storage_));
  }

  const Status& status() const& {
    assert(!is_ok());
    return std::get<Status>(storage_);
  }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace ftpc
