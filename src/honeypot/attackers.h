// The scripted attacker population for the honeypot study.
//
// §VIII's observations become behaviour classes; each attacker IP runs one
// script against one or more honeypots at a random time inside the
// three-month window. Counts per class are configurable and default to
// values that reproduce the paper's observations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ipv4.h"
#include "common/rng.h"
#include "sim/network.h"

namespace ftpc::honeypot {

struct AttackerMix {
  // 457 unique scanner IPs total; ~30% from one AS (China Unicom Henan).
  std::uint32_t http_get_clients = 330;
  std::uint32_t silent_connects = 42;
  std::uint32_t tls_identifiers = 36;    // AUTH TLS device fingerprinting
  std::uint32_t traversers = 16;         // CWD walkers (half also LIST)
  std::uint32_t pure_listers = 5;        // LIST without traversal
  std::uint32_t brute_forcers = 12;      // ~120 credential pairs each
  std::uint32_t write_probers = 4;       // upload + delete hello.world.txt
  std::uint32_t port_bouncers = 8;       // all aim at one third party
  std::uint32_t mod_copy_exploiters = 1; // CVE-2015-3306
  std::uint32_t seagate_exploiters = 1;  // password-less root + RAT upload
  std::uint32_t warez_mkdir_clients = 2; // MKD with no upload (WaReZ-like)
  double dominant_as_share = 0.30;
};

class AttackerPopulation {
 public:
  AttackerPopulation(sim::Network& network, std::uint64_t seed,
                     AttackerMix mix = {});

  /// Schedules every attacker's session(s) against `honeypots` across
  /// `window` of virtual time, starting at the loop's current time. The
  /// caller then drives the loop.
  void deploy(const std::vector<Ipv4>& honeypots, sim::SimTime window);

  std::uint32_t total_attackers() const noexcept;

 private:
  Ipv4 pick_source_ip();

  sim::Network& network_;
  Xoshiro256ss rng_;
  AttackerMix mix_;
  std::vector<Ipv4> used_ips_;
};

}  // namespace ftpc::honeypot
