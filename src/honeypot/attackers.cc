#include "honeypot/attackers.h"

#include <memory>
#include <string>
#include <vector>

#include "ftp/client.h"

namespace ftpc::honeypot {

namespace {

/// One scripted FTP session: a login, a sequence of steps, QUIT. Errors
/// abort silently (attackers are not robust software either).
class ScriptRunner : public std::enable_shared_from_this<ScriptRunner> {
 public:
  struct Step {
    enum class Kind { kCommand, kUpload, kListing, kAuthTls } kind =
        Kind::kCommand;
    ftp::Command command;
    std::string upload_path;
    std::string upload_data;
  };

  static void start(sim::Network& network, Ipv4 src, Ipv4 dst,
                    std::string user, std::string password,
                    std::vector<Step> steps) {
    std::shared_ptr<ScriptRunner> runner(new ScriptRunner(
        network, src, std::move(user), std::move(password),
        std::move(steps)));
    runner->self_ = runner;
    runner->begin(dst);
  }

 private:
  ScriptRunner(sim::Network& network, Ipv4 src, std::string user,
               std::string password, std::vector<Step> steps)
      : network_(network),
        user_(std::move(user)),
        password_(std::move(password)),
        steps_(std::move(steps)) {
    ftp::FtpClient::Options options;
    options.client_ip = src;
    options.reply_timeout = 20 * sim::kSecond;
    client_ = ftp::FtpClient::create(network, options);
  }

  void begin(Ipv4 dst) {
    auto self = shared_from_this();
    client_->connect(dst, 21, [self](Result<ftp::Reply> r) {
      if (!r.is_ok()) return self->finish();
      if (self->user_.empty()) return self->next_step();  // no login phase
      self->client_->send("USER", self->user_, [self](Result<ftp::Reply> r2) {
        if (!r2.is_ok()) return self->finish();
        if (r2.value().code == 230) return self->next_step();
        self->client_->send("PASS", self->password_,
                            [self](Result<ftp::Reply> r3) {
                              if (!r3.is_ok()) return self->finish();
                              self->next_step();
                            });
      });
    });
  }

  void next_step() {
    if (index_ >= steps_.size()) {
      auto self = shared_from_this();
      client_->quit([self] { self->finish(); });
      return;
    }
    const Step& step = steps_[index_++];
    auto self = shared_from_this();
    auto cont = [self](auto&&...) { self->next_step(); };
    switch (step.kind) {
      case Step::Kind::kCommand:
        client_->send_command(step.command, cont);
        return;
      case Step::Kind::kUpload:
        client_->upload(step.upload_path, step.upload_data, cont);
        return;
      case Step::Kind::kListing:
        client_->download("LIST", step.command.arg, cont);
        return;
      case Step::Kind::kAuthTls:
        client_->auth_tls(cont);
        return;
    }
  }

  void finish() {
    if (!self_) return;
    client_->abort_session();
    self_.reset();
  }

  sim::Network& network_;
  std::string user_;
  std::string password_;
  std::vector<Step> steps_;
  std::size_t index_ = 0;
  std::shared_ptr<ftp::FtpClient> client_;
  std::shared_ptr<ScriptRunner> self_;
};

using Step = ScriptRunner::Step;

Step cmd(std::string verb, std::string arg = "") {
  Step s;
  s.command = ftp::Command{.verb = std::move(verb), .arg = std::move(arg)};
  return s;
}

Step upload(std::string path, std::string data) {
  Step s;
  s.kind = Step::Kind::kUpload;
  s.upload_path = std::move(path);
  s.upload_data = std::move(data);
  return s;
}

Step listing(std::string path) {
  Step s;
  s.kind = Step::Kind::kListing;
  s.command.arg = std::move(path);
  return s;
}

Step auth_tls() {
  Step s;
  s.kind = Step::Kind::kAuthTls;
  return s;
}

/// A raw TCP client that speaks HTTP at the FTP port, as most §VIII
/// scanners did.
void run_http_get(sim::Network& network, Ipv4 src, Ipv4 dst) {
  network.connect(src, dst, 21,
                  [](Result<std::shared_ptr<sim::Connection>> result) {
                    if (!result.is_ok()) return;
                    auto conn = std::move(result).take();
                    conn->send("GET / HTTP/1.0\r\n\r\n");
                    conn->close();
                  });
}

void run_silent_connect(sim::Network& network, Ipv4 src, Ipv4 dst) {
  network.connect(src, dst, 21,
                  [](Result<std::shared_ptr<sim::Connection>> result) {
                    if (!result.is_ok()) return;
                    std::move(result).take()->close();
                  });
}

}  // namespace

AttackerPopulation::AttackerPopulation(sim::Network& network,
                                       std::uint64_t seed, AttackerMix mix)
    : network_(network),
      rng_(derive_seed(seed, "attackers")),
      mix_(mix) {}

std::uint32_t AttackerPopulation::total_attackers() const noexcept {
  return mix_.http_get_clients + mix_.silent_connects +
         mix_.tls_identifiers + mix_.traversers + mix_.pure_listers +
         mix_.brute_forcers + mix_.write_probers + mix_.port_bouncers +
         mix_.mod_copy_exploiters + mix_.seagate_exploiters +
         mix_.warez_mkdir_clients;
}

Ipv4 AttackerPopulation::pick_source_ip() {
  Ipv4 ip;
  for (;;) {
    if (rng_.chance(mix_.dominant_as_share)) {
      // "China Unicom Henan Province Network" stand-in: one /16.
      ip = Ipv4(123, 101, static_cast<std::uint8_t>(rng_.next_below(256)),
                static_cast<std::uint8_t>(rng_.next_in(1, 254)));
    } else {
      ip = Ipv4(static_cast<std::uint32_t>(rng_.next()));
      if (is_reserved(ip)) continue;
    }
    bool clash = false;
    for (const Ipv4 used : used_ips_) {
      if (used == ip) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      used_ips_.push_back(ip);
      return ip;
    }
  }
}

void AttackerPopulation::deploy(const std::vector<Ipv4>& honeypots,
                                sim::SimTime window) {
  auto schedule = [&](std::function<void()> action) {
    network_.loop().schedule_after(rng_.next_below(window),
                                   std::move(action));
  };
  auto pick_honeypot = [&] {
    return honeypots[rng_.next_below(honeypots.size())];
  };

  sim::Network* net = &network_;

  for (std::uint32_t i = 0; i < mix_.http_get_clients; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] { run_http_get(*net, src, dst); });
  }
  for (std::uint32_t i = 0; i < mix_.silent_connects; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] { run_silent_connect(*net, src, dst); });
  }
  for (std::uint32_t i = 0; i < mix_.tls_identifiers; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] {
      ScriptRunner::start(*net, src, dst, "", "", {auth_tls()});
    });
  }
  for (std::uint32_t i = 0; i < mix_.traversers; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    // Blind web-root walks; half also list what they find.
    std::vector<Step> steps = {cmd("CWD", "cgi-bin"), cmd("CWD", "/www"),
                               cmd("CWD", "/public_html"),
                               cmd("CWD", "/htdocs")};
    if (i % 2 == 0) steps.push_back(listing("/"));
    schedule([net, src, dst, steps = std::move(steps)] {
      ScriptRunner::start(*net, src, dst, "anonymous", "guest@here.com",
                          steps);
    });
  }
  for (std::uint32_t i = 0; i < mix_.pure_listers; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] {
      ScriptRunner::start(*net, src, dst, "anonymous", "mozilla@example.com",
                          {listing("/"), listing("/pub")});
    });
  }
  for (std::uint32_t i = 0; i < mix_.brute_forcers; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    // ~120 credential pairs per brute forcer; mostly weak passwords, a few
    // device defaults.
    static constexpr const char* kUsers[] = {"admin", "root",  "user",
                                             "test",  "ftp",   "guest",
                                             "oracle", "pi",   "ubnt",
                                             "support"};
    static constexpr const char* kPasswords[] = {
        "123456", "password", "admin", "root", "12345", "qwerty",
        "letmein", "1234",    "toor",  "default", "pass", "changeme"};
    std::vector<Step> steps;
    for (const char* user : kUsers) {
      for (const char* password : kPasswords) {
        steps.push_back(cmd("USER", user));
        steps.push_back(
            cmd("PASS", std::string(password) + "-" + std::to_string(i)));
      }
    }
    schedule([net, src, dst, steps = std::move(steps)] {
      ScriptRunner::start(*net, src, dst, "", "", steps);
    });
  }
  for (std::uint32_t i = 0; i < mix_.write_probers; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] {
      ScriptRunner::start(
          *net, src, dst, "anonymous", "probe@example.com",
          {upload("/hello.world.txt", "aGVsbG8="),
           cmd("DELE", "/hello.world.txt")});
    });
  }
  // All bounce attempts target the same third party (§VIII.A).
  const Ipv4 bounce_target(198, 41, 13, 37);
  for (std::uint32_t i = 0; i < mix_.port_bouncers; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    const ftp::HostPort hp{.ip = bounce_target.value(),
                           .port = static_cast<std::uint16_t>(6000 + i)};
    schedule([net, src, dst, hp] {
      ScriptRunner::start(*net, src, dst, "anonymous", "b@b.b",
                          {cmd("PORT", hp.wire()), cmd("NLST", "/")});
    });
  }
  for (std::uint32_t i = 0; i < mix_.mod_copy_exploiters; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] {
      ScriptRunner::start(*net, src, dst, "anonymous", "x@x.x",
                          {cmd("SITE", "CPFR /proc/self/cmdline"),
                           cmd("SITE", "CPTO /tmp/.<?php passthru($_GET[c]);")});
    });
  }
  for (std::uint32_t i = 0; i < mix_.seagate_exploiters; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = honeypots.back();  // the Seagate-flavored honeypot
    schedule([net, src, dst] {
      ScriptRunner::start(*net, src, dst, "root", "",
                          {upload("/x.php", "<?php eval($_POST[5]);?>")});
    });
  }
  for (std::uint32_t i = 0; i < mix_.warez_mkdir_clients; ++i) {
    const Ipv4 src = pick_source_ip();
    const Ipv4 dst = pick_honeypot();
    schedule([net, src, dst] {
      ScriptRunner::start(*net, src, dst, "anonymous", "w@w.w",
                          {cmd("MKD", "150618123456p"),
                           cmd("MKD", "150619091500p")});
    });
  }
}

}  // namespace ftpc::honeypot
