// The honeypot study (§VIII): eight anonymous, world-writable FTP servers
// observed over three (virtual) months.
//
// HoneypotLog implements ftpd::SessionObserver and tallies exactly what
// the paper reports: scanner IPs, FTP speakers vs HTTP-GET confusion,
// traversals and listings (including blind ones), credential guesses,
// CVE-2015-3306 (mod_copy SITE CPFR/CPTO) attempts, the Seagate
// password-less-root exploit, PORT-bounce tests, AUTH TLS device
// identification, and WaReZ-style mkdir-without-upload behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ipv4.h"
#include "ftpd/server.h"
#include "sim/network.h"

namespace ftpc::honeypot {

class HoneypotLog : public ftpd::SessionObserver {
 public:
  void on_connect(Ipv4 client) override;
  void on_command(Ipv4 client, const ftp::Command& cmd) override;
  void on_login_attempt(Ipv4 client, const std::string& user,
                        const std::string& password, bool success) override;
  void on_upload(Ipv4 client, const std::string& path,
                 std::size_t bytes) override;
  void on_delete(Ipv4 client, const std::string& path) override;
  void on_mkdir(Ipv4 client, const std::string& path) override;
  void on_port_bounce(Ipv4 client, Ipv4 target, std::uint16_t port) override;
  void on_auth_tls(Ipv4 client) override;

  // §VIII.A's numbers.
  std::size_t unique_scanners() const { return scanners_.size(); }
  std::size_t spoke_ftp() const { return ftp_speakers_.size(); }
  std::size_t http_get_ips() const { return http_get_.size(); }
  std::size_t traversal_ips() const { return traversers_.size(); }
  std::size_t listing_ips() const { return listers_.size(); }
  std::size_t unique_credentials() const { return credentials_.size(); }
  std::size_t bounce_ips() const { return bounce_ips_.size(); }
  std::size_t bounce_targets() const { return bounce_targets_.size(); }
  std::size_t auth_tls_ips() const { return auth_tls_.size(); }
  std::uint64_t cve_2015_3306_attempts() const { return cve_mod_copy_; }
  /// Successful password-less root logins (the Seagate firmware bug).
  std::uint64_t root_login_attempts() const { return root_logins_; }
  std::uint64_t uploads() const { return uploads_; }
  std::uint64_t deletes() const { return deletes_; }
  std::size_t mkdir_ips() const { return mkdir_ips_.size(); }
  /// IPs that created directories but never uploaded anything into them —
  /// the WaReZ-transporter signature of §VIII.B.
  std::uint64_t mkdirs_without_upload() const;
  /// Share of scanners from the dominant /16 ("China Unicom Henan").
  double dominant_prefix_share() const;

 private:
  std::set<std::uint32_t> scanners_;
  std::set<std::uint32_t> ftp_speakers_;
  std::set<std::uint32_t> http_get_;
  std::set<std::uint32_t> traversers_;
  std::set<std::uint32_t> listers_;
  std::set<std::pair<std::string, std::string>> credentials_;
  std::set<std::uint32_t> bounce_ips_;
  std::set<std::uint32_t> bounce_targets_;
  std::set<std::uint32_t> auth_tls_;
  std::set<std::uint32_t> mkdir_ips_;
  std::set<std::uint32_t> upload_ips_;
  std::uint64_t cve_mod_copy_ = 0;
  std::uint64_t root_logins_ = 0;
  std::uint64_t uploads_ = 0;
  std::uint64_t deletes_ = 0;
};

/// Deploys the eight honeypots and exposes their shared log.
class HoneypotFleet {
 public:
  /// `base_ip` anchors the eight addresses (base, base+1, ...). One of the
  /// eight presents Seagate-like firmware (password-less root).
  HoneypotFleet(sim::Network& network, Ipv4 base_ip);
  ~HoneypotFleet();

  const std::vector<Ipv4>& addresses() const noexcept { return addresses_; }
  HoneypotLog& log() noexcept { return log_; }

  /// §VIII: "we created those paths and populated them with representative
  /// files" after watching blind traversals — call between phases.
  void populate_probed_paths();

 private:
  sim::Network& network_;
  HoneypotLog log_;
  std::vector<Ipv4> addresses_;
  std::vector<std::shared_ptr<ftpd::FtpServer>> servers_;
};

}  // namespace ftpc::honeypot
