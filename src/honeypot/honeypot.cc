#include "honeypot/honeypot.h"

#include <map>

#include "common/strings.h"
#include "vfs/vfs.h"

namespace ftpc::honeypot {

// ---------------------------------------------------------------------------
// HoneypotLog
// ---------------------------------------------------------------------------

void HoneypotLog::on_connect(Ipv4 client) { scanners_.insert(client.value()); }

void HoneypotLog::on_command(Ipv4 client, const ftp::Command& cmd) {
  // HTTP clients blindly issue "GET / HTTP/1.x" at the FTP port; the verb
  // parser dutifully reports verb "GET".
  if (cmd.verb == "GET") {
    http_get_.insert(client.value());
    return;
  }
  ftp_speakers_.insert(client.value());
  if (cmd.verb == "CWD" || cmd.verb == "CDUP") {
    traversers_.insert(client.value());
  }
  if (cmd.verb == "LIST" || cmd.verb == "NLST") {
    listers_.insert(client.value());
  }
  if (cmd.verb == "SITE" &&
      (istarts_with(cmd.arg, "CPFR") || istarts_with(cmd.arg, "CPTO"))) {
    // ProFTPD mod_copy (CVE-2015-3306) exploitation attempt.
    ++cve_mod_copy_;
  }
}

void HoneypotLog::on_login_attempt(Ipv4 client, const std::string& user,
                                   const std::string& password,
                                   bool success) {
  credentials_.emplace(user, password);
  if (success && to_lower(user) == "root") ++root_logins_;
  ftp_speakers_.insert(client.value());
}

void HoneypotLog::on_upload(Ipv4 client, const std::string& /*path*/,
                            std::size_t /*bytes*/) {
  ++uploads_;
  upload_ips_.insert(client.value());
}

std::uint64_t HoneypotLog::mkdirs_without_upload() const {
  std::uint64_t count = 0;
  for (const std::uint32_t ip : mkdir_ips_) {
    if (upload_ips_.count(ip) == 0) ++count;
  }
  return count;
}

void HoneypotLog::on_delete(Ipv4 /*client*/, const std::string& /*path*/) {
  ++deletes_;
}

void HoneypotLog::on_mkdir(Ipv4 client, const std::string& /*path*/) {
  mkdir_ips_.insert(client.value());
}

void HoneypotLog::on_port_bounce(Ipv4 client, Ipv4 target,
                                 std::uint16_t /*port*/) {
  bounce_ips_.insert(client.value());
  bounce_targets_.insert(target.value());
}

void HoneypotLog::on_auth_tls(Ipv4 client) {
  auth_tls_.insert(client.value());
  ftp_speakers_.insert(client.value());
}

double HoneypotLog::dominant_prefix_share() const {
  std::map<std::uint32_t, std::size_t> by_prefix16;
  for (const std::uint32_t ip : scanners_) ++by_prefix16[ip >> 16];
  std::size_t best = 0;
  for (const auto& [prefix, count] : by_prefix16) {
    best = std::max(best, count);
  }
  return scanners_.empty()
             ? 0.0
             : static_cast<double>(best) / static_cast<double>(scanners_.size());
}

// ---------------------------------------------------------------------------
// HoneypotFleet
// ---------------------------------------------------------------------------

HoneypotFleet::HoneypotFleet(sim::Network& network, Ipv4 base_ip)
    : network_(network) {
  for (int i = 0; i < 8; ++i) {
    const Ipv4 ip(base_ip.value() + static_cast<std::uint32_t>(i));
    addresses_.push_back(ip);

    auto personality = std::make_shared<ftpd::Personality>();
    if (i == 7) {
      // One Seagate-flavored honeypot: stock firmware, password-less root.
      personality->implementation = "Seagate Central";
      personality->banner = "220 Seagate Central Shared Storage FTP server";
      personality->valid_credentials.emplace_back("root", "");
    } else {
      personality->implementation = "ProFTPD";
      personality->version = "1.3.5";
      personality->banner =
          "220 ProFTPD 1.3.5 Server (ProFTPD Default Installation) [{ip}]";
    }
    personality->allow_anonymous = true;
    personality->anonymous_writable = true;
    personality->allow_anonymous_delete = true;
    personality->allow_anonymous_mkd = true;
    personality->upload_conflict = ftpd::UploadConflictPolicy::kOverwrite;
    // Honeypots deliberately accept PORT to anywhere so bounce attempts
    // are observable.
    personality->validate_port_ip = false;

    auto filesystem = std::make_shared<vfs::Vfs>();
    (void)filesystem->mkdir("/incoming", vfs::Mode{0777});
    (void)filesystem->mkdir("/pub");
    (void)filesystem->add_file("/pub/README.txt",
                               {.size = 512, .mode = vfs::Mode{0644}});

    auto server = std::make_shared<ftpd::FtpServer>(
        ip, std::move(personality), std::move(filesystem), &log_);
    server->attach(network_);
    servers_.push_back(std::move(server));
  }
}

HoneypotFleet::~HoneypotFleet() {
  for (const auto& server : servers_) server->detach(network_);
}

void HoneypotFleet::populate_probed_paths() {
  // Reaction to observed blind traversals: stand up the web-root paths the
  // attackers keep probing, with representative content.
  for (const auto& server : servers_) {
    const auto& fs = server->filesystem()->get();
    for (const char* dir : {"/cgi-bin", "/www", "/public_html"}) {
      (void)fs->mkdir(dir, vfs::Mode{0755});
    }
    (void)fs->add_file("/public_html/index.html",
                       {.size = 4096, .mode = vfs::Mode{0644}});
    (void)fs->add_file("/www/site.php",
                       {.size = 2048, .mode = vfs::Mode{0644}});
  }
}

}  // namespace ftpc::honeypot
