#include "ftpd/session.h"

#include <cassert>

#include "common/datetime.h"
#include "common/strings.h"
#include "ftp/path.h"
#include "vfs/listing.h"

namespace ftpc::ftpd {

namespace {

/// Cap on synthesized RETR payloads: metadata-only files report their true
/// size over SIZE/LIST but stream at most this many bytes (the study never
/// bulk-downloads, so only probes hit this path).
constexpr std::size_t kMaxSynthesizedRetr = 16 * 1024;

constexpr const char* kApprovalText =
    "This file has been uploaded by an anonymous user. It has not yet been "
    "approved for downloading by the site administrators.";

std::string synthesize_content(const vfs::Node& node) {
  if (!node.content.empty()) return node.content;
  const std::size_t n =
      std::min<std::size_t>(node.size, kMaxSynthesizedRetr);
  std::string out;
  out.reserve(n);
  static constexpr std::string_view kPattern =
      "SIMULATED-CONTENT-DO-NOT-INTERPRET\n";
  while (out.size() < n) {
    out.append(kPattern.substr(0, std::min(kPattern.size(), n - out.size())));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

std::shared_ptr<ServerSession> ServerSession::start(
    sim::Network& network, std::shared_ptr<sim::Connection> conn,
    Ipv4 public_ip, std::shared_ptr<const Personality> personality,
    std::shared_ptr<LazyFilesystem> filesystem, SessionObserver* observer) {
  std::shared_ptr<ServerSession> session(
      new ServerSession(network, std::move(conn), public_ip,
                        std::move(personality), std::move(filesystem),
                        observer));
  session->install_callbacks();
  if (observer != nullptr) observer->on_connect(session->client_ip_);

  // 220 banner (possibly multi-line). The rendered text must outlive the
  // views split() hands back.
  ftp::Reply banner;
  banner.code = 220;
  const std::string banner_text =
      session->personality_->render_banner(public_ip);
  for (auto piece : split(banner_text, '\n')) {
    // Personality banners are written as full wire lines ("220 ProFTPD
    // ..."); the reply serializer re-adds the code, so strip it here.
    if (piece.rfind("220", 0) == 0) {
      piece.remove_prefix(piece.size() > 3 && (piece[3] == ' ') ? 4 : 3);
    }
    banner.lines.emplace_back(piece);
  }
  if (session->personality_->banner_forbids_anonymous) {
    banner.lines.push_back("NO ANONYMOUS ACCESS -- authorized users only");
  }
  if (banner.lines.empty()) banner.lines.emplace_back("FTP server ready.");
  session->send_reply(banner);
  return session;
}

ServerSession::ServerSession(sim::Network& network,
                             std::shared_ptr<sim::Connection> conn,
                             Ipv4 public_ip,
                             std::shared_ptr<const Personality> personality,
                             std::shared_ptr<LazyFilesystem> filesystem,
                             SessionObserver* observer)
    : network_(network),
      control_(std::move(conn)),
      public_ip_(public_ip),
      client_ip_(control_->remote().ip),
      personality_(std::move(personality)),
      vfs_(std::move(filesystem)),
      observer_(observer) {}

ServerSession::~ServerSession() { teardown_data(); }

void ServerSession::install_callbacks() {
  auto self = shared_from_this();
  sim::ConnCallbacks callbacks;
  callbacks.on_data = [self](std::string_view data) { self->on_data(data); };
  callbacks.on_close = [self] { self->on_gone(); };
  callbacks.on_reset = [self](Status) { self->on_gone(); };
  control_->set_callbacks(std::move(callbacks));
}

void ServerSession::on_gone() {
  closed_ = true;
  teardown_data();
  // Dropping the callbacks releases the shared_ptr cycle; the session dies
  // once the last in-flight event referencing it fires.
  control_->set_callbacks({});
}

void ServerSession::close_session() {
  if (closed_) return;
  closed_ = true;
  teardown_data();
  control_->close();
  control_->set_callbacks({});
}

void ServerSession::terminate_abruptly() {
  if (closed_) return;
  closed_ = true;
  teardown_data();
  control_->reset();
  control_->set_callbacks({});
}

void ServerSession::teardown_data() {
  if (pasv_listening_) {
    network_.stop_listening(public_ip_, pasv_port_);
    pasv_listening_ = false;
  }
  if (pending_data_timer_armed_) {
    network_.loop().cancel(pending_data_timer_);
    pending_data_timer_armed_ = false;
  }
  pending_data_action_ = nullptr;
  if (pasv_conn_) {
    pasv_conn_->set_callbacks({});
    pasv_conn_->close();
    pasv_conn_.reset();
  }
  if (upload_conn_) {
    // The upload callbacks hold a shared_ptr to this session; clear them
    // or the session leaks through the cycle.
    upload_conn_->set_callbacks({});
    upload_conn_->close();
    upload_conn_.reset();
  }
  upload_.reset();
  port_target_.reset();
}

void ServerSession::send_reply(const ftp::Reply& reply) {
  if (closed_ || !control_->is_open()) return;
  control_->send(reply.wire());
}

void ServerSession::send_text_reply(int code, std::string_view text) {
  send_reply(ftp::Reply(code, std::string(text)));
}

// ---------------------------------------------------------------------------
// Input handling
// ---------------------------------------------------------------------------

void ServerSession::on_data(std::string_view data) {
  if (closed_) return;
  // A command handler (QUIT, over-cap termination) may drop the last
  // owning reference to this session; keep it alive for the loop below.
  auto self = shared_from_this();
  lines_.push(data);
  while (auto line = lines_.pop_line()) {
    if (closed_) return;

    if (expecting_tls_hello_) {
      expecting_tls_hello_ = false;
      if (*line == "~TLS HELLO" && personality_->certificate) {
        tls_active_ = true;
        control_->send("~TLS CERT " + personality_->certificate->encode() +
                       "\r\n~TLS OK\r\n");
      } else {
        send_text_reply(421, "TLS negotiation failed.");
        close_session();
      }
      continue;
    }

    const auto cmd = ftp::parse_command(*line);
    if (!cmd) {
      send_text_reply(500, "Invalid command.");
      continue;
    }
    ++commands_seen_;
    if (observer_ != nullptr) observer_->on_command(client_ip_, *cmd);
    if (personality_->max_commands_per_session != 0 &&
        commands_seen_ > personality_->max_commands_per_session) {
      // Some implementations silently drop clients that talk too much; the
      // enumerator treats this as explicit refusal of service.
      terminate_abruptly();
      return;
    }
    handle_command(*cmd);
  }
}

bool ServerSession::require_login() {
  if (logged_in_) return true;
  send_text_reply(530, "Please login with USER and PASS.");
  return false;
}

bool ServerSession::anonymous_user(const std::string& user) const {
  // RFC 1635 names "anonymous"; "ftp" is the traditional alias. Virtual
  // host suffixes ("anonymous@example.com") count as anonymous too.
  const std::string lowered = to_lower(user);
  return lowered == "anonymous" || lowered == "ftp" ||
         lowered.rfind("anonymous@", 0) == 0;
}

std::string ServerSession::resolve_arg(const std::string& arg) const {
  // Strip `ls`-style flag words ("-la /dir") that some clients send.
  std::string_view view = trim(arg);
  while (!view.empty() && view.front() == '-') {
    const std::size_t space = view.find(' ');
    if (space == std::string_view::npos) {
      view = {};
      break;
    }
    view = trim(view.substr(space + 1));
  }
  return ftp::resolve_path(cwd_, view);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void ServerSession::handle_command(const ftp::Command& cmd) {
  const std::string& verb = cmd.verb;
  if (verb == "USER") return cmd_user(cmd.arg);
  if (verb == "PASS") return cmd_pass(cmd.arg);
  if (verb == "QUIT") {
    send_text_reply(221, "Goodbye.");
    close_session();
    return;
  }
  if (verb == "AUTH") return cmd_auth(cmd.arg);
  if (verb == "SYST") return send_text_reply(215, personality_->syst_reply);
  if (verb == "NOOP") return send_text_reply(200, "NOOP ok.");
  if (verb == "FEAT") return cmd_feat();
  if (verb == "HELP") return cmd_help();
  if (verb == "SITE") {
    if (personality_->site_reply.empty()) {
      return send_text_reply(500, "SITE not understood.");
    }
    // site_reply carries its own code prefix ("214 ...").
    const auto space = personality_->site_reply.find(' ');
    const int code = space != std::string::npos
                         ? std::atoi(personality_->site_reply.substr(0, space)
                                         .c_str())
                         : 214;
    return send_text_reply(code == 0 ? 214 : code,
                           space != std::string::npos
                               ? personality_->site_reply.substr(space + 1)
                               : personality_->site_reply);
  }

  // Everything below needs authentication.
  if (!require_login()) return;

  if (verb == "PWD" || verb == "XPWD") {
    return send_text_reply(257, "\"" + cwd_ + "\" is the current directory");
  }
  if (verb == "CWD") return cmd_cwd(cmd.arg);
  if (verb == "CDUP") return cmd_cwd("..");
  if (verb == "TYPE") return send_text_reply(200, "Type set to " + cmd.arg);
  if (verb == "STRU" || verb == "MODE") return send_text_reply(200, "OK.");
  if (verb == "PASV") return cmd_pasv();
  if (verb == "PORT") return cmd_port(cmd.arg);
  if (verb == "LIST") return cmd_list(cmd.arg, /*names_only=*/false);
  if (verb == "NLST") return cmd_list(cmd.arg, /*names_only=*/true);
  if (verb == "RETR") return cmd_retr(cmd.arg);
  if (verb == "STOR") return cmd_stor(cmd.arg);
  if (verb == "DELE") return cmd_dele(cmd.arg);
  if (verb == "MKD" || verb == "XMKD") return cmd_mkd(cmd.arg);
  if (verb == "RMD" || verb == "XRMD") return cmd_rmd(cmd.arg);
  if (verb == "SIZE") return cmd_size(cmd.arg);
  if (verb == "MDTM") return cmd_mdtm(cmd.arg);
  if (verb == "REST") return send_text_reply(350, "Restarting at " + cmd.arg);
  if (verb == "ABOR") return send_text_reply(226, "Abort successful.");
  if (verb == "STAT") {
    return send_text_reply(211, personality_->implementation + " status OK");
  }
  send_text_reply(500, "Unknown command.");
}

// ---------------------------------------------------------------------------
// Login
// ---------------------------------------------------------------------------

void ServerSession::cmd_user(const std::string& arg) {
  pending_user_ = arg;
  const bool anon = anonymous_user(arg);

  if (personality_->requires_ftps_before_login && !tls_active_) {
    send_text_reply(331, "Rejected--secure connection required");
    return;
  }

  if (anon) {
    switch (personality_->user_reply_style) {
      case UserReplyStyle::kStandard:
        send_text_reply(331, "Please specify the password.");
        return;
      case UserReplyStyle::kImmediate230:
        if (personality_->allow_anonymous) {
          logged_in_ = true;
          anonymous_ = true;
          if (observer_ != nullptr) {
            observer_->on_login_attempt(client_ip_, arg, "", true);
          }
          send_text_reply(230, "Anonymous access granted.");
        } else {
          if (observer_ != nullptr) {
            observer_->on_login_attempt(client_ip_, arg, "", false);
          }
          send_text_reply(530, "Anonymous access denied.");
        }
        return;
      case UserReplyStyle::kRejectIn331:
        // The dreaded quirk: a 331 whose text is a rejection.
        send_text_reply(331, "Anonymous login not allowed on this server.");
        return;
      case UserReplyStyle::kNeedVirtualHost:
        send_text_reply(331, "Send virtual-site hostname with username.");
        return;
      case UserReplyStyle::kFtpsRequiredIn331:
        if (!tls_active_) {
          send_text_reply(331, "Rejected--secure connection required");
        } else {
          send_text_reply(331, "Please specify the password.");
        }
        return;
      case UserReplyStyle::kReject530:
        if (observer_ != nullptr) {
          observer_->on_login_attempt(client_ip_, arg, "", false);
        }
        send_text_reply(530, "Anonymous access denied.");
        return;
    }
  }
  send_text_reply(331, "Password required for " + arg + ".");
}

void ServerSession::cmd_pass(const std::string& arg) {
  if (pending_user_.empty()) {
    send_text_reply(503, "Login with USER first.");
    return;
  }
  const bool anon = anonymous_user(pending_user_);

  if (personality_->requires_ftps_before_login && !tls_active_) {
    if (observer_ != nullptr) {
      observer_->on_login_attempt(client_ip_, pending_user_, arg, false);
    }
    send_text_reply(530, "Secure connection required before login.");
    return;
  }

  bool success = false;
  if (anon) {
    success = personality_->allow_anonymous &&
              personality_->user_reply_style != UserReplyStyle::kRejectIn331 &&
              personality_->user_reply_style != UserReplyStyle::kReject530;
    // Virtual-host servers want "anonymous@vhost"; a bare "anonymous" login
    // never completes there.
    if (personality_->user_reply_style == UserReplyStyle::kNeedVirtualHost &&
        to_lower(pending_user_).rfind("anonymous@", 0) != 0) {
      success = false;
    }
  } else {
    for (const auto& [user, pass] : personality_->valid_credentials) {
      if (user == pending_user_ && pass == arg) {
        success = true;
        break;
      }
    }
  }

  if (observer_ != nullptr) {
    observer_->on_login_attempt(client_ip_, pending_user_, arg, success);
  }
  if (success) {
    logged_in_ = true;
    anonymous_ = anon;
    send_text_reply(230, anon ? "Anonymous access granted, restrictions apply."
                              : "User logged in.");
  } else {
    send_text_reply(530, "Login incorrect.");
  }
}

void ServerSession::cmd_auth(const std::string& arg) {
  const bool tls_requested = iequals(arg, "TLS") || iequals(arg, "SSL");
  if (!tls_requested) {
    send_text_reply(504, "Unknown AUTH type.");
    return;
  }
  if (observer_ != nullptr) observer_->on_auth_tls(client_ip_);
  if (!personality_->supports_ftps || !personality_->certificate) {
    send_text_reply(530, "TLS not available.");
    return;
  }
  send_text_reply(234, "Proceed with negotiation.");
  expecting_tls_hello_ = true;
}

// ---------------------------------------------------------------------------
// Directory / metadata commands
// ---------------------------------------------------------------------------

void ServerSession::cmd_cwd(const std::string& arg) {
  const std::string path = resolve_arg(arg);
  const vfs::Node* node = vfs_->get()->lookup(path);
  if (node == nullptr || !node->is_dir()) {
    send_text_reply(550, "Failed to change directory.");
    return;
  }
  cwd_ = path;
  send_text_reply(250, "Directory successfully changed.");
}

void ServerSession::cmd_size(const std::string& arg) {
  const vfs::Node* node = vfs_->get()->lookup(resolve_arg(arg));
  if (node == nullptr || node->is_dir()) {
    send_text_reply(550, "Could not get file size.");
    return;
  }
  send_text_reply(213, std::to_string(node->size));
}

void ServerSession::cmd_mdtm(const std::string& arg) {
  const vfs::Node* node = vfs_->get()->lookup(resolve_arg(arg));
  if (node == nullptr || node->is_dir()) {
    send_text_reply(550, "Could not get file modification time.");
    return;
  }
  const CivilDateTime c = civil_from_unix(node->mtime);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d%02d%02d%02d%02d%02d", c.year, c.month,
                c.day, c.hour, c.minute, c.second);
  send_text_reply(213, buf);
}

void ServerSession::cmd_feat() {
  ftp::Reply reply;
  reply.code = 211;
  reply.lines.push_back("Features:");
  for (const std::string& feat : personality_->feat_lines) {
    reply.lines.push_back(" " + feat);
  }
  reply.lines.push_back("End");
  send_reply(reply);
}

void ServerSession::cmd_help() {
  ftp::Reply reply;
  reply.code = 214;
  if (personality_->help_lines.empty()) {
    reply.lines.push_back("The following commands are recognized.");
    reply.lines.push_back("Help OK.");
  } else {
    reply.lines = personality_->help_lines;
  }
  send_reply(reply);
}

// ---------------------------------------------------------------------------
// Data-channel negotiation
// ---------------------------------------------------------------------------

void ServerSession::cmd_pasv() {
  // Replace any previous passive state.
  if (pasv_listening_) {
    network_.stop_listening(public_ip_, pasv_port_);
    pasv_listening_ = false;
  }
  pasv_conn_.reset();
  port_target_.reset();

  pasv_port_ = network_.allocate_ephemeral_port();
  pasv_listening_ = true;
  auto self = shared_from_this();
  network_.listen(public_ip_, pasv_port_,
                  [self](std::shared_ptr<sim::Connection> conn) {
                    if (self->closed_ || self->pasv_conn_) {
                      conn->reset();
                      return;
                    }
                    self->pasv_conn_ = std::move(conn);
                    if (self->pending_data_action_) {
                      auto action = std::move(self->pending_data_action_);
                      self->pending_data_action_ = nullptr;
                      if (self->pending_data_timer_armed_) {
                        self->network_.loop().cancel(self->pending_data_timer_);
                        self->pending_data_timer_armed_ = false;
                      }
                      action(self->pasv_conn_);
                    }
                  });

  // NAT'd devices advertise the address they believe they have — the paper
  // detects NAT exactly this way (PASV address != control address).
  const ftp::HostPort hp{
      .ip = personality_->believed_ip(public_ip_).value(),
      .port = pasv_port_,
  };
  send_text_reply(227, "Entering Passive Mode (" + hp.wire() + ").");
}

void ServerSession::cmd_port(const std::string& arg) {
  const auto hp = ftp::parse_host_port(arg);
  if (!hp) {
    send_text_reply(501, "Illegal PORT command.");
    return;
  }
  const Ipv4 target_ip(hp->ip);
  if (personality_->validate_port_ip && target_ip != client_ip_) {
    send_text_reply(500, "Illegal PORT command.");
    return;
  }
  if (target_ip != client_ip_ && observer_ != nullptr) {
    observer_->on_port_bounce(client_ip_, target_ip, hp->port);
  }
  // Dropping PASV state: PORT supersedes it.
  if (pasv_listening_) {
    network_.stop_listening(public_ip_, pasv_port_);
    pasv_listening_ = false;
  }
  pasv_conn_.reset();
  port_target_ = sim::Endpoint{target_ip, hp->port};
  send_text_reply(200, "PORT command successful.");
}

void ServerSession::with_data_connection(
    std::function<void(std::shared_ptr<sim::Connection>)> action) {
  if (pasv_conn_) {
    auto conn = pasv_conn_;
    action(std::move(conn));
    return;
  }
  if (pasv_listening_) {
    // Client has not dialed in yet; park the transfer briefly.
    auto self = shared_from_this();
    pending_data_action_ = std::move(action);
    pending_data_timer_armed_ = true;
    pending_data_timer_ =
        network_.loop().schedule_after(30 * sim::kSecond, [self] {
          self->pending_data_timer_armed_ = false;
          if (self->pending_data_action_) {
            self->pending_data_action_ = nullptr;
            self->send_text_reply(425, "Failed to establish connection.");
          }
        });
    return;
  }
  if (port_target_) {
    const sim::Endpoint target = *port_target_;
    port_target_.reset();
    auto self = shared_from_this();
    network_.connect(
        public_ip_, target.ip, target.port,
        [self, action = std::move(action)](
            Result<std::shared_ptr<sim::Connection>> result) {
          if (self->closed_) return;
          if (!result.is_ok()) {
            self->send_text_reply(425, "Can't open data connection.");
            return;
          }
          action(std::move(result).take());
        });
    return;
  }
  send_text_reply(425, "Use PORT or PASV first.");
}

void ServerSession::send_over_data(std::string payload,
                                   std::string opening_text) {
  auto self = shared_from_this();
  with_data_connection([self, payload = std::move(payload),
                        opening_text = std::move(opening_text)](
                           std::shared_ptr<sim::Connection> data) {
    if (self->closed_) return;
    self->send_text_reply(150, opening_text);
    data->send(payload);
    data->close();
    if (self->pasv_conn_ == data) self->pasv_conn_.reset();
    if (self->pasv_listening_) {
      self->network_.stop_listening(self->public_ip_, self->pasv_port_);
      self->pasv_listening_ = false;
    }
    self->send_text_reply(226, "Transfer complete.");
  });
}

// ---------------------------------------------------------------------------
// Transfers
// ---------------------------------------------------------------------------

void ServerSession::cmd_list(const std::string& arg, bool names_only) {
  const std::string path = resolve_arg(arg);
  const auto entries = vfs_->get()->list(path);
  if (!entries.is_ok()) {
    send_text_reply(550, "Failed to open directory.");
    return;
  }
  const std::string payload =
      names_only
          ? vfs::render_nlst(entries.value())
          : vfs::render_listing(entries.value(), personality_->listing_format,
                                personality_->listing_year);
  send_over_data(payload, "Here comes the directory listing.");
}

void ServerSession::cmd_retr(const std::string& arg) {
  const std::string path = resolve_arg(arg);
  const vfs::Node* node = vfs_->get()->lookup(path);
  if (node == nullptr || node->is_dir()) {
    send_text_reply(550, "Failed to open file.");
    return;
  }
  if (node->pending_approval && personality_->uploads_need_approval) {
    send_text_reply(550, kApprovalText);
    return;
  }
  if (anonymous_ && !node->mode.world_readable()) {
    send_text_reply(550, "Permission denied.");
    return;
  }
  send_over_data(synthesize_content(*node),
                 "Opening BINARY mode data connection for " + node->name +
                     " (" + std::to_string(node->size) + " bytes).");
}

void ServerSession::cmd_stor(const std::string& arg) {
  if (anonymous_ && !personality_->anonymous_writable) {
    send_text_reply(550, "Permission denied.");
    return;
  }
  std::string path = resolve_arg(arg);
  if (path == "/" || path.empty()) {
    send_text_reply(553, "Could not create file.");
    return;
  }

  if (vfs_->get()->lookup(path) != nullptr) {
    switch (personality_->upload_conflict) {
      case UploadConflictPolicy::kOverwrite:
        break;
      case UploadConflictPolicy::kRefuse:
        send_text_reply(553, "File exists.");
        return;
      case UploadConflictPolicy::kRenameWithSuffix: {
        // "name", "name.1", "name.2", ... — the pattern the paper observed
        // littering world-writable servers.
        int suffix = 1;
        std::string candidate;
        do {
          candidate = path + "." + std::to_string(suffix++);
        } while (vfs_->get()->lookup(candidate) != nullptr && suffix < 1000);
        path = candidate;
        break;
      }
    }
  }

  auto upload = std::make_shared<Upload>();
  upload->path = path;
  upload->pending_approval =
      anonymous_ && personality_->uploads_need_approval;

  auto self = shared_from_this();
  with_data_connection([self, upload](std::shared_ptr<sim::Connection> data) {
    if (self->closed_) return;
    self->upload_ = upload;
    self->upload_conn_ = data;
    self->send_text_reply(150, "Ok to send data.");

    sim::ConnCallbacks callbacks;
    callbacks.on_data = [upload](std::string_view bytes) {
      upload->data += bytes;
    };
    callbacks.on_close = [self, upload] {
      if (self->closed_ || self->upload_ != upload) return;
      vfs::FileAttrs attrs;
      attrs.content = upload->data;
      attrs.mode = vfs::Mode{0666};
      attrs.owner = self->anonymous_ ? "anonymous" : "user";
      attrs.mtime = static_cast<std::int64_t>(
          self->network_.loop().now() / sim::kSecond);
      auto created = self->vfs_->get()->add_file(upload->path, std::move(attrs));
      if (created.is_ok()) {
        created.value()->pending_approval = upload->pending_approval;
        if (self->observer_ != nullptr) {
          self->observer_->on_upload(self->client_ip_, upload->path,
                                     upload->data.size());
        }
        self->send_text_reply(226, "Transfer complete.");
      } else {
        self->send_text_reply(553, "Could not create file.");
      }
      self->upload_.reset();
      if (self->upload_conn_) self->upload_conn_->set_callbacks({});
      self->upload_conn_.reset();
      if (self->pasv_conn_) self->pasv_conn_.reset();
      if (self->pasv_listening_) {
        self->network_.stop_listening(self->public_ip_, self->pasv_port_);
        self->pasv_listening_ = false;
      }
    };
    callbacks.on_reset = [self, upload](Status) {
      if (self->closed_ || self->upload_ != upload) return;
      self->send_text_reply(426, "Connection closed; transfer aborted.");
      self->upload_.reset();
      if (self->upload_conn_) self->upload_conn_->set_callbacks({});
      self->upload_conn_.reset();
    };
    data->set_callbacks(std::move(callbacks));
  });
}

void ServerSession::cmd_dele(const std::string& arg) {
  if (anonymous_ && (!personality_->anonymous_writable ||
                     !personality_->allow_anonymous_delete)) {
    send_text_reply(550, "Permission denied.");
    return;
  }
  const std::string path = resolve_arg(arg);
  if (vfs_->get()->remove(path).is_ok()) {
    if (observer_ != nullptr) observer_->on_delete(client_ip_, path);
    send_text_reply(250, "Delete operation successful.");
  } else {
    send_text_reply(550, "Delete operation failed.");
  }
}

void ServerSession::cmd_mkd(const std::string& arg) {
  if (anonymous_ && (!personality_->anonymous_writable ||
                     !personality_->allow_anonymous_mkd)) {
    send_text_reply(550, "Permission denied.");
    return;
  }
  const std::string path = resolve_arg(arg);
  if (vfs_->get()->lookup(path) != nullptr) {
    send_text_reply(550, "Directory exists.");
    return;
  }
  if (vfs_->get()->mkdir(path, vfs::Mode{0777},
                  static_cast<std::int64_t>(network_.loop().now() /
                                            sim::kSecond))
          .is_ok()) {
    if (observer_ != nullptr) observer_->on_mkdir(client_ip_, path);
    send_text_reply(257, "\"" + path + "\" created");
  } else {
    send_text_reply(550, "Create directory operation failed.");
  }
}

void ServerSession::cmd_rmd(const std::string& arg) {
  if (anonymous_ && (!personality_->anonymous_writable ||
                     !personality_->allow_anonymous_delete)) {
    send_text_reply(550, "Permission denied.");
    return;
  }
  if (vfs_->get()->remove(resolve_arg(arg)).is_ok()) {
    send_text_reply(250, "Remove directory operation successful.");
  } else {
    send_text_reply(550, "Remove directory operation failed.");
  }
}

}  // namespace ftpc::ftpd
