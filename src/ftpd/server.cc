#include "ftpd/server.h"

#include "ftpd/session.h"

namespace ftpc::ftpd {

FtpServer::FtpServer(Ipv4 public_ip,
                     std::shared_ptr<const Personality> personality,
                     std::shared_ptr<LazyFilesystem> filesystem,
                     SessionObserver* observer, std::uint16_t port)
    : public_ip_(public_ip),
      port_(port),
      personality_(std::move(personality)),
      filesystem_(std::move(filesystem)),
      observer_(observer) {}

FtpServer::FtpServer(Ipv4 public_ip,
                     std::shared_ptr<const Personality> personality,
                     std::shared_ptr<vfs::Vfs> filesystem,
                     SessionObserver* observer, std::uint16_t port)
    : FtpServer(public_ip, std::move(personality),
                std::make_shared<LazyFilesystem>(std::move(filesystem)),
                observer, port) {}

void FtpServer::attach(sim::Network& network) {
  std::weak_ptr<FtpServer> weak = weak_from_this();
  sim::Network* net = &network;
  network.listen(public_ip_, port_,
                 [weak, net](std::shared_ptr<sim::Connection> conn) {
                   auto self = weak.lock();
                   if (!self) {
                     conn->reset();
                     return;
                   }
                   self->accept(*net, std::move(conn));
                 });
}

void FtpServer::detach(sim::Network& network) {
  network.stop_listening(public_ip_, port_);
}

void FtpServer::accept(sim::Network& network,
                       std::shared_ptr<sim::Connection> conn) {
  ++sessions_;
  // The session keeps itself alive through its connection callbacks.
  ServerSession::start(network, std::move(conn), public_ip_, personality_,
                       filesystem_, observer_);
}

}  // namespace ftpc::ftpd
