#include "ftpd/personality.h"

namespace ftpc::ftpd {

std::string Personality::render_banner(Ipv4 public_ip) const {
  const std::string ip_str = believed_ip(public_ip).str();
  std::string out;
  out.reserve(banner.size() + ip_str.size());
  for (std::size_t i = 0; i < banner.size();) {
    if (banner.compare(i, 4, "{ip}") == 0) {
      out += ip_str;
      i += 4;
    } else {
      out.push_back(banner[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace ftpc::ftpd
