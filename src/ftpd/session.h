// One server-side control-connection session.
//
// Sessions are self-owning: the connection callbacks keep a shared_ptr to
// the session alive until the connection dies. The session shares the
// host's personality and filesystem with its FtpServer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/ipv4.h"
#include "ftp/command.h"
#include "ftp/reply.h"
#include "ftpd/personality.h"
#include "ftpd/server.h"
#include "sim/network.h"
#include "vfs/vfs.h"

namespace ftpc::ftpd {

class ServerSession : public std::enable_shared_from_this<ServerSession> {
 public:
  /// Creates the session, installs connection callbacks, and sends the
  /// 220 banner.
  static std::shared_ptr<ServerSession> start(
      sim::Network& network, std::shared_ptr<sim::Connection> conn,
      Ipv4 public_ip, std::shared_ptr<const Personality> personality,
      std::shared_ptr<LazyFilesystem> filesystem, SessionObserver* observer);

  ~ServerSession();

 private:
  ServerSession(sim::Network& network, std::shared_ptr<sim::Connection> conn,
                Ipv4 public_ip, std::shared_ptr<const Personality> personality,
                std::shared_ptr<LazyFilesystem> filesystem,
                SessionObserver* observer);

  // Wiring -----------------------------------------------------------------
  void install_callbacks();
  void on_data(std::string_view data);
  void on_gone();
  void send_reply(const ftp::Reply& reply);
  void send_text_reply(int code, std::string_view text);
  void close_session();
  void terminate_abruptly();

  // Command dispatch ---------------------------------------------------------
  void handle_command(const ftp::Command& cmd);
  void cmd_user(const std::string& arg);
  void cmd_pass(const std::string& arg);
  void cmd_auth(const std::string& arg);
  void cmd_pasv();
  void cmd_port(const std::string& arg);
  void cmd_list(const std::string& arg, bool names_only);
  void cmd_retr(const std::string& arg);
  void cmd_stor(const std::string& arg);
  void cmd_dele(const std::string& arg);
  void cmd_mkd(const std::string& arg);
  void cmd_rmd(const std::string& arg);
  void cmd_cwd(const std::string& arg);
  void cmd_size(const std::string& arg);
  void cmd_mdtm(const std::string& arg);
  void cmd_feat();
  void cmd_help();

  // Data-channel plumbing ----------------------------------------------------
  /// Ensures a data connection exists (PASV-accepted or PORT-dialed), then
  /// runs `action(data_conn)`; replies 425 if none can be made.
  void with_data_connection(
      std::function<void(std::shared_ptr<sim::Connection>)> action);
  void send_over_data(std::string payload, std::string opening_text);
  void teardown_data();

  bool require_login();
  bool anonymous_user(const std::string& user) const;
  std::string resolve_arg(const std::string& arg) const;

  sim::Network& network_;
  std::shared_ptr<sim::Connection> control_;
  Ipv4 public_ip_;
  Ipv4 client_ip_;
  std::shared_ptr<const Personality> personality_;
  std::shared_ptr<LazyFilesystem> vfs_;
  SessionObserver* observer_;

  ftp::LineReader lines_;
  bool expecting_tls_hello_ = false;
  bool tls_active_ = false;

  // Login state.
  std::string pending_user_;
  bool logged_in_ = false;
  bool anonymous_ = false;

  std::string cwd_ = "/";
  std::uint32_t commands_seen_ = 0;

  // Passive-mode listener.
  bool pasv_listening_ = false;
  std::uint16_t pasv_port_ = 0;
  std::shared_ptr<sim::Connection> pasv_conn_;  // accepted, idle
  // Transfer action parked while waiting for the PASV peer to dial in.
  std::function<void(std::shared_ptr<sim::Connection>)> pending_data_action_;
  sim::TimerId pending_data_timer_ = 0;
  bool pending_data_timer_armed_ = false;
  // Active-mode target from the last PORT command.
  std::optional<sim::Endpoint> port_target_;
  // Upload in progress over the data channel.
  struct Upload {
    std::string path;
    std::string data;
    bool pending_approval = false;
  };
  std::shared_ptr<Upload> upload_;
  std::shared_ptr<sim::Connection> upload_conn_;

  bool closed_ = false;
};

}  // namespace ftpc::ftpd
