// The FTP server engine: one class, many personalities.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/ipv4.h"
#include "ftp/command.h"
#include "ftpd/personality.h"
#include "sim/network.h"
#include "vfs/vfs.h"

namespace ftpc::ftpd {

/// Observation hooks, primarily for the honeypot study (§VIII): every
/// command, login attempt, upload, and PORT-to-third-party is reported.
/// Default implementations ignore everything.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void on_connect(Ipv4 /*client*/) {}
  virtual void on_command(Ipv4 /*client*/, const ftp::Command& /*cmd*/) {}
  virtual void on_login_attempt(Ipv4 /*client*/, const std::string& /*user*/,
                                const std::string& /*password*/,
                                bool /*success*/) {}
  virtual void on_upload(Ipv4 /*client*/, const std::string& /*path*/,
                         std::size_t /*bytes*/) {}
  virtual void on_delete(Ipv4 /*client*/, const std::string& /*path*/) {}
  virtual void on_mkdir(Ipv4 /*client*/, const std::string& /*path*/) {}
  /// A PORT command naming an address other than the control peer was
  /// accepted (the server is bounce-vulnerable and will connect out).
  virtual void on_port_bounce(Ipv4 /*client*/, Ipv4 /*target*/,
                              std::uint16_t /*port*/) {}
  virtual void on_auth_tls(Ipv4 /*client*/) {}
};

/// A filesystem that may not exist yet. A census touches hundreds of
/// thousands of hosts whose filesystems are never listed (login refused,
/// banner-only contact); building their trees eagerly would dominate run
/// time and memory. The factory runs on first access.
class LazyFilesystem {
 public:
  using Factory = std::function<std::shared_ptr<vfs::Vfs>()>;

  explicit LazyFilesystem(std::shared_ptr<vfs::Vfs> ready)
      : fs_(std::move(ready)) {}
  explicit LazyFilesystem(Factory factory) : factory_(std::move(factory)) {}

  /// Materializes (once) and returns the filesystem.
  const std::shared_ptr<vfs::Vfs>& get() {
    if (!fs_) {
      fs_ = factory_ ? factory_() : std::make_shared<vfs::Vfs>();
      factory_ = nullptr;
    }
    return fs_;
  }

  bool materialized() const noexcept { return fs_ != nullptr; }

 private:
  std::shared_ptr<vfs::Vfs> fs_;
  Factory factory_;
};

/// An FTP daemon bound to (public_ip, port). Attach/detach register and
/// unregister the control listener; sessions created while attached stay
/// valid after detach (they share the personality and filesystem).
class FtpServer : public std::enable_shared_from_this<FtpServer> {
 public:
  FtpServer(Ipv4 public_ip, std::shared_ptr<const Personality> personality,
            std::shared_ptr<LazyFilesystem> filesystem,
            SessionObserver* observer = nullptr, std::uint16_t port = 21);

  /// Convenience: wraps an already-built filesystem.
  FtpServer(Ipv4 public_ip, std::shared_ptr<const Personality> personality,
            std::shared_ptr<vfs::Vfs> filesystem,
            SessionObserver* observer = nullptr, std::uint16_t port = 21);

  void attach(sim::Network& network);
  void detach(sim::Network& network);

  Ipv4 public_ip() const noexcept { return public_ip_; }
  std::uint16_t port() const noexcept { return port_; }
  const Personality& personality() const noexcept { return *personality_; }
  const std::shared_ptr<LazyFilesystem>& filesystem() const noexcept {
    return filesystem_;
  }
  SessionObserver* observer() const noexcept { return observer_; }

  std::uint64_t sessions_accepted() const noexcept { return sessions_; }

 private:
  void accept(sim::Network& network, std::shared_ptr<sim::Connection> conn);

  Ipv4 public_ip_;
  std::uint16_t port_;
  std::shared_ptr<const Personality> personality_;
  std::shared_ptr<LazyFilesystem> filesystem_;
  SessionObserver* observer_;
  std::uint64_t sessions_ = 0;
};

}  // namespace ftpc::ftpd
