// Server personalities: the knobs that make one simulated FTP daemon behave
// like ProFTPD 1.3.5 on a hosting box and another like the firmware of a
// Buffalo NAS.
//
// The paper's methodology section stresses that FTP's "patchwork of
// extensions" produced wildly divergent server behaviour (four meanings of
// reply 331, two LIST dialects, servers that accept uploads but refuse the
// download until approval, servers that blindly honor PORT to third
// parties). Each quirk is a field here so the enumerator has to cope with
// all of them, just like the real one did.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ipv4.h"
#include "ftp/cert.h"
#include "vfs/listing.h"

namespace ftpc::ftpd {

/// What a USER command elicits — the paper's "four meanings of 331" plus
/// the well-behaved cases.
enum class UserReplyStyle {
  /// 331 "Please specify the password." then PASS decides.
  kStandard,
  /// 230 immediately on USER anonymous (no password wanted).
  kImmediate230,
  /// 331 whose *text* is a rejection ("Anonymous login not allowed");
  /// the subsequent PASS draws 530.
  kRejectIn331,
  /// 331 "Send virtual-site hostname with username" — expects
  /// "USER anonymous@vhost"; a plain PASS draws 530.
  kNeedVirtualHost,
  /// 331 "Rejected--secure connection required" unless TLS is active.
  kFtpsRequiredIn331,
  /// 530 straight away (anonymous access disabled).
  kReject530,
};

/// How anonymous STOR conflicts with an existing name are handled.
enum class UploadConflictPolicy {
  kOverwrite,
  kRefuse,
  /// Appends ".1", ".2", ... — the behaviour that litters world-writable
  /// servers with "name", "name.1", "name.2" (paper §VI.A).
  kRenameWithSuffix,
};

struct Personality {
  // Identity --------------------------------------------------------------
  /// Implementation family, e.g. "ProFTPD", "Pure-FTPd", "vsftpd",
  /// "FileZilla", "Serv-U", or a device firmware name.
  std::string implementation;
  std::string version;  // "1.3.5"; empty if the banner hides it
  /// 220 banner text. "{ip}" expands to the IP the server believes it has
  /// (embedded devices leak their private address this way).
  std::string banner;
  std::string syst_reply = "UNIX Type: L8";
  std::vector<std::string> feat_lines;  // FEAT body (without leading space)
  std::vector<std::string> help_lines;
  std::string site_reply = "214 Help OK.";

  // Listing ---------------------------------------------------------------
  vfs::ListingFormat listing_format = vfs::ListingFormat::kUnix;
  int listing_year = 2015;  // "current year" for ls time-vs-year column

  // Login policy ----------------------------------------------------------
  bool allow_anonymous = false;
  UserReplyStyle user_reply_style = UserReplyStyle::kStandard;
  /// Extra banner line announcing "NO ANONYMOUS ACCESS" (the enumerator
  /// parses banners and skips the login attempt on such servers).
  bool banner_forbids_anonymous = false;
  /// Non-anonymous credentials accepted by this host (honeypots use weak
  /// pairs here; production hosts accept none).
  std::vector<std::pair<std::string, std::string>> valid_credentials;

  // PORT handling ---------------------------------------------------------
  /// When true the server verifies the PORT argument's address equals the
  /// control peer's; when false it happily connects anywhere — the classic
  /// bounce vulnerability (12.74% of anonymous servers in the paper).
  bool validate_port_ip = true;

  // Write policy (anonymous) ----------------------------------------------
  bool anonymous_writable = false;
  /// Pure-FTPd semantics: anonymous uploads land but RETR answers
  /// "This file has been uploaded by an anonymous user. It has not yet
  /// been approved for downloading by the site administrators."
  bool uploads_need_approval = false;
  UploadConflictPolicy upload_conflict = UploadConflictPolicy::kRefuse;
  bool allow_anonymous_delete = false;
  bool allow_anonymous_mkd = false;

  // FTPS ------------------------------------------------------------------
  bool supports_ftps = false;
  /// Refuses USER until AUTH TLS completes.
  bool requires_ftps_before_login = false;
  std::optional<ftp::Certificate> certificate;

  // Network quirks ----------------------------------------------------------
  /// Address the device believes it has. Unset for public-facing hosts;
  /// RFC 1918 for NAT'd devices (leaks via PASV replies and banners).
  std::optional<Ipv4> internal_ip;
  /// If non-zero the server closes the control connection after this many
  /// commands (the enumerator treats termination as refusal of service).
  std::uint32_t max_commands_per_session = 0;

  /// Expands "{ip}" in the banner against the believed address.
  std::string render_banner(Ipv4 public_ip) const;

  /// The address used in PASV replies and banner expansion.
  Ipv4 believed_ip(Ipv4 public_ip) const {
    return internal_ip.value_or(public_ip);
  }
};

}  // namespace ftpc::ftpd
