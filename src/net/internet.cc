#include "net/internet.h"

#include <cassert>

namespace ftpc::net {

Internet::Internet(sim::Network& network, PopulationModel& population,
                   std::size_t capacity)
    : network_(network), population_(population), capacity_(capacity) {
  assert(capacity_ > 0);
  network_.set_probe_fn([this](Ipv4 ip, std::uint16_t port) {
    return population_.port_open(ip, port);
  });
  network_.set_host_resolver([this](Ipv4 ip, std::uint16_t port) {
    return resolve(ip, port);
  });
}

Internet::~Internet() {
  flush();
  network_.set_probe_fn(nullptr);
  network_.set_host_resolver(nullptr);
}

bool Internet::resolve(Ipv4 ip, std::uint16_t port) {
  const std::uint32_t key = ip.value();
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    touch(key);
    // Host exists but may simply not listen on this port; the network
    // re-checks the listener table after we return.
    return network_.is_listening(ip, port);
  }

  std::unique_ptr<HostModel> host = population_.materialize(ip);
  if (!host) return false;

  while (cache_.size() >= capacity_) evict_one();

  std::shared_ptr<HostModel> shared(std::move(host));
  shared->attach(network_);
  lru_.push_front(key);
  cache_.emplace(key, Entry{std::move(shared), lru_.begin()});
  ++materialized_;
  return network_.is_listening(ip, port);
}

void Internet::touch(std::uint32_t key) {
  auto& entry = cache_.at(key);
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

void Internet::evict_one() {
  assert(!lru_.empty());
  const std::uint32_t key = lru_.back();
  lru_.pop_back();
  const auto it = cache_.find(key);
  assert(it != cache_.end());
  it->second.host->detach(network_);
  cache_.erase(it);
  ++evicted_;
}

void Internet::flush() {
  while (!cache_.empty()) evict_one();
}

}  // namespace ftpc::net
