// The synthetic autonomous-system table.
//
// The paper's AS-level findings (Tables III and VI, Figure 1) hinge on the
// heavy-tailed distribution of FTP servers across ASes: 78 ASes hold 50% of
// all FTP servers, 42 hold 50% of anonymous ones, and the top-10 list is
// dominated by shared-hosting providers. We reproduce that by constructing
// an AS population whose head is the paper's literal Table VI (scaled) and
// whose tail is Pareto-distributed, then carving the public IPv4 space into
// prefixes owned by those ASes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ipv4.h"

namespace ftpc::net {

/// Broad AS categories used by Table III.
enum class AsType { kHosting, kIsp, kAcademic, kOther };

std::string_view as_type_name(AsType type) noexcept;

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  AsType type = AsType::kOther;
  /// Total addresses advertised by this AS (sum of its prefixes).
  std::uint64_t ips_advertised = 0;
  /// Index of the population profile applied to this AS's address space
  /// (interpreted by popgen; the net layer only stores it).
  std::uint16_t profile = 0;
};

/// Immutable mapping from IPv4 address to AS, plus per-AS metadata.
class AsTable {
 public:
  /// A contiguous address range owned by one AS.
  struct Allocation {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    std::uint32_t as_index = 0;  // index into as_list()
  };

  AsTable(std::vector<AsInfo> ases, std::vector<Allocation> allocations);

  /// AS owning `ip`, or nullopt for unallocated/reserved space.
  std::optional<std::uint32_t> as_index_of(Ipv4 ip) const noexcept;

  const AsInfo& as_info(std::uint32_t index) const noexcept {
    return ases_[index];
  }
  std::size_t as_count() const noexcept { return ases_.size(); }
  const std::vector<AsInfo>& as_list() const noexcept { return ases_; }
  const std::vector<Allocation>& allocations() const noexcept {
    return allocations_;
  }

  /// Total addresses covered by allocations.
  std::uint64_t allocated_addresses() const noexcept { return allocated_; }

 private:
  std::vector<AsInfo> ases_;
  std::vector<Allocation> allocations_;  // sorted by `first`, disjoint
  std::uint64_t allocated_ = 0;
};

}  // namespace ftpc::net
