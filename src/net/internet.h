// Glue between the simulated network and a lazily-materialized host
// population.
//
// A census touches tens of millions of addresses but talks to only a few
// at a time. `Internet` installs hooks on sim::Network so that:
//   - the scanner's stateless probes answer from a pure function
//     (PopulationModel::port_open) without creating anything, and
//   - a real connect materializes the full host (FTP daemon + filesystem)
//     on demand, holding it in a bounded LRU cache.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/ipv4.h"
#include "sim/network.h"

namespace ftpc::net {

/// A materialized host: owns its services' state and their listeners.
class HostModel {
 public:
  virtual ~HostModel() = default;

  /// Registers this host's listeners on the network. Called exactly once,
  /// immediately after materialization.
  virtual void attach(sim::Network& network) = 0;

  /// Unregisters listeners. Called exactly once, on eviction. Active
  /// connections keep whatever state they share; only new connects stop.
  virtual void detach(sim::Network& network) = 0;
};

/// The (lazy) population: a pure membership function plus a factory.
class PopulationModel {
 public:
  virtual ~PopulationModel() = default;

  /// True iff a SYN to (ip, port) would be answered. Must be cheap and
  /// side-effect free: the scanner calls it for every probed address.
  virtual bool port_open(Ipv4 ip, std::uint16_t port) const = 0;

  /// Builds the full host at `ip`, or nullptr if no host lives there.
  virtual std::unique_ptr<HostModel> materialize(Ipv4 ip) = 0;
};

class Internet {
 public:
  /// `capacity` bounds the number of simultaneously-materialized hosts.
  Internet(sim::Network& network, PopulationModel& population,
           std::size_t capacity = 128);
  ~Internet();
  Internet(const Internet&) = delete;
  Internet& operator=(const Internet&) = delete;

  sim::Network& network() noexcept { return network_; }

  /// Materialized-host statistics.
  std::uint64_t hosts_materialized() const noexcept { return materialized_; }
  std::uint64_t hosts_evicted() const noexcept { return evicted_; }
  std::size_t resident_hosts() const noexcept { return cache_.size(); }

  /// Evicts every materialized host (e.g. between experiment phases).
  void flush();

 private:
  bool resolve(Ipv4 ip, std::uint16_t port);
  void touch(std::uint32_t key);
  void evict_one();

  struct Entry {
    std::shared_ptr<HostModel> host;
    std::list<std::uint32_t>::iterator lru_pos;
  };

  sim::Network& network_;
  PopulationModel& population_;
  std::size_t capacity_;
  std::unordered_map<std::uint32_t, Entry> cache_;
  std::list<std::uint32_t> lru_;  // front = most recently used
  std::uint64_t materialized_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace ftpc::net
