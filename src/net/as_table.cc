#include "net/as_table.h"

#include <algorithm>
#include <cassert>

namespace ftpc::net {

std::string_view as_type_name(AsType type) noexcept {
  switch (type) {
    case AsType::kHosting:
      return "Hosting";
    case AsType::kIsp:
      return "ISP";
    case AsType::kAcademic:
      return "Academic";
    case AsType::kOther:
      return "Other";
  }
  return "?";
}

AsTable::AsTable(std::vector<AsInfo> ases,
                 std::vector<Allocation> allocations)
    : ases_(std::move(ases)), allocations_(std::move(allocations)) {
  std::sort(allocations_.begin(), allocations_.end(),
            [](const Allocation& a, const Allocation& b) {
              return a.first < b.first;
            });
  for (std::size_t i = 0; i < allocations_.size(); ++i) {
    const Allocation& alloc = allocations_[i];
    assert(alloc.first <= alloc.last);
    assert(alloc.as_index < ases_.size());
    assert(i == 0 || allocations_[i - 1].last < alloc.first);
    allocated_ += std::uint64_t{alloc.last} - alloc.first + 1;
  }
}

std::optional<std::uint32_t> AsTable::as_index_of(Ipv4 ip) const noexcept {
  const std::uint32_t v = ip.value();
  // Binary search for the last allocation with first <= v.
  const auto it = std::upper_bound(
      allocations_.begin(), allocations_.end(), v,
      [](std::uint32_t value, const Allocation& alloc) {
        return value < alloc.first;
      });
  if (it == allocations_.begin()) return std::nullopt;
  const Allocation& candidate = *(it - 1);
  if (v > candidate.last) return std::nullopt;
  return candidate.as_index;
}

}  // namespace ftpc::net
