#include "analysis/fingerprints.h"

#include <vector>

#include "common/strings.h"

namespace ftpc::analysis {

std::string_view fp_class_name(FpClass c) noexcept {
  switch (c) {
    case FpClass::kGenericServer:
      return "Generic Server";
    case FpClass::kHostedServer:
      return "Hosted Server";
    case FpClass::kNas:
      return "NAS";
    case FpClass::kHomeRouter:
      return "Home Router";
    case FpClass::kPrinter:
      return "Printer";
    case FpClass::kProviderCpe:
      return "Provider CPE";
    case FpClass::kOtherEmbedded:
      return "Other Embedded";
    case FpClass::kUnknown:
      return "Unknown";
  }
  return "?";
}

std::optional<std::string> extract_version_after(std::string_view banner,
                                                 std::string_view marker) {
  // Case-insensitive search for the marker.
  std::size_t pos = std::string_view::npos;
  if (banner.size() >= marker.size()) {
    for (std::size_t i = 0; i + marker.size() <= banner.size(); ++i) {
      if (iequals(banner.substr(i, marker.size()), marker)) {
        pos = i;
        break;
      }
    }
  }
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t start = pos + marker.size();
  while (start < banner.size() && banner[start] == ' ') ++start;
  if (start < banner.size() && banner[start] == 'v') ++start;  // "v11.1"
  std::size_t end = start;
  auto is_version_char = [](char c) {
    return (c >= '0' && c <= '9') || c == '.' ||
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  };
  while (end < banner.size() && is_version_char(banner[end])) ++end;
  if (end == start) return std::nullopt;
  // Require a leading digit — "Server" is not a version.
  if (banner[start] < '0' || banner[start] > '9') return std::nullopt;
  return std::string(banner.substr(start, end - start));
}

namespace {

struct Pattern {
  const char* needle;  // case-insensitive banner substring
  const char* device;
  FpClass cls;
  const char* implementation;  // nullptr = none
  const char* version_marker;  // nullptr = no version extraction
};

// Ordering matters: more specific patterns first (a QNAP banner mentions
// ProFTPD; "NASFTPD" must win).
constexpr Pattern kPatterns[] = {
    // Consumer NAS.
    {"nasftpd turbo station", "QNAP Turbo NAS", FpClass::kNas, nullptr,
     nullptr},
    {"synology diskstation", "Synology NAS devices", FpClass::kNas, nullptr,
     nullptr},
    {"buffalo linkstation", "Buffalo NAS storage", FpClass::kNas, nullptr,
     nullptr},
    {"zyxel/mitrastar", "ZyXEL/MitraStar NAS", FpClass::kNas, nullptr,
     nullptr},
    {"lacie cloudbox", "LaCie storage", FpClass::kNas, nullptr, nullptr},
    {"seagate central", "Seagate Storage devices", FpClass::kNas, nullptr,
     nullptr},
    {"lg network storage", "LGE NAS", FpClass::kNas, nullptr, nullptr},
    {"axentra hipserv", "Axentra HipServ", FpClass::kNas, nullptr, nullptr},
    {"asustor", "AsusTor NAS", FpClass::kNas, nullptr, nullptr},
    {"network storage ftp server", "Network Storage (misc)", FpClass::kNas,
     nullptr, nullptr},

    // Routers.
    {"asus wireless router", "ASUS wireless routers", FpClass::kHomeRouter,
     nullptr, nullptr},
    {"linksys smart wi-fi", "Linksys Wifi Routers", FpClass::kHomeRouter,
     nullptr, nullptr},
    {"wireless router usb storage", "Smart router (misc)",
     FpClass::kHomeRouter, nullptr, nullptr},

    // Printers.
    {"ricoh", "RICOH Printers", FpClass::kPrinter, nullptr, nullptr},
    {"lexmark", "Lexmark Printers", FpClass::kPrinter, nullptr, nullptr},
    {"xerox", "Xerox Printers", FpClass::kPrinter, nullptr, nullptr},
    {"dell laser", "Dell Printers", FpClass::kPrinter, nullptr, nullptr},
    {"network printer ftp service", "Network printer (misc)",
     FpClass::kPrinter, nullptr, nullptr},

    // Provider CPE.
    {"fritz!box", "FRITZ!Box DSL modem", FpClass::kProviderCpe, nullptr,
     nullptr},
    {"zyxel p-660", "ZyXEL DSL Modem", FpClass::kProviderCpe, nullptr,
     nullptr},
    {"axis ", "AXIS Physical Security Device", FpClass::kProviderCpe,
     nullptr, nullptr},
    {"zte wimax", "ZTE WiMax Router", FpClass::kProviderCpe, nullptr,
     nullptr},
    {"speedport", "Speedport DSL Modem", FpClass::kProviderCpe, nullptr,
     nullptr},
    {"dreambox", "Dreambox Set-top Box", FpClass::kProviderCpe, nullptr,
     nullptr},
    {"zyxel usg", "ZyXEL Unified Security Gateway", FpClass::kProviderCpe,
     nullptr, nullptr},
    {"alcatel", "Alcatel Router", FpClass::kProviderCpe, nullptr, nullptr},
    {"draytek vigor", "DrayTek Network Devices", FpClass::kProviderCpe,
     nullptr, nullptr},

    // Other embedded.
    {"lutron homeworks", "Lutron HomeWorks Processor",
     FpClass::kOtherEmbedded, nullptr, nullptr},
    {"symon media player", "Symon Media Player", FpClass::kOtherEmbedded,
     nullptr, nullptr},
    {"stb embedded ftp", "Set-top box (misc)", FpClass::kOtherEmbedded,
     nullptr, nullptr},
    {"ip camera embedded ftp", "IP camera (misc)", FpClass::kOtherEmbedded,
     nullptr, nullptr},
    {"dvr embedded ftp", "DVR (misc)", FpClass::kOtherEmbedded, nullptr,
     nullptr},
    {"embedded media device", "Media player (misc)", FpClass::kOtherEmbedded,
     nullptr, nullptr},

    // Shared hosting.
    {"pure-ftpd [cpanel]", "cPanel hosting (Pure-FTPd)", FpClass::kHostedServer,
     "Pure-FTPd", nullptr},
    {"proftpd - plesk", "Plesk hosting (ProFTPD)", FpClass::kHostedServer,
     "ProFTPD", "ProFTPD "},
    {"home.pl ftp server", "home.pl hosting", FpClass::kHostedServer, nullptr,
     nullptr},
    {"shared hosting ftp", "Shared hosting FTP", FpClass::kHostedServer,
     nullptr, nullptr},

    // Generic software (after the device/hosting patterns that embed the
    // same implementation names).
    {"proftpd", "ProFTPD", FpClass::kGenericServer, "ProFTPD", "ProFTPD "},
    {"vsftpd", "vsftpd", FpClass::kGenericServer, "vsFTPd", "(vsFTPd "},
    {"filezilla server", "FileZilla Server", FpClass::kGenericServer,
     "FileZilla", "version "},
    {"serv-u ftp server", "Serv-U", FpClass::kGenericServer, "Serv-U",
     "Serv-U FTP Server "},
    {"microsoft ftp service", "Microsoft FTP Service", FpClass::kGenericServer,
     nullptr, nullptr},
    {"pure-ftpd", "Pure-FTPd", FpClass::kGenericServer, "Pure-FTPd",
     "Pure-FTPd "},
    {"wu-", "wu-ftpd", FpClass::kGenericServer, "wu-ftpd", "Version wu-"},
    {"gene6 ftp", "Gene6 FTP Server", FpClass::kGenericServer, nullptr,
     nullptr},

    // Malware.
    {"rmnetwork ftp", "Ramnit RMNetwork", FpClass::kUnknown, nullptr,
     nullptr},
};

}  // namespace

Fingerprint fingerprint_banner(std::string_view banner) {
  for (const Pattern& pattern : kPatterns) {
    if (!icontains(banner, pattern.needle)) continue;
    Fingerprint fp;
    fp.device = pattern.device;
    fp.device_class = pattern.cls;
    if (pattern.implementation != nullptr) {
      fp.implementation = pattern.implementation;
    }
    if (pattern.version_marker != nullptr) {
      if (auto version = extract_version_after(banner,
                                               pattern.version_marker)) {
        fp.version = std::move(*version);
      }
    }
    return fp;
  }
  return Fingerprint{.device = "Unknown",
                     .device_class = FpClass::kUnknown,
                     .implementation = "",
                     .version = ""};
}

}  // namespace ftpc::analysis
