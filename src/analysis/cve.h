// The CVE database behind Table XI: known vulnerabilities keyed on
// implementation + affected-version predicates, matched against version
// strings extracted from banners. The study "did not exploit any
// vulnerabilities" — and neither do we: this is pure version bookkeeping.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ftpc::analysis {

struct CveEntry {
  std::string id;              // "CVE-2015-3306"
  std::string implementation;  // matches Fingerprint::implementation
  double cvss = 0.0;
  enum class Match { kExact, kAtMost } kind = Match::kAtMost;
  std::string version;  // the exact / upper-bound version
};

/// Table XI's CVE set.
const std::vector<CveEntry>& cve_database();

/// Dotted-version comparison with letter suffixes: 1.3.4a < 1.3.4d <
/// 1.3.5 < 1.3.5a. Returns <0, 0, >0.
int compare_versions(std::string_view a, std::string_view b) noexcept;

/// True if (implementation, version) is affected by `entry`.
bool cve_matches(const CveEntry& entry, std::string_view implementation,
                 std::string_view version) noexcept;

}  // namespace ftpc::analysis
