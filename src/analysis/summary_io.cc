#include "analysis/summary_io.h"

#include <cstdio>
#include <cstring>

namespace ftpc::analysis {

namespace {

constexpr char kMagic[4] = {'F', 'T', 'P', 'C'};
constexpr std::uint32_t kVersion = 4;

class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void b(bool v) { u32(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
  bool b(bool& v) {
    std::uint32_t raw_value = 0;
    if (!u32(raw_value)) return false;
    v = raw_value != 0;
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    s.assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  bool raw(void* p, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize_summary(const CensusSummary& s) {
  Writer w;
  w.u32(*reinterpret_cast<const std::uint32_t*>(kMagic));
  w.u32(kVersion);
  w.u64(s.seed);
  w.u32(s.scale_shift);
  w.u64(s.addresses_scanned);
  w.u64(s.port_open);
  w.u64(s.ftp_servers);
  w.u64(s.anonymous_servers);

  for (const auto& c : s.class_counts) {
    w.u64(c.total);
    w.u64(c.anonymous);
  }
  w.u32(static_cast<std::uint32_t>(s.device_counts.size()));
  for (const auto& [name, counts] : s.device_counts) {
    w.str(name);
    w.u64(counts.total);
    w.u64(counts.anonymous);
  }
  w.u32(static_cast<std::uint32_t>(s.as_counts.size()));
  for (const AsCounts& c : s.as_counts) {
    w.u64(c.ftp);
    w.u64(c.anonymous);
    w.u64(c.writable);
  }

  w.u64(s.exposing_servers);
  w.u64(s.robots_servers);
  w.u64(s.robots_full_exclusion);
  w.u64(s.truncated_servers);
  w.u64(s.terminated_servers);
  w.u64(s.total_files);
  w.u64(s.total_dirs);

  w.u32(static_cast<std::uint32_t>(s.soho_extensions.size()));
  for (const auto& [ext, stats] : s.soho_extensions) {
    w.str(ext);
    w.u64(stats.files);
    w.u64(stats.servers);
  }

  for (const auto& stats : s.sensitive) {
    w.u64(stats.servers);
    w.u64(stats.files);
    w.u64(stats.readability.readable);
    w.u64(stats.readability.non_readable);
    w.u64(stats.readability.unknown);
  }

  w.u64(s.photo_servers);
  w.u64(s.photo_files);
  w.u64(s.photo_files_readable);
  for (const std::uint64_t v : s.os_root_servers) w.u64(v);
  w.u64(s.scripting_servers);
  w.u64(s.scripting_files);
  w.u64(s.htaccess_servers);
  w.u64(s.htaccess_files);
  w.u64(s.index_html_servers);
  w.u64(s.index_html_files);

  for (const auto& row : s.exposure_matrix) {
    for (const std::uint64_t v : row) w.u64(v);
  }

  w.u64(s.writable_servers);
  for (const auto& stats : s.campaigns) {
    w.u64(stats.servers);
    w.u64(stats.files);
  }
  w.u64(s.holy_bible_with_reference);
  w.u64(s.ramnit_servers);
  w.u64(s.ftp_with_http);
  w.u64(s.ftp_with_scripting_http);
  w.u64(s.nat_servers);

  w.u64(s.ftps_supported);
  w.u64(s.ftps_required);
  w.u64(s.ftps_self_signed);
  w.u64(s.ftps_browser_trusted);
  w.u32(static_cast<std::uint32_t>(s.cert_by_cn.size()));
  for (const auto& [cn, usage] : s.cert_by_cn) {
    w.str(cn);
    w.u64(usage.servers);
    w.b(usage.browser_trusted);
    w.b(usage.self_signed);
  }
  w.u64(s.unique_cert_count);
  w.u64(s.shared_key_servers);
  w.u64(s.shared_key_clusters);

  w.u32(static_cast<std::uint32_t>(s.cve_counts.size()));
  for (const auto& [id, count] : s.cve_counts) {
    w.str(id);
    w.u64(count);
  }
  return w.take();
}

std::optional<CensusSummary> deserialize_summary(std::string_view data) {
  Reader r(data);
  std::uint32_t magic = 0, version = 0;
  if (!r.u32(magic) || !r.u32(version)) return std::nullopt;
  if (std::memcmp(&magic, kMagic, 4) != 0 || version != kVersion) {
    return std::nullopt;
  }

  CensusSummary s;
  bool ok = true;
  ok &= r.u64(s.seed);
  ok &= r.u32(s.scale_shift);
  ok &= r.u64(s.addresses_scanned);
  ok &= r.u64(s.port_open);
  ok &= r.u64(s.ftp_servers);
  ok &= r.u64(s.anonymous_servers);
  if (!ok) return std::nullopt;

  for (auto& c : s.class_counts) {
    ok &= r.u64(c.total);
    ok &= r.u64(c.anonymous);
  }
  std::uint32_t n = 0;
  if (!r.u32(n)) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    DeviceCounts counts;
    if (!r.str(name) || !r.u64(counts.total) || !r.u64(counts.anonymous)) {
      return std::nullopt;
    }
    s.device_counts.emplace(std::move(name), counts);
  }
  if (!r.u32(n)) return std::nullopt;
  s.as_counts.resize(n);
  for (auto& c : s.as_counts) {
    ok &= r.u64(c.ftp);
    ok &= r.u64(c.anonymous);
    ok &= r.u64(c.writable);
  }
  if (!ok) return std::nullopt;

  ok &= r.u64(s.exposing_servers);
  ok &= r.u64(s.robots_servers);
  ok &= r.u64(s.robots_full_exclusion);
  ok &= r.u64(s.truncated_servers);
  ok &= r.u64(s.terminated_servers);
  ok &= r.u64(s.total_files);
  ok &= r.u64(s.total_dirs);
  if (!ok) return std::nullopt;

  if (!r.u32(n)) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string ext;
    ExtensionStats stats;
    if (!r.str(ext) || !r.u64(stats.files) || !r.u64(stats.servers)) {
      return std::nullopt;
    }
    s.soho_extensions.emplace(std::move(ext), stats);
  }

  for (auto& stats : s.sensitive) {
    ok &= r.u64(stats.servers);
    ok &= r.u64(stats.files);
    ok &= r.u64(stats.readability.readable);
    ok &= r.u64(stats.readability.non_readable);
    ok &= r.u64(stats.readability.unknown);
  }
  ok &= r.u64(s.photo_servers);
  ok &= r.u64(s.photo_files);
  ok &= r.u64(s.photo_files_readable);
  for (std::uint64_t& v : s.os_root_servers) ok &= r.u64(v);
  ok &= r.u64(s.scripting_servers);
  ok &= r.u64(s.scripting_files);
  ok &= r.u64(s.htaccess_servers);
  ok &= r.u64(s.htaccess_files);
  ok &= r.u64(s.index_html_servers);
  ok &= r.u64(s.index_html_files);
  if (!ok) return std::nullopt;

  for (auto& row : s.exposure_matrix) {
    for (std::uint64_t& v : row) ok &= r.u64(v);
  }
  ok &= r.u64(s.writable_servers);
  for (auto& stats : s.campaigns) {
    ok &= r.u64(stats.servers);
    ok &= r.u64(stats.files);
  }
  ok &= r.u64(s.holy_bible_with_reference);
  ok &= r.u64(s.ramnit_servers);
  ok &= r.u64(s.ftp_with_http);
  ok &= r.u64(s.ftp_with_scripting_http);
  ok &= r.u64(s.nat_servers);
  ok &= r.u64(s.ftps_supported);
  ok &= r.u64(s.ftps_required);
  ok &= r.u64(s.ftps_self_signed);
  ok &= r.u64(s.ftps_browser_trusted);
  if (!ok) return std::nullopt;

  if (!r.u32(n)) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string cn;
    CertUsage usage;
    if (!r.str(cn) || !r.u64(usage.servers) || !r.b(usage.browser_trusted) ||
        !r.b(usage.self_signed)) {
      return std::nullopt;
    }
    s.cert_by_cn.emplace(std::move(cn), usage);
  }
  ok &= r.u64(s.unique_cert_count);
  ok &= r.u64(s.shared_key_servers);
  ok &= r.u64(s.shared_key_clusters);
  if (!ok) return std::nullopt;

  if (!r.u32(n)) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string id;
    std::uint64_t count = 0;
    if (!r.str(id) || !r.u64(count)) return std::nullopt;
    s.cve_counts.emplace(std::move(id), count);
  }
  if (!r.done()) return std::nullopt;
  return s;
}

bool save_summary(const CensusSummary& summary, const std::string& path) {
  const std::string blob = serialize_summary(summary);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(blob.data(), 1, blob.size(), file) ==
                  blob.size();
  std::fclose(file);
  return ok;
}

std::optional<CensusSummary> load_summary(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string blob;
  char buffer[65536];
  std::size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    blob.append(buffer, read);
  }
  std::fclose(file);
  return deserialize_summary(blob);
}

}  // namespace ftpc::analysis
