// Banner/certificate fingerprinting (§IV).
//
// Maps observed banners to device/implementation identities, mirroring the
// study's hand-built fingerprint set. These patterns were "derived by
// iteratively processing the dataset" — i.e., they are written against
// what servers actually send, not against generator internals (the
// popgen/analysis cross-check test keeps them honest).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace ftpc::analysis {

/// Classification used by Tables II, IV and X.
enum class FpClass {
  kGenericServer,
  kHostedServer,
  kNas,
  kHomeRouter,
  kPrinter,
  kProviderCpe,
  kOtherEmbedded,
  kUnknown,
};

std::string_view fp_class_name(FpClass c) noexcept;

/// True for the three embedded sub-classes + CPE (Table II's "Embedded").
constexpr bool is_embedded(FpClass c) noexcept {
  return c == FpClass::kNas || c == FpClass::kHomeRouter ||
         c == FpClass::kPrinter || c == FpClass::kProviderCpe ||
         c == FpClass::kOtherEmbedded;
}

struct Fingerprint {
  /// Device/implementation label as the paper's tables print it.
  std::string device;
  FpClass device_class = FpClass::kUnknown;
  /// Software family for CVE matching ("ProFTPD", ...); empty if the
  /// banner does not identify software.
  std::string implementation;
  /// Version string extracted from the banner, if visible.
  std::string version;
};

/// Fingerprints a banner (first reply's full text). Returns kUnknown-class
/// fingerprint when nothing matches.
Fingerprint fingerprint_banner(std::string_view banner);

/// Extracts "the version token following `marker`" from a banner, e.g.
/// marker "ProFTPD " over "220 ProFTPD 1.3.5 Server ..." yields "1.3.5".
std::optional<std::string> extract_version_after(std::string_view banner,
                                                 std::string_view marker);

}  // namespace ftpc::analysis
