#include "analysis/tables.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ftpc::analysis {

namespace {

std::string scaled(const CensusSummary& s, std::uint64_t measured) {
  const auto scaled_up = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(measured) * s.scale_factor()));
  return with_commas(scaled_up);
}

std::vector<Align> right_after_first(std::size_t columns) {
  std::vector<Align> alignments(columns, Align::kRight);
  alignments[0] = Align::kLeft;
  return alignments;
}

}  // namespace

std::string scaled_cell(const CensusSummary& s, std::uint64_t measured) {
  return with_commas(measured) + " (~" + scaled(s, measured) + ")";
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

TextTable render_table1_funnel(const CensusSummary& s) {
  TextTable t("TABLE I. General metrics from FTP enumeration (measured at "
              "1/" + std::to_string(std::uint64_t{1} << s.scale_shift) +
              " sampling; '~scaled' projects to full IPv4)");
  t.set_header({"Metric", "Measured", "~Scaled", "Paper (2015)"});
  t.set_alignments(right_after_first(4));
  t.add_row({"IPs scanned", with_commas(s.addresses_scanned),
             scaled(s, s.addresses_scanned), "3,684,755,175"});
  t.add_row({"Open port 21", with_commas(s.port_open), scaled(s, s.port_open),
             "21,832,903"});
  t.add_row({"FTP servers", with_commas(s.ftp_servers),
             scaled(s, s.ftp_servers), "13,789,641"});
  t.add_row({"Anonymous FTP servers", with_commas(s.anonymous_servers),
             scaled(s, s.anonymous_servers), "1,123,326"});
  t.set_footnote("Paper shares: open/scanned 0.59%, FTP/open 63.16%, "
                 "anon/FTP 8.15%. Measured: " +
                 percent(double(s.port_open), double(s.addresses_scanned)) +
                 ", " + percent(double(s.ftp_servers), double(s.port_open)) +
                 ", " +
                 percent(double(s.anonymous_servers), double(s.ftp_servers)));
  return t;
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

TextTable render_table2_classification(const CensusSummary& s) {
  TextTable t("TABLE II. Breakout of servers in each category");
  t.set_header({"Classification", "All FTP", "% all", "Anon FTP", "% anon",
                "Paper all", "Paper anon"});
  t.set_alignments(right_after_first(7));

  const auto row_for = [&](std::string name, DeviceCounts counts,
                           std::string paper_all, std::string paper_anon) {
    t.add_row({std::move(name), scaled(s, counts.total),
               percent(double(counts.total), double(s.ftp_servers)),
               scaled(s, counts.anonymous),
               percent(double(counts.anonymous),
                       double(s.anonymous_servers)),
               std::move(paper_all), std::move(paper_anon)});
  };

  DeviceCounts embedded;
  for (const FpClass cls :
       {FpClass::kNas, FpClass::kHomeRouter, FpClass::kPrinter,
        FpClass::kProviderCpe, FpClass::kOtherEmbedded}) {
    embedded.total += s.class_counts[static_cast<int>(cls)].total;
    embedded.anonymous += s.class_counts[static_cast<int>(cls)].anonymous;
  }
  row_for("Generic Server",
          s.class_counts[static_cast<int>(FpClass::kGenericServer)],
          "5,957,969 (43.21%)", "704,276 (62.66%)");
  row_for("Hosted Server",
          s.class_counts[static_cast<int>(FpClass::kHostedServer)],
          "1,795,596 (13.02%)", "174,198 (15.50%)");
  row_for("Embedded Server", embedded, "1,786,656 (12.95%)",
          "93,484 (8.32%)");
  row_for("Unknown", s.class_counts[static_cast<int>(FpClass::kUnknown)],
          "4,249,417 (30.82%)", "151,927 (13.52%)");
  return t;
}

// ---------------------------------------------------------------------------
// Table III / Figure 1 helpers
// ---------------------------------------------------------------------------

namespace {

/// ASes needed (descending by `metric`) to reach `share` of the total.
template <typename Metric>
std::uint64_t ases_for_share(const std::vector<AsCounts>& as_counts,
                             double share, Metric metric,
                             std::vector<std::uint32_t>* picked = nullptr) {
  std::vector<std::uint64_t> values;
  values.reserve(as_counts.size());
  std::vector<std::uint32_t> order(as_counts.size());
  for (std::uint32_t i = 0; i < as_counts.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return metric(as_counts[a]) > metric(as_counts[b]);
            });
  std::uint64_t total = 0;
  for (const AsCounts& c : as_counts) total += metric(c);
  if (total == 0) return 0;
  std::uint64_t cumulative = 0;
  std::uint64_t needed = 0;
  for (const std::uint32_t idx : order) {
    cumulative += metric(as_counts[idx]);
    ++needed;
    if (picked != nullptr) picked->push_back(idx);
    if (static_cast<double>(cumulative) >=
        share * static_cast<double>(total)) {
      break;
    }
  }
  return needed;
}

}  // namespace

TextTable render_table3_as_concentration(const CensusSummary& s,
                                         const net::AsTable& as_table) {
  std::vector<std::uint32_t> all_picked, anon_picked;
  const std::uint64_t all50 = ases_for_share(
      s.as_counts, 0.5, [](const AsCounts& c) { return c.ftp; }, &all_picked);
  const std::uint64_t anon50 = ases_for_share(
      s.as_counts, 0.5, [](const AsCounts& c) { return c.anonymous; },
      &anon_picked);

  auto type_split = [&](const std::vector<std::uint32_t>& picked) {
    std::uint64_t counts[4] = {};
    for (const std::uint32_t idx : picked) {
      ++counts[static_cast<int>(as_table.as_info(idx).type)];
    }
    return std::vector<std::uint64_t>(counts, counts + 4);
  };
  const auto all_types = type_split(all_picked);
  const auto anon_types = type_split(anon_picked);

  TextTable t("TABLE III. ASes accounting for 50% of all FTP types");
  t.set_header({"AS Type", "All FTP (" + std::to_string(all50) + ")",
                "Anon FTP (" + std::to_string(anon50) + ")",
                "Paper all (78)", "Paper anon (42)"});
  t.set_alignments(right_after_first(5));
  using net::AsType;
  t.add_row({"Hosting",
             std::to_string(all_types[static_cast<int>(AsType::kHosting)]),
             std::to_string(anon_types[static_cast<int>(AsType::kHosting)]),
             "50", "29"});
  t.add_row({"ISP",
             std::to_string(all_types[static_cast<int>(AsType::kIsp)]),
             std::to_string(anon_types[static_cast<int>(AsType::kIsp)]),
             "25", "11"});
  t.add_row({"Academic",
             std::to_string(all_types[static_cast<int>(AsType::kAcademic)]),
             std::to_string(anon_types[static_cast<int>(AsType::kAcademic)]),
             "3", "2"});
  t.add_row({"Other",
             std::to_string(all_types[static_cast<int>(AsType::kOther)]),
             std::to_string(anon_types[static_cast<int>(AsType::kOther)]),
             "0", "0"});
  return t;
}

TextTable render_fig1_as_cdf(const CensusSummary& s) {
  TextTable t("FIGURE 1. Distribution of FTP servers by AS — number of ASes "
              "covering each share of servers (CDF knee points)");
  t.set_header({"Share", "All FTP ASes", "Anon FTP ASes", "Writable ASes"});
  t.set_alignments(right_after_first(4));
  for (const double share : {0.10, 0.25, 0.50, 0.75, 0.90, 1.00}) {
    const auto all = ases_for_share(
        s.as_counts, share, [](const AsCounts& c) { return c.ftp; });
    const auto anon = ases_for_share(
        s.as_counts, share, [](const AsCounts& c) { return c.anonymous; });
    const auto writable = ases_for_share(
        s.as_counts, share, [](const AsCounts& c) { return c.writable; });
    char label[16];
    std::snprintf(label, sizeof(label), "%3.0f%%", share * 100);
    t.add_row({label, with_commas(all), with_commas(anon),
               with_commas(writable)});
  }
  std::uint64_t as_with_ftp = 0, as_with_anon = 0, as_with_writable = 0;
  for (const AsCounts& c : s.as_counts) {
    if (c.ftp > 0) ++as_with_ftp;
    if (c.anonymous > 0) ++as_with_anon;
    if (c.writable > 0) ++as_with_writable;
  }
  t.set_footnote(
      "Paper: 78 ASes hold 50% of all FTP; 42 hold 50% of anonymous; "
      "writable spread over 3.4K ASes. Measured ASes containing servers: " +
      with_commas(as_with_ftp) + " FTP (paper 34.7K), " +
      with_commas(as_with_anon) + " anonymous (paper 16.4K), " +
      with_commas(as_with_writable) + " writable.");
  return t;
}

// ---------------------------------------------------------------------------
// Tables IV, V, VII: device breakdowns
// ---------------------------------------------------------------------------

namespace {

DeviceCounts device_or_zero(const CensusSummary& s, const std::string& name) {
  const auto it = s.device_counts.find(name);
  return it == s.device_counts.end() ? DeviceCounts{} : it->second;
}

}  // namespace

TextTable render_table4_embedded_classes(const CensusSummary& s) {
  TextTable t("TABLE IV. Classes of embedded devices");
  t.set_header({"Device Type", "All FTP", "Anon FTP", "Paper all",
                "Paper anon"});
  t.set_alignments(right_after_first(5));
  const auto row_for = [&](std::string name, FpClass cls,
                           std::string paper_all, std::string paper_anon) {
    const DeviceCounts& c = s.class_counts[static_cast<int>(cls)];
    t.add_row({std::move(name), scaled(s, c.total), scaled(s, c.anonymous),
               std::move(paper_all), std::move(paper_anon)});
  };
  row_for("NAS", FpClass::kNas, "198,381", "18,116");
  row_for("Home Router (user-deployed)", FpClass::kHomeRouter, "59,944",
          "6,788");
  row_for("Printers", FpClass::kPrinter, "62,567", "60,771");
  return t;
}

TextTable render_table5_provider_devices(const CensusSummary& s) {
  TextTable t("TABLE V. Common provider-deployed devices");
  t.set_header({"Device", "# Found", "# Anonymous", "Paper found",
                "Paper anon"});
  t.set_alignments(right_after_first(5));
  const struct {
    const char* device;
    const char* paper_found;
    const char* paper_anon;
  } rows[] = {
      {"FRITZ!Box DSL modem", "152,520", "49"},
      {"ZyXEL DSL Modem", "29,376", "1"},
      {"AXIS Physical Security Device", "20,002", "58"},
      {"ZTE WiMax Router", "14,245", "0"},
      {"Speedport DSL Modem", "13,677", "0"},
      {"Dreambox Set-top Box", "12,298", "0"},
      {"ZyXEL Unified Security Gateway", "11,964", "0"},
      {"Alcatel Router", "10,383", "0"},
      {"DrayTek Network Devices", "4,161", "0"},
  };
  for (const auto& row : rows) {
    const DeviceCounts c = device_or_zero(s, row.device);
    t.add_row({row.device, scaled(s, c.total), scaled(s, c.anonymous),
               row.paper_found, row.paper_anon});
  }
  return t;
}

TextTable render_table7_soho_devices(const CensusSummary& s) {
  TextTable t("TABLE VII. Embedded server devices deployed as standalone");
  t.set_header({"Device", "# Found", "# Anonymous", "Anon %", "Paper found",
                "Paper anon %"});
  t.set_alignments(right_after_first(6));
  const struct {
    const char* device;
    const char* paper_found;
    const char* paper_pct;
  } rows[] = {
      {"QNAP Turbo NAS", "57,655", "2.84%"},
      {"ASUS wireless routers", "52,938", "11.13%"},
      {"Synology NAS devices", "43,159", "6.82%"},
      {"Buffalo NAS storage", "22,558", "39.32%"},
      {"ZyXEL/MitraStar NAS", "9,456", "3.28%"},
      {"RICOH Printers", "8,696", "87.47%"},
      {"LaCie storage", "4,558", "64.04%"},
      {"Lexmark Printers", "3,908", "99.69%"},
      {"Xerox Printers", "3,130", "92.84%"},
      {"Dell Printers", "2,555", "98.43%"},
      {"Linksys Wifi Routers", "2,174", "28.72%"},
      {"Lutron HomeWorks Processor", "1,006", "99.70%"},
      {"Seagate Storage devices", "629", "94.44%"},
  };
  for (const auto& row : rows) {
    const DeviceCounts c = device_or_zero(s, row.device);
    t.add_row({row.device, scaled(s, c.total), scaled(s, c.anonymous),
               percent(double(c.anonymous), double(c.total)),
               row.paper_found, row.paper_pct});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Table VI: top ASes
// ---------------------------------------------------------------------------

TextTable render_table6_top_ases(const CensusSummary& s,
                                 const net::AsTable& as_table) {
  std::vector<std::uint32_t> order(s.as_counts.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return s.as_counts[a].anonymous > s.as_counts[b].anonymous;
  });

  TextTable t("TABLE VI. Top 10 ASes by number of anonymous FTP servers");
  t.set_header({"AS", "IPs advertised", "FTP servers", "Anonymous",
                "Anon %"});
  t.set_alignments(right_after_first(5));
  for (std::size_t i = 0; i < 10 && i < order.size(); ++i) {
    const std::uint32_t idx = order[i];
    const net::AsInfo& info = as_table.as_info(idx);
    const AsCounts& c = s.as_counts[idx];
    t.add_row({"AS" + std::to_string(info.asn) + " " + info.name,
               with_commas(info.ips_advertised), scaled(s, c.ftp),
               scaled(s, c.anonymous),
               percent(double(c.anonymous), double(c.ftp))});
  }
  t.set_footnote(
      "Paper top-3: home.pl 136,765 FTP / 103,175 anon (75.44%); Unified "
      "Layer 246,470 / 44,273 (17.96%); NTT 298,468 / 36,045 (12.08%).");
  return t;
}

// ---------------------------------------------------------------------------
// Table VIII: extensions
// ---------------------------------------------------------------------------

TextTable render_table8_extensions(const CensusSummary& s) {
  TextTable t("TABLE VIII. Most common file extensions across known SOHO "
              "devices");
  t.set_header({"Extension", "# Files", "# Servers", "Paper files",
                "Paper servers"});
  t.set_alignments(right_after_first(5));
  const struct {
    const char* ext;
    const char* paper_files;
    const char* paper_servers;
  } rows[] = {
      {"jpg", "15,962,091", "10,187"}, {"mp3", "2,443,285", "4,912"},
      {"pdf", "1,010,005", "9,825"},   {"avi", "955,832", "4,954"},
      {"gif", "762,581", "5,291"},     {"png", "476,530", "5,456"},
      {"mp4", "456,471", "5,797"},     {"doc", "440,118", "3,924"},
      {"html", "426,646", "5,275"},    {"zip", "294,649", "6,698"},
  };
  for (const auto& row : rows) {
    const auto it = s.soho_extensions.find(row.ext);
    const ExtensionStats stats =
        it == s.soho_extensions.end() ? ExtensionStats{} : it->second;
    t.add_row({std::string(".") + row.ext, scaled(s, stats.files),
               scaled(s, stats.servers), row.paper_files,
               row.paper_servers});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Table IX: sensitive exposure
// ---------------------------------------------------------------------------

TextTable render_table9_sensitive(const CensusSummary& s) {
  TextTable t("TABLE IX. Sensitive exposure via anonymous FTP, including "
              "file permissions");
  t.set_header({"Type", "File", "# Servers", "# Files", "# Readable",
                "# Non-read", "# Unk-read", "Paper (srv/files/read)"});
  std::vector<Align> alignments(8, Align::kRight);
  alignments[0] = Align::kLeft;
  alignments[1] = Align::kLeft;
  t.set_alignments(alignments);
  const struct {
    SensitiveClass cls;
    const char* paper;
  } rows[] = {
      {SensitiveClass::kTurboTax, "464 / 8,190 / 8,139"},
      {SensitiveClass::kQuicken, "440 / 7,702 / 7,652"},
      {SensitiveClass::kKeePass, "210 / 1,812 / 1,762"},
      {SensitiveClass::kOnePassword, "11 / 24 / 23"},
      {SensitiveClass::kSshHostKey, "819 / 1,597 / 139"},
      {SensitiveClass::kPuttyKey, "82 / 128 / 98"},
      {SensitiveClass::kPrivPem, "701 / 1,397 / 1,335"},
      {SensitiveClass::kShadow, "590 / 718 / 238"},
      {SensitiveClass::kPst, "2,419 / 12,636 / 10,918"},
  };
  for (const auto& row : rows) {
    const SensitiveStats& stats =
        s.sensitive[static_cast<std::size_t>(row.cls)];
    t.add_row({std::string(sensitive_class_group(row.cls)),
               std::string(sensitive_class_name(row.cls)),
               scaled(s, stats.servers), scaled(s, stats.files),
               scaled(s, stats.readability.readable),
               scaled(s, stats.readability.non_readable),
               scaled(s, stats.readability.unknown), row.paper});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Table X: exposure matrix
// ---------------------------------------------------------------------------

TextTable render_table10_exposure_matrix(const CensusSummary& s) {
  TextTable t("TABLE X. Breakout of devices exposing user information "
              "(share of exposing servers per class)");
  t.set_header({"Type of Exposure", "Generic", "NAS", "Router", "Other Emb",
                "Hosting", "Unknown"});
  t.set_alignments(right_after_first(7));

  const auto class_share = [&](ExposureKind kind, FpClass cls) {
    const auto* row = s.exposure_matrix[static_cast<std::size_t>(kind)];
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < kFpClassCount; ++c) total += row[c];
    const double value = static_cast<double>(row[static_cast<int>(cls)]);
    return percent(value, static_cast<double>(total));
  };
  const auto other_embedded = [&](ExposureKind kind) {
    const auto* row = s.exposure_matrix[static_cast<std::size_t>(kind)];
    std::uint64_t total = 0, other = 0;
    for (std::size_t c = 0; c < kFpClassCount; ++c) total += row[c];
    other = row[static_cast<int>(FpClass::kPrinter)] +
            row[static_cast<int>(FpClass::kProviderCpe)] +
            row[static_cast<int>(FpClass::kOtherEmbedded)];
    return percent(static_cast<double>(other), static_cast<double>(total));
  };

  for (const ExposureKind kind :
       {ExposureKind::kSensitiveDocs, ExposureKind::kPhotoLibrary,
        ExposureKind::kOsRoot, ExposureKind::kScriptingSource,
        ExposureKind::kAny}) {
    t.add_row({std::string(exposure_kind_name(kind)),
               class_share(kind, FpClass::kGenericServer),
               class_share(kind, FpClass::kNas),
               class_share(kind, FpClass::kHomeRouter),
               other_embedded(kind),
               class_share(kind, FpClass::kHostedServer),
               class_share(kind, FpClass::kUnknown)});
  }
  t.set_footnote("Paper 'All' row: 56.05 / 4.54 / 6.31 / 1.45 / 3.00 / "
                 "28.67 (%); 12.3% of exposing devices identified.");
  return t;
}

// ---------------------------------------------------------------------------
// Table XI: CVEs
// ---------------------------------------------------------------------------

TextTable render_table11_cves(const CensusSummary& s) {
  TextTable t("TABLE XI. Number of servers vulnerable to CVEs");
  t.set_header({"Implementation", "Vulnerability", "CVSS", "# IPs",
                "Paper # IPs"});
  std::vector<Align> alignments(5, Align::kRight);
  alignments[0] = Align::kLeft;
  alignments[1] = Align::kLeft;
  t.set_alignments(alignments);
  const struct {
    const char* impl;
    const char* cve;
    const char* cvss;
    const char* paper;
  } rows[] = {
      {"ProFTPD", "CVE-2015-3306", "10.0", "300,931"},
      {"ProFTPD", "CVE-2013-4359", "5.0", "24,420"},
      {"ProFTPD", "CVE-2012-6095", "1.2", "1,098,629"},
      {"ProFTPD", "CVE-2011-4130", "9.0", "646,072"},
      {"ProFTPD", "CVE-2011-1137", "5.0", "646,072"},
      {"Pure-FTPD", "CVE-2011-1575", "5.8", "3,305"},
      {"Pure-FTPD", "CVE-2011-0418", "4.0", "3,309"},
      {"vsFTPD", "CVE-2015-1419", "5.0", "658,767"},
      {"vsFTPD", "CVE-2011-0762", "4.0", "125,090"},
      {"Serv-U", "CVE-2011-4800", "9.0", "244,060"},
  };
  for (const auto& row : rows) {
    const auto it = s.cve_counts.find(row.cve);
    const std::uint64_t count = it == s.cve_counts.end() ? 0 : it->second;
    t.add_row({row.impl, row.cve, row.cvss, scaled(s, count), row.paper});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Tables XII & XIII: FTPS certificates
// ---------------------------------------------------------------------------

TextTable render_table12_ftps_certs(const CensusSummary& s) {
  std::vector<std::pair<std::string, CertUsage>> certs(s.cert_by_cn.begin(),
                                                       s.cert_by_cn.end());
  std::sort(certs.begin(), certs.end(), [](const auto& a, const auto& b) {
    return a.second.servers > b.second.servers;
  });
  TextTable t("TABLE XII. Top 10 most common FTPS certificates (by CN)");
  t.set_header({"Certificate CN", "# Servers", "Browser-trusted?",
                "Paper rank/count"});
  t.set_alignments({Align::kLeft, Align::kRight, Align::kLeft, Align::kLeft});
  const struct {
    const char* cn;
    const char* count;
  } paper[] = {
      {"*.opentransfer.com", "193,392"}, {"*.securesites.com", "134,891"},
      {"*.home.pl", "125,197"},          {"*.bluehost.com", "59,979"},
      {"localhost", "47,887"},           {"ftp.Serv-U.com", "26,209"},
      {"*.bizmw.com", "26,172"},         {"*.turnkeywebspace.com", "22,075"},
      {"ispgateway.de", "19,355"},       {"*.sakura.ne.jp", "17,495"},
  };
  for (std::size_t i = 0; i < 10 && i < certs.size(); ++i) {
    const auto& [cn, usage] = certs[i];
    std::string paper_note = "-";
    for (std::size_t j = 0; j < std::size(paper); ++j) {
      if (cn == paper[j].cn) {
        paper_note = "#" + std::to_string(j + 1) + " " + paper[j].count;
        break;
      }
    }
    t.add_row({cn, scaled(s, usage.servers),
               usage.browser_trusted
                   ? "Yes"
                   : (usage.self_signed ? "No - self-signed" : "No"),
               paper_note});
  }
  return t;
}

TextTable render_table13_shared_certs(const CensusSummary& s) {
  TextTable t("TABLE XIII. Devices that share FTPS certificates");
  t.set_header({"Device", "# Found", "Paper # found"});
  t.set_alignments(right_after_first(3));
  const struct {
    const char* cn;
    const char* paper;
  } rows[] = {
      {"QNAP NAS (#1)", "11,236"},    {"ZyXEL Unk", "8,402"},
      {"Buffalo NAS", "7,365"},       {"LGE NAS", "6,220"},
      {"Axentra HipServ", "2,965"},   {"ftp.Serv-U.com", "1,835"},
      {"Symon Media Player", "606"},  {"QNAP NAS (#2)", "615"},
      {"AsusTor NAS", "367"},
  };
  for (const auto& row : rows) {
    const auto it = s.cert_by_cn.find(row.cn);
    const std::uint64_t count =
        it == s.cert_by_cn.end() ? 0 : it->second.servers;
    const char* label =
        std::string_view(row.cn) == "ftp.Serv-U.com" ? "RhinoSoft (Serv-U default)"
                                                     : row.cn;
    t.add_row({label, scaled(s, count), row.paper});
  }
  return t;
}

// ---------------------------------------------------------------------------
// §V / §VI / §VII / §IX
// ---------------------------------------------------------------------------

TextTable render_sec5_exposure(const CensusSummary& s) {
  TextTable t("SECTION V. Over-exposure headline numbers");
  t.set_header({"Metric", "Measured (~scaled)", "Paper"});
  t.set_alignments({Align::kLeft, Align::kRight, Align::kRight});
  t.add_row({"Anonymous servers exposing data",
             scaled_cell(s, s.exposing_servers), "268K (24%)"});
  t.add_row({"Files+dirs listed",
             scaled_cell(s, s.total_files + s.total_dirs), ">600M"});
  t.add_row({"robots.txt servers", scaled_cell(s, s.robots_servers),
             "11.3K"});
  t.add_row({"robots.txt full exclusion",
             scaled_cell(s, s.robots_full_exclusion), "5.9K"});
  t.add_row({">500-request filesystems", scaled_cell(s, s.truncated_servers),
             "26.7K"});
  t.add_row({"index.html files / servers",
             scaled_cell(s, s.index_html_files) + " / " +
                 scaled_cell(s, s.index_html_servers),
             "494K / ~25K"});
  t.add_row({"Photo-library servers", scaled_cell(s, s.photo_servers),
             "17K"});
  t.add_row({"Camera photos (readable)",
             scaled_cell(s, s.photo_files) + " (" +
                 scaled_cell(s, s.photo_files_readable) + ")",
             "13.7M (12.9M)"});
  t.add_row({"OS roots Linux/Windows/OSX",
             scaled(s, s.os_root_servers[0]) + " / " +
                 scaled(s, s.os_root_servers[1]) + " / " +
                 scaled(s, s.os_root_servers[2]),
             "3,858 / 825 / 15"});
  t.add_row({"Scripting-source servers / files",
             scaled_cell(s, s.scripting_servers) + " / " +
                 scaled_cell(s, s.scripting_files),
             "32K / 10.2M"});
  t.add_row({".htaccess servers / files",
             scaled_cell(s, s.htaccess_servers) + " / " +
                 scaled_cell(s, s.htaccess_files),
             "4.5K / 189.4K"});
  return t;
}

TextTable render_sec6_malicious(const CensusSummary& s) {
  TextTable t("SECTION VI. Malicious use of anonymous FTP");
  t.set_header({"Metric", "Measured (~scaled)", "Paper"});
  t.set_alignments({Align::kLeft, Align::kRight, Align::kRight});

  std::uint64_t writable_ases = 0;
  for (const AsCounts& c : s.as_counts) {
    if (c.writable > 0) ++writable_ases;
  }
  t.add_row({"World-writable servers (reference set)",
             scaled_cell(s, s.writable_servers), "19.4K"});
  t.add_row({"...spread across ASes", scaled_cell(s, writable_ases),
             "3.4K"});

  const auto campaign = [&](CampaignIndicator c) -> const CampaignStats& {
    return s.campaigns[static_cast<std::size_t>(c)];
  };
  t.add_row({"ftpchk3 campaign servers",
             scaled_cell(s, campaign(CampaignIndicator::kFtpchk3).servers),
             "1,264"});
  t.add_row({"Holy Bible SEO servers",
             scaled_cell(s, campaign(CampaignIndicator::kHolyBible).servers),
             "1,131"});
  t.add_row({"Holy Bible w/ write-evidence",
             percent(double(s.holy_bible_with_reference),
                     double(campaign(CampaignIndicator::kHolyBible).servers)),
             "55.35%"});
  t.add_row({"UDP-DDoS servers (history.php + phzLtoxn.php)",
             scaled_cell(
                 s, campaign(CampaignIndicator::kDdosHistory).servers +
                        campaign(CampaignIndicator::kDdosPhz).servers),
             "1,792"});
  t.add_row({"RAT files / servers",
             scaled_cell(s, campaign(CampaignIndicator::kRatShell).files) +
                 " / " +
                 scaled_cell(s, campaign(CampaignIndicator::kRatShell).servers),
             "6K / 724"});
  t.add_row({"Crack-service flier servers",
             scaled_cell(s, campaign(CampaignIndicator::kCrackFlier).servers),
             "2,095"});
  t.add_row({"WaReZ transport servers",
             scaled_cell(s, campaign(CampaignIndicator::kWarezDir).servers),
             "4,868"});
  t.add_row({"Ramnit RMNetwork banners", scaled_cell(s, s.ramnit_servers),
             "1,051"});
  t.add_row({"FTP hosts also serving HTTP", scaled_cell(s, s.ftp_with_http),
             "9.0M (65.27%)"});
  t.add_row({"FTP hosts w/ server-side scripting headers",
             scaled_cell(s, s.ftp_with_scripting_http), "2.1M (15.01%)"});
  return t;
}

BounceSummary summarize_bounce(
    const std::vector<core::BounceProbeResult>& results,
    const net::AsTable& as_table,
    const std::function<bool(Ipv4)>& is_writable) {
  // The AS holding the most failing servers (home.pl in the paper).
  std::map<std::uint32_t, std::uint64_t> fails_by_as;
  BounceSummary out;
  for (const core::BounceProbeResult& r : results) {
    ++out.probed;
    if (!r.login_ok) continue;
    ++out.anonymous_ok;
    const bool failed = r.port_accepted && r.connection_observed;
    const bool nat = r.pasv_ip && is_private(*r.pasv_ip);
    if (nat) ++out.nat_servers;
    if (failed) {
      ++out.failed_validation;
      if (nat) ++out.nat_and_failed;
      if (is_writable && is_writable(r.ip)) ++out.writable_and_failed;
      if (const auto as_index = as_table.as_index_of(r.ip)) {
        ++fails_by_as[*as_index];
      }
    }
  }
  for (const auto& [as_index, count] : fails_by_as) {
    out.failed_validation_in_top_as =
        std::max(out.failed_validation_in_top_as, count);
  }
  return out;
}

TextTable render_sec7_bounce(const CensusSummary& s,
                             const BounceSummary& bounce) {
  TextTable t("SECTION VII.B. PORT bouncing");
  t.set_header({"Metric", "Measured (~scaled)", "Paper"});
  t.set_alignments({Align::kLeft, Align::kRight, Align::kRight});
  t.add_row({"Anonymous servers probed", scaled_cell(s, bounce.anonymous_ok),
             "1.12M"});
  t.add_row({"Failed PORT validation",
             scaled_cell(s, bounce.failed_validation) + " (" +
                 percent(double(bounce.failed_validation),
                         double(bounce.anonymous_ok)) +
                 ")",
             "143,073 (12.74%)"});
  t.add_row({"...share in single largest AS",
             percent(double(bounce.failed_validation_in_top_as),
                     double(bounce.failed_validation)),
             "71.5% (home.pl)"});
  t.add_row({"NAT'd servers (PASV mismatch)",
             scaled_cell(s, bounce.nat_servers), "18,947"});
  t.add_row({"NAT'd and fail PORT validation",
             scaled_cell(s, bounce.nat_and_failed), "846"});
  t.add_row({"World-writable and fail PORT validation",
             scaled_cell(s, bounce.writable_and_failed), "1,973"});
  return t;
}

TextTable render_sec9_ftps(const CensusSummary& s) {
  TextTable t("SECTION IX. FTPS impact");
  t.set_header({"Metric", "Measured (~scaled)", "Paper"});
  t.set_alignments({Align::kLeft, Align::kRight, Align::kRight});
  t.add_row({"Servers supporting FTPS",
             scaled_cell(s, s.ftps_supported) + " (" +
                 percent(double(s.ftps_supported), double(s.ftp_servers)) +
                 " of FTP)",
             "3.4M (25%)"});
  t.add_row({"Require TLS before login", scaled_cell(s, s.ftps_required),
             "<85K"});
  t.add_row({"Self-signed certificates",
             scaled_cell(s, s.ftps_self_signed) + " (" +
                 percent(double(s.ftps_self_signed),
                         double(s.ftps_supported)) +
                 ")",
             "1.7M (50%)"});
  t.add_row({"Unique certificates", scaled_cell(s, s.unique_cert_count),
             "793K"});
  t.add_row({"Servers whose private key is shared (MITM exposure)",
             scaled_cell(s, s.shared_key_servers) + " in " +
                 with_commas(s.shared_key_clusters) + " clusters",
             "noted qualitatively"});
  return t;
}

}  // namespace ftpc::analysis
