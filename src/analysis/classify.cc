#include "analysis/classify.h"

#include <cctype>

#include "common/strings.h"

namespace ftpc::analysis {

std::string_view sensitive_class_name(SensitiveClass c) noexcept {
  switch (c) {
    case SensitiveClass::kTurboTax:
      return "TurboTax Export";
    case SensitiveClass::kQuicken:
      return "Quicken Data";
    case SensitiveClass::kKeePass:
      return "KeePass/KeePassX";
    case SensitiveClass::kOnePassword:
      return "1Password";
    case SensitiveClass::kSshHostKey:
      return "SSH host private keys";
    case SensitiveClass::kPuttyKey:
      return "Putty SSH client keys";
    case SensitiveClass::kPrivPem:
      return "\"priv\" .pem files";
    case SensitiveClass::kShadow:
      return "shadow files";
    case SensitiveClass::kPst:
      return ".pst files";
    case SensitiveClass::kCount:
      break;
  }
  return "?";
}

std::string_view sensitive_class_group(SensitiveClass c) noexcept {
  switch (c) {
    case SensitiveClass::kTurboTax:
    case SensitiveClass::kQuicken:
      return "Financial Information";
    case SensitiveClass::kKeePass:
    case SensitiveClass::kOnePassword:
      return "Password Databases";
    case SensitiveClass::kSshHostKey:
    case SensitiveClass::kPuttyKey:
    case SensitiveClass::kPrivPem:
      return "Key Material";
    default:
      return "Other";
  }
}

std::optional<SensitiveClass> classify_sensitive(std::string_view path) {
  const std::string_view base = basename(path);
  const std::string lowered = to_lower(base);
  const std::string ext = file_extension(path);

  if (ext == "txf" || contains(lowered, "turbotax") ||
      lowered.rfind(".tax", lowered.size() > 8 ? lowered.size() - 8 : 0) !=
          std::string::npos) {
    if (ext == "txf" || contains(lowered, "turbotax")) {
      return SensitiveClass::kTurboTax;
    }
  }
  if (ext == "qdf" || ext == "qel" || ext == "qph") {
    return SensitiveClass::kQuicken;
  }
  if (ext == "kdbx" || ext == "kdb") return SensitiveClass::kKeePass;
  if (contains(lowered, "agilekeychain") ||
      contains(lowered, "1password")) {
    return SensitiveClass::kOnePassword;
  }
  if (lowered.rfind("ssh_host_", 0) == 0 && ext != "pub") {
    return SensitiveClass::kSshHostKey;
  }
  if (ext == "ppk") return SensitiveClass::kPuttyKey;
  if (ext == "pem" && contains(lowered, "priv")) {
    return SensitiveClass::kPrivPem;
  }
  if (lowered == "shadow" || lowered == "shadow.bak" ||
      lowered == "shadow-") {
    return SensitiveClass::kShadow;
  }
  if (ext == "pst") return SensitiveClass::kPst;
  return std::nullopt;
}

bool is_camera_photo(std::string_view path) {
  const std::string_view base = basename(path);
  const std::string ext = file_extension(path);
  if (ext != "jpg" && ext != "jpeg") return false;
  // Default camera stems: IMG_1234, DSC_0042, DSCN1234, P1050234, PICT0001.
  auto digits_after = [&](std::string_view prefix) {
    if (!istarts_with(base, prefix)) return false;
    const std::string_view rest = base.substr(prefix.size());
    const std::size_t dot = rest.find('.');
    if (dot == std::string_view::npos || dot == 0) return false;
    for (std::size_t i = 0; i < dot; ++i) {
      if (!std::isdigit(static_cast<unsigned char>(rest[i]))) return false;
    }
    return true;
  };
  return digits_after("IMG_") || digits_after("DSC_") ||
         digits_after("DSCN") || digits_after("PICT") || digits_after("P10");
}

bool is_script_source(std::string_view path) {
  const std::string ext = file_extension(path);
  return ext == "php" || ext == "asp" || ext == "aspx" || ext == "cgi" ||
         ext == "pl" || ext == "jsp" || ext == "php3" || ext == "phtml";
}

bool is_htaccess(std::string_view path) {
  return basename(path) == ".htaccess";
}

std::optional<OsRootKind> detect_os_root(
    const std::vector<std::string>& top_level_names) {
  int linux_hits = 0, mac_hits = 0, win_old = 0, win_new = 0;
  bool has_applications = false, has_library = false;
  for (const std::string& name : top_level_names) {
    if (name == "bin" || name == "var" || name == "boot" || name == "etc") {
      ++linux_hits;
    }
    if (name == "Applications") has_applications = true;
    if (name == "Library") has_library = true;
    if (name == "bin" || name == "var" || name == "Users") ++mac_hits;
    if (name == "Program Files" || name == "Documents and Settings" ||
        name == "WINDOWS") {
      ++win_old;
    }
    if (name == "Windows" || name == "Program Files" || name == "Users") {
      ++win_new;
    }
  }
  // Mac requires its unambiguous markers; Windows needs most of its set;
  // Linux needs at least three of {bin, var, boot, etc}.
  if (has_applications && has_library && mac_hits >= 2) {
    return OsRootKind::kMacOs;
  }
  if (win_old >= 3 || win_new >= 3) return OsRootKind::kWindows;
  if (linux_hits >= 3) return OsRootKind::kLinux;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Campaign indicators
// ---------------------------------------------------------------------------

std::string_view campaign_indicator_name(CampaignIndicator c) noexcept {
  switch (c) {
    case CampaignIndicator::kWriteProbe:
      return "write probe (w0000000t/sjutd/hello.world)";
    case CampaignIndicator::kFtpchk3:
      return "ftpchk3";
    case CampaignIndicator::kHolyBible:
      return "Holy Bible SEO";
    case CampaignIndicator::kDdosHistory:
      return "history.php DDoS";
    case CampaignIndicator::kDdosPhz:
      return "phzLtoxn.php DDoS";
    case CampaignIndicator::kRatShell:
      return "RAT shells";
    case CampaignIndicator::kCrackFlier:
      return "crack-service fliers";
    case CampaignIndicator::kWarezDir:
      return "WaReZ transport dirs";
    case CampaignIndicator::kCount:
      break;
  }
  return "?";
}

std::optional<CampaignIndicator> classify_campaign(std::string_view path,
                                                   bool is_dir) {
  const std::string_view base = basename(path);
  const std::string lowered = to_lower(base);

  if (is_dir) {
    // WaReZ transport naming: YYMMDD + 6-digit time + 'p'.
    if (lowered.size() == 13 && lowered.back() == 'p') {
      bool all_digits = true;
      for (std::size_t i = 0; i < 12; ++i) {
        if (!std::isdigit(static_cast<unsigned char>(lowered[i]))) {
          all_digits = false;
          break;
        }
      }
      if (all_digits) return CampaignIndicator::kWarezDir;
    }
    return std::nullopt;
  }

  // Write probes: match the base name with optional ".N" rename suffixes.
  auto strip_rename_suffix = [](std::string name) {
    while (true) {
      const std::size_t dot = name.rfind('.');
      if (dot == std::string::npos || dot + 1 >= name.size()) return name;
      bool digits = true;
      for (std::size_t i = dot + 1; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
          digits = false;
          break;
        }
      }
      if (!digits) return name;
      name.resize(dot);
    }
  };
  const std::string stem = strip_rename_suffix(lowered);

  if (stem == "w0000000t.txt" || stem == "w0000000t.php" ||
      stem == "sjutd.txt" || stem == "hello.world.txt") {
    return CampaignIndicator::kWriteProbe;
  }
  if (stem == "ftpchk3.txt" || stem == "ftpchk3.php") {
    return CampaignIndicator::kFtpchk3;
  }
  if (lowered == "holy-bible.html") return CampaignIndicator::kHolyBible;
  if (lowered == "history.php") return CampaignIndicator::kDdosHistory;
  if (lowered == "phzltoxn.php") return CampaignIndicator::kDdosPhz;
  if (lowered == "x.php") return CampaignIndicator::kRatShell;
  if (lowered == "keygen-service.pdf" || lowered == "keygen-service.ps") {
    return CampaignIndicator::kCrackFlier;
  }
  return std::nullopt;
}

bool indicates_world_writable(CampaignIndicator c) noexcept {
  // The reference set (§VI.A): probe files and campaign payloads that are
  // only ever planted through anonymous upload.
  switch (c) {
    case CampaignIndicator::kWriteProbe:
    case CampaignIndicator::kFtpchk3:
    case CampaignIndicator::kDdosHistory:
    case CampaignIndicator::kDdosPhz:
    case CampaignIndicator::kRatShell:
    case CampaignIndicator::kCrackFlier:
    case CampaignIndicator::kWarezDir:
      return true;
    // Holy-Bible spreads through scripting too; the paper keeps it out of
    // the reference set and reports the 55.35% overlap instead.
    case CampaignIndicator::kHolyBible:
    case CampaignIndicator::kCount:
      return false;
  }
  return false;
}

bool is_ramnit_banner(std::string_view banner) {
  return icontains(banner, "RMNetwork FTP");
}

}  // namespace ftpc::analysis
