// CensusSummary: every aggregate the paper's tables and figures need,
// folded incrementally from streamed HostReports so the census never holds
// more than one host's listing in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/classify.h"
#include "analysis/fingerprints.h"
#include "core/records.h"
#include "net/as_table.h"

namespace ftpc::analysis {

/// HTTP co-deployment signal for one address (the Censys-join stand-in).
struct HttpSignal {
  bool has_http = false;
  bool server_side_scripting = false;  // X-Powered-By: PHP / ASP.NET
};
using HttpLookup = std::function<HttpSignal(Ipv4)>;

struct ReadabilitySplit {
  std::uint64_t readable = 0;
  std::uint64_t non_readable = 0;
  std::uint64_t unknown = 0;
  std::uint64_t total() const noexcept {
    return readable + non_readable + unknown;
  }
  void add(ftp::Readability r, std::uint64_t n = 1) noexcept {
    switch (r) {
      case ftp::Readability::kReadable:
        readable += n;
        break;
      case ftp::Readability::kNotReadable:
        non_readable += n;
        break;
      case ftp::Readability::kUnknown:
        unknown += n;
        break;
    }
  }
};

struct DeviceCounts {
  std::uint64_t total = 0;
  std::uint64_t anonymous = 0;
};

struct SensitiveStats {
  std::uint64_t servers = 0;
  std::uint64_t files = 0;
  ReadabilitySplit readability;
};

struct CampaignStats {
  std::uint64_t servers = 0;
  std::uint64_t files = 0;
};

struct ExtensionStats {
  std::uint64_t files = 0;
  std::uint64_t servers = 0;
};

struct CertUsage {
  std::uint64_t servers = 0;
  bool browser_trusted = false;
  bool self_signed = false;
};

/// Per-AS counters driving Tables III & VI and Figure 1.
struct AsCounts {
  std::uint64_t ftp = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t writable = 0;
};

/// Exposure kinds for the Table X matrix.
enum class ExposureKind {
  kSensitiveDocs = 0,
  kPhotoLibrary,
  kOsRoot,
  kScriptingSource,
  kAny,
  kCount,
};
std::string_view exposure_kind_name(ExposureKind k) noexcept;

constexpr std::size_t kFpClassCount = 8;
constexpr std::size_t kExposureKindCount =
    static_cast<std::size_t>(ExposureKind::kCount);
constexpr std::size_t kSensitiveClassCount =
    static_cast<std::size_t>(SensitiveClass::kCount);
constexpr std::size_t kCampaignCount =
    static_cast<std::size_t>(CampaignIndicator::kCount);

struct CensusSummary {
  std::uint64_t seed = 0;
  unsigned scale_shift = 0;

  // Table I funnel.
  std::uint64_t addresses_scanned = 0;
  std::uint64_t port_open = 0;
  std::uint64_t ftp_servers = 0;
  std::uint64_t anonymous_servers = 0;

  // Tables II, IV, V, VII: class and device counts.
  DeviceCounts class_counts[kFpClassCount];
  std::map<std::string, DeviceCounts> device_counts;

  // Tables III, VI, Figure 1.
  std::vector<AsCounts> as_counts;  // indexed by AS table index

  // §IV / §V traversal statistics.
  std::uint64_t exposing_servers = 0;  // anonymous servers with >= 1 entry
  std::uint64_t robots_servers = 0;
  std::uint64_t robots_full_exclusion = 0;
  std::uint64_t truncated_servers = 0;  // needed > request cap
  std::uint64_t terminated_servers = 0;
  std::uint64_t total_files = 0;
  std::uint64_t total_dirs = 0;

  // Table VIII: extensions on identified SOHO devices.
  std::map<std::string, ExtensionStats> soho_extensions;

  // Table IX.
  SensitiveStats sensitive[kSensitiveClassCount];

  // §V.A photos / OS roots / source exposure; index.html prevalence.
  std::uint64_t photo_servers = 0;
  std::uint64_t photo_files = 0;
  std::uint64_t photo_files_readable = 0;
  std::uint64_t os_root_servers[3] = {0, 0, 0};  // linux, windows, mac
  std::uint64_t scripting_servers = 0;
  std::uint64_t scripting_files = 0;
  std::uint64_t htaccess_servers = 0;
  std::uint64_t htaccess_files = 0;
  std::uint64_t index_html_servers = 0;
  std::uint64_t index_html_files = 0;

  // Table X: exposing-server counts per (exposure kind, fingerprint class).
  std::uint64_t exposure_matrix[kExposureKindCount][kFpClassCount] = {};

  // §VI: world-writable + campaigns.
  std::uint64_t writable_servers = 0;  // reference-set detection
  CampaignStats campaigns[kCampaignCount];
  std::uint64_t holy_bible_with_reference = 0;
  std::uint64_t ramnit_servers = 0;

  // §VI.B HTTP overlap.
  std::uint64_t ftp_with_http = 0;
  std::uint64_t ftp_with_scripting_http = 0;

  // §VII.B NAT signal from the census traversal.
  std::uint64_t nat_servers = 0;

  // §IX / Tables XII, XIII: FTPS.
  std::uint64_t ftps_supported = 0;
  std::uint64_t ftps_required = 0;
  std::uint64_t ftps_self_signed = 0;
  std::uint64_t ftps_browser_trusted = 0;
  std::map<std::string, CertUsage> cert_by_cn;
  std::uint64_t unique_cert_count = 0;  // distinct fingerprints
  /// §IX MITM exposure: servers whose certificate *private key* is shared
  /// with at least one other server (extract the key from any one device
  /// to intercept all of them).
  std::uint64_t shared_key_servers = 0;
  std::uint64_t shared_key_clusters = 0;

  // Table XI: CVE id -> vulnerable server count.
  std::map<std::string, std::uint64_t> cve_counts;

  /// Multiplier back to paper scale.
  double scale_factor() const noexcept {
    return static_cast<double>(std::uint64_t{1} << scale_shift);
  }
};

/// Streams HostReports into a CensusSummary.
class SummaryBuilder : public core::RecordSink {
 public:
  SummaryBuilder(const net::AsTable& as_table, HttpLookup http_lookup);

  void on_host(const core::HostReport& report) override;

  /// Finalizes and returns the summary (call once).
  CensusSummary take(std::uint64_t seed, unsigned scale_shift,
                     std::uint64_t addresses_scanned,
                     std::uint64_t port_open);

 private:
  const net::AsTable& as_table_;
  HttpLookup http_lookup_;
  CensusSummary summary_;
  std::unordered_set<std::uint64_t> cert_fingerprints_;
  std::unordered_map<std::uint64_t, std::uint64_t> cert_key_usage_;
};

}  // namespace ftpc::analysis
