#include "analysis/cve.h"

#include <cctype>

#include "common/strings.h"

namespace ftpc::analysis {

const std::vector<CveEntry>& cve_database() {
  using Match = CveEntry::Match;
  static const std::vector<CveEntry> db = {
      {"CVE-2015-3306", "ProFTPD", 10.0, Match::kExact, "1.3.5"},
      {"CVE-2013-4359", "ProFTPD", 5.0, Match::kExact, "1.3.4d"},
      {"CVE-2012-6095", "ProFTPD", 1.2, Match::kAtMost, "1.3.4d"},
      {"CVE-2011-4130", "ProFTPD", 9.0, Match::kAtMost, "1.3.3g"},
      {"CVE-2011-1137", "ProFTPD", 5.0, Match::kAtMost, "1.3.3g"},
      {"CVE-2011-1575", "Pure-FTPd", 5.8, Match::kExact, "1.0.29"},
      {"CVE-2011-0418", "Pure-FTPd", 4.0, Match::kAtMost, "1.0.29"},
      {"CVE-2015-1419", "vsFTPd", 5.0, Match::kAtMost, "3.0.2"},
      {"CVE-2011-0762", "vsFTPd", 4.0, Match::kAtMost, "2.3.2"},
      {"CVE-2011-4800", "Serv-U", 9.0, Match::kAtMost, "11.1.0.5"},
  };
  return db;
}

namespace {

/// Splits a version into alternating numeric/alphabetic tokens.
struct Token {
  bool numeric = false;
  std::uint64_t number = 0;
  std::string_view text;
};

std::vector<Token> tokenize(std::string_view version) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < version.size()) {
    const char c = version[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      const std::size_t start = i;
      while (i < version.size() &&
             std::isdigit(static_cast<unsigned char>(version[i]))) {
        value = value * 10 + static_cast<std::uint64_t>(version[i] - '0');
        ++i;
      }
      tokens.push_back(Token{.numeric = true,
                             .number = value,
                             .text = version.substr(start, i - start)});
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      while (i < version.size() &&
             std::isalpha(static_cast<unsigned char>(version[i]))) {
        ++i;
      }
      tokens.push_back(Token{.numeric = false,
                             .text = version.substr(start, i - start)});
    } else {
      ++i;  // separators
    }
  }
  return tokens;
}

}  // namespace

int compare_versions(std::string_view a, std::string_view b) noexcept {
  const auto ta = tokenize(a);
  const auto tb = tokenize(b);
  const std::size_t n = std::max(ta.size(), tb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= ta.size()) {
      // a is a prefix of b. A trailing letter ("1.3.5a" vs "1.3.5") means
      // b is newer; a trailing number ("1.3.5.1") also means b is newer.
      return -1;
    }
    if (i >= tb.size()) return 1;
    const Token& x = ta[i];
    const Token& y = tb[i];
    if (x.numeric != y.numeric) {
      // Numeric sorts after alphabetic at the same position (rare).
      return x.numeric ? 1 : -1;
    }
    if (x.numeric) {
      if (x.number != y.number) return x.number < y.number ? -1 : 1;
    } else {
      const int cmp = x.text.compare(y.text);
      if (cmp != 0) return cmp < 0 ? -1 : 1;
    }
  }
  return 0;
}

bool cve_matches(const CveEntry& entry, std::string_view implementation,
                 std::string_view version) noexcept {
  if (version.empty() || !iequals(entry.implementation, implementation)) {
    return false;
  }
  const int cmp = compare_versions(version, entry.version);
  return entry.kind == CveEntry::Match::kExact ? cmp == 0 : cmp <= 0;
}

}  // namespace ftpc::analysis
