#include "analysis/notify.h"

#include <algorithm>

#include "analysis/summary.h"
#include "common/strings.h"

namespace ftpc::analysis {

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kSensitive:
      return "sensitive";
    case Severity::kCredential:
      return "credential";
    case Severity::kCompromised:
      return "compromised";
  }
  return "?";
}

namespace {

Severity sensitive_severity(SensitiveClass cls) {
  switch (cls) {
    case SensitiveClass::kKeePass:
    case SensitiveClass::kOnePassword:
    case SensitiveClass::kSshHostKey:
    case SensitiveClass::kPuttyKey:
    case SensitiveClass::kPrivPem:
    case SensitiveClass::kShadow:
      return Severity::kCredential;
    default:
      return Severity::kSensitive;
  }
}

}  // namespace

HostFinding assess_host(const core::HostReport& report) {
  HostFinding finding;
  finding.ip = report.ip;
  if (!report.anonymous()) return finding;

  std::uint64_t sensitive_counts[kSensitiveClassCount] = {};
  std::uint64_t photo_files = 0;
  bool malware = false;
  std::vector<std::string> malware_names;

  for (const core::FileRecord& file : report.files) {
    if (const auto campaign = classify_campaign(file.path, file.is_dir)) {
      if (indicates_world_writable(*campaign) ||
          *campaign == CampaignIndicator::kHolyBible) {
        if (!malware) {
          malware = true;
        }
        const std::string name(campaign_indicator_name(*campaign));
        if (std::find(malware_names.begin(), malware_names.end(), name) ==
            malware_names.end()) {
          malware_names.push_back(name);
        }
      }
    }
    if (file.is_dir) continue;
    if (const auto cls = classify_sensitive(file.path)) {
      ++sensitive_counts[static_cast<std::size_t>(*cls)];
    }
    if (is_camera_photo(file.path)) ++photo_files;
  }

  Severity severity = Severity::kInfo;
  for (std::size_t i = 0; i < kSensitiveClassCount; ++i) {
    if (sensitive_counts[i] == 0) continue;
    const auto cls = static_cast<SensitiveClass>(i);
    severity = std::max(severity, sensitive_severity(cls));
    finding.evidence.push_back(
        with_commas(sensitive_counts[i]) + "x " +
        std::string(sensitive_class_name(cls)));
  }
  if (photo_files >= 20) {
    severity = std::max(severity, Severity::kSensitive);
    finding.evidence.push_back("personal photo library (" +
                               with_commas(photo_files) + " images)");
  }
  if (malware) {
    severity = std::max(severity, Severity::kCompromised);
    for (const std::string& name : malware_names) {
      finding.evidence.push_back("malware artifact: " + name);
    }
  }
  finding.severity = severity;
  return finding;
}

NotificationBuilder::NotificationBuilder(const net::AsTable& as_table)
    : as_table_(as_table) {}

void NotificationBuilder::on_host(const core::HostReport& report) {
  HostFinding finding = assess_host(report);
  if (finding.evidence.empty()) return;
  const auto as_index = as_table_.as_index_of(report.ip);
  if (!as_index) return;
  ++flagged_;
  by_as_[*as_index].push_back(std::move(finding));
}

std::vector<AsDigest> NotificationBuilder::digests(
    Severity min_severity) const {
  std::vector<AsDigest> out;
  for (const auto& [as_index, findings] : by_as_) {
    AsDigest digest;
    digest.as_index = as_index;
    for (const HostFinding& finding : findings) {
      if (finding.severity < min_severity) continue;
      digest.worst = std::max(digest.worst, finding.severity);
      digest.hosts.push_back(finding);
    }
    if (!digest.hosts.empty()) {
      std::sort(digest.hosts.begin(), digest.hosts.end(),
                [](const HostFinding& a, const HostFinding& b) {
                  return a.severity > b.severity;
                });
      out.push_back(std::move(digest));
    }
  }
  std::sort(out.begin(), out.end(), [](const AsDigest& a, const AsDigest& b) {
    if (a.worst != b.worst) return a.worst > b.worst;
    return a.hosts.size() > b.hosts.size();
  });
  return out;
}

std::string NotificationBuilder::render(const AsDigest& digest) const {
  const net::AsInfo& info = as_table_.as_info(digest.as_index);
  std::string out = "To the abuse contact of AS" + std::to_string(info.asn) +
                    " (" + info.name + "):\n\n";
  out += "During an authorized Internet-measurement study we observed " +
         with_commas(digest.hosts.size()) +
         " host(s) in your network exposing sensitive data or malware over "
         "anonymous FTP:\n\n";
  for (const HostFinding& host : digest.hosts) {
    out += "  " + host.ip.str() + "  [" +
           std::string(severity_name(host.severity)) + "]\n";
    for (const std::string& line : host.evidence) {
      out += "    - " + line + "\n";
    }
  }
  out += "\nWe recommend disabling anonymous FTP access on these hosts or "
         "restricting it to intentionally public data.\n";
  return out;
}

}  // namespace ftpc::analysis
