// Responsible-disclosure digests.
//
// §III.A: "We are working to notify responsible entities in likely
// instances of sensitive information disclosure." This module turns raw
// host reports into the artifact that process needs: per-AS digests
// listing each affected host, what it exposes and how severe that is, so
// an abuse desk gets one actionable message instead of a CSV of paths.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/classify.h"
#include "core/records.h"
#include "net/as_table.h"

namespace ftpc::analysis {

/// Severity buckets for prioritizing notifications.
enum class Severity {
  kInfo = 0,      // exposed media / generic files
  kSensitive,     // financial docs, mailboxes, photos
  kCredential,    // password databases, private keys, shadow files
  kCompromised,   // malware artifacts present (already exploited)
};

std::string_view severity_name(Severity severity) noexcept;

struct HostFinding {
  Ipv4 ip;
  Severity severity = Severity::kInfo;
  /// Human-readable evidence lines ("3x SSH host private keys", ...).
  std::vector<std::string> evidence;
};

struct AsDigest {
  std::uint32_t as_index = 0;
  std::vector<HostFinding> hosts;
  Severity worst = Severity::kInfo;
};

/// Accumulates findings from streamed host reports.
class NotificationBuilder : public core::RecordSink {
 public:
  explicit NotificationBuilder(const net::AsTable& as_table);

  void on_host(const core::HostReport& report) override;

  /// Digests for every AS with at least one finding at or above
  /// `min_severity`, ordered most-severe first.
  std::vector<AsDigest> digests(Severity min_severity) const;

  /// Renders one digest as the text of an abuse-contact message.
  std::string render(const AsDigest& digest) const;

  std::uint64_t hosts_with_findings() const noexcept { return flagged_; }

 private:
  const net::AsTable& as_table_;
  std::map<std::uint32_t, std::vector<HostFinding>> by_as_;
  std::uint64_t flagged_ = 0;
};

/// Classifies one host report into a finding; severity kInfo with empty
/// evidence means "nothing to report".
HostFinding assess_host(const core::HostReport& report);

}  // namespace ftpc::analysis
