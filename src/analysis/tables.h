// Renderers that turn a CensusSummary into the paper's tables and figures,
// printing measured values, their scale-up to full-IPv4 equivalents, and
// the paper's reported numbers side by side.
#pragma once

#include <string>
#include <vector>

#include "analysis/summary.h"
#include "common/table.h"
#include "core/bounce.h"
#include "net/as_table.h"

namespace ftpc::analysis {

TextTable render_table1_funnel(const CensusSummary& s);
TextTable render_table2_classification(const CensusSummary& s);
TextTable render_table3_as_concentration(const CensusSummary& s,
                                         const net::AsTable& as_table);
TextTable render_table4_embedded_classes(const CensusSummary& s);
TextTable render_table5_provider_devices(const CensusSummary& s);
TextTable render_table6_top_ases(const CensusSummary& s,
                                 const net::AsTable& as_table);
TextTable render_table7_soho_devices(const CensusSummary& s);
TextTable render_table8_extensions(const CensusSummary& s);
TextTable render_table9_sensitive(const CensusSummary& s);
TextTable render_table10_exposure_matrix(const CensusSummary& s);
TextTable render_table11_cves(const CensusSummary& s);
TextTable render_table12_ftps_certs(const CensusSummary& s);
TextTable render_table13_shared_certs(const CensusSummary& s);

/// Figure 1 as a CDF table: number of ASes needed to cover fixed
/// percentiles of all / anonymous / writable FTP servers.
TextTable render_fig1_as_cdf(const CensusSummary& s);

/// §V headline numbers (photos, OS roots, source exposure, robots).
TextTable render_sec5_exposure(const CensusSummary& s);

/// §VI malicious-use numbers (world-writable, campaigns, HTTP overlap).
TextTable render_sec6_malicious(const CensusSummary& s);

/// §VII.B PORT-bounce numbers, combining census NAT signals with the
/// dedicated prober's results.
struct BounceSummary {
  std::uint64_t probed = 0;
  std::uint64_t anonymous_ok = 0;
  std::uint64_t failed_validation = 0;      // accepted + dialed out
  std::uint64_t failed_validation_in_top_as = 0;
  std::uint64_t nat_servers = 0;
  std::uint64_t nat_and_failed = 0;
  std::uint64_t writable_and_failed = 0;
};
BounceSummary summarize_bounce(
    const std::vector<core::BounceProbeResult>& results,
    const net::AsTable& as_table,
    const std::function<bool(Ipv4)>& is_writable);
TextTable render_sec7_bounce(const CensusSummary& s,
                             const BounceSummary& bounce);

/// §IX FTPS adoption numbers.
TextTable render_sec9_ftps(const CensusSummary& s);

/// Helper shared by the bench binaries: "measured  (xN)  vs paper".
std::string scaled_cell(const CensusSummary& s, std::uint64_t measured);

}  // namespace ftpc::analysis
