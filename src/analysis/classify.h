// Content classifiers over listed file paths (§V, §VI).
//
// These are the "reference sets" and filename heuristics of the study:
// sensitive-document recognition (Table IX), camera-default photo names,
// server-side script extensions, OS-root detection, and the
// world-writable / campaign indicator files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/records.h"

namespace ftpc::analysis {

/// Sensitive-document classes of Table IX.
enum class SensitiveClass {
  kTurboTax = 0,
  kQuicken,
  kKeePass,
  kOnePassword,
  kSshHostKey,
  kPuttyKey,
  kPrivPem,
  kShadow,
  kPst,
  kCount,
};

std::string_view sensitive_class_name(SensitiveClass c) noexcept;
std::string_view sensitive_class_group(SensitiveClass c) noexcept;

/// Classifies one path; nullopt if not sensitive.
std::optional<SensitiveClass> classify_sensitive(std::string_view path);

/// Camera-default photo names (IMG_1234.JPG, DSC_0042.jpg, ...).
bool is_camera_photo(std::string_view path);

/// Server-side scripting source (.php, .asp, .aspx, .cgi, .pl, .jsp).
bool is_script_source(std::string_view path);

/// ".htaccess" exactly.
bool is_htaccess(std::string_view path);

/// Operating-system root detection from a host's top-level names (§V.A).
enum class OsRootKind { kLinux, kWindows, kMacOs };
std::optional<OsRootKind> detect_os_root(
    const std::vector<std::string>& top_level_names);

// ---------------------------------------------------------------------------
// §VI: world-writable evidence and campaign indicators.
// ---------------------------------------------------------------------------

enum class CampaignIndicator {
  kWriteProbe = 0,  // w0000000t.*, sjutd.txt, hello.world.txt
  kFtpchk3,
  kHolyBible,
  kDdosHistory,
  kDdosPhz,
  kRatShell,
  kCrackFlier,
  kWarezDir,
  kCount,
};

std::string_view campaign_indicator_name(CampaignIndicator c) noexcept;

/// Classifies one path as a campaign indicator, if any.
std::optional<CampaignIndicator> classify_campaign(std::string_view path,
                                                   bool is_dir);

/// True if the indicator belongs to the world-writable *reference set*
/// (files that can only exist because an anonymous user uploaded them).
bool indicates_world_writable(CampaignIndicator c) noexcept;

/// The Ramnit banner signature (§VI.C).
bool is_ramnit_banner(std::string_view banner);

}  // namespace ftpc::analysis
