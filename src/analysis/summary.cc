#include "analysis/summary.h"

#include <cstring>

#include "analysis/cve.h"
#include "common/strings.h"
#include "ftp/path.h"

namespace ftpc::analysis {

std::string_view exposure_kind_name(ExposureKind k) noexcept {
  switch (k) {
    case ExposureKind::kSensitiveDocs:
      return "Sensitive Documents";
    case ExposureKind::kPhotoLibrary:
      return "Photo Libraries";
    case ExposureKind::kOsRoot:
      return "Root File Systems";
    case ExposureKind::kScriptingSource:
      return "Scripting Source";
    case ExposureKind::kAny:
      return "All";
    case ExposureKind::kCount:
      break;
  }
  return "?";
}

SummaryBuilder::SummaryBuilder(const net::AsTable& as_table,
                               HttpLookup http_lookup)
    : as_table_(as_table), http_lookup_(std::move(http_lookup)) {
  summary_.as_counts.resize(as_table.as_count());
}

void SummaryBuilder::on_host(const core::HostReport& report) {
  if (!report.ftp_compliant) return;
  ++summary_.ftp_servers;

  const Fingerprint fp = fingerprint_banner(report.banner);
  const auto cls = static_cast<std::size_t>(fp.device_class);
  ++summary_.class_counts[cls].total;
  if (fp.device_class != FpClass::kUnknown || is_ramnit_banner(report.banner)) {
    ++summary_.device_counts[fp.device].total;
  }
  if (is_ramnit_banner(report.banner)) ++summary_.ramnit_servers;

  const auto as_index = as_table_.as_index_of(report.ip);
  AsCounts* as_counts = nullptr;
  if (as_index) {
    as_counts = &summary_.as_counts[*as_index];
    ++as_counts->ftp;
  }

  // HTTP overlap (§VI.B): joined per discovered FTP host, as the paper did
  // with Censys data.
  if (http_lookup_) {
    const HttpSignal http = http_lookup_(report.ip);
    if (http.has_http) ++summary_.ftp_with_http;
    if (http.server_side_scripting) ++summary_.ftp_with_scripting_http;
  }

  // CVEs: version strings from banners (Table XI).
  if (!fp.implementation.empty() && !fp.version.empty()) {
    for (const CveEntry& entry : cve_database()) {
      if (cve_matches(entry, fp.implementation, fp.version)) {
        ++summary_.cve_counts[entry.id];
      }
    }
  }

  // FTPS (§IX, Tables XII, XIII).
  if (report.ftps_supported && report.certificate) {
    ++summary_.ftps_supported;
    if (report.ftps_required_before_login) ++summary_.ftps_required;
    const ftp::Certificate& cert = *report.certificate;
    if (cert.self_signed()) ++summary_.ftps_self_signed;
    if (cert.browser_trusted) ++summary_.ftps_browser_trusted;
    CertUsage& usage = summary_.cert_by_cn[cert.subject_cn];
    ++usage.servers;
    usage.browser_trusted = cert.browser_trusted;
    usage.self_signed = cert.self_signed();
    std::uint64_t fp64 = 0;
    std::memcpy(&fp64, cert.fingerprint().bytes.data(), sizeof(fp64));
    cert_fingerprints_.insert(fp64);
    ++cert_key_usage_[cert.key_id];
  }

  if (!report.anonymous()) return;

  // ------------------------------------------------------------------
  // Anonymous-only analyses.
  // ------------------------------------------------------------------
  ++summary_.anonymous_servers;
  ++summary_.class_counts[cls].anonymous;
  if (fp.device_class != FpClass::kUnknown) {
    ++summary_.device_counts[fp.device].anonymous;
  }
  if (as_counts != nullptr) ++as_counts->anonymous;

  if (report.robots_present) ++summary_.robots_servers;
  if (report.robots_full_exclusion) ++summary_.robots_full_exclusion;
  if (report.truncated_by_request_cap) ++summary_.truncated_servers;
  if (report.server_terminated_early) ++summary_.terminated_servers;
  if (report.pasv_ip && is_private(*report.pasv_ip)) ++summary_.nat_servers;

  const bool soho = fp.device_class == FpClass::kNas ||
                    fp.device_class == FpClass::kHomeRouter ||
                    fp.device_class == FpClass::kPrinter;

  // Single pass over the host's listing.
  std::uint64_t files_here = 0;
  std::uint64_t photo_files = 0, photo_readable = 0;
  std::uint64_t script_files = 0, htaccess_files = 0, index_files = 0;
  std::uint64_t sensitive_files[kSensitiveClassCount] = {};
  ReadabilitySplit sensitive_read[kSensitiveClassCount];
  std::uint64_t campaign_files[kCampaignCount] = {};
  bool writable_evidence = false;
  std::vector<std::string> top_level;
  std::map<std::string, std::uint64_t> ext_files_here;

  for (const core::FileRecord& record : report.files) {
    if (record.is_dir) {
      ++summary_.total_dirs;
      if (ftp::path_depth(record.path) == 1) {
        top_level.emplace_back(record.path.substr(1));
      }
    } else {
      ++files_here;
      ++summary_.total_files;
    }

    if (const auto campaign = classify_campaign(record.path, record.is_dir)) {
      ++campaign_files[static_cast<std::size_t>(*campaign)];
      if (indicates_world_writable(*campaign)) writable_evidence = true;
    }
    if (record.is_dir) continue;

    const std::string ext = file_extension(record.path);
    if (soho && !ext.empty()) ++ext_files_here[ext];

    if (is_camera_photo(record.path)) {
      ++photo_files;
      if (record.readable == ftp::Readability::kReadable) ++photo_readable;
    }
    if (is_script_source(record.path)) ++script_files;
    if (is_htaccess(record.path)) ++htaccess_files;
    if (iequals(basename(record.path), "index.html")) ++index_files;

    if (const auto sensitive = classify_sensitive(record.path)) {
      const auto idx = static_cast<std::size_t>(*sensitive);
      ++sensitive_files[idx];
      sensitive_read[idx].add(record.readable);
    }
  }

  // §IV: a server "exposes data" when at least one *file* is visible;
  // empty or directory-only trees do not count (76% of anonymous
  // servers in the paper).
  if (files_here > 0) ++summary_.exposing_servers;

  // Fold per-host tallies into the global summary.
  for (const auto& [ext, count] : ext_files_here) {
    ExtensionStats& stats = summary_.soho_extensions[ext];
    stats.files += count;
    ++stats.servers;
  }
  if (photo_files >= 20) {  // a library, not a stray image
    ++summary_.photo_servers;
    summary_.photo_files += photo_files;
    summary_.photo_files_readable += photo_readable;
  }
  if (script_files > 0) {
    ++summary_.scripting_servers;
    summary_.scripting_files += script_files;
  }
  if (htaccess_files > 0) {
    ++summary_.htaccess_servers;
    summary_.htaccess_files += htaccess_files;
  }
  if (index_files > 0) {
    ++summary_.index_html_servers;
    summary_.index_html_files += index_files;
  }

  bool any_sensitive = false;
  for (std::size_t i = 0; i < kSensitiveClassCount; ++i) {
    if (sensitive_files[i] == 0) continue;
    any_sensitive = true;
    SensitiveStats& stats = summary_.sensitive[i];
    ++stats.servers;
    stats.files += sensitive_files[i];
    stats.readability.readable += sensitive_read[i].readable;
    stats.readability.non_readable += sensitive_read[i].non_readable;
    stats.readability.unknown += sensitive_read[i].unknown;
  }

  const auto os_root = detect_os_root(top_level);
  if (os_root) {
    ++summary_.os_root_servers[static_cast<std::size_t>(*os_root)];
  }

  // Table X matrix.
  auto mark = [&](ExposureKind kind) {
    ++summary_.exposure_matrix[static_cast<std::size_t>(kind)][cls];
  };
  if (any_sensitive) mark(ExposureKind::kSensitiveDocs);
  if (photo_files >= 20) mark(ExposureKind::kPhotoLibrary);
  if (os_root) mark(ExposureKind::kOsRoot);
  if (script_files > 0) mark(ExposureKind::kScriptingSource);
  if (any_sensitive || photo_files >= 20 || os_root || script_files > 0) {
    mark(ExposureKind::kAny);
  }

  // §VI: world-writable reference-set detection + campaign counts.
  if (writable_evidence) {
    ++summary_.writable_servers;
    if (as_counts != nullptr) ++as_counts->writable;
  }
  for (std::size_t i = 0; i < kCampaignCount; ++i) {
    if (campaign_files[i] == 0) continue;
    CampaignStats& stats = summary_.campaigns[i];
    ++stats.servers;
    stats.files += campaign_files[i];
  }
  const auto holy = static_cast<std::size_t>(CampaignIndicator::kHolyBible);
  if (campaign_files[holy] > 0 && writable_evidence) {
    ++summary_.holy_bible_with_reference;
  }
}

CensusSummary SummaryBuilder::take(std::uint64_t seed, unsigned scale_shift,
                                   std::uint64_t addresses_scanned,
                                   std::uint64_t port_open) {
  summary_.seed = seed;
  summary_.scale_shift = scale_shift;
  summary_.addresses_scanned = addresses_scanned;
  summary_.port_open = port_open;
  summary_.unique_cert_count = cert_fingerprints_.size();
  for (const auto& [key_id, servers] : cert_key_usage_) {
    if (servers > 1) {
      ++summary_.shared_key_clusters;
      summary_.shared_key_servers += servers;
    }
  }
  return std::move(summary_);
}

}  // namespace ftpc::analysis
