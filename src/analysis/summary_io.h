// Binary (de)serialization of CensusSummary, used by the bench harness to
// compute the census once and share it across the per-table binaries. The
// format carries a magic, a version, and a trailing CRC-free length check;
// any mismatch fails loading (the bench then recomputes).
#pragma once

#include <optional>
#include <string>

#include "analysis/summary.h"

namespace ftpc::analysis {

/// Serializes `summary` to a byte string.
std::string serialize_summary(const CensusSummary& summary);

/// Parses a serialized summary; nullopt on any corruption or version skew.
std::optional<CensusSummary> deserialize_summary(std::string_view data);

/// Convenience file helpers. save returns false on I/O failure.
bool save_summary(const CensusSummary& summary, const std::string& path);
std::optional<CensusSummary> load_summary(const std::string& path);

}  // namespace ftpc::analysis
