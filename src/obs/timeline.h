// Deterministic timeline telemetry: the census's third observability
// channel, alongside the MetricsRegistry (point-in-time counters) and the
// Trace (per-host narratives). A timeline answers the question neither of
// those can: how did the run *evolve* — in-flight sessions, queue depth,
// funnel progress, retry activity — as a function of simulated time?
//
// Two strictly separated planes share this header's naming but nothing
// else (the perf plane lives in obs/perf.h):
//
//   deterministic plane (this file): gauge snapshots on a fixed sim-time
//     cadence, serialized as ftpc.tsdb.v1 JSONL. The contract mirrors
//     metrics.h and trace.h: the exported artifact is byte-identical for
//     every (--shards, --threads) split of the same (seed, scale), chaos
//     included.
//
//   perf plane (obs/perf.h): real wall/CPU attribution and per-shard load
//     samples. Explicitly EXEMPT from the byte-identity contract — wall
//     time and shard layout are exactly the things it measures.
//
// How the deterministic plane survives sharding: a K-shard census runs K
// *concurrent* simulated timelines, so naively sampling live per-shard
// gauges can never be split-invariant (each shard's scan takes 1/K of the
// sequential scan's virtual time, and K independent enumeration windows
// are not one window). Instead, each shard records split-invariant *facts*
// — per-element scan progress indexed by global permutation position, and
// per-host session outcomes (duration, funnel flags, request/retry counts,
// all pure functions of (seed, target)) tagged with the hit's global scan
// index — and the exporter *projects* the canonical sequential schedule
// from the merged facts:
//
//   1. Scan phase: the canonical scanner emits one probe per permutation
//      element at `pps` packets/second, so cumulative scan counters at
//      global element index g are split-invariant sums of per-shard
//      boundary samples. The projection places tick k at the first k*ept
//      elements (ept = elements per tick) and lands the exact merged
//      totals at the canonical scan end T0 = (probed + retransmits) *
//      1e6 / pps µs — the same integer arithmetic the live sequential
//      scanner uses to advance virtual time.
//   2. Enumeration phase: the sequential census launches hits in global
//      scan order through a fixed window of `concurrency` sessions, each
//      completion starting the next host at exactly the completion time.
//      Given per-host durations, that schedule is a pure min-heap replay:
//      the first C hosts launch at T0, and the j-th launch beyond the
//      window happens at the (j-C)-th smallest completion time. Every
//      gauge below falls out of the replay.
//
// Like the other channels: no locks, no atomics. One TimelineCollector
// belongs to one shard; Timelines merge after the workers join.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ftpc::obs {

/// Knobs for a census timeline (CensusConfig::timeline).
struct TimelineOptions {
  bool enabled = false;
  /// Gauge snapshot cadence in virtual microseconds (default: 1 sim-second).
  std::uint64_t interval_us = 1'000'000;
};

/// Cumulative per-shard scan counters recorded when the shard's walk
/// crosses a global-element-index tick boundary (boundary b covers all
/// elements with global index < b*ept). The final sample of a shard's
/// series carries the shard's scan totals.
struct TimelineScanSample {
  std::uint64_t boundary = 0;  // tick index this sample is valid at
  std::uint64_t elements = 0;
  std::uint64_t probed = 0;
  std::uint64_t responsive = 0;
  std::uint64_t retransmits = 0;
};

/// Per-host facts the enumeration replay needs; every field is a pure
/// function of (seed, target) — see the header comment.
struct TimelineHost {
  std::uint64_t global_index = 0;  // position in the canonical scan order
  std::uint32_t ip = 0;
  bool enumerated = false;  // a session ran (false: hit dropped by max_hosts)
  std::uint64_t duration_us = 0;  // session start -> finalize, virtual µs
  bool connected = false;
  bool ftp_compliant = false;
  bool anonymous = false;
  bool errored = false;
  std::uint64_t requests = 0;  // control-channel commands sent
  std::uint64_t retries = 0;   // command retransmits after reply timeouts
};

/// Session outcome handed to the collector at finalize time.
struct TimelineSessionFacts {
  std::uint64_t duration_us = 0;
  bool connected = false;
  bool ftp_compliant = false;
  bool anonymous = false;
  bool errored = false;
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
};

/// The merged, serializable timeline: split-invariant facts in, canonical
/// gauge rows out.
class Timeline {
 public:
  /// Fixed gauge column order — the ftpc.tsdb.v1 schema. Appending a
  /// column is a schema change (regenerate the golden file).
  static constexpr std::size_t kGaugeCount = 14;
  static const std::array<const char*, kGaugeCount>& gauge_names() noexcept;

  enum Gauge : std::size_t {
    kScanElements = 0,
    kScanProbed,
    kScanResponsive,
    kScanRetransmits,
    kEnumLaunched,
    kEnumInFlight,
    kEnumQueue,
    kEnumDone,
    kFunnelConnected,
    kFunnelFtp,
    kFunnelAnonymous,
    kFunnelErrored,
    kFtpRequests,
    kRetryCommands,
  };

  /// One projected snapshot: gauge values at virtual time `t` (µs). A
  /// snapshot at t counts every event with time <= t.
  struct Row {
    std::uint64_t t = 0;
    std::array<std::uint64_t, kGaugeCount> gauges{};
  };

  Timeline() = default;
  Timeline(TimelineOptions options, std::uint32_t concurrency)
      : options_(options), concurrency_(concurrency) {}

  const TimelineOptions& options() const noexcept { return options_; }
  std::uint32_t concurrency() const noexcept { return concurrency_; }
  std::uint64_t pps() const noexcept { return pps_; }
  void set_pps(std::uint64_t pps) noexcept { pps_ = pps; }

  void add_scan_series(std::vector<TimelineScanSample> series) {
    scan_series_.push_back(std::move(series));
  }
  void add_host(TimelineHost host) { hosts_.push_back(host); }

  const std::vector<TimelineHost>& hosts() const noexcept { return hosts_; }
  /// The recorded per-shard boundary series (one vector per shard). Exposed
  /// so a checkpointed shard can persist its facts and a merge tool can
  /// re-add them — see core/shard_artifact.h.
  const std::vector<std::vector<TimelineScanSample>>& scan_series()
      const noexcept {
    return scan_series_;
  }
  bool empty() const noexcept {
    return scan_series_.empty() && hosts_.empty();
  }

  /// Folds another shard's facts into this one: series and host lists
  /// concatenate. The projection sums series and sorts hosts by global
  /// index, so the merged export is independent of merge order.
  void merge_from(const Timeline& other);

  /// Canonical scan end / enumeration start, virtual µs — exactly the
  /// virtual time the sequential scanner's rate accounting lands on.
  std::uint64_t t0_us() const noexcept;

  /// Projects the canonical sequential schedule (see header comment) into
  /// per-tick gauge rows at t = interval, 2*interval, ...
  std::vector<Row> project() const;

  /// ftpc.tsdb.v1 JSONL: a header object, then one object per tick with
  /// the fixed gauge columns. Byte-identical for equal facts:
  ///   {"schema":"ftpc.tsdb.v1","interval_us":1000000,...}
  ///   {"t":1000000,"scan.elements":65536,...,"retry.commands":0}
  std::string to_jsonl() const;

  /// Chrome trace-event counter tracks ("ph":"C"): four counter series
  /// (scan / enum / funnel / ftp) per tick, loadable in chrome://tracing
  /// or Perfetto alongside the span trace from obs/trace.h.
  std::string to_chrome_json() const;

 private:
  struct ScanTotals {
    std::uint64_t elements = 0;
    std::uint64_t probed = 0;
    std::uint64_t responsive = 0;
    std::uint64_t retransmits = 0;
  };
  ScanTotals scan_totals() const noexcept;

  TimelineOptions options_;
  std::uint32_t concurrency_ = 64;
  std::uint64_t pps_ = 0;
  std::vector<std::vector<TimelineScanSample>> scan_series_;
  std::vector<TimelineHost> hosts_;
};

/// One shard's timeline recorder, attached to the shard's sim::Network for
/// the duration of a census run (same ownership contract as the metrics
/// registry and trace collector). The scanner feeds it global-indexed scan
/// progress; the enumerator reports per-session outcomes.
class TimelineCollector {
 public:
  TimelineCollector(TimelineOptions options, std::uint32_t concurrency)
      : timeline_(options, concurrency) {}

  std::uint64_t interval_us() const noexcept {
    return timeline_.options().interval_us;
  }

  /// Scanner: declares the probe rate (packets/second) before the walk.
  void scan_begin(std::uint64_t pps) { timeline_.set_pps(pps); }

  /// Scanner: cumulative shard counters at a global tick boundary.
  void scan_boundary(std::uint64_t boundary, std::uint64_t elements,
                     std::uint64_t probed, std::uint64_t responsive,
                     std::uint64_t retransmits) {
    scan_samples_.push_back(
        {boundary, elements, probed, responsive, retransmits});
  }

  /// Scanner: final shard totals, closing the series at `boundary` (the
  /// first boundary the walk never reached).
  void scan_totals(std::uint64_t boundary, std::uint64_t elements,
                   std::uint64_t probed, std::uint64_t responsive,
                   std::uint64_t retransmits) {
    scan_boundary(boundary, elements, probed, responsive, retransmits);
  }

  /// Scanner: a responsive host at global scan position `global_index`.
  void record_hit(std::uint32_t ip, std::uint64_t global_index);

  /// Enumerator: session outcome for a previously recorded hit. Unknown
  /// hosts are ignored (a session outside the census pipeline).
  void record_session(std::uint32_t ip, const TimelineSessionFacts& facts);

  /// Moves the recorded facts out (ends the collection).
  Timeline take();

 private:
  Timeline timeline_;
  std::vector<TimelineScanSample> scan_samples_;
  std::vector<TimelineHost> hosts_;
  std::unordered_map<std::uint32_t, std::size_t> host_index_;
};

}  // namespace ftpc::obs
