#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "common/hash.h"
#include "common/ipv4.h"
#include "obs/build_info.h"

namespace ftpc::obs {

std::string_view StringInterner::intern(std::string_view s) {
  if (s.empty()) return std::string_view();
  const auto it = set_.find(s);
  if (it != set_.end()) return *it;
  // First sight: copy into the arena. Chunks are reserved up front and only
  // ever appended to within capacity, so existing data never relocates.
  if (chunks_.empty() ||
      chunks_.back().capacity() - chunks_.back().size() < s.size()) {
    chunks_.emplace_back();
    chunks_.back().reserve(std::max(kChunkBytes, s.size()));
    chunk_bytes_ += chunks_.back().capacity();
  }
  std::vector<char>& chunk = chunks_.back();
  const std::size_t offset = chunk.size();
  chunk.insert(chunk.end(), s.begin(), s.end());
  const std::string_view stored(chunk.data() + offset, s.size());
  set_.insert(stored);
  return stored;
}

std::string_view trace_event_kind_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kSpan:
      return "span";
    case TraceEventKind::kSend:
      return "send";
    case TraceEventKind::kRecv:
      return "recv";
  }
  return "?";
}

std::string normalize_ephemeral_ports(std::string_view line) {
  std::string out;
  normalize_ephemeral_ports(line, out);
  return out;
}

void normalize_ephemeral_ports(std::string_view line, std::string& out) {
  out.clear();
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
      out.push_back(line[i]);
      ++i;
      continue;
    }
    // Measure a maximal comma-separated run of digit groups.
    std::size_t groups = 0;
    std::size_t j = i;
    std::size_t fourth_group_end = 0;  // end of group 4, if reached
    while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j]))) {
      while (j < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      ++groups;
      if (groups == 4) fourth_group_end = j;
      if (j + 1 < line.size() && line[j] == ',' &&
          std::isdigit(static_cast<unsigned char>(line[j + 1]))) {
        ++j;  // consume the comma, continue with the next group
        continue;
      }
      break;
    }
    if (groups == 6) {
      // h1,h2,h3,h4,p1,p2: keep the address, scrub the port digits.
      out.append(line.substr(i, fourth_group_end - i));
      out += ",?,?";
    } else {
      out.append(line.substr(i, j - i));
    }
    i = j;
  }
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

void TraceBuffer::merge_from(const TraceBuffer& other) {
  // append re-interns: the copied events' views must reference this
  // buffer's arena, not the (possibly shorter-lived) source buffer's.
  events_.reserve(events_.size() + other.events_.size());
  for (const TraceEvent& event : other.events_) append(event);
}

void TraceBuffer::canonicalize() {
  std::sort(events_.begin(), events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.host != b.host) return a.host < b.host;
              return a.seq < b.seq;
            });
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  static const char* kHex = "0123456789abcdef";
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      out += "\\u00";
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

const std::string& trace_header_line() {
  // Shared with the shard merge (core/shard_artifact.cc), which validates
  // shard headers against it and writes it onto the merged stream — the
  // build stamp is constant per build tree, so the byte-identity matrix
  // still holds.
  static const std::string header =
      "{\"schema\":\"ftpc.trace.v1\"," + build_info_json() + "}";
  return header;
}

std::string TraceBuffer::to_jsonl() {
  canonicalize();
  std::string out = trace_header_line() + "\n";
  for (const TraceEvent& event : events_) {
    out += "{\"t\":" + std::to_string(event.start);
    if (event.kind == TraceEventKind::kSpan) {
      out += ",\"dur\":" + std::to_string(event.dur);
    }
    out += ",\"host\":";
    append_json_string(out, Ipv4(event.host).str());
    out += ",\"seq\":" + std::to_string(event.seq);
    out += ",\"ev\":\"";
    out += trace_event_kind_name(event.kind);
    out += '"';
    if (event.kind == TraceEventKind::kSpan) {
      out += ",\"name\":";
      append_json_string(out, event.name);
      out += ",\"status\":";
      append_json_string(out, event.status);
    } else {
      out += ",\"line\":";
      append_json_string(out, event.name);
    }
    out += "}\n";
  }
  return out;
}

std::string TraceBuffer::to_chrome_json() {
  canonicalize();
  // One tid per host keeps every host's spans on its own track; pid groups
  // the whole census. chrome://tracing and Perfetto both accept this shape.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"pid\":1,\"tid\":" + std::to_string(event.host);
    out += ",\"ts\":" + std::to_string(event.start);
    if (event.kind == TraceEventKind::kSpan) {
      out += ",\"ph\":\"X\",\"dur\":" + std::to_string(event.dur);
      out += ",\"name\":";
      append_json_string(out, event.name);
      out += ",\"cat\":\"stage\",\"args\":{\"host\":";
      append_json_string(out, Ipv4(event.host).str());
      out += ",\"status\":";
      append_json_string(out, event.status);
      out += "}}";
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\",\"name\":";
      append_json_string(out, event.name);
      out += ",\"cat\":\"wire.";
      out += trace_event_kind_name(event.kind);
      out += "\",\"args\":{\"host\":";
      append_json_string(out, Ipv4(event.host).str());
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------------

void TraceSession::stage_begin(std::string_view name, TraceTime now) {
  if (stage_open_) stage_end("ok", now);
  stage_open_ = true;
  open_name_.assign(name);
  open_started_ = rel(now);
}

void TraceSession::stage_end(std::string_view status, TraceTime now) {
  if (!stage_open_) return;
  stage_open_ = false;
  TraceEvent event;
  event.start = open_started_;
  event.dur = rel(now) - open_started_;
  event.host = host_;
  event.seq = next_seq_++;
  event.kind = TraceEventKind::kSpan;
  event.name = open_name_;  // append interns; open_name_ is reused
  event.status = status;
  buffer_->append(event);
}

void TraceSession::wire(TraceEventKind kind, std::string_view line,
                        TraceTime now) {
  if (!capture_wire_) return;
  TraceEvent event;
  event.start = rel(now);
  event.host = host_;
  event.seq = next_seq_++;
  event.kind = kind;
  normalize_ephemeral_ports(line, scratch_);
  event.name = scratch_;  // append interns before scratch_ is reused
  buffer_->append(event);
}

void TraceSession::wire_send(std::string_view line, TraceTime now) {
  wire(TraceEventKind::kSend, line, now);
}

void TraceSession::wire_recv(std::string_view line, TraceTime now) {
  wire(TraceEventKind::kRecv, line, now);
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

bool TraceCollector::should_trace(std::uint32_t host) const noexcept {
  for (const std::uint32_t forced : options_.force_hosts) {
    if (forced == host) return true;
  }
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  // Fixed-point per-IP coin flip: pure in (seed, host), uniform via
  // SipHash, so the sampled set partitions exactly across shards.
  constexpr std::uint64_t kTraceSampleKey = 0x66747063'74726163ULL;  // "ftpctrac"
  const std::uint64_t hash = siphash24_u64(seed_, kTraceSampleKey, host);
  const auto threshold =
      static_cast<std::uint64_t>(options_.sample_rate * 4294967296.0);
  return (hash & 0xffffffffULL) < threshold;
}

void TraceCollector::record_probe(std::uint32_t host, bool responsive) {
  if (!should_trace(host)) return;
  TraceEvent event;
  event.host = host;
  event.seq = 0;
  event.kind = TraceEventKind::kSpan;
  event.name = "probe";
  event.status = responsive ? "responsive" : "unresponsive";
  buffer_.append(std::move(event));
}

TraceSession* TraceCollector::open_session(std::uint32_t host, TraceTime now) {
  if (!should_trace(host)) return nullptr;
  sessions_.emplace_back(&buffer_, host, now, options_.capture_wire);
  return &sessions_.back();
}

}  // namespace ftpc::obs
