// Profiling plane: hierarchical wall/CPU scope attribution under the
// perf stages.
//
// The perf plane (obs/perf.h) attributes real time to seven coarse
// pipeline stages; this plane answers the next question — *why* a stage
// is hot — with a call tree built by RAII ScopedProfile guards nested
// inside the stage timers. Each shard grows its own tree (names interned
// to small ids, per-node inclusive wall, thread-CPU, and call counts);
// trees merge by name-path after the workers join, exactly the
// one-collector-per-shard contract the other obs channels follow.
//
// Like the perf and health planes, this plane is wall-clock data and is
// explicitly EXEMPT from the byte-identity contract: profiles vary across
// machines, runs, and shard splits — that is what they measure — and
// profiler output must never feed a deterministic artifact. The guards
// themselves are allowed on the deterministic hot path because a null
// collector reduces a guard to one branch, and an attached collector only
// ever *observes* (clock reads + private tree writes): control flow never
// depends on it. The split-invariance matrix in tests/prof_test.cc pins
// all four deterministic channels byte-identical with profiling on vs off.
//
// Subsystem telemetry — timer-wheel arena bytes/freelist hits/cascades,
// StringInterner chunk bytes, merge stream-budget high-water, event
// churn — folds into the same artifact as named counters, so one
// ftpc.prof.v1 document answers both "where did the time go" and "where
// did the memory go". Exports: canonical JSON (ftpc.prof.v1), collapsed
// stacks for flamegraph tooling, and Chrome trace-event JSON. The
// tools/ftpcprof inspector summarizes, flames, and diffs two profiles
// with a CI-facing regression threshold.
//
// No locks, no atomics: one ProfCollector belongs to one shard thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/perf.h"

namespace ftpc::obs {

/// One node of a (collector- or report-owned) profile tree. Wall/CPU are
/// inclusive; self time is derived at export (inclusive minus children).
struct ProfNode {
  std::uint32_t name_id = 0;
  std::uint32_t parent = 0;  // index into the owning arena; root is 0
  double wall_s = 0.0;       // inclusive real seconds
  double cpu_s = 0.0;        // inclusive thread-CPU seconds
  std::uint64_t calls = 0;
  /// (name_id, node index) pairs; child counts are tiny, linear scan wins.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> children;
};

/// Shared tree arena: node storage plus the name table. ProfCollector and
/// ProfReport both build on it; merging walks one tree into another.
class ProfTree {
 public:
  ProfTree();

  std::uint32_t intern(std::string_view name);
  /// The child of `parent` named `name_id`, created on first sight.
  std::uint32_t child(std::uint32_t parent, std::uint32_t name_id);

  const std::vector<ProfNode>& nodes() const noexcept { return nodes_; }
  std::vector<ProfNode>& nodes() noexcept { return nodes_; }
  const std::vector<std::string>& names() const noexcept { return names_; }
  std::string_view name(std::uint32_t id) const noexcept {
    return names_[id];
  }
  bool empty() const noexcept { return nodes_.size() == 1; }

 private:
  std::vector<ProfNode> nodes_;        // nodes_[0] is the synthetic root
  std::vector<std::string> names_;     // names_[0] = "" (the root)
  std::unordered_map<std::string, std::uint32_t> name_ids_;
};

/// One shard's profile recorder, attached to the shard's sim::Network for
/// the duration of a run (same raw-pointer contract as PerfCollector).
/// Scopes must nest strictly — guaranteed by ScopedProfile's RAII — and
/// all calls must come from the owning shard's thread.
class ProfCollector {
 public:
  /// Opens a scope named `name` under the current node and returns the
  /// node index the matching leave() must credit.
  std::uint32_t enter(std::string_view name) {
    const std::uint32_t node =
        tree_.child(current_, tree_.intern(name));
    current_ = node;
    return node;
  }

  /// Closes `node`, crediting the measured inclusive times.
  void leave(std::uint32_t node, double wall_s, double cpu_s) noexcept {
    ProfNode& n = tree_.nodes()[node];
    n.wall_s += wall_s;
    n.cpu_s += cpu_s;
    ++n.calls;
    current_ = n.parent;
  }

  /// Named telemetry counter: accumulate (bytes allocated, cache hits...).
  void counter_add(std::string_view name, std::uint64_t value);
  /// Named telemetry counter: keep the high-water mark.
  void counter_max(std::string_view name, std::uint64_t value);

  const ProfTree& tree() const noexcept { return tree_; }
  /// Sorted (name, value) counter snapshot.
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  bool empty() const noexcept;

 private:
  std::uint64_t& counter_slot(std::string_view name);

  ProfTree tree_;
  std::uint32_t current_ = 0;  // root
  std::vector<std::pair<std::string, std::uint64_t>> counter_values_;
  std::unordered_map<std::string, std::size_t> counter_ids_;
};

/// Post-join aggregation across shards; serializes as ftpc.prof.v1.
/// Trees merge by name-path (two shards' "enumerate/list" nodes fold into
/// one); counters merge by summation, which every counter's unit is
/// chosen to make meaningful (bytes and hits total across the fleet).
class ProfReport {
 public:
  /// Folds a shard's collector in. `count_shard = false` folds scopes and
  /// counters without bumping shards() — for post-join work (the merge
  /// stage) that belongs to the run, not to any one shard.
  void add_collector(const ProfCollector& collector, bool count_shard = true);
  void merge_from(const ProfReport& other);

  bool empty() const noexcept;
  std::uint32_t shards() const noexcept { return shards_; }
  const ProfTree& tree() const noexcept { return tree_; }
  const std::vector<std::pair<std::string, std::uint64_t>>& counters()
      const noexcept {
    return counters_;
  }

  /// ftpc.prof.v1: schema + build stamp, shard count, counters, and the
  /// nested tree (children sorted by name; wall/cpu as %.6f seconds,
  /// self values precomputed). Wall-clock data — exempt from byte
  /// identity, never an input to the deterministic channels.
  std::string to_json() const;

  /// Collapsed-stack flamegraph lines: "a;b;c <self-wall-microseconds>",
  /// one per node with nonzero self time (flamegraph.pl / speedscope
  /// ingest this directly).
  std::string to_collapsed() const;

  /// Chrome trace-event JSON: the aggregate tree laid out as nested
  /// complete ("ph":"X") events — children packed sequentially inside
  /// their parent's span — for chrome://tracing or Perfetto.
  std::string to_chrome_json() const;

 private:
  void fold(const ProfTree& other);
  void fold_counters(
      const std::vector<std::pair<std::string, std::uint64_t>>& other);

  ProfTree tree_;
  std::uint32_t shards_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::unordered_map<std::string, std::size_t> counter_ids_;
};

/// RAII scope guard. A null collector costs one branch; an attached one
/// costs two clock reads and a child-table probe — cheap enough for
/// per-session callbacks, and sampled wall time is what the plane is for.
class ScopedProfile {
 public:
  ScopedProfile(ProfCollector* collector, std::string_view name) noexcept
      : collector_(collector) {
    if (collector_ != nullptr) {
      node_ = collector_->enter(name);
      wall_start_ = std::chrono::steady_clock::now();
      cpu_start_ = ScopedStageTimer::thread_cpu_seconds();
    }
  }
  ~ScopedProfile() {
    if (collector_ != nullptr) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start_)
              .count();
      collector_->leave(node_, wall,
                        ScopedStageTimer::thread_cpu_seconds() - cpu_start_);
    }
  }
  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  ProfCollector* collector_;
  std::uint32_t node_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_ = 0.0;
};

}  // namespace ftpc::obs
