#include "obs/perf.h"

#include <time.h>

#include <algorithm>
#include <cstdio>

#include "obs/build_info.h"

namespace ftpc::obs {

const char* perf_stage_name(PerfStage stage) noexcept {
  switch (stage) {
    case PerfStage::kProbe:
      return "probe";
    case PerfStage::kConnect:
      return "connect";
    case PerfStage::kBanner:
      return "banner";
    case PerfStage::kLogin:
      return "login";
    case PerfStage::kEnumerate:
      return "enumerate";
    case PerfStage::kFinalize:
      return "finalize";
    case PerfStage::kMerge:
      return "merge";
  }
  return "?";
}

double ScopedStageTimer::thread_cpu_seconds() noexcept {
#ifdef CLOCK_THREAD_CPUTIME_ID
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

void PerfReport::add_collector(const PerfCollector& collector) {
  for (std::size_t i = 0; i < kPerfStageCount; ++i) {
    stages_[i].wall_s += collector.stages()[i].wall_s;
    stages_[i].cpu_s += collector.stages()[i].cpu_s;
    stages_[i].calls += collector.stages()[i].calls;
  }
  shards_.push_back(collector.shard());
}

void PerfReport::add_stage(PerfStage stage, double wall_s, double cpu_s) {
  PerfStageTotals& totals = stages_[static_cast<std::size_t>(stage)];
  totals.wall_s += wall_s;
  totals.cpu_s += cpu_s;
  ++totals.calls;
}

void PerfReport::merge_from(const PerfReport& other) {
  for (std::size_t i = 0; i < kPerfStageCount; ++i) {
    stages_[i].wall_s += other.stages_[i].wall_s;
    stages_[i].cpu_s += other.stages_[i].cpu_s;
    stages_[i].calls += other.stages_[i].calls;
  }
  shards_.insert(shards_.end(), other.shards_.begin(), other.shards_.end());
}

bool PerfReport::empty() const noexcept {
  if (!shards_.empty()) return false;
  for (const PerfStageTotals& totals : stages_) {
    if (totals.calls != 0) return false;
  }
  return true;
}

double PerfReport::imbalance() const noexcept {
  if (shards_.empty()) return 0.0;
  double max_wall = 0.0;
  double sum_wall = 0.0;
  for (const PerfShard& shard : shards_) {
    max_wall = std::max(max_wall, shard.wall_s);
    sum_wall += shard.wall_s;
  }
  const double mean = sum_wall / static_cast<double>(shards_.size());
  return mean > 0.0 ? max_wall / mean : 0.0;
}

namespace {

std::string fmt_seconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6f", seconds);
  return buffer;
}

}  // namespace

std::string PerfReport::to_json() const {
  std::vector<PerfShard> shards = shards_;
  std::sort(shards.begin(), shards.end(),
            [](const PerfShard& a, const PerfShard& b) {
              return a.shard < b.shard;
            });

  std::string out = "{\"schema\":\"ftpc.perf.v1\",";
  out += build_info_json();
  out += ",\"stages\":{";
  bool first = true;
  for (std::size_t i = 0; i < kPerfStageCount; ++i) {
    const PerfStageTotals& totals = stages_[i];
    if (totals.calls == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += perf_stage_name(static_cast<PerfStage>(i));
    out += "\":{\"wall_s\":" + fmt_seconds(totals.wall_s);
    out += ",\"cpu_s\":" + fmt_seconds(totals.cpu_s);
    out += ",\"calls\":" + std::to_string(totals.calls) + "}";
  }
  out += "},\"per_shard\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const PerfShard& shard = shards[i];
    if (i > 0) out.push_back(',');
    out += "{\"shard\":" + std::to_string(shard.shard);
    out += ",\"items\":" + std::to_string(shard.items);
    out += ",\"wall_s\":" + fmt_seconds(shard.wall_s);
    out += ",\"samples\":" + std::to_string(shard.samples);
    out += ",\"peak_in_flight\":" + std::to_string(shard.peak_in_flight);
    out += ",\"peak_queue\":" + std::to_string(shard.peak_queue);
    out += ",\"peak_timers\":" + std::to_string(shard.peak_timers);
    const double mean_in_flight =
        shard.samples > 0 ? static_cast<double>(shard.sum_in_flight) /
                                static_cast<double>(shard.samples)
                          : 0.0;
    out += ",\"mean_in_flight\":" + fmt_seconds(mean_in_flight) + "}";
  }
  out += "],\"skew\":{";
  double max_wall = 0.0;
  double sum_wall = 0.0;
  std::uint64_t max_items = 0;
  std::uint64_t sum_items = 0;
  for (const PerfShard& shard : shards) {
    max_wall = std::max(max_wall, shard.wall_s);
    sum_wall += shard.wall_s;
    max_items = std::max(max_items, shard.items);
    sum_items += shard.items;
  }
  const double mean_wall =
      shards.empty() ? 0.0 : sum_wall / static_cast<double>(shards.size());
  const double mean_items =
      shards.empty() ? 0.0
                     : static_cast<double>(sum_items) /
                           static_cast<double>(shards.size());
  out += "\"shards\":" + std::to_string(shards.size());
  out += ",\"max_wall_s\":" + fmt_seconds(max_wall);
  out += ",\"mean_wall_s\":" + fmt_seconds(mean_wall);
  out += ",\"wall_imbalance\":" + fmt_seconds(imbalance());
  out += ",\"max_items\":" + std::to_string(max_items);
  out += ",\"mean_items\":" + fmt_seconds(mean_items);
  out += "}}\n";
  return out;
}

}  // namespace ftpc::obs
