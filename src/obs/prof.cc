#include "obs/prof.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/build_info.h"

namespace ftpc::obs {

namespace {

// Matches the perf plane's rendering: six decimal places is microsecond
// resolution, the finest grain a scope guard can meaningfully claim.
std::string fmt_seconds(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
  out.push_back('"');
}

/// Children of `node`, ordered by name for a canonical serialization.
std::vector<std::uint32_t> sorted_children(const ProfTree& tree,
                                           const ProfNode& node) {
  std::vector<std::uint32_t> out;
  out.reserve(node.children.size());
  for (const auto& [name_id, child] : node.children) {
    (void)name_id;
    out.push_back(child);
  }
  std::sort(out.begin(), out.end(),
            [&tree](std::uint32_t a, std::uint32_t b) {
              return tree.name(tree.nodes()[a].name_id) <
                     tree.name(tree.nodes()[b].name_id);
            });
  return out;
}

double children_wall(const ProfTree& tree, const ProfNode& node) {
  double sum = 0.0;
  for (const auto& [name_id, child] : node.children) {
    (void)name_id;
    sum += tree.nodes()[child].wall_s;
  }
  return sum;
}

double children_cpu(const ProfTree& tree, const ProfNode& node) {
  double sum = 0.0;
  for (const auto& [name_id, child] : node.children) {
    (void)name_id;
    sum += tree.nodes()[child].cpu_s;
  }
  return sum;
}

}  // namespace

// --- ProfTree ---------------------------------------------------------------

ProfTree::ProfTree() {
  nodes_.emplace_back();  // the synthetic root
  names_.emplace_back();
  name_ids_.emplace("", 0);
}

std::uint32_t ProfTree::intern(std::string_view name) {
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t ProfTree::child(std::uint32_t parent, std::uint32_t name_id) {
  for (const auto& [id, node] : nodes_[parent].children) {
    if (id == name_id) return node;
  }
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().name_id = name_id;
  nodes_.back().parent = parent;
  nodes_[parent].children.emplace_back(name_id, node);
  return node;
}

// --- ProfCollector ----------------------------------------------------------

std::uint64_t& ProfCollector::counter_slot(std::string_view name) {
  const auto it = counter_ids_.find(std::string(name));
  if (it != counter_ids_.end()) return counter_values_[it->second].second;
  counter_values_.emplace_back(std::string(name), 0);
  counter_ids_.emplace(counter_values_.back().first,
                       counter_values_.size() - 1);
  return counter_values_.back().second;
}

void ProfCollector::counter_add(std::string_view name, std::uint64_t value) {
  counter_slot(name) += value;
}

void ProfCollector::counter_max(std::string_view name, std::uint64_t value) {
  std::uint64_t& slot = counter_slot(name);
  if (value > slot) slot = value;
}

std::vector<std::pair<std::string, std::uint64_t>> ProfCollector::counters()
    const {
  auto out = counter_values_;
  std::sort(out.begin(), out.end());
  return out;
}

bool ProfCollector::empty() const noexcept {
  return tree_.empty() && counter_values_.empty();
}

// --- ProfReport -------------------------------------------------------------

void ProfReport::fold(const ProfTree& other) {
  // Recursive DFS without recursion: (theirs, ours) pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [theirs, ours] = stack.back();
    stack.pop_back();
    const ProfNode& src = other.nodes()[theirs];
    if (theirs != 0) {
      ProfNode& dst = tree_.nodes()[ours];
      dst.wall_s += src.wall_s;
      dst.cpu_s += src.cpu_s;
      dst.calls += src.calls;
    }
    for (const auto& [name_id, child] : src.children) {
      const std::uint32_t mapped =
          tree_.child(ours, tree_.intern(other.name(name_id)));
      stack.emplace_back(child, mapped);
    }
  }
}

void ProfReport::fold_counters(
    const std::vector<std::pair<std::string, std::uint64_t>>& other) {
  for (const auto& [name, value] : other) {
    const auto it = counter_ids_.find(name);
    if (it != counter_ids_.end()) {
      counters_[it->second].second += value;
    } else {
      counters_.emplace_back(name, value);
      counter_ids_.emplace(name, counters_.size() - 1);
    }
  }
}

void ProfReport::add_collector(const ProfCollector& collector,
                               bool count_shard) {
  if (count_shard) ++shards_;
  fold(collector.tree());
  fold_counters(collector.counters());
}

void ProfReport::merge_from(const ProfReport& other) {
  shards_ += other.shards_;
  fold(other.tree_);
  fold_counters(other.counters_);
}

bool ProfReport::empty() const noexcept {
  return tree_.empty() && counters_.empty() && shards_ == 0;
}

std::string ProfReport::to_json() const {
  std::string out = "{\"schema\":\"ftpc.prof.v1\",";
  out += build_info_json();
  out += ",\"shards\":" + std::to_string(shards_);
  out += ",\"counters\":{";
  auto counters = counters_;
  std::sort(counters.begin(), counters.end());
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(value);
  }
  out += "},\"tree\":[";

  // Iterative pre-order with explicit close markers so the nested JSON
  // arrays open and close in step with the tree walk.
  struct Frame {
    std::uint32_t node;
    bool close;  // true: emit "]}" for an already-rendered node
    bool first_sibling;
  };
  std::vector<Frame> stack;
  const auto push_children = [&](std::uint32_t node) {
    const auto kids = sorted_children(tree_, tree_.nodes()[node]);
    for (std::size_t i = kids.size(); i-- > 0;) {
      stack.push_back({kids[i], false, i == 0});
    }
  };
  push_children(0);
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.close) {
      out += "]}";
      continue;
    }
    const ProfNode& node = tree_.nodes()[frame.node];
    if (!frame.first_sibling) out.push_back(',');
    out += "{\"name\":";
    append_json_string(out, tree_.name(node.name_id));
    out += ",\"calls\":" + std::to_string(node.calls);
    out += ",\"wall_s\":" + fmt_seconds(node.wall_s);
    out += ",\"cpu_s\":" + fmt_seconds(node.cpu_s);
    out += ",\"self_wall_s\":" +
           fmt_seconds(std::max(0.0, node.wall_s - children_wall(tree_, node)));
    out += ",\"self_cpu_s\":" +
           fmt_seconds(std::max(0.0, node.cpu_s - children_cpu(tree_, node)));
    out += ",\"children\":[";
    stack.push_back({frame.node, true, false});
    push_children(frame.node);
  }
  out += "]}\n";
  return out;
}

std::string ProfReport::to_collapsed() const {
  std::string out;
  std::string path;
  struct Frame {
    std::uint32_t node;
    std::size_t path_len;  // restore point after the subtree
  };
  std::vector<Frame> stack;
  const auto kids0 = sorted_children(tree_, tree_.nodes()[0]);
  for (std::size_t i = kids0.size(); i-- > 0;) stack.push_back({kids0[i], 0});
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    path.resize(frame.path_len);
    const ProfNode& node = tree_.nodes()[frame.node];
    if (!path.empty()) path.push_back(';');
    path += tree_.name(node.name_id);
    const double self =
        std::max(0.0, node.wall_s - children_wall(tree_, node));
    const auto micros = static_cast<long long>(std::llround(self * 1e6));
    if (micros > 0 || node.children.empty()) {
      out += path;
      out.push_back(' ');
      out += std::to_string(micros);
      out.push_back('\n');
    }
    const auto kids = sorted_children(tree_, node);
    for (std::size_t i = kids.size(); i-- > 0;) {
      stack.push_back({kids[i], path.size()});
    }
  }
  return out;
}

std::string ProfReport::to_chrome_json() const {
  // The aggregate tree has no real timestamps, so lay siblings out
  // sequentially inside their parent's span: visually a flamegraph.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  struct Frame {
    std::uint32_t node;
    double ts_us;
  };
  std::vector<Frame> stack;
  double cursor = 0.0;
  for (const std::uint32_t child : sorted_children(tree_, tree_.nodes()[0])) {
    stack.push_back({child, cursor});
    cursor += tree_.nodes()[child].wall_s * 1e6;
  }
  std::reverse(stack.begin(), stack.end());
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const ProfNode& node = tree_.nodes()[frame.node];
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, tree_.name(node.name_id));
    out += ",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":" +
           fmt_seconds(frame.ts_us) +
           ",\"dur\":" + fmt_seconds(node.wall_s * 1e6);
    out += ",\"args\":{\"calls\":" + std::to_string(node.calls) +
           ",\"cpu_s\":" + fmt_seconds(node.cpu_s) + "}}";
    double child_ts = frame.ts_us;
    const auto kids = sorted_children(tree_, node);
    std::vector<Frame> forward;
    forward.reserve(kids.size());
    for (const std::uint32_t child : kids) {
      forward.push_back({child, child_ts});
      child_ts += tree_.nodes()[child].wall_s * 1e6;
    }
    for (std::size_t i = forward.size(); i-- > 0;) {
      stack.push_back(forward[i]);
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace ftpc::obs
