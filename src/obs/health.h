// Health plane: wall-clock liveness heartbeats for census/shard processes.
//
// The deterministic channels (metrics, trace, timeline, records) describe
// what a run *did*; the perf plane (obs/perf.h) describes what it *cost*.
// Neither answers the operational question a fleet conductor has to ask
// while N `ftpcensus --shard-id k/N` processes are in flight: is shard 7
// still making progress, or did it die an hour ago? This plane answers
// exactly that. Each census/shard process emits an ftpc.health.v1
// heartbeat on a wall-clock cadence:
//
//   heartbeat.json   the latest beat, atomic-rename replaced (readers
//                    never observe a torn write)
//   health.jsonl     append-only history of every beat, one JSON object
//                    per line (each line is self-describing so resumed
//                    runs can append to the same history)
//
// A beat carries the process identity (pid, shard k/N, config hash), the
// pipeline position (PerfStage, global element index, last-checkpoint
// boundary), progress gauges (hosts attempted/enumerated, funnel
// snapshot, retry/chaos counters), and resource usage (RSS, wall/CPU
// seconds — the same clocks the perf plane uses).
//
// Like the perf plane, this channel is explicitly NON-deterministic and
// EXEMPT from the byte-identity contract: it is wall-clock sampled by a
// background thread. It must never feed a deterministic artifact — the
// census hot path only ever *stores into* the relaxed atomics below and
// never reads them back (tests/health_test.cc pins split invariance with
// heartbeats on vs off).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include <condition_variable>
#include <mutex>

#include "obs/perf.h"

namespace ftpc::obs {

/// Live gauges the running census bumps with relaxed stores and the
/// heartbeat thread snapshots. Display/ops only — nothing here is ever
/// read back into the deterministic pipeline.
struct HealthState {
  std::atomic<std::uint32_t> stage{0};  // PerfStage of the current work
  /// Global element index of the scan permutation (the shard's position
  /// mapped back into the unsharded walk), and the full sample budget.
  std::atomic<std::uint64_t> global_element{0};
  std::atomic<std::uint64_t> elements_total{0};
  std::atomic<std::uint64_t> hosts_attempted{0};   // sessions launched
  std::atomic<std::uint64_t> hosts_enumerated{0};  // sessions finished
  std::atomic<std::uint64_t> connected{0};
  std::atomic<std::uint64_t> ftp_compliant{0};
  std::atomic<std::uint64_t> anonymous{0};
  std::atomic<std::uint64_t> errored{0};
  std::atomic<std::uint64_t> retries{0};         // probe + command resends
  std::atomic<std::uint64_t> chaos_injected{0};  // faults fired
  std::atomic<std::uint64_t> checkpoint_element{0};

  HealthState() = default;
  HealthState(const HealthState&) = delete;
  HealthState& operator=(const HealthState&) = delete;

  void set_stage(PerfStage stage_now) noexcept {
    stage.store(static_cast<std::uint32_t>(stage_now),
                std::memory_order_relaxed);
  }
};

/// One rendered/parsed beat — the plain-struct form of an ftpc.health.v1
/// line. render_health_line() is a pure function of this struct, which is
/// what lets the golden-schema test pin the exact bytes.
struct HealthSample {
  std::uint64_t seq = 0;
  std::uint64_t ts_ms = 0;  // unix epoch milliseconds (wall clock)
  std::uint64_t pid = 0;
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t interval_ms = 1000;
  std::string stage;  // perf_stage_name(), or "done" on the final beat
  bool done = false;
  std::uint64_t global_element = 0;
  std::uint64_t elements_total = 0;
  std::uint64_t hosts_attempted = 0;
  std::uint64_t hosts_enumerated = 0;
  std::uint64_t connected = 0;
  std::uint64_t ftp_compliant = 0;
  std::uint64_t anonymous = 0;
  std::uint64_t errored = 0;
  std::uint64_t retries = 0;
  std::uint64_t chaos_injected = 0;
  std::uint64_t checkpoint_element = 0;
  double wall_s = 0.0;  // real seconds since the monitor started
  double cpu_s = 0.0;   // process CPU seconds
  std::uint64_t rss_kb = 0;
};

/// Canonical one-line ftpc.health.v1 rendering (newline-terminated, fixed
/// key order, schema-tagged). Pure in `sample`.
std::string render_health_line(const HealthSample& sample);

/// Inverse of render_health_line; accepts any standard-JSON object with
/// the ftpc.health.v1 schema tag. Returns nullopt (with a diagnostic in
/// `error`) on garbled input or a wrong/missing schema.
std::optional<HealthSample> parse_health_line(std::string_view line,
                                              std::string* error = nullptr);

/// Current process RSS in KiB (0 where /proc is unavailable).
std::uint64_t process_rss_kb() noexcept;
/// Current process CPU time, seconds (0 where unsupported).
double process_cpu_seconds() noexcept;

struct HealthOptions {
  bool enabled = false;
  /// Wall-clock heartbeat cadence, milliseconds (>= 100 enforced by the
  /// CLI; the monitor itself accepts anything >= 1 for tests).
  std::uint64_t interval_ms = 1000;
  /// Directory receiving heartbeat.json + health.jsonl.
  std::string dir;
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  /// Append to an existing health.jsonl (resumed runs keep their history;
  /// the restart is visible as a seq reset in the stream).
  bool append = false;
};

/// Background heartbeat emitter. Construction writes beat 0 immediately
/// and starts a thread emitting every interval; destruction (or stop())
/// emits one final beat — tagged done=true when the run finished cleanly —
/// and joins. The HealthState must outlive the monitor.
class HealthMonitor {
 public:
  HealthMonitor(const HealthOptions& options, const HealthState& state);
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// False when the artifact files could not be opened (the monitor is
  /// then inert; the census itself is unaffected).
  bool ok() const noexcept { return ok_; }

  /// Stops the thread after one final beat. `completed` marks the beat
  /// done=true (stage "done") — call with true only after the run really
  /// finished; a crash/kill path destructs without it and the last beat
  /// honestly reports the stage the process died in.
  void stop(bool completed);

  std::uint64_t beats() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void emit(bool done);

  HealthOptions options_;
  const HealthState& state_;
  bool ok_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point started_;
  std::FILE* history_ = nullptr;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool quit_ = false;
  std::thread thread_;
};

// File names inside a shard/census artifact directory.
inline constexpr const char* kHeartbeatFile = "heartbeat.json";
inline constexpr const char* kHealthHistoryFile = "health.jsonl";

}  // namespace ftpc::obs
